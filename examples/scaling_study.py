#!/usr/bin/env python3
"""Strong-scaling study on the simulated machines (Figures 1-3 harness).

Sweeps one parent code over the paper's core counts on both Piz Daint and
MareNostrum 4 models, printing time-per-step, speedup and the POP
efficiency metrics.  The default (SPH-flow / square / 2e5 particles) runs
in seconds; pass the paper's full setup explicitly for the real thing.

Run:  python examples/scaling_study.py [code] [test] [n_particles]
e.g.: python examples/scaling_study.py sphynx evrard 1000000
"""

import sys

from repro.core.presets import get_preset
from repro.runtime import (
    MARENOSTRUM4,
    PIZ_DAINT,
    build_workload,
    format_scaling_table,
    strong_scaling,
)


def main() -> None:
    code = sys.argv[1] if len(sys.argv) > 1 else "sph-flow"
    test = sys.argv[2] if len(sys.argv) > 2 else "square"
    n = int(sys.argv[3]) if len(sys.argv) > 3 else 200_000
    preset = get_preset(code)
    cores = (12, 24, 48, 96, 192, 384, 768)

    print(f"strong scaling: {preset.label} / {test} / {n:,} particles")
    print("building workload geometry...")
    workload = build_workload(test, n)

    series = []
    for machine in (PIZ_DAINT, MARENOSTRUM4):
        print(f"simulating on {machine.name} "
              f"({machine.cores_per_node} cores/node, "
              f"{machine.network.name} {machine.network.topology})...")
        series.append(
            strong_scaling(preset, test, machine, cores, workload=workload,
                           n_steps=20)
        )

    print()
    print(format_scaling_table(series))
    print("\nPOP efficiency metrics (Piz Daint):")
    for p in series[0].points:
        print(f"  {p.pop.row()}")
    stall = next(
        (p for p in series[0].points if p.particles_per_core < 1e4), None
    )
    if stall is not None:
        print(
            f"\nnote: below ~10^4 particles/core (here from {stall.cores} "
            f"cores) strong scaling stalls — the effect Section 5.2 reports."
        )


if __name__ == "__main__":
    main()
