#!/usr/bin/env python3
"""Network-design study with a communication skeleton (Section 2).

The paper's related-work section highlights skeleton applications —
reduced programs that reproduce a full code's network traffic — as "a
tool to study balanced Exascale interconnect designs".  This example
extracts the communication skeleton of one modeled SPH-flow step at 768
cores and replays it across a grid of hypothetical interconnects,
separating compute from network time without re-running the application
model.

Run:  python examples/network_design_study.py
"""

from repro.core.presets import SPHFLOW
from repro.io.reporting import format_table
from repro.runtime import (
    PIZ_DAINT,
    ClusterModel,
    NetworkSpec,
    build_workload,
    calibrate_kappa,
    extract_skeleton,
)

CORES = 768
N = 1_000_000


def main() -> None:
    print(f"extracting skeleton: SPH-flow / square / {N:,} particles / "
          f"{CORES} cores ...")
    workload = build_workload("square", N)
    kappa = calibrate_kappa(SPHFLOW, workload)
    model = ClusterModel(workload, SPHFLOW, PIZ_DAINT, CORES, kappa=kappa)
    skeleton = extract_skeleton(model)
    print(f"  {len(skeleton.ops)} ops: {skeleton.n_exchanges} halo "
          f"exchange(s), {skeleton.n_collectives} collective(s), "
          f"{skeleton.total_bytes() / 1e6:.1f} MB total halo volume")

    # Compute-only baseline: an infinitely fast network.
    ideal = NetworkSpec("ideal", latency=1e-300, bandwidth=1e300,
                        topology="fat-tree")
    compute_time = skeleton.replay(ideal)

    rows = []
    for latency_us in (0.5, 1.3, 5.0, 20.0):
        for bw_gbs in (25.0, 10.0, 2.5):
            net = NetworkSpec(
                name=f"{latency_us}us/{bw_gbs}GBs",
                latency=latency_us * 1e-6,
                bandwidth=bw_gbs * 1e9,
                topology="fat-tree",
            )
            t = skeleton.replay(net)
            rows.append([
                f"{latency_us:5.1f}", f"{bw_gbs:5.1f}",
                f"{t:8.3f}", f"{t - compute_time:8.3f}",
                f"{100 * (t - compute_time) / t:5.1f}%",
            ])
    print()
    print(format_table(
        ["latency [us]", "bandwidth [GB/s]", "step [s]", "network [s]",
         "network share"],
        rows,
        title=(
            f"Skeleton replay across interconnects "
            f"(compute floor {compute_time:.3f} s/step)"
        ),
    ))
    print(
        "\nreading: even a 20x-worse fabric barely moves the step time — "
        "the modeled SPH step\nis compute/ghost-bound, which is the "
        "skeleton's way of showing what Section 5.2\nmeasured directly: "
        "communication efficiency ~1, with load imbalance (not the\n"
        "network) limiting scalability.  A skeleton sweep like this is "
        "how one would test\nwhether a cheaper interconnect suffices for "
        "an SPH-EXA deployment."
    )


if __name__ == "__main__":
    main()
