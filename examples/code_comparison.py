#!/usr/bin/env python3
"""Three-code comparison on the rotating square patch (the Section 5 idea).

"Comparing results of different hydrodynamical codes to the same initial
conditions has been proved to be highly beneficial" — this example runs
the SPHYNX, ChaNGa and SPH-flow presets on identical square-patch initial
conditions, then compares their physics (conservation, rotation fidelity)
and their per-phase wall-clock profile from the Extrae-like tracer.

Run:  python examples/code_comparison.py
"""

import numpy as np

from repro import (
    CHANGA,
    SPHFLOW,
    SPHYNX,
    Simulation,
    SquarePatchConfig,
    make_square_patch,
)
from repro.core.phases import Phase
from repro.io.reporting import format_table
from repro.timestepping import TimestepParams

N_STEPS = 4


def rotation_error(sim) -> float:
    """Mean deviation from rigid rotation in the patch interior."""
    p = sim.particles
    r2d = np.hypot(p.x[:, 0], p.x[:, 1])
    interior = r2d < 0.25
    vx = 5.0 * p.x[interior, 1]
    vy = -5.0 * p.x[interior, 0]
    err = np.hypot(p.v[interior, 0] - vx, p.v[interior, 1] - vy)
    return float(err.mean() / (5.0 * 0.25))


def main() -> None:
    rows = []
    phase_rows = []
    for preset in (SPHYNX, CHANGA, SPHFLOW):
        particles, box, eos = make_square_patch(
            SquarePatchConfig(side=14, layers=7)
        )
        sim = Simulation(
            particles, box, eos,
            config=preset.with_(
                n_neighbors=40,
                timestep_params=TimestepParams(use_energy_criterion=False),
            ),
        )
        sim.run(n_steps=N_STEPS)
        drift = sim.conservation_drift()
        rows.append([
            preset.label,
            preset.kernel,
            preset.gradients,
            f"{drift['momentum']:.1e}",
            f"{drift['energy']:.1e}",
            f"{rotation_error(sim):.3f}",
        ])
        # Per-phase profile (the Figure-4 information, serially measured).
        total = sum(sim.tracer.time_in_phase(p.letter) for p in Phase)
        shares = [
            f"{100 * sim.tracer.time_in_phase(p.letter) / total:.0f}%"
            for p in Phase
        ]
        phase_rows.append([preset.label] + shares)

    print(format_table(
        ["code", "kernel", "gradients", "|dp|/p", "|dE|/E", "rot. err"],
        rows,
        title=f"Square patch after {N_STEPS} steps, {14 * 14 * 7} particles",
    ))
    print()
    print(format_table(
        ["code"] + [p.letter for p in Phase],
        phase_rows,
        title="Per-phase share of compute time (Algorithm 1 phases A-J)",
    ))
    print("\nphase legend:")
    for p in Phase:
        print(f"  {p.letter}: {p.description}")


if __name__ == "__main__":
    main()
