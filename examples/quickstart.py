#!/usr/bin/env python3
"""Quickstart: a small rotating square patch in ~30 lines.

Builds the paper's first test case at toy resolution, runs five
Algorithm-1 time steps with the SPH-flow preset and prints the
conservation ledger — the fastest way to see the whole pipeline
(tree -> neighbours -> density -> EOS -> forces -> step) work.

Run:  python examples/quickstart.py
"""

from repro import SPHFLOW, Simulation, SquarePatchConfig, make_square_patch
from repro.timestepping import TimestepParams


def main() -> None:
    # 16 x 16 x 8 particles; the paper uses 100 x 100 x 100 for the
    # performance study (see benchmarks/ for that scale).
    particles, box, eos = make_square_patch(SquarePatchConfig(side=16, layers=8))
    print(f"rotating square patch: {particles.n} particles, "
          f"omega = 5 rad/s, periodic Z")

    config = SPHFLOW.with_(
        n_neighbors=40,
        # The weakly-compressible EOS has no dynamical internal energy, so
        # the energy time-step criterion would just track noise.
        timestep_params=TimestepParams(use_energy_criterion=False),
    )
    sim = Simulation(particles, box, eos, config=config)

    for _ in range(5):
        s = sim.step()
        c = s.conservation
        print(
            f"step {s.index}: t={s.time:.3e}  dt={s.dt:.2e}  "
            f"<neighbours>={s.mean_neighbors:.0f}  "
            f"E_kin={c.kinetic_energy:.4f}  |p|={abs(c.momentum).max():.2e}"
        )

    drift = sim.conservation_drift()
    print(
        f"\nconservation drift over {sim.step_index} steps: "
        f"mass={drift['mass']:.2e}  momentum={drift['momentum']:.2e}  "
        f"energy={drift['energy']:.2e}"
    )
    assert drift["mass"] == 0.0
    assert drift["momentum"] < 1e-10
    print("OK: mass and momentum conserved to machine precision")


if __name__ == "__main__":
    main()
