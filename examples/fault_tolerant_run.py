#!/usr/bin/env python3
"""Fault-tolerant execution: checkpointing, a crash, SDC detection.

Demonstrates the Table-4 resilience stack end to end on a live run:

1. compute the Young-optimal checkpoint interval for the (toy) failure
   model and checkpoint on that cadence;
2. "crash" mid-run, restore from the last checkpoint, and verify the
   resumed trajectory is bit-identical to an uninterrupted one;
3. inject a silent bit flip and show the SDC detectors flag it.

Run:  python examples/fault_tolerant_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SPHFLOW, Simulation, SquarePatchConfig, make_square_patch
from repro.resilience import (
    Checkpoint,
    SdcMonitor,
    inject_bitflip,
    read_checkpoint,
    write_checkpoint,
    young_interval,
)
from repro.timestepping import TimestepParams


def fresh_sim() -> Simulation:
    particles, box, eos = make_square_patch(SquarePatchConfig(side=12, layers=6))
    return Simulation(
        particles, box, eos,
        config=SPHFLOW.with_(
            n_neighbors=35,
            timestep_params=TimestepParams(use_energy_criterion=False),
        ),
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sph-ckpt-"))

    # --- 1. optimal checkpoint cadence --------------------------------
    step_cost, ckpt_cost, mtbf = 1.0, 0.2, 50.0  # toy numbers, in steps
    interval_steps = max(int(young_interval(ckpt_cost, mtbf) / step_cost), 1)
    print(f"Young-optimal cadence: checkpoint every {interval_steps} steps "
          f"(C={ckpt_cost}, MTBF={mtbf})")

    # --- 2. run, crash, restore, verify bit-identical resume ----------
    reference = fresh_sim()
    reference.run(n_steps=6)

    victim = fresh_sim()
    last_ckpt = None
    for step in range(1, 5):  # "crashes" after step 4
        victim.step()
        if step % interval_steps == 0:
            last_ckpt = workdir / f"step{step}.ckpt"
            write_checkpoint(last_ckpt, Checkpoint.of_simulation(victim))
            print(f"  checkpoint written at step {step}")
    print("  ... simulated crash! restoring from", last_ckpt.name)

    survivor = fresh_sim()
    read_checkpoint(last_ckpt).restore_into(survivor)
    survivor.run(n_steps=6 - survivor.step_index)
    identical = np.array_equal(survivor.particles.x, reference.particles.x)
    print(f"  resumed run matches uninterrupted run bit-for-bit: {identical}")
    assert identical

    # --- 3. silent data corruption ------------------------------------
    monitor = SdcMonitor()
    monitor.check_step(survivor.particles, survivor.time)
    field, bit = "v", 62  # top exponent bit: a classic SDC excursion
    idx, _ = inject_bitflip(getattr(survivor.particles, field), bit=bit)
    print(f"\ninjected bit flip: {field}[{idx}], bit {bit}")
    findings = monitor.check_step(survivor.particles, survivor.time)
    for f in findings:
        print(f"  detector: {f}")
    assert findings, "SDC escaped detection"
    print("OK: crash recovered exactly and corruption detected")


if __name__ == "__main__":
    main()
