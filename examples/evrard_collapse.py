#!/usr/bin/env python3
"""Evrard collapse: gravity-driven collapse with a live energy budget.

The second paper test case (Table 5): a cold gas sphere (u0 = 0.05,
|E_grav| ~ 1) collapses under self-gravity; gravitational energy converts
to kinetic, then shock heating turns it into internal energy near the
bounce.  This example runs the SPHYNX preset (sinc kernel, IAD gradients,
generalized volume elements, 4-pole gravity) to t ~ 0.4 and prints the
energy exchange, with total energy conserved throughout.

Run:  python examples/evrard_collapse.py [n_particles]
"""

import sys

from repro import EvrardConfig, SPHYNX, Simulation, make_evrard


def main() -> None:
    n_target = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    particles, box, eos = make_evrard(EvrardConfig(n_target=n_target))
    print(
        f"Evrard collapse: {particles.n} particles, M=R=G=1, u0=0.05, "
        f"gamma=5/3  (free-fall time ~ 1.1)"
    )

    sim = Simulation(particles, box, eos, config=SPHYNX.with_(n_neighbors=40))

    print(f"\n{'t':>7} {'dt':>9} {'E_kin':>9} {'E_int':>9} {'E_pot':>9} "
          f"{'E_tot':>9} {'drift':>9}")
    e0 = None
    while sim.time < 0.4:
        s = sim.step()
        c = s.conservation
        if e0 is None:
            e0 = c.total_energy
        if s.index % 3 == 1:
            drift = abs(c.total_energy - e0) / abs(e0)
            print(
                f"{s.time:7.3f} {s.dt:9.2e} {c.kinetic_energy:9.4f} "
                f"{c.internal_energy:9.4f} {c.potential_energy:9.4f} "
                f"{c.total_energy:9.4f} {drift:9.2e}"
            )

    last = sim.history[-1].conservation
    first = sim.history[0].conservation
    print(
        f"\ncollapse diagnostics after {sim.step_index} steps:"
        f"\n  potential well deepened : "
        f"{first.potential_energy:.4f} -> {last.potential_energy:.4f}"
        f"\n  kinetic energy gained   : "
        f"{first.kinetic_energy:.4f} -> {last.kinetic_energy:.4f}"
        f"\n  gravity interactions    : {sim.history[-1].n_p2p:,} P2P + "
        f"{sim.history[-1].n_m2p:,} M2P per step"
    )
    drift = sim.conservation_drift()
    print(f"  total energy drift      : {drift['energy']:.2e}")
    assert last.potential_energy < first.potential_energy, "no collapse?"
    assert drift["energy"] < 0.02, "energy not conserved"
    print("OK: collapsing with conserved total energy")


if __name__ == "__main__":
    main()
