#!/usr/bin/env python
"""Regenerate the committed scenario golden masters.

Runs every registry entry (or a named subset) at its CI size for its
golden step count and rewrites ``tests/golden/scenario_<name>.json``.
Deterministic: same platform + same code ⇒ identical files.

Use only after an *intentional* physics change, and commit the diff
together with the change that caused it:

    PYTHONPATH=src python tools/regen_goldens.py           # all scenarios
    PYTHONPATH=src python tools/regen_goldens.py sod noh   # a subset
    PYTHONPATH=src python tools/regen_goldens.py --check   # verify only

``--check`` exits 1 if any committed golden differs from a fresh run —
the same comparison the conformance suite applies, handy before pushing.

The legacy square-patch golden (``square_patch_5step.json``, owned by
``tests/test_golden_master.py``) is a separate fixture and is *not*
touched here; regenerate it with ``python tests/test_golden_master.py``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.scenarios import (  # noqa: E402  (path bootstrap above)
    all_scenarios,
    compare_records,
    get_scenario,
    golden_path,
    load_golden,
    run_scenario_record,
    write_golden,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="names to regenerate (default: the whole registry)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against committed files instead of rewriting",
    )
    args = parser.parse_args(argv)

    targets = (
        [get_scenario(name) for name in args.scenarios]
        if args.scenarios
        else all_scenarios()
    )

    failures = 0
    for scenario in targets:
        path = golden_path(scenario.name)
        record = run_scenario_record(scenario)
        if args.check:
            if not path.exists():
                print(f"{scenario.name}: MISSING {path}")
                failures += 1
                continue
            diffs = compare_records(record, load_golden(path))
            if diffs:
                print(f"{scenario.name}: MISMATCH")
                for d in diffs:
                    print(f"  {d}")
                failures += 1
            else:
                print(f"{scenario.name}: ok")
        else:
            write_golden(record, path)
            print(
                f"{scenario.name}: wrote {path} "
                f"({record['n_particles']} particles, "
                f"{record['n_steps']} steps)"
            )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
