"""Legacy setup shim.

The target environment is offline and lacks the ``wheel`` package, so PEP
517 editable installs fail with ``invalid command 'bdist_wheel'``.  Keeping
a ``setup.py`` (and no ``[build-system]`` table) lets ``pip install -e .``
fall back to ``setup.py develop``, which needs nothing beyond setuptools.
"""

from setuptools import setup

setup()
