"""Cartesian multipole moments and Taylor derivative tensors.

Table 1 of the paper records gravity as "Multipoles (4-pole)" for SPHYNX
and "Multipoles (16-pole)" for ChaNGa — quadrupole and hexadecapole order
in the physics naming (2^p-pole).  This module provides both, plus the
octupole in between, as raw Cartesian moment tensors about each node's
center of mass:

    M^(n)_{a1..an} = sum_k m_k s_a1 ... s_an,     s = x_k - X_com

combined with the derivative tensors ``D^(n) = grad^n (1/r)`` in the
far-field expansion

    phi(d)  = -G sum_n ((-1)^n / n!) M^(n) . D^(n)(d)
    a_e(d)  =  G sum_n ((-1)^n / n!) M^(n) . D^(n+1)(d)_e

with ``d`` pointing from the node COM to the target.  ``M^(1) = 0`` by the
COM choice, so the dipole never appears.  Raw (non-detraced) moments are
used; detracing only re-shuffles terms between orders and raw tensors keep
the translation algebra simple (moments are accumulated about the box
center with prefix sums, then shifted to each COM with the binomial
transport formulas).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List

import numpy as np

from ..tree.octree import Octree

__all__ = [
    "MULTIPOLE_ORDERS",
    "NodeMoments",
    "compute_node_moments",
    "derivative_tensors",
    "evaluate_multipoles",
]

#: Supported expansion orders: physics name -> highest moment rank.
MULTIPOLE_ORDERS = {"monopole": 0, "quadrupole": 2, "octupole": 3, "hexadecapole": 4}


@dataclass
class NodeMoments:
    """Per-node multipole moments about the node center of mass."""

    order: int
    mass: np.ndarray  # (m,)
    com: np.ndarray  # (m, dim)
    m2: np.ndarray | None = None  # (m, dim, dim)
    m3: np.ndarray | None = None  # (m, dim, dim, dim)
    m4: np.ndarray | None = None  # (m, dim, dim, dim, dim)


def compute_node_moments(
    tree: Octree, x: np.ndarray, m: np.ndarray, order: int = 2
) -> NodeMoments:
    """Moments for every tree node in one prefix-sum pass per component.

    ``order`` is the highest moment rank retained (0, 2, 3 or 4 — the
    dipole vanishes about the COM so order 1 equals order 0).
    """
    if order not in (0, 1, 2, 3, 4):
        raise ValueError(f"order must be in 0..4, got {order}")
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    m = np.asarray(m, dtype=np.float64)
    dim = x.shape[1]
    # Accumulate about the box center to curb cancellation in prefix sums.
    origin = tree.box.center
    s = x - origin

    mass = tree.node_aggregate(m)
    msum = tree.node_aggregate(m[:, None] * s)
    safe_mass = np.where(mass > 0.0, mass, 1.0)
    com_rel = msum / safe_mass[:, None]
    com = com_rel + origin
    moments = NodeMoments(order=order, mass=mass, com=com)
    if order < 2:
        return moments

    # Raw second moments about the origin, then shift to the COM:
    #   M2_com = M2 - M X (x) X
    mxx = m[:, None, None] * s[:, :, None] * s[:, None, :]
    raw2 = tree.node_aggregate(mxx.reshape(-1, dim * dim)).reshape(-1, dim, dim)
    xx = com_rel[:, :, None] * com_rel[:, None, :]
    moments.m2 = raw2 - mass[:, None, None] * xx
    if order < 3:
        return moments

    #   M3_com = M3 - sym3(X (x) M2_raw) + 2 M X^3
    mxxx = mxx[:, :, :, None] * s[:, None, None, :]
    raw3 = tree.node_aggregate(mxxx.reshape(-1, dim**3)).reshape(-1, dim, dim, dim)
    X = com_rel
    sym_xm2 = (
        X[:, :, None, None] * raw2[:, None, :, :]
        + X[:, None, :, None] * raw2[:, :, None, :]
        + X[:, None, None, :] * raw2[:, :, :, None]
    )
    xxx = xx[:, :, :, None] * X[:, None, None, :]
    moments.m3 = raw3 - sym_xm2 + 2.0 * mass[:, None, None, None] * xxx
    if order < 4:
        return moments

    #   M4_com = M4 - sym4(X (x) M3_raw) + sym6(X X (x) M2_raw) - 3 M X^4
    mxxxx = mxxx[:, :, :, :, None] * s[:, None, None, None, :]
    raw4 = tree.node_aggregate(mxxxx.reshape(-1, dim**4)).reshape(
        -1, dim, dim, dim, dim
    )
    sym_xm3 = (
        X[:, :, None, None, None] * raw3[:, None, :, :, :]
        + X[:, None, :, None, None] * raw3[:, :, None, :, :]
        + X[:, None, None, :, None] * raw3[:, :, :, None, :]
        + X[:, None, None, None, :] * raw3[:, :, :, :, None]
    )
    # Six pairings of which two indices carry X.
    def xxm2(a: int, b: int) -> np.ndarray:
        # Positions a, b carry the COM offset pair X X; the rest carry M2.
        rest = [i for i in range(4) if i not in (a, b)]
        letters = "abcd"
        x_sub = letters[a] + letters[b]
        m_sub = letters[rest[0]] + letters[rest[1]]
        return np.einsum(f"k{x_sub},k{m_sub}->kabcd", xx, raw2)

    sym_xxm2 = sum(xxm2(a, b) for a, b in combinations(range(4), 2))
    xxxx = xxx[:, :, :, :, None] * X[:, None, None, None, :]
    moments.m4 = (
        raw4 - sym_xm3 + sym_xxm2 - 3.0 * mass[:, None, None, None, None] * xxxx
    )
    return moments


def derivative_tensors(d: np.ndarray, max_rank: int) -> List[np.ndarray]:
    """``[D^(0), ..., D^(max_rank)]`` with ``D^(n) = grad^n (1/|d|)``.

    ``d`` has shape ``(k, dim)``; each ``D^(n)`` has shape
    ``(k, dim, ..., dim)`` with n trailing axes.  Explicit closed forms up
    to rank 5 (needed for hexadecapole accelerations).
    """
    d = np.atleast_2d(np.asarray(d, dtype=np.float64))
    k, dim = d.shape
    r2 = np.einsum("kd,kd->k", d, d)
    if np.any(r2 <= 0.0):
        raise ValueError("derivative tensors are singular at zero separation")
    u = 1.0 / np.sqrt(r2)
    u3 = u**3
    u5 = u3 * u * u
    u7 = u5 * u * u
    u9 = u7 * u * u
    u11 = u9 * u * u
    eye = np.eye(dim)

    out: List[np.ndarray] = [u]
    if max_rank >= 1:
        out.append(-d * u3[:, None])
    if max_rank >= 2:
        dd = d[:, :, None] * d[:, None, :]
        out.append(3.0 * dd * u5[:, None, None] - eye[None, :, :] * u3[:, None, None])
    if max_rank >= 3:
        ddd = dd[:, :, :, None] * d[:, None, None, :]
        sym_ed = (
            eye[None, :, :, None] * d[:, None, None, :]
            + eye[None, :, None, :] * d[:, None, :, None]
            + eye[None, None, :, :] * d[:, :, None, None]
        )
        out.append(
            -15.0 * ddd * u7[:, None, None, None]
            + 3.0 * sym_ed * u5[:, None, None, None]
        )
    if max_rank >= 4:
        dddd = ddd[:, :, :, :, None] * d[:, None, None, None, :]
        sym_edd = np.zeros((k,) + (dim,) * 4)
        letters = "abcd"
        for (a, b) in combinations(range(4), 2):
            rest = [i for i in range(4) if i not in (a, b)]
            e_sub = letters[a] + letters[b]
            d_sub = letters[rest[0]] + letters[rest[1]]
            sym_edd += np.einsum(f"{e_sub},k{d_sub}->kabcd", eye, dd)
        sym_ee = np.zeros((dim,) * 4)
        # The three distinct pairings of four indices into two deltas:
        # (ab)(cd), (ac)(bd), (ad)(bc) — enumerate pairs containing index 0
        # so each pairing is counted exactly once.
        for b in (1, 2, 3):
            rest = [i for i in range(1, 4) if i != b]
            e_sub = letters[0] + letters[b]
            f_sub = letters[rest[0]] + letters[rest[1]]
            sym_ee += np.einsum(f"{e_sub},{f_sub}->abcd", eye, eye)
        out.append(
            105.0 * dddd * u9[:, None, None, None, None]
            - 15.0 * sym_edd * u7[:, None, None, None, None]
            + 3.0 * sym_ee[None] * u5[:, None, None, None, None]
        )
    if max_rank >= 5:
        ddddd = dddd[..., None] * d[:, None, None, None, None, :]
        letters = "abcde"
        sym_eddd = np.zeros((k,) + (dim,) * 5)
        for (a, b) in combinations(range(5), 2):
            rest = [i for i in range(5) if i not in (a, b)]
            e_sub = letters[a] + letters[b]
            d_sub = "".join(letters[i] for i in rest)
            sym_eddd += np.einsum(f"{e_sub},k{d_sub}->kabcde", eye, ddd)
        sym_eed = np.zeros((k,) + (dim,) * 5)
        for solo in range(5):
            others = [i for i in range(5) if i != solo]
            # Three pairings of the remaining four indices into two deltas.
            pairings = [
                ((others[0], others[1]), (others[2], others[3])),
                ((others[0], others[2]), (others[1], others[3])),
                ((others[0], others[3]), (others[1], others[2])),
            ]
            for (p1, p2) in pairings:
                e1 = letters[p1[0]] + letters[p1[1]]
                e2 = letters[p2[0]] + letters[p2[1]]
                ds = letters[solo]
                sym_eed += np.einsum(f"{e1},{e2},k{ds}->kabcde", eye, eye, d)
        out.append(
            -945.0 * ddddd * u11[:, None, None, None, None, None]
            + 105.0 * sym_eddd * u9[:, None, None, None, None, None]
            - 15.0 * sym_eed * u7[:, None, None, None, None, None]
        )
    if max_rank >= 6:
        raise ValueError("derivative tensors implemented up to rank 5")
    return out


def evaluate_multipoles(
    d: np.ndarray,
    mass: np.ndarray,
    m2: np.ndarray | None,
    m3: np.ndarray | None,
    m4: np.ndarray | None,
    order: int,
    g_const: float = 1.0,
):
    """Far-field acceleration and potential for separations ``d``.

    All inputs are per-interaction (k rows): ``d = x_target - com_node``
    and the node moments gathered per interaction.
    """
    tensors = derivative_tensors(d, min(order, 4) + 1)
    phi = mass * tensors[0]
    acc = mass[:, None] * tensors[1]
    if order >= 2:
        if m2 is None:
            raise ValueError("order >= 2 requires m2 moments")
        phi = phi + 0.5 * np.einsum("kab,kab->k", m2, tensors[2])
        acc = acc + 0.5 * np.einsum("kab,kabe->ke", m2, tensors[3])
    if order >= 3:
        if m3 is None:
            raise ValueError("order >= 3 requires m3 moments")
        phi = phi - (1.0 / 6.0) * np.einsum("kabc,kabc->k", m3, tensors[3])
        acc = acc - (1.0 / 6.0) * np.einsum("kabc,kabce->ke", m3, tensors[4])
    if order >= 4:
        if m4 is None:
            raise ValueError("order >= 4 requires m4 moments")
        phi = phi + (1.0 / 24.0) * np.einsum("kabcd,kabcd->k", m4, tensors[4])
        acc = acc + (1.0 / 24.0) * np.einsum("kabcd,kabcde->ke", m4, tensors[5])
    return g_const * acc, -g_const * phi
