"""Direct O(N^2) gravity summation.

The brute-force baseline every tree code is validated against.  Plummer
softening keeps close encounters finite:

    a_i = -G sum_{j != i} m_j (x_i - x_j) / (r_ij^2 + eps^2)^{3/2}
    phi_i = -G sum_{j != i} m_j / sqrt(r_ij^2 + eps^2)

Evaluated in target chunks so peak memory stays at ``chunk * n`` pair
tiles rather than ``n^2``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["direct_gravity"]


def direct_gravity(
    x: np.ndarray,
    m: np.ndarray,
    *,
    g_const: float = 1.0,
    softening: float = 0.0,
    targets: np.ndarray | None = None,
    chunk: int = 1024,
) -> Tuple[np.ndarray, np.ndarray]:
    """Accelerations and potentials by direct summation.

    Parameters
    ----------
    targets:
        Optional target indices; defaults to all particles.

    Returns
    -------
    ``(acc, phi)`` with ``acc.shape == (n_targets, dim)``.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    m = np.asarray(m, dtype=np.float64)
    n, dim = x.shape
    if targets is None:
        targets = np.arange(n)
    targets = np.asarray(targets, dtype=np.int64)
    eps2 = float(softening) ** 2

    acc = np.zeros((targets.size, dim))
    phi = np.zeros(targets.size)
    for lo in range(0, targets.size, chunk):
        hi = min(lo + chunk, targets.size)
        t = targets[lo:hi]
        d = x[t][:, None, :] - x[None, :, :]  # (c, n, dim)
        r2 = np.einsum("cnd,cnd->cn", d, d) + eps2
        # Exclude self-interaction: r2 == eps2 exactly at the self pair.
        self_mask = t[:, None] == np.arange(n)[None, :]
        with np.errstate(divide="ignore"):
            inv_r = 1.0 / np.sqrt(r2)
        inv_r[self_mask] = 0.0
        inv_r3 = inv_r**3
        acc[lo:hi] = -g_const * np.einsum("cn,cnd->cd", m[None, :] * inv_r3, d)
        phi[lo:hi] = -g_const * (m[None, :] * inv_r).sum(axis=1)
    return acc, phi
