"""Self-gravity solvers (Algorithm 1, step 4; Tables 1-2 "Self-Gravity").

Barnes-Hut tree gravity with Cartesian multipoles — quadrupole ("4-pole",
SPHYNX) through hexadecapole ("16-pole", ChaNGa) — plus the direct O(N^2)
baseline used for validation.
"""

from .barnes_hut import GravityResult, barnes_hut_gravity, potential_energy
from .direct import direct_gravity
from .multipole import (
    MULTIPOLE_ORDERS,
    NodeMoments,
    compute_node_moments,
    derivative_tensors,
    evaluate_multipoles,
)

__all__ = [
    "GravityResult",
    "barnes_hut_gravity",
    "potential_energy",
    "direct_gravity",
    "MULTIPOLE_ORDERS",
    "NodeMoments",
    "compute_node_moments",
    "derivative_tensors",
    "evaluate_multipoles",
]
