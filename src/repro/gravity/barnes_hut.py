"""Barnes-Hut tree gravity (Algorithm 1, step 4).

Group-based traversal: the targets are the octree's leaf buckets, and for
each (leaf, source-node) frontier pair the geometric multipole acceptance
criterion

    size(source) <= theta * dist(leaf AABB, source COM)

decides between far-field evaluation (M2P with the configured multipole
order — quadrupole for SPHYNX's "4-pole", hexadecapole for ChaNGa's
"16-pole"), opening the source, or — for source leaves — direct
particle-particle summation with Plummer softening.  The whole walk is a
vectorized frontier expansion: at every round the MAC is evaluated for all
active pairs at once.

Interaction counts (P2P pairs, M2P evaluations) are returned; the cluster
cost model uses them to charge gravity work per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..tree.box import Box
from ..tree.octree import Octree
from .multipole import NodeMoments, compute_node_moments, evaluate_multipoles

__all__ = ["GravityResult", "barnes_hut_gravity", "potential_energy"]


@dataclass(frozen=True)
class GravityResult:
    """Accelerations, potentials and interaction statistics."""

    acc: np.ndarray
    phi: np.ndarray
    n_p2p: int
    n_m2p: int

    def potential_energy(self, m: np.ndarray) -> float:
        """Total gravitational energy ``1/2 sum_i m_i phi_i``."""
        return float(0.5 * np.sum(np.asarray(m) * self.phi))


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep_starts = np.repeat(starts, counts)
    rep_base = np.repeat(np.cumsum(counts) - counts, counts)
    return rep_starts + (np.arange(total, dtype=np.int64) - rep_base)


def barnes_hut_gravity(
    x: np.ndarray,
    m: np.ndarray,
    *,
    g_const: float = 1.0,
    softening: float = 0.0,
    theta: float = 0.5,
    order: int = 2,
    tree: Octree | None = None,
    leaf_size: int = 64,
    box: Box | None = None,
    moments: NodeMoments | None = None,
    target_leaves: np.ndarray | None = None,
) -> GravityResult:
    """Tree-code gravity for all particles.

    Parameters
    ----------
    theta:
        Geometric opening angle; smaller is more accurate (0 degenerates
        to direct summation).
    order:
        Highest multipole rank: 0 (monopole), 2 (quadrupole / "4-pole"),
        3 (octupole) or 4 (hexadecapole / "16-pole").
    tree, moments:
        Reuse a pre-built tree/moments (e.g. the one neighbour search
        built this step — the co-design point of sharing the tree between
        SPH and gravity).
    target_leaves:
        Restrict the walk to this subset of target leaf nodes (global
        node indices).  Only particles in those leaves receive
        accelerations/potentials; the per-leaf walk is independent of the
        rest of the frontier, so partitioning the leaves over workers
        (``repro.parallel``) reproduces the full walk bit-for-bit.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    m = np.asarray(m, dtype=np.float64)
    n, dim = x.shape
    if theta <= 0.0:
        raise ValueError(f"theta must be positive, got {theta}")
    if box is not None and bool(np.any(box.periodic)):
        raise ValueError("periodic gravity is not supported (open boundaries only)")
    if tree is None:
        tree = Octree.build(x, box, leaf_size=leaf_size)
    if bool(np.any(tree.box.periodic)):
        raise ValueError("periodic gravity is not supported (open boundaries only)")
    if moments is None:
        moments = compute_node_moments(tree, x, m, order=order)
    elif moments.order < order:
        raise ValueError(
            f"provided moments have order {moments.order} < requested {order}"
        )

    leaves = np.nonzero(tree.is_leaf() & (tree.node_counts() > 0))[0]
    if target_leaves is not None:
        leaves = np.asarray(target_leaves, dtype=np.int64)
    node_size = 2.0 * tree.half.max(axis=1)

    # Frontier of (target-leaf, source-node) pairs, starting at the root.
    t_pair = leaves.copy()
    s_pair = np.zeros(leaves.size, dtype=np.int64)
    m2p_t: list[np.ndarray] = []
    m2p_s: list[np.ndarray] = []
    p2p_t: list[np.ndarray] = []
    p2p_s: list[np.ndarray] = []
    while t_pair.size:
        # Distance from the target leaf's AABB to the source COM.
        dxc = moments.com[s_pair] - tree.center[t_pair]
        excess = np.maximum(np.abs(dxc) - tree.half[t_pair], 0.0)
        dist = np.sqrt(np.einsum("kd,kd->k", excess, excess))
        accept = (node_size[s_pair] <= theta * dist) & (dist > 0.0)
        if np.any(accept):
            m2p_t.append(t_pair[accept])
            m2p_s.append(s_pair[accept])
        t_rem = t_pair[~accept]
        s_rem = s_pair[~accept]
        src_leaf = tree.child_count[s_rem] == 0
        if np.any(src_leaf):
            p2p_t.append(t_rem[src_leaf])
            p2p_s.append(s_rem[src_leaf])
        t_open = t_rem[~src_leaf]
        s_open = s_rem[~src_leaf]
        ccount = tree.child_count[s_open]
        s_pair = _expand_ranges(tree.child_start[s_open], ccount)
        t_pair = np.repeat(t_open, ccount)

    acc = np.zeros((n, dim))
    phi = np.zeros(n)

    # ---------------- M2P: far-field multipole evaluations ----------------
    n_m2p = 0
    if m2p_t:
        mt = np.concatenate(m2p_t)
        ms = np.concatenate(m2p_s)
        # Expand target leaves to their particles.
        counts = tree.pend[mt] - tree.pstart[mt]
        flat = _expand_ranges(tree.pstart[mt], counts)
        p_idx = tree.order[flat]
        s_idx = np.repeat(ms, counts)
        n_m2p = p_idx.size
        chunk = 1 << 16
        for lo in range(0, p_idx.size, chunk):
            hi = min(lo + chunk, p_idx.size)
            p = p_idx[lo:hi]
            s = s_idx[lo:hi]
            d = x[p] - moments.com[s]
            a_c, phi_c = evaluate_multipoles(
                d,
                moments.mass[s],
                None if moments.m2 is None else moments.m2[s],
                None if moments.m3 is None else moments.m3[s],
                None if moments.m4 is None else moments.m4[s],
                order,
                g_const,
            )
            np.add.at(acc, p, a_c)
            np.add.at(phi, p, phi_c)

    # ---------------- P2P: near-field direct summation --------------------
    n_p2p = 0
    if p2p_t:
        pt = np.concatenate(p2p_t)
        ps = np.concatenate(p2p_s)
        ct = tree.pend[pt] - tree.pstart[pt]
        cs = tree.pend[ps] - tree.pstart[ps]
        pc = ct * cs
        total = int(pc.sum())
        n_p2p = total
        eps2 = float(softening) ** 2
        chunk = 1 << 18
        # Per flattened pair entry: which (leaf,leaf) pair, local index.
        pair_of = np.repeat(np.arange(pt.size, dtype=np.int64), pc)
        local = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(pc) - pc, pc
        )
        tgt_flat = tree.pstart[pt][pair_of] + local // cs[pair_of]
        src_flat = tree.pstart[ps][pair_of] + local % cs[pair_of]
        tgt = tree.order[tgt_flat]
        src = tree.order[src_flat]
        for lo in range(0, total, chunk):
            hi = min(lo + chunk, total)
            t_c = tgt[lo:hi]
            s_c = src[lo:hi]
            d = x[t_c] - x[s_c]
            r2 = np.einsum("kd,kd->k", d, d) + eps2
            with np.errstate(divide="ignore"):
                inv_r = 1.0 / np.sqrt(r2)
            inv_r[t_c == s_c] = 0.0
            inv_r3 = inv_r**3
            np.add.at(acc, t_c, -g_const * (m[s_c] * inv_r3)[:, None] * d)
            np.add.at(phi, t_c, -g_const * m[s_c] * inv_r)

    return GravityResult(acc=acc, phi=phi, n_p2p=n_p2p, n_m2p=n_m2p)


def potential_energy(phi: np.ndarray, m: np.ndarray) -> float:
    """Gravitational energy ``1/2 sum m_i phi_i`` (pairwise-consistent)."""
    return float(0.5 * np.sum(np.asarray(m) * np.asarray(phi)))
