"""Extrae-like tracing, POP efficiency metrics, Figure-4 timeline render.

The paper's performance methodology (Section 5.2): trace per-rank states,
compute the POP efficiency hierarchy, and visualize phase/state timelines.

The measured-span side of the story (structured tracers, worker-span
merging, Chrome-trace/JSONL exporters, POP from real pool executions)
lives in :mod:`repro.observability`; this package keeps the modeled
trace containers and analysis that the simulated cluster uses.
"""

from .metrics import PopMetrics, compute_pop_metrics
from .timeline import STATE_CHARS, render_timeline
from .trace import State, TraceEvent, Tracer

__all__ = [
    "State",
    "TraceEvent",
    "Tracer",
    "PopMetrics",
    "compute_pop_metrics",
    "STATE_CHARS",
    "render_timeline",
]
