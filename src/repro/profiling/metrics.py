"""POP efficiency metrics (Section 5.2).

"Load Balance is computed as the ratio between average useful computation
time (across all processes) and maximum useful computation time (also
across all processes)" — the paper uses the POP CoE hierarchy:

    Global Efficiency    = Parallel Efficiency x Computation Scalability
    Parallel Efficiency  = Load Balance x Communication Efficiency
    Load Balance         = mean(useful) / max(useful)
    Communication Eff.   = max(useful) / runtime
    Computation Scal.    = total useful (reference) / total useful (scaled)

All metrics are functions of a :class:`~repro.profiling.trace.Tracer`;
Computation Scalability additionally needs the reference (smallest-scale)
run's total useful time.

Degenerate traces are NaN-safe: an empty trace or one with zero runtime
yields ``nan`` efficiencies instead of raising, so report pipelines can
always compute-then-filter (``PopMetrics.valid`` tells the two cases
apart).  The measured-span variant over merged driver + pool-worker
timelines lives in :func:`repro.observability.pop.pop_from_events`; the
one-line stats formatters that used to live here moved to
:mod:`repro.observability.report` and are re-exported below behind
``DeprecationWarning`` shims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .trace import State, Tracer

__all__ = [
    "PopMetrics",
    "compute_pop_metrics",
    "pool_overhead",
    "recovery_overhead",
    "recovery_report",
    "neighbor_cache_report",
    "pair_engine_report",
]


@dataclass(frozen=True)
class PopMetrics:
    """POP efficiency factors for one run (all in [0, 1] ideally)."""

    n_ranks: int
    runtime: float
    total_useful: float
    load_balance: float
    communication_efficiency: float
    parallel_efficiency: float
    computation_scalability: float
    global_efficiency: float

    @property
    def valid(self) -> bool:
        """True when every efficiency factor is a real number."""
        return all(
            math.isfinite(v)
            for v in (
                self.load_balance,
                self.communication_efficiency,
                self.parallel_efficiency,
                self.computation_scalability,
                self.global_efficiency,
            )
        )

    def row(self) -> str:
        """Tabular one-liner for benchmark reports."""
        return (
            f"{self.n_ranks:>6d}  LB={self.load_balance:5.3f}  "
            f"CommEff={self.communication_efficiency:5.3f}  "
            f"ParEff={self.parallel_efficiency:5.3f}  "
            f"CompScal={self.computation_scalability:5.3f}  "
            f"GlobalEff={self.global_efficiency:5.3f}"
        )


def compute_pop_metrics(
    tracer: Tracer,
    reference_useful_total: float | None = None,
    reference_ranks: int = 1,
) -> PopMetrics:
    """POP metrics of a trace.

    Parameters
    ----------
    reference_useful_total:
        Total useful time of the reference (base-scale) run.  When omitted
        Computation Scalability is 1 (the run is its own reference).
    reference_ranks:
        Unused in the ratio itself (total useful time already aggregates
        over ranks) but kept for report labelling symmetry.

    NaN-safe: empty traces and zero-duration traces return ``nan``
    efficiencies (``PopMetrics.valid`` is then ``False``) rather than
    raising.
    """
    ranks = tracer.ranks
    if not ranks:
        useful = np.zeros(0)
        runtime = 0.0
    else:
        useful = np.array(
            [tracer.time_in_state(r, State.USEFUL) for r in ranks]
        )
        runtime = tracer.runtime()
    max_useful = float(useful.max()) if useful.size else 0.0
    lb = float(useful.mean() / max_useful) if max_useful > 0.0 else math.nan
    comm_eff = max_useful / runtime if runtime > 0.0 else math.nan
    par_eff = lb * comm_eff
    total_useful = float(useful.sum()) if useful.size else 0.0
    if reference_useful_total is None:
        comp_scal = 1.0
    elif total_useful > 0.0:
        comp_scal = reference_useful_total / total_useful
    else:
        comp_scal = math.nan
    return PopMetrics(
        n_ranks=len(ranks),
        runtime=runtime,
        total_useful=total_useful,
        load_balance=lb,
        communication_efficiency=comm_eff,
        parallel_efficiency=par_eff,
        computation_scalability=comp_scal,
        global_efficiency=par_eff * comp_scal,
    )


def pool_overhead(tracer: Tracer, rank: int | None = None) -> dict[str, float]:
    """Shared-memory-pool overhead recorded by :mod:`repro.parallel`.

    Returns total seconds spent publishing/dispatching (``fan_out``) and
    awaiting/merging worker results (``reduce``), alongside ``useful``
    compute time, so benchmarks can report what fraction of a parallel
    phase is orchestration rather than SPH work.
    """
    ranks = tracer.ranks if rank is None else [rank]
    out = {"fan_out": 0.0, "reduce": 0.0, "useful": 0.0}
    for r in ranks:
        out["fan_out"] += tracer.time_in_state(r, State.FAN_OUT)
        out["reduce"] += tracer.time_in_state(r, State.REDUCE)
        out["useful"] += tracer.time_in_state(r, State.USEFUL)
    return out


def recovery_overhead(tracer: Tracer, rank: int | None = None) -> dict[str, float]:
    """Fault-recovery cost recorded by the supervised pool.

    ``recovery`` aggregates the ``State.RECOVERY`` intervals the
    supervisor records around worker respawns; ``fraction`` relates it to
    the trace runtime, so resilience benchmarks can quote the price of
    surviving the injected faults.
    """
    ranks = tracer.ranks if rank is None else [rank]
    recovery = sum(tracer.time_in_state(r, State.RECOVERY) for r in ranks)
    runtime = tracer.runtime()
    return {
        "recovery": recovery,
        "runtime": runtime,
        "fraction": recovery / runtime if runtime > 0 else 0.0,
    }


def recovery_report(stats) -> str:
    """Deprecated: use :func:`repro.observability.report.format_recovery`
    (or ``Simulation.report().summary()``).

    ``stats`` is a :class:`~repro.parallel.supervisor.SupervisorStats`
    (duck-typed so profiling does not import the parallel package).
    """
    from ..observability.deprecation import warn_once
    from ..observability.report import format_recovery

    warn_once(
        "profiling.metrics.recovery_report",
        "recovery_report() is deprecated; use "
        "repro.observability.report.format_recovery or Simulation.report()",
    )
    return format_recovery(stats)


def neighbor_cache_report(stats) -> str:
    """Deprecated: use :func:`repro.observability.report
    .format_neighbor_cache` (or ``Simulation.report().summary()``).

    ``stats`` is a :class:`~repro.tree.neighborlist.VerletCacheStats`
    (duck-typed so profiling does not import the tree package).
    """
    from ..observability.deprecation import warn_once
    from ..observability.report import format_neighbor_cache

    warn_once(
        "profiling.metrics.neighbor_cache_report",
        "neighbor_cache_report() is deprecated; use "
        "repro.observability.report.format_neighbor_cache or "
        "Simulation.report()",
    )
    return format_neighbor_cache(stats)


def pair_engine_report(stats) -> str:
    """Deprecated: use :func:`repro.observability.report
    .format_pair_engine` (or ``Simulation.report().summary()``).

    ``stats`` is a :class:`~repro.sph.pair_engine.PairEngineStats`
    (duck-typed so profiling does not import the sph package).
    """
    from ..observability.deprecation import warn_once
    from ..observability.report import format_pair_engine

    warn_once(
        "profiling.metrics.pair_engine_report",
        "pair_engine_report() is deprecated; use "
        "repro.observability.report.format_pair_engine or "
        "Simulation.report()",
    )
    return format_pair_engine(stats)
