"""POP efficiency metrics (Section 5.2).

"Load Balance is computed as the ratio between average useful computation
time (across all processes) and maximum useful computation time (also
across all processes)" — the paper uses the POP CoE hierarchy:

    Global Efficiency    = Parallel Efficiency x Computation Scalability
    Parallel Efficiency  = Load Balance x Communication Efficiency
    Load Balance         = mean(useful) / max(useful)
    Communication Eff.   = max(useful) / runtime
    Computation Scal.    = total useful (reference) / total useful (scaled)

All metrics are functions of a :class:`~repro.profiling.trace.Tracer`;
Computation Scalability additionally needs the reference (smallest-scale)
run's total useful time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .trace import State, Tracer

__all__ = [
    "PopMetrics",
    "compute_pop_metrics",
    "pool_overhead",
    "recovery_overhead",
    "recovery_report",
    "neighbor_cache_report",
    "pair_engine_report",
]


@dataclass(frozen=True)
class PopMetrics:
    """POP efficiency factors for one run (all in [0, 1] ideally)."""

    n_ranks: int
    runtime: float
    total_useful: float
    load_balance: float
    communication_efficiency: float
    parallel_efficiency: float
    computation_scalability: float
    global_efficiency: float

    def row(self) -> str:
        """Tabular one-liner for benchmark reports."""
        return (
            f"{self.n_ranks:>6d}  LB={self.load_balance:5.3f}  "
            f"CommEff={self.communication_efficiency:5.3f}  "
            f"ParEff={self.parallel_efficiency:5.3f}  "
            f"CompScal={self.computation_scalability:5.3f}  "
            f"GlobalEff={self.global_efficiency:5.3f}"
        )


def compute_pop_metrics(
    tracer: Tracer,
    reference_useful_total: float | None = None,
    reference_ranks: int = 1,
) -> PopMetrics:
    """POP metrics of a trace.

    Parameters
    ----------
    reference_useful_total:
        Total useful time of the reference (base-scale) run.  When omitted
        Computation Scalability is 1 (the run is its own reference).
    reference_ranks:
        Unused in the ratio itself (total useful time already aggregates
        over ranks) but kept for report labelling symmetry.
    """
    ranks = tracer.ranks
    if not ranks:
        raise ValueError("cannot compute POP metrics of an empty trace")
    useful = np.array([tracer.time_in_state(r, State.USEFUL) for r in ranks])
    runtime = tracer.runtime()
    if runtime <= 0.0:
        raise ValueError("trace has zero runtime")
    max_useful = float(useful.max())
    lb = float(useful.mean() / max_useful) if max_useful > 0 else 1.0
    comm_eff = max_useful / runtime
    par_eff = lb * comm_eff
    total_useful = float(useful.sum())
    if reference_useful_total is None:
        comp_scal = 1.0
    else:
        comp_scal = reference_useful_total / total_useful if total_useful > 0 else 0.0
    return PopMetrics(
        n_ranks=len(ranks),
        runtime=runtime,
        total_useful=total_useful,
        load_balance=lb,
        communication_efficiency=comm_eff,
        parallel_efficiency=par_eff,
        computation_scalability=comp_scal,
        global_efficiency=par_eff * comp_scal,
    )


def pool_overhead(tracer: Tracer, rank: int | None = None) -> dict[str, float]:
    """Shared-memory-pool overhead recorded by :mod:`repro.parallel`.

    Returns total seconds spent publishing/dispatching (``fan_out``) and
    awaiting/merging worker results (``reduce``), alongside ``useful``
    compute time, so benchmarks can report what fraction of a parallel
    phase is orchestration rather than SPH work.
    """
    ranks = tracer.ranks if rank is None else [rank]
    out = {"fan_out": 0.0, "reduce": 0.0, "useful": 0.0}
    for r in ranks:
        out["fan_out"] += tracer.time_in_state(r, State.FAN_OUT)
        out["reduce"] += tracer.time_in_state(r, State.REDUCE)
        out["useful"] += tracer.time_in_state(r, State.USEFUL)
    return out


def recovery_overhead(tracer: Tracer, rank: int | None = None) -> dict[str, float]:
    """Fault-recovery cost recorded by the supervised pool.

    ``recovery`` aggregates the ``State.RECOVERY`` intervals the
    supervisor records around worker respawns; ``fraction`` relates it to
    the trace runtime, so resilience benchmarks can quote the price of
    surviving the injected faults.
    """
    ranks = tracer.ranks if rank is None else [rank]
    recovery = sum(tracer.time_in_state(r, State.RECOVERY) for r in ranks)
    runtime = tracer.runtime()
    return {
        "recovery": recovery,
        "runtime": runtime,
        "fraction": recovery / runtime if runtime > 0 else 0.0,
    }


def recovery_report(stats) -> str:
    """One-line report of a supervised run's fault handling.

    ``stats`` is a :class:`~repro.parallel.supervisor.SupervisorStats`
    (duck-typed so profiling does not import the parallel package).
    """
    return (
        f"recovery: crashes={stats.crashes} hangs={stats.hangs} "
        f"respawns={stats.respawns} reissues={stats.reissues} "
        f"late-discarded={stats.late_replies_discarded} "
        f"serial-fallbacks={stats.serial_fallbacks} "
        f"sdc={stats.sdc_detected} degraded={stats.degraded}"
    )


def neighbor_cache_report(stats) -> str:
    """One-line report of a Verlet-cache run (hit rate + invalidations).

    ``stats`` is a :class:`~repro.tree.neighborlist.VerletCacheStats`
    (duck-typed so profiling does not import the tree package).
    """
    return (
        f"neighbor-cache: hit_rate={stats.hit_rate:5.3f} "
        f"(hits={stats.hits}, builds={stats.builds}, "
        f"invalidated: displacement={stats.misses_displacement}, "
        f"h-change={stats.misses_h_change}, cold/shape={stats.misses_shape})"
    )


def pair_engine_report(stats) -> str:
    """One-line report of the pair-geometry engine's reuse behaviour.

    ``stats`` is a :class:`~repro.sph.pair_engine.PairEngineStats`
    (duck-typed so profiling does not import the sph package).
    """
    geo = stats.geometry_computes + stats.geometry_reuses
    prod = stats.product_computes + stats.product_reuses
    byt = stats.bytes_allocated + stats.bytes_reused
    return (
        f"pair-engine: geometry {stats.geometry_reuses}/{geo} reused, "
        f"products {stats.product_reuses}/{prod} reused, "
        f"scratch {stats.bytes_reused / byt if byt else 0.0:5.3f} "
        f"served in place ({stats.bytes_allocated} B allocated, "
        f"{stats.bytes_reused} B reused)"
    )
