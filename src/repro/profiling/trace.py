"""Extrae-like execution tracing.

Figure 4 of the paper is a Paraver view of an Extrae trace: per
(rank, thread) rows of colored states — computing (blue), MPI collective
(orange), thread synchronization (red), fork/join (yellow), idle (black) —
with the phases of Algorithm 1 labelled A-J.  This module records exactly
that information: timestamped, phase-labelled state intervals per rank and
thread.  Serial runs fill it with wall-clock timings; the simulated
cluster fills it with modelled times.  The POP metrics (Section 5.2) and
the timeline renderer both consume this one structure.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from enum import Enum
from typing import ContextManager, Dict, Iterator, List, Tuple

__all__ = ["State", "TraceEvent", "Tracer"]


class State(Enum):
    """Execution states, matching the Figure 4 color legend.

    ``FAN_OUT`` and ``REDUCE`` extend the legend for the shared-memory
    process pool (:mod:`repro.parallel`): publishing state to the workers
    / dispatching tasks, and waiting for + merging their partial results.
    ``RECOVERY`` marks fault-tolerance work — respawning crashed workers
    and re-issuing lost chunks (:mod:`repro.parallel.supervisor`).
    """

    USEFUL = "useful"  # blue: computing phases
    MPI = "mpi"  # orange: MPI (collective) communication
    SYNC = "sync"  # red: thread synchronization
    FORK_JOIN = "fork-join"  # yellow: thread fork/join
    IDLE = "idle"  # black: idle threads
    FAN_OUT = "pool-fan-out"  # pool: publish shared arrays + dispatch tasks
    REDUCE = "pool-reduce"  # pool: await workers + merge partial results
    RECOVERY = "recovery"  # supervisor: respawn workers, re-issue lost work
    STEP = "step"  # observability: whole-step container span (not exclusive)


@dataclass(frozen=True)
class TraceEvent:
    """One state interval on one (rank, thread) row.

    ``step``, ``depth`` and ``label`` are span attribution added by the
    observability layer (:mod:`repro.observability`): the driver step the
    interval belongs to (``-1`` when unattributed), the nesting depth on
    the event's row (step container = 0; phase spans and merged worker
    chunk spans = 1; deeper nesting as recorded) and an optional
    free-form detail label (e.g. ``density[0:512)``).  The
    modeled-cluster path leaves them at their defaults.
    """

    rank: int
    thread: int
    phase: str  # Algorithm-1 phase letter "A".."J" (or a custom label)
    state: State
    start: float
    duration: float
    step: int = -1
    depth: int = 0
    label: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass
class Tracer:
    """Append-only event collector with per-(rank, thread) clocks."""

    events: List[TraceEvent] = field(default_factory=list)
    _clocks: Dict[Tuple[int, int], float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Modeled-time interface (simulated cluster)
    # ------------------------------------------------------------------
    def record(
        self,
        rank: int,
        phase: str,
        state: State,
        duration: float,
        thread: int = 0,
        start: float | None = None,
    ) -> TraceEvent:
        """Record an interval; ``start`` defaults to the row's clock, and
        the clock advances to the interval's end."""
        if duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        key = (rank, thread)
        if start is None:
            start = self._clocks.get(key, 0.0)
        event = TraceEvent(rank, thread, phase, state, start, duration)
        self.events.append(event)
        self._clocks[key] = max(self._clocks.get(key, 0.0), event.end)
        return event

    def advance_to(self, rank: int, t: float, thread: int = 0) -> None:
        """Move a row's clock forward (e.g. to a barrier release time)."""
        key = (rank, thread)
        self._clocks[key] = max(self._clocks.get(key, 0.0), t)

    def clock(self, rank: int, thread: int = 0) -> float:
        return self._clocks.get((rank, thread), 0.0)

    # ------------------------------------------------------------------
    # Wall-clock interface (serial driver)
    # ------------------------------------------------------------------
    @contextmanager
    def phase(
        self,
        phase: str,
        state: State = State.USEFUL,
        rank: int = 0,
        thread: int = 0,
    ) -> Iterator[None]:
        """Context manager measuring a phase with ``perf_counter``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(rank, phase, state, time.perf_counter() - t0, thread)

    # ------------------------------------------------------------------
    # Observability hooks (no-ops here; repro.observability overrides)
    # ------------------------------------------------------------------
    def set_step(self, index: int) -> None:
        """Declare the driver step subsequent intervals belong to."""

    def step_span(self, index: int, rank: int = 0) -> ContextManager[None]:
        """Container span wrapping one whole driver step."""
        return nullcontext()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def ranks(self) -> List[int]:
        return sorted({e.rank for e in self.events})

    def runtime(self) -> float:
        """Trace end time (max event end over all rows)."""
        return max((e.end for e in self.events), default=0.0)

    def time_in_state(self, rank: int, state: State) -> float:
        """Total time rank spent in a state (all threads, all phases)."""
        return sum(
            e.duration for e in self.events if e.rank == rank and e.state is state
        )

    def time_in_phase(self, phase: str, rank: int | None = None) -> float:
        """Total time in a phase, optionally restricted to one rank."""
        return sum(
            e.duration
            for e in self.events
            if e.phase == phase and (rank is None or e.rank == rank)
        )

    def phase_letters(self) -> List[str]:
        """Distinct phase labels in first-appearance order."""
        seen: List[str] = []
        for e in self.events:
            if e.phase not in seen:
                seen.append(e.phase)
        return seen
