"""ASCII rendering of a trace — the Figure 4 reproduction.

Figure 4 shows per-(rank, thread) rows over time, colored by state, with
the Algorithm-1 phases A-J annotated.  On a terminal the states become
characters:

    # useful (blue)    M MPI (orange)    s sync (red)
    f fork/join (yellow)    . idle (black)

and a header line marks where each phase letter begins.  Each time bin
shows the state that dominates it.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .trace import State, TraceEvent, Tracer

__all__ = ["STATE_CHARS", "render_timeline"]

STATE_CHARS: Dict[State, str] = {
    State.USEFUL: "#",
    State.MPI: "M",
    State.SYNC: "s",
    State.FORK_JOIN: "f",
    State.IDLE: ".",
    State.FAN_OUT: "F",
    State.REDUCE: "R",
    State.RECOVERY: "!",
    State.STEP: " ",
}


def _bin_events(
    events: List[TraceEvent], t0: float, t1: float, width: int
) -> str:
    """Dominant-state character per time bin for one row of events."""
    if t1 <= t0:
        return " " * width
    edges = np.linspace(t0, t1, width + 1)
    # Accumulate per-bin occupancy per state.
    occupancy = {state: np.zeros(width) for state in State}
    for e in events:
        # STEP container spans overlap the exclusive states they wrap;
        # counting them would let the container dominate every bin.
        if e.duration <= 0.0 or e.state is State.STEP:
            continue
        lo = np.searchsorted(edges, e.start, side="right") - 1
        hi = np.searchsorted(edges, e.end, side="left")
        lo = max(lo, 0)
        hi = min(hi, width)
        for b in range(lo, hi):
            overlap = min(e.end, edges[b + 1]) - max(e.start, edges[b])
            if overlap > 0:
                occupancy[e.state][b] += overlap
    chars = []
    for b in range(width):
        best_state, best_val = None, 0.0
        for state in State:
            if occupancy[state][b] > best_val:
                best_state, best_val = state, occupancy[state][b]
        chars.append(STATE_CHARS[best_state] if best_state else " ")
    return "".join(chars)


def render_timeline(
    tracer: Tracer,
    width: int = 100,
    max_rows: int = 24,
    t0: float = 0.0,
    t1: float | None = None,
) -> str:
    """Render the trace as text (phases header + one line per row).

    ``max_rows`` caps the output for big runs; evenly-spaced rows are
    shown so both ends of the rank range stay visible (like zooming out
    in Paraver).
    """
    if t1 is None:
        t1 = tracer.runtime()
    rows = sorted({(e.rank, e.thread) for e in tracer.events})
    if not rows:
        return "(empty trace)"
    if len(rows) > max_rows:
        pick = np.unique(
            np.linspace(0, len(rows) - 1, max_rows).round().astype(int)
        )
        rows = [rows[i] for i in pick]

    # Phase header: letter at the bin where the phase first starts.
    header = [" "] * width
    seen = set()
    span = max(t1 - t0, 1e-300)
    for e in sorted(tracer.events, key=lambda e: e.start):
        if e.phase in seen or not e.phase:
            continue
        seen.add(e.phase)
        b = int((e.start - t0) / span * width)
        if 0 <= b < width and header[b] == " ":
            header[b] = e.phase[0]

    by_row: Dict[tuple, List[TraceEvent]] = {row: [] for row in rows}
    for e in tracer.events:
        key = (e.rank, e.thread)
        if key in by_row:
            by_row[key].append(e)

    label_w = max(len(f"r{r}t{t}") for r, t in rows)
    lines = [
        " " * (label_w + 2) + "".join(header),
        " " * (label_w + 2) + "-" * width,
    ]
    for row in rows:
        body = _bin_events(by_row[row], t0, t1, width)
        lines.append(f"r{row[0]}t{row[1]}".ljust(label_w) + "| " + body)
    legend = "  ".join(f"{c}={s.value}" for s, c in STATE_CHARS.items())
    lines.append("")
    lines.append(f"legend: {legend}")
    lines.append(f"span: [{t0:.4g}, {t1:.4g}] s")
    return "\n".join(lines)
