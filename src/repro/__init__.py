"""repro — SPH-EXA mini-app reproduction.

A Python reproduction of "Towards a Mini-App for Smoothed Particle
Hydrodynamics at Exascale" (Guerrera et al., CLUSTER 2018): the SPH-EXA
mini-app specified by Tables 2 and 4, the three parent-code presets
(SPHYNX, ChaNGa, SPH-flow), the two validation test cases (rotating
square patch, Evrard collapse), and the substrates the evaluation needs —
a simulated cluster with machine models of Piz Daint and MareNostrum 4,
domain decomposition, dynamic load balancing, fault tolerance and
Extrae-like tracing with POP metrics.

The public surface is :mod:`repro.api` — specs in, handles out::

    from repro import api

    handle = api.submit(api.JobSpec(scenario="sod", n_steps=50))
    outcome = handle.result()   # deduped: same spec twice runs once
    print(outcome.drift, outcome.result_digest)

The classic driver loop remains supported for library use::

    from repro import make_square_patch, Simulation, SPHYNX, SquarePatchConfig

    particles, box, eos = make_square_patch(SquarePatchConfig(side=20, layers=10))
    sim = Simulation(particles, box, eos, config=SPHYNX)
    sim.run(n_steps=5)
    print(sim.conservation_drift())

``__all__`` below is the supported import surface.  Everything else
(profiling, tree, IC helpers, POP metrics, ...) still imports from its
owning submodule — see the migration table in :mod:`repro.compat`.
"""

from .core import (
    CHANGA,
    PRESETS,
    SPH_EXA,
    SPHFLOW,
    SPHYNX,
    ConservationState,
    ParticleSystem,
    Phase,
    RunConfig,
    Simulation,
    SimulationConfig,
    StepStats,
    get_preset,
    measure_conservation,
    relative_drift,
)
from .observability import ObservabilityConfig, RunReport
from .ics import (
    EvrardConfig,
    SquarePatchConfig,
    make_evrard,
    make_square_patch,
)
from .kernels import available_kernels, make_kernel
from .profiling import PopMetrics, State, Tracer, compute_pop_metrics, render_timeline
from .scenarios import Scenario, all_scenarios, get_scenario, scenario_names
from .tree import Box, NeighborList, Octree, cell_grid_search

__version__ = "1.1.0"

#: The supported import surface, pruned to the PR-10 API redesign: the
#: service entry points (lazy — see ``__getattr__``), the driver loop,
#: the presets and the scenario registry.  The helper families that
#: used to ride along (profiling, tree, ICs, kernels) stay importable
#: as attributes for compatibility but are no longer advertised here.
__all__ = [
    "__version__",
    # Service / redesigned API (lazily imported)
    "api",
    "JobSpec",
    "submit",
    # Driver loop
    "Simulation",
    "SimulationConfig",
    "RunConfig",
    "StepStats",
    "ParticleSystem",
    "RunReport",
    "ObservabilityConfig",
    # Presets
    "SPHYNX",
    "CHANGA",
    "SPHFLOW",
    "SPH_EXA",
    "PRESETS",
    "get_preset",
    # Scenario registry
    "Scenario",
    "get_scenario",
    "all_scenarios",
    "scenario_names",
]

#: Lazily-resolved exports: ``repro.api`` pulls in asyncio/service
#: machinery that plain library users (``from repro import Simulation``)
#: should not pay for at import time.
_LAZY = {"api", "JobSpec", "submit"}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        _api = importlib.import_module(".api", __name__)
        if name == "api":
            return _api
        return getattr(_api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list:
    return sorted(set(globals()) | _LAZY)
