"""repro — SPH-EXA mini-app reproduction.

A Python reproduction of "Towards a Mini-App for Smoothed Particle
Hydrodynamics at Exascale" (Guerrera et al., CLUSTER 2018): the SPH-EXA
mini-app specified by Tables 2 and 4, the three parent-code presets
(SPHYNX, ChaNGa, SPH-flow), the two validation test cases (rotating
square patch, Evrard collapse), and the substrates the evaluation needs —
a simulated cluster with machine models of Piz Daint and MareNostrum 4,
domain decomposition, dynamic load balancing, fault tolerance and
Extrae-like tracing with POP metrics.

Quick start::

    from repro import make_square_patch, Simulation, SPHYNX, SquarePatchConfig

    particles, box, eos = make_square_patch(SquarePatchConfig(side=20, layers=10))
    sim = Simulation(particles, box, eos, config=SPHYNX)
    sim.run(n_steps=5)
    print(sim.conservation_drift())
"""

from .core import (
    CHANGA,
    PRESETS,
    SPH_EXA,
    SPHFLOW,
    SPHYNX,
    ConservationState,
    ParticleSystem,
    Phase,
    RunConfig,
    Simulation,
    SimulationConfig,
    StepStats,
    get_preset,
    measure_conservation,
    relative_drift,
)
from .observability import ObservabilityConfig, RunReport
from .ics import (
    EvrardConfig,
    SquarePatchConfig,
    make_evrard,
    make_square_patch,
)
from .kernels import available_kernels, make_kernel
from .profiling import PopMetrics, State, Tracer, compute_pop_metrics, render_timeline
from .scenarios import Scenario, all_scenarios, get_scenario, scenario_names
from .tree import Box, NeighborList, Octree, cell_grid_search

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ParticleSystem",
    "Simulation",
    "SimulationConfig",
    "RunConfig",
    "ObservabilityConfig",
    "RunReport",
    "StepStats",
    "Phase",
    "ConservationState",
    "measure_conservation",
    "relative_drift",
    "SPHYNX",
    "CHANGA",
    "SPHFLOW",
    "SPH_EXA",
    "PRESETS",
    "get_preset",
    "EvrardConfig",
    "SquarePatchConfig",
    "make_evrard",
    "make_square_patch",
    "make_kernel",
    "available_kernels",
    "Scenario",
    "get_scenario",
    "all_scenarios",
    "scenario_names",
    "Box",
    "NeighborList",
    "Octree",
    "cell_grid_search",
    "Tracer",
    "State",
    "PopMetrics",
    "compute_pop_metrics",
    "render_timeline",
]
