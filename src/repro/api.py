"""The public API: specs in, handles and outcomes out.

This module is the one import an application needs::

    from repro import api

    handle = api.submit(api.JobSpec(scenario="sod", n_steps=50))
    outcome = handle.result()          # JobOutcome: report + digests
    for event in handle.events():      # replay + live progress stream
        print(event.type, event.payload)

``submit`` goes through the shared in-process service — an asyncio job
manager with a content-addressed result cache, so submitting the same
spec twice runs one simulation and serves the second from the store.
``run`` is the synchronous wrapper over the *same* spec → simulation →
outcome path (no queue, no cache) — by construction it produces the
same deterministic report as a service execution of the same spec.

The classic driver loop — ``Simulation``/``RunConfig`` and friends —
remains fully supported for library use and is re-exported here;
:mod:`repro.compat` documents the deprecated spellings.

The default service runs jobs inline (thread slots, no isolation
overhead) with an in-memory store; :func:`configure_service` swaps in
process isolation and/or a durable store path before first use.
"""

from __future__ import annotations

import atexit
import threading
from typing import Any, Dict, List, Optional

from .core.config import RunConfig
from .core.simulation import RunCancelled, Simulation
from .service.manager import (
    JobCancelledError,
    JobError,
    JobFailedError,
    JobState,
    LocalService,
    ServiceConfig,
    SyncJobHandle,
)
from .service.queue import QueueFullError
from .service.runner import JobOutcome, execute_spec
from .service.spec import JobSpec, SpecError

__all__ = [
    # Spec & outcomes
    "JobSpec",
    "SpecError",
    "JobOutcome",
    "JobState",
    # Service surface
    "submit",
    "run",
    "service",
    "configure_service",
    "shutdown_service",
    "jobs",
    "stats",
    "QueueFullError",
    "JobError",
    "JobFailedError",
    "JobCancelledError",
    "SyncJobHandle",
    "ServiceConfig",
    "LocalService",
    # Classic driver loop
    "Simulation",
    "RunConfig",
    "RunCancelled",
]

_lock = threading.Lock()
_service: Optional[LocalService] = None
_service_config: Optional[ServiceConfig] = None


def configure_service(config: ServiceConfig) -> None:
    """Set the config the module-level service will be built with.

    Must be called before the first :func:`submit`; afterwards it
    raises (close the running service first with
    :func:`shutdown_service`).
    """
    global _service_config
    with _lock:
        if _service is not None:
            raise RuntimeError(
                "service already started; call shutdown_service() first"
            )
        _service_config = config


def service() -> LocalService:
    """The lazily-started module-level service."""
    global _service
    with _lock:
        if _service is None:
            config = _service_config or ServiceConfig(isolation="inline")
            _service = LocalService(config)
        return _service


def shutdown_service() -> None:
    """Stop the module-level service (idempotent)."""
    global _service
    with _lock:
        if _service is not None:
            _service.close()
            _service = None


atexit.register(shutdown_service)


def submit(
    spec: JobSpec, *, tenant: str = "api", **spec_kwargs: Any
) -> SyncJobHandle:
    """Submit a job; returns a handle with ``result()``/``events()``.

    Accepts either a ready :class:`JobSpec` or a scenario name plus
    keyword fields: ``submit(JobSpec("sod"))`` and
    ``submit("sod", n_steps=50)`` are equivalent.
    """
    if isinstance(spec, str):
        spec = JobSpec(scenario=spec, **spec_kwargs)
    elif spec_kwargs:
        spec = spec.with_(**spec_kwargs)
    return service().submit(spec, tenant=tenant)


def run(spec: JobSpec, **spec_kwargs: Any) -> JobOutcome:
    """Run a spec synchronously — no queue, no cache, same outcome.

    This is the one-shot path (`repro run` uses it too): it calls the
    same :func:`~repro.service.runner.execute_spec` the service's
    worker slots call, so the resulting report and digests are
    identical to what :func:`submit` would produce for the same spec.
    """
    if isinstance(spec, str):
        spec = JobSpec(scenario=spec, **spec_kwargs)
    elif spec_kwargs:
        spec = spec.with_(**spec_kwargs)
    return execute_spec(spec)


def jobs() -> List[Dict[str, Any]]:
    """Snapshot of the module-level service's job table."""
    return service().jobs()


def stats() -> Dict[str, Any]:
    """The module-level service's counters (cache hits, rejects, ...)."""
    return service().stats()
