"""Observability knobs (part of the consolidated :class:`RunConfig`)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["ObservabilityConfig"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Instrumentation policy for one :class:`~repro.core.simulation.Simulation`.

    Parameters
    ----------
    enabled:
        ``True`` (default) gives the driver a :class:`~repro.observability
        .tracer.SpanTracer` recording wall-clock phase spans; ``False``
        installs the no-op :class:`~repro.observability.tracer.NullTracer`
        (every instrumentation call collapses to a constant — the
        tracing-off path adds no per-pair allocations and ~0 time).
    worker_spans:
        Merge the spans pool workers record into their result envelopes
        back into the driver's tracer (one timeline row per worker slot).
        Ignored when ``enabled`` is off or the run is serial.
    max_events:
        Soft cap on retained span events; once reached, further spans are
        counted in ``Tracer.dropped`` instead of stored, bounding memory
        on very long runs.
    chrome_trace_path:
        When set, :meth:`Simulation.close` exports the merged timeline as
        Chrome ``trace_event`` JSON (Perfetto-loadable) to this path.
    jsonl_path:
        When set, :meth:`Simulation.close` exports one JSON span per line
        to this path (the benchmark-harness format).
    ledger_path:
        When set, :meth:`Simulation.close` appends a run summary (phase
        aggregates, POP metrics, resolved knobs, step-time percentiles,
        recovery counters) to the durable
        :class:`~repro.observability.ledger.RunLedger` at this path —
        the history the autotuner warm-starts from on later runs.
    """

    enabled: bool = True
    worker_spans: bool = True
    max_events: int = 1_000_000
    chrome_trace_path: Optional[str] = None
    jsonl_path: Optional[str] = None
    ledger_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {self.max_events}")

    def with_(self, **kwargs) -> "ObservabilityConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)
