"""One namespace for every counter the execution paths grow.

Before this module the driver's stats surface was fragmented: pair-engine
counters on :class:`~repro.sph.pair_engine.PairEngineStats`, Verlet-cache
hit/miss on :class:`~repro.tree.neighborlist.VerletCacheStats`, recovery
counters on :class:`~repro.parallel.supervisor.SupervisorStats`, each
with its own accessor.  A :class:`MetricsRegistry` absorbs them all under
dotted names (``pair_engine.geometry_reuses``,
``neighbor_cache.hits``, ``recovery.respawns``, ``checkpoint.writes``),
which is what :class:`~repro.observability.report.RunReport` and the
JSONL exporter serialize.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

__all__ = ["MetricsRegistry"]

Number = Union[int, float]


class MetricsRegistry:
    """Flat, dotted-name numeric counters (insertion-order preserved)."""

    def __init__(self) -> None:
        self._values: Dict[str, Number] = {}

    # ------------------------------------------------------------------
    def add(self, name: str, value: Number = 1) -> None:
        """Accumulate ``value`` onto counter ``name`` (created at 0)."""
        self._values[name] = self._values.get(name, 0) + value

    def set(self, name: str, value: Number) -> None:
        """Overwrite counter ``name`` (gauges: last write wins)."""
        self._values[name] = value

    def absorb(self, namespace: str, stats: object) -> None:
        """Fold a stats mapping/dataclass in under ``namespace.*``.

        ``stats`` may be a mapping or any object with an ``as_dict``
        method.  Booleans become 0/1; non-numeric values (event lists,
        strings) are skipped — the registry is numbers only.
        """
        if stats is None:
            return
        if not isinstance(stats, Mapping):
            as_dict = getattr(stats, "as_dict", None)
            if as_dict is None:
                raise TypeError(
                    f"cannot absorb {type(stats).__name__}: "
                    "need a mapping or an as_dict()"
                )
            stats = as_dict()
        for key, value in stats.items():
            if isinstance(value, bool):
                value = int(value)
            if isinstance(value, (int, float)):
                self.set(f"{namespace}.{key}", value)

    # ------------------------------------------------------------------
    def get(self, name: str, default: Number = 0) -> Number:
        return self._values.get(name, default)

    def subset(self, prefix: str) -> Dict[str, Number]:
        """All counters under ``prefix.`` with the prefix stripped."""
        cut = len(prefix) + 1
        return {
            name[cut:]: value
            for name, value in self._values.items()
            if name.startswith(prefix + ".")
        }

    def as_dict(self) -> Dict[str, Number]:
        """Plain dict copy (JSON-serializable when values are)."""
        return dict(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({self._values!r})"
