"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome format (one ``"X"`` complete event per span, microsecond
timestamps) loads directly in Perfetto or ``chrome://tracing`` — the
modern stand-in for the paper's Paraver screenshots.  Rows map as
``pid = rank`` and ``tid = thread`` (thread 0 is the driver, thread
``k + 1`` is pool-worker slot ``k``), with metadata events naming them.

The JSONL format is one flat JSON object per span — what the benchmark
harness and ad-hoc pandas analysis consume.

Both exporters accept a tracer or a bare event list, so simulated-cluster
traces and measured driver/pool traces go through the same pipeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Union

from ..profiling.trace import TraceEvent, Tracer

__all__ = ["to_chrome_trace", "write_chrome_trace", "to_jsonl", "write_jsonl"]

_US = 1e6  # seconds -> microseconds (the trace_event unit)


def _events(source: Union[Tracer, Sequence[TraceEvent]]) -> Sequence[TraceEvent]:
    return source.events if isinstance(source, Tracer) else source


def _row_name(thread: int) -> str:
    return "driver" if thread == 0 else f"worker {thread - 1}"


def to_chrome_trace(
    source: Union[Tracer, Sequence[TraceEvent]],
) -> Dict[str, object]:
    """Chrome ``trace_event`` document (JSON-serializable dict)."""
    events = _events(source)
    trace_events: List[Dict[str, object]] = []
    seen_rows = set()
    for e in events:
        row = (e.rank, e.thread)
        if row not in seen_rows:
            seen_rows.add(row)
            if e.thread == 0:
                trace_events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": e.rank,
                        "tid": 0,
                        "args": {"name": f"rank {e.rank}"},
                    }
                )
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": e.rank,
                    "tid": e.thread,
                    "args": {"name": _row_name(e.thread)},
                }
            )
        trace_events.append(
            {
                "name": e.label or e.phase,
                "cat": e.state.value,
                "ph": "X",
                "ts": e.start * _US,
                "dur": e.duration * _US,
                "pid": e.rank,
                "tid": e.thread,
                "args": {"phase": e.phase, "step": e.step, "depth": e.depth},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: Union[str, Path], source: Union[Tracer, Sequence[TraceEvent]]
) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(source)))
    return path


def to_jsonl(source: Union[Tracer, Sequence[TraceEvent]]) -> Iterable[str]:
    """One flat JSON object per span (generator of lines, no newlines)."""
    for e in _events(source):
        yield json.dumps(
            {
                "rank": e.rank,
                "thread": e.thread,
                "phase": e.phase,
                "state": e.state.value,
                "start": e.start,
                "duration": e.duration,
                "step": e.step,
                "depth": e.depth,
                "label": e.label,
            }
        )


def write_jsonl(
    path: Union[str, Path], source: Union[Tracer, Sequence[TraceEvent]]
) -> Path:
    """Write :func:`to_jsonl` lines to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        for line in to_jsonl(source):
            f.write(line + "\n")
    return path
