"""The consolidated run report behind ``Simulation.report()``.

One typed, dict-convertible object replaces the four ad-hoc stats
accessors that accreted on the driver (``pair_engine_stats``,
``neighbor_cache_stats``, ``supervisor_stats`` + the
``profiling.metrics`` one-line formatters): every execution path's
counters under one namespace, plus the POP efficiency metrics computed
from the measured span timeline.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..profiling.metrics import PopMetrics

__all__ = [
    "RunReport",
    "format_pair_engine",
    "format_neighbor_cache",
    "format_recovery",
    "format_tuning",
]


def _get(stats, key, default=0):
    """Read a field off a mapping or an attribute-style stats object."""
    if isinstance(stats, dict):
        return stats.get(key, default)
    return getattr(stats, key, default)


@dataclass(frozen=True)
class RunReport:
    """Everything one finished (or in-flight) run can tell about itself.

    Sections that do not apply to the run's configuration are ``None``
    (e.g. ``neighbor_cache`` on a cache-off run); ``counters`` flattens
    every present section into dotted :class:`~repro.observability
    .registry.MetricsRegistry` names.
    """

    steps: int
    time: float
    n_particles: int
    pair_engine: Dict[str, int]
    neighbor_cache: Optional[Dict[str, float]] = None
    recovery: Optional[Dict[str, float]] = None
    checkpoint: Optional[Dict[str, float]] = None
    #: Step-guard activity (a ``repro.resilience.guard.GuardReport`` —
    #: duck-typed here to keep observability import-free of resilience).
    guard: Optional[object] = None
    #: SdcMonitor totals when Table-4 error detection is enabled.
    sdc: Optional[Dict[str, int]] = None
    pop: Optional[PopMetrics] = None
    counters: Dict[str, float] = field(default_factory=dict)
    #: Execution-backend provenance: resolved name, compiled flag,
    #: toolchain version/detail and the originally requested name.
    backend: Optional[Dict[str, object]] = None
    #: Autotuner session: decision trail, recommendation, cost-model fit
    #: (``None`` on untuned runs).
    tuning: Optional[Dict[str, object]] = None

    def as_dict(self) -> Dict[str, object]:
        """Plain nested dict (JSON-serializable)."""
        out: Dict[str, object] = {
            "steps": self.steps,
            "time": self.time,
            "n_particles": self.n_particles,
            "pair_engine": dict(self.pair_engine),
            "neighbor_cache": (
                dict(self.neighbor_cache) if self.neighbor_cache else None
            ),
            "recovery": dict(self.recovery) if self.recovery else None,
            "checkpoint": dict(self.checkpoint) if self.checkpoint else None,
            "guard": (
                self.guard.as_dict() if self.guard is not None else None
            ),
            "sdc": dict(self.sdc) if self.sdc else None,
            "pop": asdict(self.pop) if self.pop is not None else None,
            "counters": dict(self.counters),
            "backend": dict(self.backend) if self.backend else None,
            "tuning": dict(self.tuning) if self.tuning else None,
        }
        return out

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"run: steps={self.steps} t={self.time:.6g} "
            f"n_particles={self.n_particles}"
        ]
        if self.backend is not None:
            lines.append(
                f"backend: {self.backend.get('name', '?')} "
                f"(requested={self.backend.get('requested', '?')}, "
                f"{self.backend.get('version', '?')})"
            )
        lines.append(format_pair_engine(self.pair_engine))
        if self.neighbor_cache is not None:
            lines.append(format_neighbor_cache(self.neighbor_cache))
        if self.recovery is not None:
            lines.append(format_recovery(self.recovery))
        if self.checkpoint is not None:
            lines.append(
                f"checkpoint: writes={self.checkpoint.get('writes', 0)} "
                f"last_write={self.checkpoint.get('last_write_seconds', 0.0):.4f}s"
            )
        if self.guard is not None:
            lines.append(self.guard.summary())
        if self.sdc is not None:
            lines.append(
                f"sdc: checks={self.sdc.get('checks_run', 0)} "
                f"detections={self.sdc.get('detections', 0)} "
                f"findings={self.sdc.get('findings', 0)}"
            )
        if self.pop is not None:
            lines.append(self.pop.row().strip())
        if self.tuning is not None:
            lines.append(format_tuning(self.tuning))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# One-line formatters (accept dicts or the legacy stats dataclasses)
# ----------------------------------------------------------------------
def format_pair_engine(stats) -> str:
    """One-line report of the pair-geometry engine's reuse behaviour."""
    computes = _get(stats, "geometry_computes")
    reuses = _get(stats, "geometry_reuses")
    prod_c = _get(stats, "product_computes")
    prod_r = _get(stats, "product_reuses")
    alloc = _get(stats, "bytes_allocated")
    reused = _get(stats, "bytes_reused")
    geo = computes + reuses
    prod = prod_c + prod_r
    byt = alloc + reused
    return (
        f"pair-engine: geometry {reuses}/{geo} reused, "
        f"products {prod_r}/{prod} reused, "
        f"scratch {reused / byt if byt else 0.0:5.3f} "
        f"served in place ({alloc} B allocated, {reused} B reused)"
    )


def format_neighbor_cache(stats) -> str:
    """One-line report of a Verlet-cache run (hit rate + invalidations)."""
    hits = _get(stats, "hits")
    builds = _get(stats, "builds")
    m_disp = _get(stats, "misses_displacement")
    m_h = _get(stats, "misses_h_change")
    m_shape = _get(stats, "misses_shape")
    lookups = hits + m_disp + m_h + m_shape
    hit_rate = _get(stats, "hit_rate", hits / lookups if lookups else 0.0)
    return (
        f"neighbor-cache: hit_rate={hit_rate:5.3f} "
        f"(hits={hits}, builds={builds}, "
        f"invalidated: displacement={m_disp}, "
        f"h-change={m_h}, cold/shape={m_shape})"
    )


def format_tuning(stats) -> str:
    """One-line report of an autotuned run's outcome."""
    rec = _get(stats, "recommendation", {}) or {}
    best = _get(stats, "best_step_s", None)
    best_s = f"{best * 1e3:.1f} ms/step" if best else "unmeasured"
    knobs = ", ".join(f"{k}={rec[k]}" for k in sorted(rec))
    return (
        f"tuning: converged_step={_get(stats, 'converged_step')} "
        f"explored={_get(stats, 'explored_steps')} steps, "
        f"best {best_s} with {knobs or 'baseline knobs'}"
    )


def format_recovery(stats) -> str:
    """One-line report of a supervised run's fault handling."""
    return (
        f"recovery: crashes={_get(stats, 'crashes')} "
        f"hangs={_get(stats, 'hangs')} "
        f"respawns={_get(stats, 'respawns')} "
        f"reissues={_get(stats, 'reissues')} "
        f"late-discarded={_get(stats, 'late_replies_discarded')} "
        f"serial-fallbacks={_get(stats, 'serial_fallbacks')} "
        f"sdc={_get(stats, 'sdc_detected')} "
        f"degraded={bool(_get(stats, 'degraded'))}"
    )
