"""POP efficiency metrics from *measured* spans (Section 5.2, for real).

:func:`repro.profiling.metrics.compute_pop_metrics` reads per-rank state
sums off a modeled-cluster trace.  This module computes the same POP
hierarchy from any span list — including the merged driver + pool-worker
timelines the observability layer records on real executions — and is
NaN-safe: an empty or zero-duration trace yields ``nan`` efficiencies
instead of raising, so report pipelines never trip over a run that was
too short to measure.

Row model: load balance is computed across ``(rank, thread)`` rows that
performed any useful work (for the simulated cluster that degenerates to
the per-rank definition the paper uses; for a pool run the rows are the
driver and each worker slot).  ``State.STEP`` container spans never count
as useful but do extend the runtime envelope.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple, Union

from ..profiling.metrics import PopMetrics
from ..profiling.trace import State, TraceEvent, Tracer

__all__ = ["pop_from_events"]


def pop_from_events(
    source: Union[Tracer, Sequence[TraceEvent]],
    reference_useful_total: Optional[float] = None,
) -> PopMetrics:
    """POP efficiency hierarchy of a measured (or modeled) span list.

    Parameters
    ----------
    source:
        A tracer or bare event sequence.  Worker spans merged by the
        parallel engine appear as their own rows, so a ``workers=N`` run
        yields an ``N + 1``-row load balance.
    reference_useful_total:
        Total useful seconds of the reference-scale run; when omitted the
        run is its own reference (computation scalability 1).

    Returns NaN efficiencies (never raises) for empty/zero-length input.
    """
    events = source.events if isinstance(source, Tracer) else source
    useful: Dict[Tuple[int, int], float] = {}
    t_min = math.inf
    t_max = -math.inf
    for e in events:
        t_min = min(t_min, e.start)
        t_max = max(t_max, e.end)
        if e.state is State.USEFUL:
            row = (e.rank, e.thread)
            useful[row] = useful.get(row, 0.0) + e.duration
    runtime = (t_max - t_min) if t_max > t_min else 0.0
    n_rows = len(useful)
    total_useful = sum(useful.values())
    max_useful = max(useful.values(), default=0.0)
    lb = (total_useful / n_rows) / max_useful if max_useful > 0.0 else math.nan
    comm_eff = max_useful / runtime if runtime > 0.0 else math.nan
    par_eff = lb * comm_eff
    if reference_useful_total is None:
        comp_scal = 1.0
    elif total_useful > 0.0:
        comp_scal = reference_useful_total / total_useful
    else:
        comp_scal = math.nan
    return PopMetrics(
        n_ranks=n_rows,
        runtime=runtime,
        total_useful=total_useful,
        load_balance=lb,
        communication_efficiency=comm_eff,
        parallel_efficiency=par_eff,
        computation_scalability=comp_scal,
        global_efficiency=par_eff * comp_scal,
    )
