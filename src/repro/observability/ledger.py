"""Durable run-history ledger: the persistence half of the observability loop.

Every instrumented subsystem in this codebase measures itself —
:class:`~repro.observability.tracer.SpanTracer` spans, measured POP
metrics, pair-engine/cache/recovery counters — but until now nothing
survived the process.  The ledger closes that gap: an append-only sqlite
store of per-run summaries, keyed by ``(scenario, n_particles, host,
backend, code version)``, that :meth:`repro.core.simulation.Simulation
.close` writes and the autotuner (:mod:`repro.tuning`) reads to
warm-start its cost model on the next run.

Design constraints, in order:

* **Durability.**  WAL journaling with a busy timeout, so concurrent
  appends from separate processes serialize instead of failing, and a
  torn write cannot take out previously committed rows.  A file that is
  corrupt beyond sqlite's own recovery (e.g. a truncated header from a
  torn copy) is quarantined to ``<path>.corrupt`` and a fresh ledger is
  started — history is an optimization, never a single point of failure.
* **Schema versioning.**  ``ledger_meta.schema_version`` stamps every
  file; opening an older file migrates it in place (v0 → v1 adds the
  ``recovery`` and ``extra`` columns).  Opening a *newer* file than this
  code understands raises, never silently misreads.
* **Self-describing rows.**  Structured fields (host fingerprint, knobs,
  per-phase aggregates, POP metrics, step-time percentiles) are stored
  as JSON text columns; the indexed key columns are plain scalars.

The host fingerprint also stamps benchmark JSON artifacts (via
``benchmarks/_scaling_common.py``) so regression gates can refuse
cross-host baseline comparisons the same way they refuse cross-backend
ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sqlite3
import time
import uuid
import warnings
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "host_fingerprint",
    "fingerprint_id",
    "code_version",
    "RunRecord",
    "RunLedger",
    "new_run_id",
    "record_from_simulation",
]

#: Current on-disk schema.  v0 (the first deployment) lacked the
#: ``recovery`` and ``extra`` columns; see :data:`_MIGRATIONS`.
SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# Host fingerprint + code version (the cross-run comparison keys)
# ----------------------------------------------------------------------
def host_fingerprint() -> Dict[str, object]:
    """What makes a timing from this host comparable to another one.

    Captures core count, platform triple, interpreter and the backend
    toolchain versions (a numba upgrade changes compiled-step timings as
    surely as a CPU swap does).  Deliberately excludes hostname and
    anything wall-clock-dependent so the fingerprint is stable across
    reboots of the same machine/image.
    """
    fp: Dict[str, object] = {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "impl": platform.python_implementation(),
    }
    import numpy

    fp["numpy"] = numpy.__version__
    for mod in ("numba", "cffi"):
        try:
            fp[mod] = __import__(mod).__version__
        except Exception:
            fp[mod] = None
    return fp


def fingerprint_id(fp: Optional[Dict[str, object]] = None) -> str:
    """Short stable digest of a host fingerprint (ledger/bench key)."""
    if fp is None:
        fp = host_fingerprint()
    blob = json.dumps(fp, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:12]


def code_version() -> str:
    """Short git commit of the running checkout, or ``"unknown"``.

    Resolved by reading ``.git/HEAD`` directly (no subprocess): ledger
    appends happen inside ``Simulation.close()`` and must never block on
    or fail from an external tool.
    """
    root = Path(__file__).resolve()
    for parent in root.parents:
        git = parent / ".git"
        if not git.is_dir():
            continue
        try:
            head = (git / "HEAD").read_text().strip()
            if head.startswith("ref:"):
                ref = git / head.split(None, 1)[1]
                if ref.exists():
                    return ref.read_text().strip()[:12]
                packed = git / "packed-refs"
                if packed.exists():
                    want = head.split(None, 1)[1]
                    for line in packed.read_text().splitlines():
                        if line.endswith(want):
                            return line.split()[0][:12]
                return "unknown"
            return head[:12]
        except OSError:
            return "unknown"
    return "unknown"


# ----------------------------------------------------------------------
# Row model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRecord:
    """One finished run's summary, as stored in (and read from) the ledger."""

    run_id: str
    created_s: float
    scenario: str
    n_particles: int
    n_steps: int
    host_id: str
    backend: str
    code_version: str
    host: Dict[str, object] = field(default_factory=dict)
    #: Resolved execution knobs (workers, chunks, cache, skin, pair
    #: engine, backend, checkpoint interval) — the autotuner's domain.
    knobs: Dict[str, object] = field(default_factory=dict)
    #: Per-phase span aggregates: letter -> {total_s, count, mean_s}.
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Measured POP efficiency metrics (None-able fields JSON-coerced).
    pop: Optional[Dict[str, float]] = None
    #: Whole-step wall-time percentiles: count/best_s/mean_s/p10/p50/p90.
    step_times: Dict[str, float] = field(default_factory=dict)
    #: Guard + supervisor + checkpoint recovery counters.
    recovery: Dict[str, float] = field(default_factory=dict)
    #: Anything else (e.g. the autotuner's decision trail).
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def step_p50(self) -> Optional[float]:
        """Median step seconds, the ledger's primary cost signal."""
        v = self.step_times.get("p50_s")
        return float(v) if v is not None else None


def new_run_id(scenario: str) -> str:
    """Unique, human-sortable run id (``<scenario>-<hex8>``)."""
    return f"{scenario}-{uuid.uuid4().hex[:8]}"


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
_COLUMNS_V0 = (
    "run_id", "created_s", "scenario", "n_particles", "n_steps",
    "host_id", "backend", "code_version", "host", "knobs", "phases",
    "pop", "step_times",
)
_COLUMNS_V1 = _COLUMNS_V0 + ("recovery", "extra")
_JSON_COLUMNS = frozenset(
    {"host", "knobs", "phases", "pop", "step_times", "recovery", "extra"}
)


class RunLedger:
    """Append-only sqlite run-history store (WAL, schema-versioned).

    Usable as a context manager; every public method is safe to call
    concurrently from multiple processes (appends serialize on sqlite's
    write lock within ``timeout_s``).
    """

    def __init__(self, path, *, timeout_s: float = 10.0):
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self._conn: Optional[sqlite3.Connection] = None
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._conn = self._open()

    # -- lifecycle -----------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(str(self.path), timeout=self.timeout_s)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}")
            self._ensure_schema(conn)
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> None:
        """Move an unreadable file aside and warn; history is best-effort."""
        target = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, target)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        # Sidecar WAL/SHM files belong to the quarantined generation.
        for suffix in ("-wal", "-shm"):
            try:
                Path(str(self.path) + suffix).unlink()
            except OSError:
                pass
        warnings.warn(
            f"run ledger at {self.path} was unreadable; quarantined to "
            f"{target} and starting a fresh ledger",
            RuntimeWarning,
            stacklevel=3,
        )

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS ledger_meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            row = conn.execute(
                "SELECT value FROM ledger_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS runs ("
                    "  run_id TEXT PRIMARY KEY,"
                    "  created_s REAL NOT NULL,"
                    "  scenario TEXT NOT NULL,"
                    "  n_particles INTEGER NOT NULL,"
                    "  n_steps INTEGER NOT NULL,"
                    "  host_id TEXT NOT NULL,"
                    "  backend TEXT NOT NULL,"
                    "  code_version TEXT NOT NULL,"
                    "  host TEXT NOT NULL DEFAULT '{}',"
                    "  knobs TEXT NOT NULL DEFAULT '{}',"
                    "  phases TEXT NOT NULL DEFAULT '{}',"
                    "  pop TEXT,"
                    "  step_times TEXT NOT NULL DEFAULT '{}',"
                    "  recovery TEXT NOT NULL DEFAULT '{}',"
                    "  extra TEXT NOT NULL DEFAULT '{}')"
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_runs_key ON runs "
                    "(scenario, n_particles, host_id, backend)"
                )
                conn.execute(
                    "INSERT INTO ledger_meta (key, value) VALUES "
                    "('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                return
            version = int(row[0])
            if version > SCHEMA_VERSION:
                raise RuntimeError(
                    f"ledger {self.path} has schema v{version}, newer than "
                    f"this code understands (v{SCHEMA_VERSION}); refusing "
                    f"to open it"
                )
            while version < SCHEMA_VERSION:
                _MIGRATIONS[version](conn)
                version += 1
                conn.execute(
                    "UPDATE ledger_meta SET value=? WHERE key='schema_version'",
                    (str(version),),
                )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -------------------------------------------------
    @property
    def schema_version(self) -> int:
        row = self._conn.execute(
            "SELECT value FROM ledger_meta WHERE key='schema_version'"
        ).fetchone()
        return int(row[0])

    def __len__(self) -> int:
        return int(self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0])

    # -- writes --------------------------------------------------------
    def append(self, record: RunRecord) -> str:
        """Insert one run summary; returns its ``run_id``."""
        values = []
        rec = record.as_dict()
        for col in _COLUMNS_V1:
            v = rec[col]
            if col in _JSON_COLUMNS:
                v = None if v is None else json.dumps(v, default=str)
            values.append(v)
        placeholders = ",".join("?" * len(_COLUMNS_V1))
        with self._conn:
            self._conn.execute(
                f"INSERT INTO runs ({','.join(_COLUMNS_V1)}) "
                f"VALUES ({placeholders})",
                values,
            )
        return record.run_id

    # -- reads ---------------------------------------------------------
    @staticmethod
    def _from_row(row: sqlite3.Row) -> RunRecord:
        data = dict(row)
        for col in _JSON_COLUMNS:
            raw = data.get(col)
            data[col] = json.loads(raw) if raw is not None else (
                None if col == "pop" else {}
            )
        return RunRecord(**data)

    def get(self, run_id: str) -> Optional[RunRecord]:
        """Look up one run by id, or ``None``."""
        self._conn.row_factory = sqlite3.Row
        row = self._conn.execute(
            "SELECT * FROM runs WHERE run_id=?", (run_id,)
        ).fetchone()
        return self._from_row(row) if row is not None else None

    def runs(
        self,
        *,
        scenario: Optional[str] = None,
        host_id: Optional[str] = None,
        backend: Optional[str] = None,
        n_particles: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> List[RunRecord]:
        """Query run summaries, newest first, filtered on the key columns."""
        clauses, params = [], []
        for col, val in (
            ("scenario", scenario),
            ("host_id", host_id),
            ("backend", backend),
            ("n_particles", n_particles),
        ):
            if val is not None:
                clauses.append(f"{col}=?")
                params.append(val)
        sql = "SELECT * FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_s DESC, run_id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        self._conn.row_factory = sqlite3.Row
        return [self._from_row(r) for r in self._conn.execute(sql, params)]


def _migrate_v0_to_v1(conn: sqlite3.Connection) -> None:
    """v0 rows predate the recovery counters and the free-form extra blob."""
    cols = {r[1] for r in conn.execute("PRAGMA table_info(runs)")}
    if "recovery" not in cols:
        conn.execute(
            "ALTER TABLE runs ADD COLUMN recovery TEXT NOT NULL DEFAULT '{}'"
        )
    if "extra" not in cols:
        conn.execute(
            "ALTER TABLE runs ADD COLUMN extra TEXT NOT NULL DEFAULT '{}'"
        )


_MIGRATIONS = {0: _migrate_v0_to_v1}


# ----------------------------------------------------------------------
# Simulation -> RunRecord
# ----------------------------------------------------------------------
def resolved_knobs(sim) -> Dict[str, object]:
    """The hand-settable runtime knobs a run actually resolved to.

    This is the autotuner's search space, so the names here are the
    contract between ledger rows and candidate configs.
    """
    run = sim.run_config
    ex = run.exec
    knobs: Dict[str, object] = {
        "workers": int(ex.workers) if ex is not None else 0,
        "chunks_per_worker": int(ex.chunks_per_worker) if ex is not None else 1,
        "neighbor_cache": bool(ex.neighbor_cache) if ex is not None else False,
        "cache_skin": float(ex.cache_skin) if ex is not None else 0.3,
        "pair_engine": bool(ex.pair_engine) if ex is not None else True,
        "backend": sim.backend.name,
        "checkpoint_every": (
            int(run.resilience.checkpoint_every)
            if run.resilience is not None
            else None
        ),
    }
    return knobs


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (no numpy needed)."""
    if not sorted_vals:
        return float("nan")
    idx = min(len(sorted_vals) - 1, max(0, round(q * (len(sorted_vals) - 1))))
    return sorted_vals[int(idx)]


def step_time_summary(durations: List[float]) -> Dict[str, float]:
    """count/best/mean/p10/p50/p90 of whole-step wall seconds."""
    if not durations:
        return {}
    vals = sorted(float(d) for d in durations)
    return {
        "count": len(vals),
        "best_s": vals[0],
        "mean_s": sum(vals) / len(vals),
        "p10_s": _percentile(vals, 0.10),
        "p50_s": _percentile(vals, 0.50),
        "p90_s": _percentile(vals, 0.90),
    }


def record_from_simulation(sim, *, scenario: Optional[str] = None) -> RunRecord:
    """Roll one finished :class:`~repro.core.simulation.Simulation` up
    into a ledger row: per-phase span aggregates, POP metrics, resolved
    knobs, step-time percentiles and recovery counters."""
    from ..profiling.trace import State

    name = scenario or sim.scenario or sim.config.label
    report = sim.report()

    phases: Dict[str, Dict[str, float]] = {}
    step_durations: List[float] = []
    tracer = sim.tracer
    if getattr(tracer, "enabled", False):
        for e in tracer.events:
            if e.state is State.STEP and e.thread == 0:
                step_durations.append(e.duration)
            elif e.state is State.USEFUL:
                agg = phases.setdefault(e.phase, {"total_s": 0.0, "count": 0})
                agg["total_s"] += e.duration
                agg["count"] += 1
        for agg in phases.values():
            agg["mean_s"] = agg["total_s"] / agg["count"] if agg["count"] else 0.0

    recovery: Dict[str, float] = {}
    for section in ("recovery", "checkpoint", "sdc"):
        stats = getattr(report, section)
        if stats:
            recovery.update({f"{section}.{k}": v for k, v in dict(stats).items()})
    if report.guard is not None:
        recovery.update(
            {f"guard.{k}": v for k, v in report.guard.counters().items()}
        )

    extra: Dict[str, object] = {}
    if report.tuning is not None:
        extra["tuning"] = report.tuning

    fp = host_fingerprint()
    # Adopt the driver's own identity when it has one (minted at
    # construction, shared with the service's result store) so the two
    # durable records of one execution agree on run_id.
    run_id = getattr(sim, "run_id", None) or new_run_id(name)
    return RunRecord(
        run_id=run_id,
        created_s=time.time(),
        scenario=name,
        n_particles=int(sim.particles.n),
        n_steps=int(sim.step_index),
        host_id=fingerprint_id(fp),
        backend=sim.backend.name,
        code_version=code_version(),
        host=fp,
        knobs=resolved_knobs(sim),
        phases=phases,
        pop=dict(asdict(report.pop)) if report.pop is not None else None,
        step_times=step_time_summary(step_durations),
        recovery=recovery,
        extra=extra,
    )
