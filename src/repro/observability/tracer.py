"""Wall-clock span tracer with nesting and worker attribution.

:class:`SpanTracer` is a drop-in superset of the modeled-cluster
:class:`~repro.profiling.trace.Tracer`: every existing call site
(``tracer.phase(...)`` in the driver, the parallel engine and the
supervisor) keeps working unchanged, but the recorded events carry the
span attribution the observability layer needs — real wall-clock starts
on one shared time origin, the driver step index, the nesting depth
within the step and an optional detail label.

Rows follow the Figure-4 convention: the driver records on
``(rank, thread=0)``; spans merged from pool-worker result envelopes land
on ``(rank, thread=slot + 1)``, so one timeline shows driver
orchestration (``FAN_OUT``/``REDUCE``), worker compute (``USEFUL``) and
supervisor ``RECOVERY`` work side by side — and it stays coherent across
:class:`~repro.parallel.supervisor.SupervisedPool` respawns because the
row is the *slot*, not the process.

Clock model: spans are timed with ``time.perf_counter`` and shifted onto
a lazy origin — the start of the first recorded span.  On Linux
``perf_counter`` is the system-wide monotonic clock, so raw worker
timestamps shipped through :meth:`record_span` live in the same domain
as the driver's and need only the origin shift.

:class:`NullTracer` is the disabled path: every instrumentation call
returns a shared no-op context or does nothing, so tracing-off costs one
attribute lookup per call and allocates nothing.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import ContextManager, Dict, Iterator, List, Optional, Tuple

from ..profiling.trace import State, TraceEvent, Tracer

__all__ = ["SpanTracer", "NullTracer", "make_tracer"]

_NULL_CTX = nullcontext()


@dataclass
class SpanTracer(Tracer):
    """Nested-span wall-clock tracer (the on-by-default instrumentation).

    Inherits the event store and every query of the base tracer, so the
    POP metrics, the timeline renderer and the exporters consume
    simulated and measured traces identically.
    """

    max_events: int = 1_000_000
    #: Spans discarded after ``max_events`` was reached.
    dropped: int = 0
    _origin: Optional[float] = field(default=None, repr=False)
    _step: int = field(default=-1, repr=False)
    _stacks: Dict[Tuple[int, int], List[str]] = field(
        default_factory=dict, repr=False
    )

    @property
    def enabled(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def set_step(self, index: int) -> None:
        self._step = int(index)

    def _relative(self, t: float) -> float:
        if self._origin is None:
            self._origin = t
        return t - self._origin

    def _append(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)
        key = (event.rank, event.thread)
        self._clocks[key] = max(self._clocks.get(key, 0.0), event.end)

    # ------------------------------------------------------------------
    @contextmanager
    def phase(
        self,
        phase: str,
        state: State = State.USEFUL,
        rank: int = 0,
        thread: int = 0,
    ) -> Iterator[None]:
        """Measure a span; nests under any span already open on this row."""
        t0 = time.perf_counter()
        start = self._relative(t0)
        stack = self._stacks.setdefault((rank, thread), [])
        depth = len(stack)
        stack.append(phase)
        try:
            yield
        finally:
            stack.pop()
            self._append(
                TraceEvent(
                    rank,
                    thread,
                    phase,
                    state,
                    start,
                    time.perf_counter() - t0,
                    step=self._step,
                    depth=depth,
                )
            )

    def step_span(self, index: int, rank: int = 0) -> ContextManager[None]:
        """Whole-step container span (``State.STEP``, depth 0)."""
        self.set_step(index)
        return self.phase(f"step-{index}", State.STEP, rank)

    # ------------------------------------------------------------------
    def record_span(
        self,
        phase: str,
        state: State,
        start: float,
        duration: float,
        *,
        rank: int = 0,
        thread: int = 0,
        step: Optional[int] = None,
        label: str = "",
    ) -> None:
        """Record a pre-measured span (e.g. shipped in a worker envelope).

        ``start`` is a raw ``perf_counter`` timestamp; it is shifted onto
        the tracer's origin so merged worker spans line up with the
        driver's fan-out/reduce intervals.
        """
        if duration < 0.0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if self._origin is None:
            self._origin = start
        self._append(
            TraceEvent(
                rank,
                thread,
                phase,
                state,
                start - self._origin,
                duration,
                step=self._step if step is None else int(step),
                depth=1 if state is not State.STEP else 0,
                label=label,
            )
        )


class NullTracer(SpanTracer):
    """Zero-overhead disabled tracer: records nothing, measures nothing."""

    @property
    def enabled(self) -> bool:
        return False

    def set_step(self, index: int) -> None:
        pass

    def phase(self, *args, **kwargs) -> ContextManager[None]:
        return _NULL_CTX

    def step_span(self, index: int, rank: int = 0) -> ContextManager[None]:
        return _NULL_CTX

    def record_span(self, *args, **kwargs) -> None:
        pass


def make_tracer(config=None) -> SpanTracer:
    """Tracer matching an :class:`~repro.observability.config
    .ObservabilityConfig` (``None`` → enabled defaults)."""
    if config is None or config.enabled:
        return SpanTracer(
            max_events=getattr(config, "max_events", 1_000_000)
        )
    return NullTracer()
