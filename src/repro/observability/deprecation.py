"""Warn-once deprecation plumbing for the consolidated config/stats API.

The old surface (``Simulation(exec_config=..., resilience=...)``, the
``pair_engine_stats`` / ``neighbor_cache_stats`` accessors, the
``profiling.metrics`` report formatters) keeps working, but each entry
point announces its replacement exactly once per process — loud enough
to migrate, quiet enough not to drown a 10k-step run in warnings.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_once", "reset_deprecation_warnings"]

_WARNED: Set[str] = set()


def warn_once(
    key: str,
    message: str,
    stacklevel: int = 3,
    category: type = DeprecationWarning,
) -> None:
    """Emit ``category`` (default ``DeprecationWarning``) once per key.

    The backend registry reuses this for its "requested backend is
    unavailable, using numpy" notice with ``category=RuntimeWarning`` —
    same warn-once discipline, different severity.
    """
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)


def reset_deprecation_warnings() -> None:
    """Re-arm every warning (test isolation)."""
    _WARNED.clear()
