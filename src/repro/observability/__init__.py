"""Unified observability: spans, counters, exporters, measured POP metrics.

Section 5.2 of the paper treats observability as a first-class
deliverable of the mini-app spec — SPHYNX's scaling loss is diagnosed
from an Extrae trace and the POP efficiency hierarchy, not from guesses.
This package is the one instrumentation layer every execution path
shares:

* :class:`SpanTracer` — wall-clock tracer emitting nested spans
  (step → phase A-J → pool chunk) with process/worker attribution; a
  drop-in superset of the modeled-cluster
  :class:`~repro.profiling.trace.Tracer`.  :class:`NullTracer` is the
  zero-overhead disabled variant.
* :class:`MetricsRegistry` — flat, namespaced counters absorbing the
  pair-engine, Verlet-cache, supervisor-recovery and checkpoint stats.
* Exporters — Chrome ``trace_event`` JSON (loadable in Perfetto /
  ``chrome://tracing``) and JSONL for the benchmark harness.
* :func:`pop_from_events` — the paper's POP efficiency metrics computed
  from *measured* spans (NaN-safe), so real pool executions and the
  simulated cluster feed one metrics pipeline.
* :class:`RunReport` — the consolidated, dict-convertible stats object
  behind :meth:`repro.core.simulation.Simulation.report`.

Everything is on by default at span granularity; the measured overhead
budget is ≤ 2 % of step time (enforced by
``benchmarks/bench_observability_micro.py``) and ~0 when disabled via
:class:`NullTracer`.
"""

from .config import ObservabilityConfig
from .export import (
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from .ledger import (
    RunLedger,
    RunRecord,
    code_version,
    fingerprint_id,
    host_fingerprint,
    record_from_simulation,
)
from .pop import pop_from_events
from .registry import MetricsRegistry
from .report import (
    RunReport,
    format_neighbor_cache,
    format_pair_engine,
    format_recovery,
    format_tuning,
)
from .tracer import NullTracer, SpanTracer, make_tracer

__all__ = [
    "ObservabilityConfig",
    "SpanTracer",
    "NullTracer",
    "make_tracer",
    "MetricsRegistry",
    "RunReport",
    "RunLedger",
    "RunRecord",
    "host_fingerprint",
    "fingerprint_id",
    "code_version",
    "record_from_simulation",
    "format_pair_engine",
    "format_neighbor_cache",
    "format_recovery",
    "format_tuning",
    "pop_from_events",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
