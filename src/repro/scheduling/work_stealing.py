"""Work-stealing execution model.

The task-based runtimes Section 4 surveys (HPX, TBB, Cilk) balance load by
letting idle workers steal from busy ones.  This simulator executes
per-worker task queues with steal-half semantics and a configurable steal
latency, reporting makespan, per-worker busy time and steal counts — the
quantities the ablation benches compare against static scheduling.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["StealResult", "simulate_work_stealing"]


@dataclass(frozen=True)
class StealResult:
    """Outcome of a work-stealing execution."""

    n_workers: int
    makespan: float
    busy: np.ndarray
    n_steals: int

    @property
    def load_balance(self) -> float:
        mx = float(self.busy.max())
        return float(self.busy.mean() / mx) if mx > 0 else 1.0

    @property
    def efficiency(self) -> float:
        denom = self.n_workers * self.makespan
        return float(self.busy.sum() / denom) if denom > 0 else 1.0


def simulate_work_stealing(
    queues: Sequence[Sequence[float]],
    *,
    steal_latency: float = 0.0,
    rng: np.random.Generator | None = None,
) -> StealResult:
    """Run per-worker task queues with steal-half-from-richest semantics.

    Parameters
    ----------
    queues:
        One list of task costs per worker (the initial static partition).
    steal_latency:
        Time an idle worker spends acquiring remote work.
    rng:
        Tie-break randomness for victim selection among equally-rich
        victims; deterministic richest-victim without it.
    """
    n_workers = len(queues)
    if n_workers < 1:
        raise ValueError("need at least one worker")
    local: List[List[float]] = [list(map(float, q))[::-1] for q in queues]
    # Remaining work per worker for victim selection.
    remaining = np.array([sum(q) for q in local])
    busy = np.zeros(n_workers)
    clock = np.zeros(n_workers)
    n_steals = 0

    # Event loop: process the worker with the earliest clock.
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    while heap:
        t, w = heapq.heappop(heap)
        if local[w]:
            task = local[w].pop()
            remaining[w] -= task
            busy[w] += task
            clock[w] = t + task
            heapq.heappush(heap, (clock[w], w))
            continue
        # Idle: steal half the richest victim's queue (by task count).
        counts = np.array([len(q) for q in local])
        counts[w] = 0
        if counts.max() <= 1:
            clock[w] = t
            continue  # nothing worth stealing; worker retires
        if rng is not None:
            best = counts.max()
            victims = np.nonzero(counts == best)[0]
            v = int(rng.choice(victims))
        else:
            v = int(np.argmax(counts))
        half = len(local[v]) // 2
        # Steal the oldest half (bottom of the victim's deque).
        stolen = local[v][:half]
        local[v] = local[v][half:]
        moved = sum(stolen)
        remaining[v] -= moved
        remaining[w] += moved
        local[w] = stolen
        n_steals += 1
        clock[w] = t + steal_latency
        heapq.heappush(heap, (clock[w], w))

    return StealResult(
        n_workers=n_workers,
        makespan=float(clock.max()),
        busy=busy,
        n_steals=n_steals,
    )
