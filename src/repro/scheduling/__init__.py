"""Load balancing substrate (Tables 3-4 "Load Balancing").

Dynamic loop self-scheduling (SS/CSS/GSS/factoring/AWF — refs [3, 16, 27]
of the paper), work stealing (task runtimes of Section 4), and SPH-flow's
local-inner-outer communication overlap.
"""

from .overlap import OverlapTiming, local_inner_outer
from .selfsched import (
    SCHEMES,
    ScheduleResult,
    chunk_sequence,
    simulate_self_scheduling,
)
from .work_stealing import StealResult, simulate_work_stealing

__all__ = [
    "SCHEMES",
    "chunk_sequence",
    "ScheduleResult",
    "simulate_self_scheduling",
    "StealResult",
    "simulate_work_stealing",
    "OverlapTiming",
    "local_inner_outer",
]
