"""Dynamic loop self-scheduling (Table 4 "DLB with self-scheduling").

The paper plans "DLB with self-scheduling per X, Y, Z level" and cites the
classic scheduling line of work: factoring (Hummel, Banicescu et al. [27]),
adaptive weighted factoring (Banicescu et al. [3]) and dynamic multi-phase
scheduling (Ciorba et al. [16]).  This module implements the canonical
chunking rules —

* ``static``     one contiguous block per worker,
* ``ss``         self-scheduling, one task at a time,
* ``css``        chunk self-scheduling with a fixed chunk,
* ``gss``        guided self-scheduling, chunk = remaining / P,
* ``fac2``       factoring: batches of P chunks, each batch half of the
                 remaining work,
* ``awf``        adaptive weighted factoring: factoring with per-worker
                 weights adapted from measured execution rates,

— plus a queue simulator that executes a chunk sequence over P workers
with per-chunk dispatch overhead and reports makespan, per-worker busy
time, and the resulting load-balance efficiency.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = [
    "SCHEMES",
    "chunk_sequence",
    "ScheduleResult",
    "simulate_self_scheduling",
]

SCHEMES = ("static", "ss", "css", "gss", "fac2", "awf")


def chunk_sequence(
    n_tasks: int,
    n_workers: int,
    scheme: str,
    *,
    css_chunk: int = 16,
    min_chunk: int = 1,
) -> List[int]:
    """Chunk sizes, in dispatch order, for ``n_tasks`` over ``n_workers``.

    The sequence is worker-agnostic: workers grab the next chunk when
    idle (the defining property of self-scheduling).
    """
    if n_tasks < 0 or n_workers < 1:
        raise ValueError("need n_tasks >= 0 and n_workers >= 1")
    if scheme not in SCHEMES:
        raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEMES}")
    if n_tasks == 0:
        return []
    chunks: List[int] = []
    if scheme == "static":
        base = n_tasks // n_workers
        extra = n_tasks % n_workers
        chunks = [base + (1 if w < extra else 0) for w in range(n_workers)]
        return [c for c in chunks if c > 0]
    if scheme == "ss":
        return [1] * n_tasks
    if scheme == "css":
        full, rem = divmod(n_tasks, css_chunk)
        chunks = [css_chunk] * full + ([rem] if rem else [])
        return chunks
    remaining = n_tasks
    if scheme == "gss":
        while remaining > 0:
            c = max(int(np.ceil(remaining / n_workers)), min_chunk)
            c = min(c, remaining)
            chunks.append(c)
            remaining -= c
        return chunks
    # factoring variants: batches of n_workers chunks, each batch covering
    # half the remaining iterations.
    while remaining > 0:
        batch = max(int(np.ceil(remaining / (2 * n_workers))), min_chunk)
        for _ in range(n_workers):
            c = min(batch, remaining)
            if c == 0:
                break
            chunks.append(c)
            remaining -= c
    return chunks


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of executing a chunk sequence on P workers."""

    scheme: str
    n_workers: int
    makespan: float
    busy: np.ndarray  # useful time per worker
    n_chunks: int
    overhead_total: float

    @property
    def load_balance(self) -> float:
        """POP-style load balance of the schedule: mean(busy)/max(busy)."""
        mx = float(self.busy.max())
        return float(self.busy.mean() / mx) if mx > 0 else 1.0

    @property
    def efficiency(self) -> float:
        """Useful work / (P x makespan)."""
        denom = self.n_workers * self.makespan
        return float(self.busy.sum() / denom) if denom > 0 else 1.0


def simulate_self_scheduling(
    task_times: Sequence[float],
    n_workers: int,
    scheme: str = "fac2",
    *,
    dispatch_overhead: float = 0.0,
    css_chunk: int = 16,
    worker_speeds: Sequence[float] | None = None,
) -> ScheduleResult:
    """Execute tasks under a self-scheduling scheme and measure balance.

    Parameters
    ----------
    task_times:
        Per-task costs in order (e.g. per-particle-bucket SPH work).
    dispatch_overhead:
        Cost charged per chunk acquisition (the h in scheduling theory —
        this is what makes pure SS lose to factoring).
    worker_speeds:
        Relative speeds (heterogeneity); the AWF scheme adapts its chunk
        weights to them, the others suffer them.
    """
    times = np.asarray(task_times, dtype=np.float64)
    if np.any(times < 0.0):
        raise ValueError("task times must be non-negative")
    n = times.size
    if worker_speeds is None:
        speeds = np.ones(n_workers)
    else:
        speeds = np.asarray(worker_speeds, dtype=np.float64)
        if speeds.shape != (n_workers,) or np.any(speeds <= 0.0):
            raise ValueError("worker_speeds must be positive, one per worker")

    if scheme == "awf":
        # AWF: factoring chunk sizes scaled by normalized worker weights,
        # adapted as workers report execution rates.  With known speeds
        # this reduces to weighting the factoring batches.
        base = chunk_sequence(n, n_workers, "fac2", css_chunk=css_chunk)
    else:
        base = chunk_sequence(n, n_workers, scheme, css_chunk=css_chunk)

    prefix = np.concatenate([[0.0], np.cumsum(times)])
    # Worker availability heap: (time, worker).
    heap = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(heap)
    busy = np.zeros(n_workers)
    start = 0
    makespan = 0.0
    overhead_total = 0.0
    weights = speeds / speeds.sum()
    for chunk in base:
        t, w = heapq.heappop(heap)
        if scheme == "awf":
            # Scale the chunk to the claiming worker's relative speed.
            scaled = max(int(round(chunk * weights[w] * n_workers)), 1)
            chunk = min(scaled, n - start)
            if chunk == 0:
                heapq.heappush(heap, (t, w))
                continue
        end = min(start + chunk, n)
        work = (prefix[end] - prefix[start]) / speeds[w]
        start = end
        cost = dispatch_overhead + work
        busy[w] += work
        overhead_total += dispatch_overhead
        t_done = t + cost
        makespan = max(makespan, t_done)
        heapq.heappush(heap, (t_done, w))
        if start >= n:
            break
    # AWF rounding may leave a tail; drain it one chunk per worker.
    while start < n:
        t, w = heapq.heappop(heap)
        chunk = max((n - start) // n_workers, 1)
        end = min(start + chunk, n)
        work = (prefix[end] - prefix[start]) / speeds[w]
        start = end
        busy[w] += work
        overhead_total += dispatch_overhead
        t_done = t + dispatch_overhead + work
        makespan = max(makespan, t_done)
        heapq.heappush(heap, (t_done, w))
    return ScheduleResult(
        scheme=scheme,
        n_workers=n_workers,
        makespan=makespan,
        busy=busy,
        n_chunks=len(base),
        overhead_total=overhead_total,
    )
