"""Local-Inner-Outer communication/computation overlap (SPH-flow).

Table 3 lists SPH-flow's load-balancing strategy as "Local-Inner-Outer"
(Oger et al. 2016): particles whose full neighbourhood is rank-local
("inner") are computed while the halo exchange is in flight; "outer"
particles (those touching ghosts) wait for the communication.  Per step
and rank the timing is

    t = max(t_inner, t_comm) + t_outer        (overlapped)
    t = t_comm + t_inner + t_outer            (non-overlapped baseline)

so the scheme hides communication entirely whenever the inner work
exceeds it — the regime where SPH-flow's pure-MPI scaling stays flat in
Figure 3 until particles/core drops too low.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["OverlapTiming", "local_inner_outer"]


@dataclass(frozen=True)
class OverlapTiming:
    """Per-rank step times with and without overlap."""

    overlapped: np.ndarray
    sequential: np.ndarray

    def saving(self) -> np.ndarray:
        """Absolute time hidden by the overlap, per rank."""
        return self.sequential - self.overlapped


def local_inner_outer(
    inner_work: np.ndarray,
    outer_work: np.ndarray,
    comm_time: np.ndarray,
) -> OverlapTiming:
    """Evaluate the overlap model for per-rank work/communication splits.

    All arrays are per-rank seconds; inner/outer work are the compute
    times of the halo-independent and halo-dependent particle sets.
    """
    inner = np.asarray(inner_work, dtype=np.float64)
    outer = np.asarray(outer_work, dtype=np.float64)
    comm = np.asarray(comm_time, dtype=np.float64)
    if not (inner.shape == outer.shape == comm.shape):
        raise ValueError("inner_work, outer_work and comm_time must align")
    if np.any(inner < 0) or np.any(outer < 0) or np.any(comm < 0):
        raise ValueError("times must be non-negative")
    return OverlapTiming(
        overlapped=np.maximum(inner, comm) + outer,
        sequential=inner + outer + comm,
    )
