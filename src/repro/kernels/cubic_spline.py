"""M4 cubic spline kernel (Monaghan & Lattanzio 1985).

The classic SPH kernel, used by ChaNGa (Table 1 of the paper) as one of its
two kernel options.  Piecewise cubic with support ``2 h``:

    f(q) = 1 - 3/2 q^2 + 3/4 q^3         for 0 <= q < 1
    f(q) = 1/4 (2 - q)^3                 for 1 <= q < 2
    f(q) = 0                             otherwise

with normalizations ``sigma = 2/3 (1D), 10/(7 pi) (2D), 1/pi (3D)`` in units
of ``h^{-d}``.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel

__all__ = ["CubicSplineKernel"]

_SIGMA = {1: 2.0 / 3.0, 2: 10.0 / (7.0 * np.pi), 3: 1.0 / np.pi}


class CubicSplineKernel(Kernel):
    """M4 cubic spline ("M4 spline" in Tables 1-2 of the paper)."""

    name = "m4-cubic-spline"

    def shape(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        inner = 1.0 - 1.5 * q * q + 0.75 * q * q * q
        outer = 0.25 * (2.0 - q) ** 3
        out = np.where(q < 1.0, inner, np.where(q < 2.0, outer, 0.0))
        return np.where(q >= 0.0, out, 0.0)

    def shape_derivative(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        inner = -3.0 * q + 2.25 * q * q
        outer = -0.75 * (2.0 - q) ** 2
        return np.where(q < 1.0, inner, np.where(q < 2.0, outer, 0.0))

    def _sigma_exact(self, dim: int) -> float:
        return _SIGMA[dim]
