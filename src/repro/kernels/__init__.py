"""SPH interpolation kernels (Tables 1-2 of the paper).

The mini-app carries the union of the parent codes' kernels as
interchangeable modules: the sinc family (SPHYNX), the M4 cubic spline
(ChaNGa) and the Wendland C2/C4/C6 family (ChaNGa, SPH-flow).
"""

from .base import Kernel, SUPPORT_RADIUS
from .cubic_spline import CubicSplineKernel
from .registry import available_kernels, make_kernel, register_kernel
from .sinc import SincKernel
from .wendland import WendlandC2Kernel, WendlandC4Kernel, WendlandC6Kernel

__all__ = [
    "Kernel",
    "SUPPORT_RADIUS",
    "CubicSplineKernel",
    "SincKernel",
    "WendlandC2Kernel",
    "WendlandC4Kernel",
    "WendlandC6Kernel",
    "make_kernel",
    "available_kernels",
    "register_kernel",
]
