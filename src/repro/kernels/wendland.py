"""Wendland C2, C4 and C6 kernels (Wendland 1995; Dehnen & Aly 2012).

Wendland kernels are the production choice of ChaNGa and SPH-flow (Table 1
of the paper): positive-definite Fourier transforms make them immune to the
pairing instability, which matters at the ~100-neighbour counts the paper
quotes for modern SPH runs.

Shapes below follow Dehnen & Aly (2012, Table 1), written in terms of
``l = r / H`` with ``H = 2 h`` the support radius; we substitute
``l = q / 2``.  The 1-D members differ functionally from the 2-D/3-D ones.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel

__all__ = ["WendlandC2Kernel", "WendlandC4Kernel", "WendlandC6Kernel"]


def _plus(x: np.ndarray, power: int) -> np.ndarray:
    """Truncated power ``max(x, 0)^power``."""
    return np.where(x > 0.0, x, 0.0) ** power


class WendlandC2Kernel(Kernel):
    """Wendland C2: ``(1-l)^4 (1+4l)`` in 2-D/3-D, ``(1-l)^3 (1+3l)`` in 1-D."""

    name = "wendland-c2"

    def __init__(self, dim_hint: int = 3) -> None:
        super().__init__()
        self._dim_hint = dim_hint

    def shape(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        l = 0.5 * q
        if self._dim_hint == 1:
            return _plus(1.0 - l, 3) * (1.0 + 3.0 * l)
        return _plus(1.0 - l, 4) * (1.0 + 4.0 * l)

    def shape_derivative(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        l = 0.5 * q
        if self._dim_hint == 1:
            dfdl = -12.0 * l * _plus(1.0 - l, 2)
        else:
            dfdl = -20.0 * l * _plus(1.0 - l, 3)
        return 0.5 * dfdl

    def _sigma_exact(self, dim: int) -> float | None:
        # sigma in units of h^{-d}: Dehnen & Aly give C / H^d with H = 2h.
        if self._dim_hint == 1 and dim == 1:
            return (5.0 / 4.0) / 2.0
        if dim == 2:
            return (7.0 / np.pi) / 4.0
        if dim == 3:
            return (21.0 / (2.0 * np.pi)) / 8.0
        return None  # 1-D normalization of the 2/3-D shape: integrate


class WendlandC4Kernel(Kernel):
    """Wendland C4: ``(1-l)^6 (1+6l+35/3 l^2)`` in 2-D/3-D."""

    name = "wendland-c4"

    def __init__(self, dim_hint: int = 3) -> None:
        super().__init__()
        self._dim_hint = dim_hint

    def shape(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        l = 0.5 * q
        if self._dim_hint == 1:
            return _plus(1.0 - l, 5) * (1.0 + 5.0 * l + 8.0 * l * l)
        return _plus(1.0 - l, 6) * (1.0 + 6.0 * l + (35.0 / 3.0) * l * l)

    def shape_derivative(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        l = 0.5 * q
        if self._dim_hint == 1:
            dfdl = -_plus(1.0 - l, 4) * (14.0 * l + 56.0 * l * l)
        else:
            dfdl = -_plus(1.0 - l, 5) * ((56.0 / 3.0) * l + (280.0 / 3.0) * l * l)
        return 0.5 * dfdl

    def _sigma_exact(self, dim: int) -> float | None:
        if self._dim_hint == 1 and dim == 1:
            return (3.0 / 2.0) / 2.0
        if dim == 2:
            return (9.0 / np.pi) / 4.0
        if dim == 3:
            return (495.0 / (32.0 * np.pi)) / 8.0
        return None


class WendlandC6Kernel(Kernel):
    """Wendland C6: ``(1-l)^8 (1+8l+25l^2+32l^3)`` in 2-D/3-D."""

    name = "wendland-c6"

    def __init__(self, dim_hint: int = 3) -> None:
        super().__init__()
        self._dim_hint = dim_hint

    def shape(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        l = 0.5 * q
        if self._dim_hint == 1:
            poly = 1.0 + 7.0 * l + 19.0 * l * l + 21.0 * l**3
            return _plus(1.0 - l, 7) * poly
        poly = 1.0 + 8.0 * l + 25.0 * l * l + 32.0 * l**3
        return _plus(1.0 - l, 8) * poly

    def shape_derivative(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        l = 0.5 * q
        if self._dim_hint == 1:
            dfdl = -6.0 * _plus(1.0 - l, 6) * l * (35.0 * l * l + 18.0 * l + 3.0)
        else:
            dfdl = -22.0 * _plus(1.0 - l, 7) * l * (16.0 * l * l + 7.0 * l + 1.0)
        return 0.5 * dfdl

    def _sigma_exact(self, dim: int) -> float | None:
        if self._dim_hint == 1 and dim == 1:
            return (55.0 / 32.0) / 2.0
        if dim == 2:
            return (78.0 / (7.0 * np.pi)) / 4.0
        if dim == 3:
            return (1365.0 / (64.0 * np.pi)) / 8.0
        return None
