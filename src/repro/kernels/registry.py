"""Name-based kernel registry.

The mini-app exposes its kernels as interchangeable modules selected by name
(Section 4 of the paper: "some of them, such as the SPH interpolation
kernels, can be implemented as separate interchangeable modules").
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import Kernel
from .cubic_spline import CubicSplineKernel
from .sinc import SincKernel
from .wendland import WendlandC2Kernel, WendlandC4Kernel, WendlandC6Kernel

__all__ = ["make_kernel", "available_kernels", "register_kernel"]

_FACTORIES: Dict[str, Callable[[], Kernel]] = {
    "m4": CubicSplineKernel,
    "cubic-spline": CubicSplineKernel,
    "wendland-c2": WendlandC2Kernel,
    "wendland-c4": WendlandC4Kernel,
    "wendland-c6": WendlandC6Kernel,
    "sinc": lambda: SincKernel(5.0),
    "sinc-s3": lambda: SincKernel(3.0),
    "sinc-s5": lambda: SincKernel(5.0),
    "sinc-s6": lambda: SincKernel(6.0),
    "sinc-s7": lambda: SincKernel(7.0),
}


def register_kernel(name: str, factory: Callable[[], Kernel]) -> None:
    """Register a user-provided kernel factory under ``name``."""
    key = name.lower()
    if key in _FACTORIES:
        raise ValueError(f"kernel name already registered: {name!r}")
    _FACTORIES[key] = factory


def available_kernels() -> tuple[str, ...]:
    """Names accepted by :func:`make_kernel`, sorted."""
    return tuple(sorted(_FACTORIES))


def make_kernel(name: str) -> Kernel:
    """Instantiate a kernel by registry name (case-insensitive)."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; available: {', '.join(available_kernels())}"
        ) from None
    return factory()
