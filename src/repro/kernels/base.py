"""Base class for SPH interpolation kernels.

All kernels in this package use the *compact support* convention of the
SPH-EXA parent codes: the kernel is a function of ``q = r / h`` and vanishes
for ``q >= 2`` (support radius ``2 h``).  A kernel is fully described by a
dimensionless shape function ``f(q)`` and a per-dimension normalization
``sigma_d`` such that

    W(r, h) = sigma_d / h^d * f(r / h)

and ``\\int W(r, h) dV = 1`` in ``d`` dimensions.

Subclasses implement :meth:`shape` and :meth:`shape_derivative`; the base
class provides the normalized value, the radial derivative ``dW/dr``, the
vector gradient ``\\nabla_i W(r_i - r_j, h)`` and the smoothing-length
derivative ``dW/dh`` used by grad-h correction terms.
"""

from __future__ import annotations

import abc
from typing import Dict

import numpy as np

__all__ = ["Kernel", "SUPPORT_RADIUS"]

#: All kernels share compact support ``q = r/h in [0, 2)``.
SUPPORT_RADIUS = 2.0


class Kernel(abc.ABC):
    """Abstract SPH interpolation kernel with compact support ``2 h``."""

    #: Human-readable kernel name (e.g. ``"wendland-c2"``).
    name: str = "kernel"

    #: Dimensionless support radius in units of ``h``.
    support: float = SUPPORT_RADIUS

    def __init__(self) -> None:
        self._sigma_cache: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Shape function (to be provided by subclasses)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def shape(self, q: np.ndarray) -> np.ndarray:
        """Dimensionless shape ``f(q)``; must vanish for ``q >= support``."""

    @abc.abstractmethod
    def shape_derivative(self, q: np.ndarray) -> np.ndarray:
        """Derivative ``f'(q)``; must vanish for ``q >= support``."""

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------
    def sigma(self, dim: int) -> float:
        """Normalization constant ``sigma_d`` for ``dim`` in {1, 2, 3}.

        Computed once per dimension by numerically integrating the shape
        function over its support, then cached.  Subclasses with closed-form
        normalizations override :meth:`_sigma_exact`.
        """
        if dim not in (1, 2, 3):
            raise ValueError(f"dim must be 1, 2 or 3, got {dim}")
        if dim not in self._sigma_cache:
            exact = self._sigma_exact(dim)
            self._sigma_cache[dim] = (
                exact if exact is not None else self._sigma_numeric(dim)
            )
        return self._sigma_cache[dim]

    def _sigma_exact(self, dim: int) -> float | None:
        """Closed-form normalization, or ``None`` to integrate numerically."""
        return None

    def _sigma_numeric(self, dim: int) -> float:
        from scipy.integrate import quad

        if dim == 1:
            integrand = lambda q: self.shape(np.asarray(q))  # noqa: E731
            volume, _ = quad(integrand, 0.0, self.support, limit=200)
            volume *= 2.0
        elif dim == 2:
            integrand = lambda q: q * self.shape(np.asarray(q))  # noqa: E731
            volume, _ = quad(integrand, 0.0, self.support, limit=200)
            volume *= 2.0 * np.pi
        else:
            integrand = lambda q: q * q * self.shape(np.asarray(q))  # noqa: E731
            volume, _ = quad(integrand, 0.0, self.support, limit=200)
            volume *= 4.0 * np.pi
        return 1.0 / volume

    # ------------------------------------------------------------------
    # Normalized kernel and derivatives
    # ------------------------------------------------------------------
    def cache_key(self) -> tuple:
        """Value-based identity for memoization across pickling.

        Kernel instances are stateless apart from their construction
        parameters, and every concrete kernel encodes those parameters in
        ``name`` (e.g. ``"sinc-s5"``), so two pickled copies of the same
        configuration share a key.
        """
        return (type(self).__qualname__, self.name)

    def value(self, r: np.ndarray, h: np.ndarray, dim: int = 3) -> np.ndarray:
        """Kernel value ``W(r, h)`` for separations ``r`` and lengths ``h``."""
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return self.value_from_q(q, h, dim)

    def value_from_q(
        self,
        q: np.ndarray,
        h: np.ndarray,
        dim: int = 3,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``W`` from a precomputed ``q = r/h`` (optionally into ``out``).

        The ``out`` path runs the identical operation sequence
        ``sigma / h**dim * f(q)`` through in-place ufuncs, so results are
        bitwise equal to the allocating path.
        """
        if out is None:
            return self.sigma(dim) / h**dim * self.shape(q)
        np.power(h, dim, out=out)
        np.divide(self.sigma(dim), out, out=out)
        return np.multiply(out, self.shape(q), out=out)

    def radial_derivative(
        self, r: np.ndarray, h: np.ndarray, dim: int = 3
    ) -> np.ndarray:
        """Radial derivative ``dW/dr`` (a scalar, negative inside support)."""
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return self.radial_derivative_from_q(q, h, dim)

    def radial_derivative_from_q(
        self,
        q: np.ndarray,
        h: np.ndarray,
        dim: int = 3,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``dW/dr`` from a precomputed ``q = r/h``."""
        if out is None:
            return self.sigma(dim) / h ** (dim + 1) * self.shape_derivative(q)
        np.power(h, dim + 1, out=out)
        np.divide(self.sigma(dim), out, out=out)
        return np.multiply(out, self.shape_derivative(q), out=out)

    def gradient(
        self,
        dx: np.ndarray,
        r: np.ndarray,
        h: np.ndarray,
        dim: int = 3,
    ) -> np.ndarray:
        """Vector gradient ``\\nabla_i W(r_ij, h)`` for ``dx = x_i - x_j``.

        Parameters
        ----------
        dx:
            Separation vectors, shape ``(n, dim)``.
        r:
            Separation magnitudes ``|dx|``, shape ``(n,)``.
        h:
            Smoothing lengths, scalar or shape ``(n,)``.

        Returns
        -------
        Array of shape ``(n, dim)``.  The gradient at zero separation is
        zero (the kernel is smooth at the origin).
        """
        dx = np.asarray(dx, dtype=np.float64)
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return self.gradient_from_q(dx, r, q, h, dim)

    def gradient_from_q(
        self,
        dx: np.ndarray,
        r: np.ndarray,
        q: np.ndarray,
        h: np.ndarray,
        dim: int = 3,
        out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vector gradient from a precomputed ``q = r/h``.

        ``scratch`` is an optional ``r``-shaped float64 buffer reused for
        the radial-derivative intermediate.
        """
        dwdr = self.radial_derivative_from_q(q, h, dim, out=scratch)
        with np.errstate(invalid="ignore", divide="ignore"):
            np.divide(dwdr, np.where(r > 0.0, r, 1.0), out=dwdr)
            scale = np.where(r > 0.0, dwdr, 0.0)
        if out is None:
            return dx * scale[..., None]
        return np.multiply(dx, scale[..., None], out=out)

    def value_and_gradient(
        self,
        dx: np.ndarray,
        r: np.ndarray,
        h: np.ndarray,
        dim: int = 3,
        *,
        w_out: np.ndarray | None = None,
        grad_out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ) -> tuple:
        """Fused ``(W, grad W)`` sharing one ``q = r/h`` evaluation.

        Separate :meth:`value` + :meth:`gradient` calls each recompute
        the normalized distance; here both draw from a single division.
        Because they consume the same ``q`` bits the fused results are
        bitwise identical to the separate calls.
        """
        dx = np.asarray(dx, dtype=np.float64)
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        w = self.value_from_q(q, h, dim, out=w_out)
        grad = self.gradient_from_q(dx, r, q, h, dim, out=grad_out, scratch=scratch)
        return w, grad

    def h_derivative(self, r: np.ndarray, h: np.ndarray, dim: int = 3) -> np.ndarray:
        """Smoothing-length derivative ``dW/dh`` used by grad-h terms.

        ``dW/dh = -sigma / h^{d+1} * (d * f(q) + q * f'(q))``.
        """
        r = np.asarray(r, dtype=np.float64)
        h = np.asarray(h, dtype=np.float64)
        q = r / h
        return self.h_derivative_from_q(q, h, dim)

    def h_derivative_from_q(
        self,
        q: np.ndarray,
        h: np.ndarray,
        dim: int = 3,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``dW/dh`` from a precomputed ``q = r/h``."""
        if out is None:
            return (
                -self.sigma(dim)
                / h ** (dim + 1)
                * (dim * self.shape(q) + q * self.shape_derivative(q))
            )
        inner = dim * self.shape(q) + q * self.shape_derivative(q)
        np.power(h, dim + 1, out=out)
        np.divide(-self.sigma(dim), out, out=out)
        return np.multiply(out, inner, out=out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
