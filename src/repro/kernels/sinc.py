"""Sinc kernel family S_n (Cabezón, García-Senz & Relaño 2008).

The sinc kernels are the production choice of SPHYNX (Table 1 of the paper).
They form a one-parameter family

    f_n(q) = ( sin(pi q / 2) / (pi q / 2) )^n        for 0 <= q < 2

with real exponent ``n``; larger ``n`` is sharper (S_3 resembles the cubic
spline, S_5..S_7 behave like Wendland kernels and resist pairing).  SPHYNX
additionally varies ``n`` per particle to sharpen the kernel in shocks; the
exponent here is a constructor parameter so that behaviour can be composed
on top.

Normalization constants have no convenient closed form and are integrated
numerically once per (n, dim) and cached on the instance.
"""

from __future__ import annotations

import numpy as np

from .base import Kernel

__all__ = ["SincKernel"]


class SincKernel(Kernel):
    """Sinc kernel ``S_n`` with configurable real exponent ``n >= 3``."""

    def __init__(self, exponent: float = 5.0) -> None:
        super().__init__()
        if exponent < 2.0:
            raise ValueError(
                f"sinc exponent must be >= 2 for an integrable gradient, got {exponent}"
            )
        self.exponent = float(exponent)
        self.name = f"sinc-s{exponent:g}"

    def shape(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        # np.sinc(t) = sin(pi t)/(pi t), so sinc(q/2) = sin(pi q/2)/(pi q/2).
        base = np.sinc(0.5 * q)
        out = np.where((q >= 0.0) & (q < 2.0), np.abs(base) ** self.exponent, 0.0)
        # Guard the removable singularity at q == 0 (sinc handles it already
        # but abs()**n of a potential -0.0 must stay exact 1 there).
        return np.where(q == 0.0, 1.0, out)

    def shape_derivative(self, q: np.ndarray) -> np.ndarray:
        q = np.asarray(q, dtype=np.float64)
        x = 0.5 * np.pi * q
        s = np.sinc(0.5 * q)
        # d/dq [ s(q)^n ] = n s^{n-1} ds/dq,
        # ds/dq = (pi/2) * (cos x / x - sin x / x^2) = (pi/2) * (cos x - s)/x
        with np.errstate(invalid="ignore", divide="ignore"):
            dsdq = 0.5 * np.pi * np.where(
                x > 0.0, (np.cos(x) - s) / np.where(x > 0.0, x, 1.0), 0.0
            )
        out = self.exponent * np.abs(s) ** (self.exponent - 1.0) * np.sign(s) * dsdq
        return np.where((q > 0.0) & (q < 2.0), out, 0.0)
