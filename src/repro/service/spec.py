"""Job specification: one simulation request, canonicalized and hashed.

A :class:`JobSpec` is the service's unit of work *and* the unit of
dedup: two requests whose canonical payloads hash the same are the same
job, and the second is served from the result store without running.

The canonical payload covers exactly the inputs that determine the
result bits:

* the scenario name and its IC-builder overrides,
* the step count and the physics configuration (preset, neighbour
  count, SDC detection),
* the result-affecting execution knobs (backend, pair engine, Verlet
  cache and skin — the compiled backends are roundoff-level different,
  so each is its own cache entry; the pair machinery is proven bitwise
  but stays in the hash so the cache never has to argue about it),
* numerical-chaos and guard/autotune settings (they can change state),
* the running code version (from the ledger's ``code_version`` stamp),
  so a new commit silently invalidates every cached result.

Deliberately *excluded* — execution-neutral by the parity test suites
and by construction: ``workers`` / ``chunks_per_worker`` (bitwise-serial
parity), service-managed paths (checkpoint dirs, ledger/store
locations), observability settings, and the fault-injection knob
``kill_at_step`` (recovery is bit-identical, so a killed-and-recovered
job *should* share its cache line with an unfaulted one).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional

__all__ = ["SpecError", "JobSpec", "canonical_spec_payload"]

#: Names a CLI/HTTP layer may pass as overrides — everything else is an
#: unknown-spec error (exit code 2 at the CLI boundary).
_BACKEND_CHOICES = ("numpy", "numba", "cffi", "auto")


class SpecError(ValueError):
    """An invalid job specification (unknown scenario, bad knob, ...).

    The CLI maps this to exit code 2, the socket server to an
    ``{"error": "bad-spec"}`` reply; neither ever enqueues the job.
    """


@dataclass(frozen=True)
class JobSpec:
    """One simulation request: scenario + typed config overrides.

    ``overrides`` are IC-builder keyword arguments (the scenario's
    config-dataclass fields, e.g. ``n_target``, ``side``, ``layers``);
    everything else mirrors a ``repro run`` flag.  Instances are
    immutable; use :meth:`with_` for variations.
    """

    scenario: str
    overrides: Mapping[str, Any] = field(default_factory=dict)
    n_steps: Optional[int] = None  # None -> the scenario's default_steps
    test: bool = False  # size from the scenario's test_params
    preset: str = "sph-exa"
    n_neighbors: Optional[int] = None
    error_detection: bool = False
    # Result-affecting execution knobs (hashed):
    backend: str = "numpy"
    pair_engine: bool = True
    neighbor_cache: bool = False
    cache_skin: float = 0.3
    guard: bool = False
    chaos: Optional[str] = None  # parse_numerical_faults() spelling
    autotune: bool = False
    autotune_seed: int = 0
    # Execution-neutral knobs (not hashed):
    workers: int = 0
    chunks_per_worker: int = 1
    #: Service-chaos: SIGKILL the worker process when this step completes
    #: (fire-once across respawns via a job-dir marker).  Test/validation
    #: knob; excluded from the hash because recovery is bit-identical.
    kill_at_step: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.scenario:
            raise SpecError("spec needs a scenario name")
        if self.backend not in _BACKEND_CHOICES:
            raise SpecError(
                f"unknown backend {self.backend!r}; "
                f"choose from {_BACKEND_CHOICES}"
            )
        if self.n_steps is not None and self.n_steps < 1:
            raise SpecError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.workers < 0:
            raise SpecError(f"workers must be >= 0, got {self.workers}")
        if not isinstance(self.overrides, dict):
            object.__setattr__(self, "overrides", dict(self.overrides))

    # ------------------------------------------------------------------
    # Resolution against the scenario registry
    # ------------------------------------------------------------------
    def resolve(self):
        """Validate against the registry; returns the Scenario.

        Raises :class:`SpecError` for an unknown scenario, unknown
        override names, a bad chaos spelling or a size flag the scenario
        does not accept — every way a request can be malformed, caught
        before anything is enqueued.
        """
        from ..scenarios import UnknownScenarioError, get_scenario

        try:
            scenario = get_scenario(self.scenario)
        except UnknownScenarioError as exc:
            raise SpecError(exc.args[0]) from None
        known = {f.name for f in fields(scenario.config_type)}
        unknown = set(self.overrides) - known
        if unknown:
            raise SpecError(
                f"unknown {scenario.name} override(s) "
                f"{sorted(unknown)}; known: {sorted(known)}"
            )
        if self.chaos is not None:
            from ..resilience.chaos import parse_numerical_faults

            try:
                parse_numerical_faults(self.chaos)
            except ValueError as exc:
                raise SpecError(str(exc)) from None
        return scenario

    def resolved_steps(self, scenario=None) -> int:
        if self.n_steps is not None:
            return int(self.n_steps)
        if scenario is None:
            scenario = self.resolve()
        return int(scenario.default_steps)

    def sim_config(self, scenario=None):
        """The physics config this spec resolves to (the CLI's merge rule:
        preset column + the scenario's pinned switches + overrides)."""
        from ..core.presets import get_preset

        if scenario is None:
            scenario = self.resolve()
        try:
            preset = get_preset(self.preset)
        except KeyError:
            raise SpecError(f"unknown preset {self.preset!r}") from None
        needs = scenario.sim_config
        config = preset.with_(
            n_neighbors=(
                self.n_neighbors
                if self.n_neighbors is not None
                else needs.n_neighbors
            ),
            timestep_params=needs.timestep_params,
            viscosity=needs.viscosity,
        )
        if self.error_detection:
            config = config.with_(error_detection=True)
        return config

    def run_config(
        self,
        scenario=None,
        *,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        ledger_path: Optional[str] = None,
    ):
        """The execution environment this spec resolves to.

        ``checkpoint_dir`` / ``ledger_path`` are *runtime* locations the
        caller (CLI flag or service job slot) supplies — they are not
        part of the spec or its hash.
        """
        from ..core.config import RunConfig
        from ..parallel.executor import ExecConfig

        if scenario is None:
            scenario = self.resolve()
        run = RunConfig(
            exec=ExecConfig(
                workers=self.workers,
                chunks_per_worker=self.chunks_per_worker,
                neighbor_cache=self.neighbor_cache,
                cache_skin=self.cache_skin,
                pair_engine=self.pair_engine,
                backend=self.backend,
            )
        )
        if self.guard:
            from ..resilience.guard import GuardConfig

            run = run.with_(
                guard=GuardConfig(drift_tolerances=scenario.invariants)
            )
        if self.chaos is not None:
            from ..resilience.chaos import parse_numerical_faults

            run = run.with_(numerical_chaos=parse_numerical_faults(self.chaos))
        if self.autotune:
            from ..tuning.autotuner import TuningConfig

            run = run.with_(tuning=TuningConfig(seed=self.autotune_seed))
        if checkpoint_dir is not None:
            from ..resilience.checkpoint import ResilienceConfig

            kwargs: Dict[str, Any] = {
                "checkpoint_dir": checkpoint_dir,
                "autoresume": True,
            }
            if checkpoint_every is not None:
                kwargs["checkpoint_every"] = checkpoint_every
            run = run.with_(resilience=ResilienceConfig(**kwargs))
        if ledger_path is not None:
            run = run.with_(
                observability=run.observability.with_(ledger_path=ledger_path)
            )
        return run

    # ------------------------------------------------------------------
    # Canonical payload + content hash
    # ------------------------------------------------------------------
    def canonical(self, *, code_version: Optional[str] = None) -> Dict[str, Any]:
        """The hash-covered payload, resolved and key-sorted.

        ``code_version`` defaults to the running checkout's stamp (the
        same :func:`repro.observability.ledger.code_version` the run
        ledger records), so a rebuilt world never serves stale results.
        """
        scenario = self.resolve()
        if code_version is None:
            from ..observability import ledger as _ledger

            code_version = _ledger.code_version()
        return {
            "scenario": scenario.name,
            "overrides": {k: self.overrides[k] for k in sorted(self.overrides)},
            "n_steps": self.resolved_steps(scenario),
            "test": bool(self.test),
            "preset": self.preset,
            "n_neighbors": self.n_neighbors,
            "error_detection": bool(self.error_detection),
            "backend": self.backend,
            "pair_engine": bool(self.pair_engine),
            "neighbor_cache": bool(self.neighbor_cache),
            "cache_skin": float(self.cache_skin),
            "guard": bool(self.guard),
            "chaos": self.chaos,
            "autotune": bool(self.autotune),
            "autotune_seed": int(self.autotune_seed),
            "code_version": code_version,
        }

    def content_hash(self, *, code_version: Optional[str] = None) -> str:
        """Stable sha256 over the canonical payload (the cache key)."""
        payload = canonical_spec_payload(
            self.canonical(code_version=code_version)
        )
        return hashlib.sha256(payload).hexdigest()

    # ------------------------------------------------------------------
    # Plain-data transport (socket protocol, worker processes)
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            f.name: (
                dict(getattr(self, f.name))
                if f.name == "overrides"
                else getattr(self, f.name)
            )
            for f in fields(self)
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec field(s) {sorted(unknown)}")
        return cls(**dict(data))

    def with_(self, **kwargs) -> "JobSpec":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    def describe(self) -> str:
        """One-line human summary (job listings, logs)."""
        bits = [self.scenario]
        if self.overrides:
            bits.append(
                ",".join(f"{k}={self.overrides[k]}" for k in sorted(self.overrides))
            )
        if self.n_steps is not None:
            bits.append(f"steps={self.n_steps}")
        if self.backend != "numpy":
            bits.append(self.backend)
        if self.guard:
            bits.append("guard")
        if self.chaos:
            bits.append(f"chaos={self.chaos}")
        return " ".join(bits)


def canonical_spec_payload(payload: Mapping[str, Any]) -> bytes:
    """Deterministic byte serialization of a canonical payload.

    Sorted keys, no whitespace variance, ASCII-only — the encoding is
    part of the cache contract, so two processes (or two hosts at the
    same code version) derive identical hashes for identical requests.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True,
        default=_reject_unstable,
    ).encode("ascii")


def _reject_unstable(obj: Any) -> Any:
    raise SpecError(
        f"spec overrides must be JSON-stable scalars/lists/dicts, "
        f"got {type(obj).__name__}"
    )
