"""Per-job event history with replay + live fan-out.

Every job keeps one ordered :class:`JobEventLog`.  Publishing appends
to the history and pushes to every live subscriber queue; subscribing
first replays the full history, then streams live — so a consumer that
attaches after the job started still sees ``queued, started, step(1),
...`` in order, and any number of subscribers observe the *same*
sequence (the fan-out-ordering guarantee the test suite asserts).

A terminal event (``done`` / ``failed`` / ``cancelled``) closes the
stream: subscribers receive it and then a ``None`` sentinel.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional

__all__ = ["TERMINAL_EVENTS", "JobEvent", "JobEventLog"]

TERMINAL_EVENTS = frozenset({"done", "failed", "cancelled"})


@dataclass(frozen=True)
class JobEvent:
    """One ordered occurrence in a job's life.

    ``type`` is one of: ``queued``, ``started``, ``step`` (periodic
    progress with step index / simulated time / dt), ``snapshot``
    (checkpoint written), ``recovered`` (worker death absorbed),
    ``done``, ``failed``, ``cancelled``.
    """

    seq: int
    job_id: str
    type: str
    payload: Dict[str, object] = field(default_factory=dict)
    ts: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "type": self.type,
            "payload": dict(self.payload),
            "ts": self.ts,
        }


class JobEventLog:
    """Ordered event history + live subscriber fan-out for one job."""

    def __init__(self, job_id: str, *, max_events: int = 100_000):
        self.job_id = job_id
        self.max_events = int(max_events)
        self.events: List[JobEvent] = []
        self.dropped = 0
        self.closed = False
        self._seq = 0
        self._subscribers: List[asyncio.Queue] = []

    def publish(self, type: str, **payload) -> Optional[JobEvent]:
        """Append one event and fan it out; returns it (None if dropped).

        Must be called from the owning event loop.  Progress events past
        ``max_events`` are counted in ``dropped`` rather than stored
        (bounded memory on very long jobs); terminal events always land.
        """
        if self.closed:
            return None
        if len(self.events) >= self.max_events and type not in TERMINAL_EVENTS:
            self.dropped += 1
            return None
        event = JobEvent(
            seq=self._seq,
            job_id=self.job_id,
            type=type,
            payload=payload,
            ts=time.time(),
        )
        self._seq += 1
        self.events.append(event)
        for q in self._subscribers:
            q.put_nowait(event)
        if type in TERMINAL_EVENTS:
            self.closed = True
            for q in self._subscribers:
                q.put_nowait(None)
            self._subscribers.clear()
        return event

    async def subscribe(self) -> AsyncIterator[JobEvent]:
        """Replay the history, then stream live until the terminal event.

        The replay snapshot and the live registration happen atomically
        with respect to ``publish`` (single event loop, no await between
        them), so no event is missed or duplicated at the seam.
        """
        q: Optional[asyncio.Queue] = None
        if not self.closed:
            q = asyncio.Queue()
            self._subscribers.append(q)
        history = list(self.events)
        for event in history:
            yield event
        if q is None:
            return
        try:
            while True:
                event = await q.get()
                if event is None:
                    return
                yield event
        finally:
            if q in self._subscribers:
                self._subscribers.remove(q)
