"""Content-addressed result store: the service's dedup cache.

A sqlite table mapping ``spec_hash`` (the :meth:`JobSpec.content_hash`
over IC parameters, resolved knobs and code version) to the finished
job's outcome: the ``RunReport`` JSON, the final-field sha256 digests
and the deterministic ``result_digest`` the acceptance gates compare.

Same durability posture as the run ledger it sits alongside
(:mod:`repro.observability.ledger`): WAL journaling with a busy
timeout so concurrent writers serialize, a schema-version stamp with a
refuse-newer rule, and quarantine-and-restart for files corrupted
beyond sqlite's own recovery — the cache is an optimization, never a
single point of failure.  ``":memory:"`` is accepted for ephemeral
(test / default local) services.

Store rows and ledger rows agree on ``run_id``: the service mints the
id before the run starts and hands it to the driver, so the row the
run appends to the ledger and the row the service writes here describe
the same execution under the same key.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["STORE_SCHEMA_VERSION", "CachedResult", "ResultStore"]

STORE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CachedResult:
    """One stored outcome, as read back from the store."""

    spec_hash: str
    run_id: str
    created_s: float
    scenario: str
    code_version: str
    n_steps: int
    result_digest: str
    #: The full :meth:`JobOutcome.as_dict` payload (report + digests).
    outcome: Dict[str, object]
    #: The exact stored JSON text — cache hits are *bit-identical* to the
    #: originating run's record, not merely equal after a parse round trip.
    raw: str


class ResultStore:
    """Append-mostly sqlite map ``spec_hash -> outcome`` (WAL, versioned)."""

    def __init__(self, path, *, timeout_s: float = 10.0):
        in_memory = path is None or str(path) == ":memory:"
        self.path = None if in_memory else Path(path)
        self.timeout_s = float(timeout_s)
        self._conn: Optional[sqlite3.Connection] = None
        try:
            self._conn = self._open()
        except sqlite3.DatabaseError:
            self._quarantine()
            self._conn = self._open()

    # -- lifecycle -----------------------------------------------------
    def _open(self) -> sqlite3.Connection:
        # check_same_thread=False: the owner constructs the store on one
        # thread and drives it from the manager's event-loop thread; all
        # access is serialized there, so cross-thread handoff is safe.
        if self.path is None:
            conn = sqlite3.connect(":memory:", check_same_thread=False)
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path),
                timeout=self.timeout_s,
                check_same_thread=False,
            )
        try:
            if self.path is not None:
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute(
                    f"PRAGMA busy_timeout={int(self.timeout_s * 1000)}"
                )
            self._ensure_schema(conn)
        except sqlite3.DatabaseError:
            conn.close()
            raise
        return conn

    def _quarantine(self) -> None:
        if self.path is None:
            raise sqlite3.DatabaseError("in-memory store failed to open")
        target = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, target)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                pass
        for suffix in ("-wal", "-shm"):
            try:
                Path(str(self.path) + suffix).unlink()
            except OSError:
                pass
        warnings.warn(
            f"result store at {self.path} was unreadable; quarantined to "
            f"{target} and starting a fresh store",
            RuntimeWarning,
            stacklevel=3,
        )

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS store_meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS results ("
                    "  spec_hash TEXT PRIMARY KEY,"
                    "  run_id TEXT NOT NULL,"
                    "  created_s REAL NOT NULL,"
                    "  scenario TEXT NOT NULL,"
                    "  code_version TEXT NOT NULL,"
                    "  n_steps INTEGER NOT NULL,"
                    "  result_digest TEXT NOT NULL,"
                    "  outcome TEXT NOT NULL)"
                )
                conn.execute(
                    "CREATE INDEX IF NOT EXISTS idx_results_scenario "
                    "ON results (scenario, code_version)"
                )
                conn.execute(
                    "INSERT INTO store_meta (key, value) VALUES "
                    "('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
                return
            version = int(row[0])
            if version > STORE_SCHEMA_VERSION:
                raise RuntimeError(
                    f"result store {self.path} has schema v{version}, newer "
                    f"than this code understands (v{STORE_SCHEMA_VERSION}); "
                    f"refusing to open it"
                )

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )

    # -- writes --------------------------------------------------------
    def put(
        self,
        spec_hash: str,
        outcome: Dict[str, object],
        *,
        raw: Optional[str] = None,
    ) -> bool:
        """Store one outcome under its spec hash.

        First-writer-wins: a concurrent duplicate execution (two
        managers racing on one store) keeps the earlier row so every
        later cache hit stays bit-identical to one canonical record.
        Returns ``True`` when this call inserted the row.
        """
        text = raw if raw is not None else json.dumps(outcome, sort_keys=True)
        with self._conn:
            cur = self._conn.execute(
                "INSERT OR IGNORE INTO results "
                "(spec_hash, run_id, created_s, scenario, code_version, "
                " n_steps, result_digest, outcome) "
                "VALUES (?,?,?,?,?,?,?,?)",
                (
                    spec_hash,
                    str(outcome["run_id"]),
                    time.time(),
                    str(outcome["scenario"]),
                    str(outcome["code_version"]),
                    int(outcome["steps"]),
                    str(outcome["result_digest"]),
                    text,
                ),
            )
        return cur.rowcount > 0

    # -- reads ---------------------------------------------------------
    def get(self, spec_hash: str) -> Optional[CachedResult]:
        row = self._conn.execute(
            "SELECT spec_hash, run_id, created_s, scenario, code_version, "
            "n_steps, result_digest, outcome FROM results WHERE spec_hash=?",
            (spec_hash,),
        ).fetchone()
        if row is None:
            return None
        return CachedResult(
            spec_hash=row[0],
            run_id=row[1],
            created_s=row[2],
            scenario=row[3],
            code_version=row[4],
            n_steps=row[5],
            result_digest=row[6],
            outcome=json.loads(row[7]),
            raw=row[7],
        )

    def entries(self, *, limit: Optional[int] = None) -> List[CachedResult]:
        """All cached results, newest first (``repro jobs`` listing)."""
        sql = (
            "SELECT spec_hash FROM results ORDER BY created_s DESC, "
            "spec_hash DESC"
        )
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [self.get(r[0]) for r in self._conn.execute(sql)]
