"""Process-isolation worker entry: one OS process, one job attempt.

The manager spawns :func:`process_worker_main` per job attempt.  The
child runs the shared :func:`~repro.service.runner.execute_spec` path,
streaming ``("step", {...})`` tuples over the pipe and finishing with
``("done", outcome_dict)`` or ``("error", message)``.  If the process
dies instead (SIGKILL, OOM, a segfaulting native kernel), the parent
sees pipe EOF + a dead process and respawns with the same job
directory — checkpoint autoresume then continues the run from the last
completed step rather than restarting it.

Top-level by design: the function must be importable under the
``spawn`` start method, not only ``fork``.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["process_worker_main"]


def process_worker_main(
    spec_dict: dict,
    spec_hash: Optional[str],
    job_dir: str,
    run_id: str,
    checkpoint_every: Optional[int],
    ledger_path: Optional[str],
    conn,
) -> None:
    """Run one job attempt; report through ``conn`` (then close it)."""
    from .runner import execute_spec
    from .spec import JobSpec

    try:
        spec = JobSpec.from_dict(spec_dict)

        def progress(payload: dict) -> None:
            try:
                conn.send(("step", payload))
            except (BrokenPipeError, OSError):
                # The manager went away; keep computing — the checkpoint
                # trail is still worth finishing for the next submit.
                pass

        outcome = execute_spec(
            spec,
            job_dir=job_dir,
            checkpoint_every=checkpoint_every,
            ledger_path=ledger_path,
            run_id=run_id,
            spec_hash=spec_hash,
            progress=progress,
        )
        conn.send(("done", outcome.as_dict()))
    except BaseException as exc:  # noqa: BLE001 - the process boundary
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
