"""The one spec → simulation → outcome execution path.

Everything that runs a :class:`~repro.service.spec.JobSpec` funnels
through :func:`execute_spec`: the service's worker slots (inline and
process isolation), the synchronous :func:`repro.api.run` wrapper and
the ``repro run`` CLI all build the simulation with
:func:`build_simulation` and roll the finished driver up with
:func:`outcome_from_simulation` — which is what makes "``repro.api
.submit`` and ``Simulation.run`` produce identical reports for the
same spec" a structural property rather than a test-enforced one.

The outcome carries sha256 digests of every final particle field plus a
deterministic ``result_digest`` over (steps, simulated time, digests) —
the bit-identity token the dedup cache and the kill-recovery acceptance
gate compare.  Wall-clock-dependent report sections (POP metrics, span
counts, checkpoint write seconds) are *not* digested: two bitwise-equal
runs never time identically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

__all__ = [
    "DIGEST_FIELDS",
    "field_digests",
    "result_digest",
    "JobOutcome",
    "build_simulation",
    "outcome_from_simulation",
    "execute_spec",
]

#: Particle arrays covered by the final-state digest — the full
#: dynamically-evolved SoA surface (positions, velocities, smoothing
#: lengths, thermodynamics and rates).
DIGEST_FIELDS = ("x", "v", "h", "m", "rho", "u", "p", "cs", "du", "a")


def field_digests(particles) -> Dict[str, str]:
    """sha256 of each final particle array's exact bytes."""
    out: Dict[str, str] = {}
    for name in DIGEST_FIELDS:
        arr = getattr(particles, name, None)
        if arr is None:
            continue
        out[name] = hashlib.sha256(arr.tobytes()).hexdigest()
    return out


def result_digest(steps: int, time: float, digests: Dict[str, str]) -> str:
    """Deterministic digest of a run's bit-level result.

    ``time`` enters via ``float.hex()`` so roundoff-identical clocks
    digest identically and any ULP of drift does not.
    """
    blob = json.dumps(
        {
            "steps": int(steps),
            "time": float(time).hex(),
            "fields": {k: digests[k] for k in sorted(digests)},
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("ascii")
    return hashlib.sha256(blob).hexdigest()


@dataclass(frozen=True)
class JobOutcome:
    """One finished job: identity, deterministic result, full report."""

    run_id: str
    spec_hash: str
    scenario: str
    code_version: str
    steps: int
    time: float
    n_particles: int
    drift: Dict[str, float]
    digests: Dict[str, str]
    result_digest: str
    report: Dict[str, Any]
    recoveries: int = 0
    cached: bool = False
    extra: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "spec_hash": self.spec_hash,
            "scenario": self.scenario,
            "code_version": self.code_version,
            "steps": self.steps,
            "time": self.time,
            "n_particles": self.n_particles,
            "drift": dict(self.drift),
            "digests": dict(self.digests),
            "result_digest": self.result_digest,
            "report": self.report,
            "recoveries": self.recoveries,
            "cached": self.cached,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobOutcome":
        return cls(**data)


def build_simulation(
    spec,
    *,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    ledger_path: Optional[str] = None,
    run_id: Optional[str] = None,
):
    """Resolve a spec into a ready-to-run driver.

    Returns ``(sim, scenario)``.  Raises
    :class:`~repro.service.spec.SpecError` for malformed specs — before
    any particle is allocated.
    """
    scenario = spec.resolve()
    sim = scenario.make_simulation(
        test=spec.test,
        run_config=spec.run_config(
            scenario,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            ledger_path=ledger_path,
        ),
        sim_config=spec.sim_config(scenario),
        **dict(spec.overrides),
    )
    if run_id is not None:
        sim.run_id = run_id
    return sim, scenario


def outcome_from_simulation(
    sim, spec, scenario, *, spec_hash: Optional[str] = None,
    recoveries: int = 0,
) -> JobOutcome:
    """Roll a finished driver up into the service's result record."""
    from ..observability import ledger as _ledger

    digests = field_digests(sim.particles)
    return JobOutcome(
        run_id=sim.run_id,
        spec_hash=spec_hash or spec.content_hash(),
        scenario=scenario.name,
        code_version=_ledger.code_version(),
        steps=int(sim.step_index),
        time=float(sim.time),
        n_particles=int(sim.particles.n),
        drift=sim.conservation_drift(),
        digests=digests,
        result_digest=result_digest(sim.step_index, sim.time, digests),
        report=sim.report().as_dict(),
        recoveries=recoveries,
    )


def execute_spec(
    spec,
    *,
    job_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    ledger_path: Optional[str] = None,
    run_id: Optional[str] = None,
    spec_hash: Optional[str] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    cancel_check: Optional[Callable[[], bool]] = None,
    recoveries: int = 0,
) -> JobOutcome:
    """Run one spec to completion and return its outcome.

    With ``job_dir`` set, rolling checkpoints land there and a restarted
    call with the same ``job_dir`` *resumes* (autoresume) instead of
    restarting — the worker-death absorption path.  ``progress`` is
    called once per completed step with a plain-dict step summary;
    ``cancel_check`` is polled between steps and aborts the run via the
    driver's cooperative cancellation point when it returns ``True``.
    """
    from ..core.simulation import RunCancelled  # noqa: F401 (re-export site)

    sim, scenario = build_simulation(
        spec,
        checkpoint_dir=job_dir,
        checkpoint_every=checkpoint_every,
        ledger_path=ledger_path,
        run_id=run_id,
    )
    kill_switch = None
    if spec.kill_at_step is not None and job_dir is not None:
        from ..resilience.chaos import ProcessKillFault

        kill_switch = ProcessKillFault(
            step=int(spec.kill_at_step),
            marker=str(job_dir) + "/kill.fired",
        )

    def on_step(stats) -> None:
        if progress is not None:
            progress(
                {
                    "step": stats.index,
                    "time": stats.time,
                    "dt": stats.dt,
                    "n_particles": stats.n_particles,
                }
            )
        if kill_switch is not None:
            kill_switch.maybe_fire(stats.index)
        if cancel_check is not None and cancel_check():
            sim.request_cancel()

    sim.on_step(on_step)
    try:
        target = spec.resolved_steps(scenario)
        # Autoresume first (explicitly, so the remaining-step count is
        # computed from the restored clock, not assumed from zero).
        if job_dir is not None and sim.step_index == 0:
            sim.resume()
        remaining = target - sim.step_index
        if remaining > 0:
            sim.run(n_steps=remaining)
        return outcome_from_simulation(
            sim, spec, scenario, spec_hash=spec_hash, recoveries=recoveries
        )
    finally:
        sim.close()
