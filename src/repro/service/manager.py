"""The asyncio job manager: dedup cache, fair-share dispatch, recovery.

:class:`ServiceManager` owns the whole job lifecycle on one event loop:

1. ``submit(spec)`` canonicalizes the spec and content-hashes it.
2. A hash already *running or queued* coalesces — the caller gets a
   handle onto the in-flight job (one execution, N subscribers).
3. A hash already in the durable :class:`~repro.service.store
   .ResultStore` is served from cache — a synthetic job that is born
   ``DONE`` with the stored outcome, no simulation, no ledger row.
4. Anything else is admitted to the bounded
   :class:`~repro.service.queue.FairShareQueue` (or rejected with
   :class:`~repro.service.queue.QueueFullError` backpressure) and
   picked up by one of ``max_workers`` dispatcher tasks.

Execution isolation is per manager: ``inline`` runs the simulation on a
thread (fast, shares the process — the load-bench posture), ``process``
forks one OS process per attempt and *respawns it on death*, publishing
a ``recovered`` event while checkpoint autoresume continues the run
from the last completed step (RUNNING → RECOVERED → ... → DONE).

:class:`LocalService` wraps a manager + private event-loop thread into
the synchronous facade :func:`repro.api.submit` builds on.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import itertools
import multiprocessing as mp
import os
import queue as _thread_queue
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Dict, Iterator, List, Optional

from .events import JobEventLog
from .queue import FairShareQueue, QueueFullError
from .runner import JobOutcome, execute_spec
from .spec import JobSpec
from .store import ResultStore
from .worker import process_worker_main

__all__ = [
    "JobState",
    "JobError",
    "JobFailedError",
    "JobCancelledError",
    "ServiceConfig",
    "ServiceManager",
    "JobHandle",
    "LocalService",
]


class JobState:
    """Job lifecycle states (plain strings, stable wire format)."""

    QUEUED = "queued"
    RUNNING = "running"
    RECOVERED = "recovered"  # transient: worker died, respawn resumed it
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class JobError(RuntimeError):
    """Base for job-terminal errors raised from ``JobHandle.result()``."""


class JobFailedError(JobError):
    """The job ran and failed; ``str(exc)`` carries the worker's error."""


class JobCancelledError(JobError):
    """The job was cancelled before producing a result."""


@dataclass(frozen=True)
class ServiceConfig:
    """Manager-level knobs (per-job knobs live on the JobSpec).

    ``isolation`` selects the worker-slot style: ``"process"`` (default)
    forks one OS process per attempt and absorbs worker death via
    checkpoint autoresume + respawn; ``"inline"`` runs on a thread in
    this process — no death absorption, much lower per-job overhead.
    """

    store_path: Optional[str] = None  # None -> in-memory (non-durable)
    jobs_dir: Optional[str] = None  # None -> fresh temp dir
    ledger_path: Optional[str] = None
    isolation: str = "process"
    max_workers: int = 2
    queue_capacity: int = 64
    max_recoveries: int = 3
    checkpoint_every: int = 1
    history_limit: int = 256  # terminal jobs kept for `repro jobs`

    def __post_init__(self):
        if self.isolation not in ("inline", "process"):
            raise ValueError(
                f"isolation must be 'inline' or 'process', "
                f"got {self.isolation!r}"
            )
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")


@dataclass
class _Job:
    """Manager-internal job record (handles hold a reference to one)."""

    job_id: str
    spec: JobSpec
    spec_hash: str
    tenant: str
    log: JobEventLog
    state: str = JobState.QUEUED
    state_history: List[str] = field(default_factory=list)
    outcome: Optional[JobOutcome] = None
    error: Optional[str] = None
    cached: bool = False
    recoveries: int = 0
    submitted_s: float = 0.0
    finished_s: float = 0.0
    done: asyncio.Event = field(default_factory=asyncio.Event)
    cancel_flag: threading.Event = field(default_factory=threading.Event)

    def set_state(self, state: str) -> None:
        self.state = state
        self.state_history.append(state)

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "job_id": self.job_id,
            "spec_hash": self.spec_hash,
            "scenario": self.spec.scenario,
            "tenant": self.tenant,
            "state": self.state,
            "state_history": list(self.state_history),
            "cached": self.cached,
            "recoveries": self.recoveries,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.outcome is not None:
            out["result_digest"] = self.outcome.result_digest
            out["run_id"] = self.outcome.run_id
        return out


class JobHandle:
    """The caller's view of one submitted job (async side).

    ``await result()`` resolves to the :class:`JobOutcome` (raising
    :class:`JobFailedError` / :class:`JobCancelledError` on the
    unhappy paths); ``events()`` replays then streams the job's event
    log; ``status()`` is an instantaneous snapshot.  Coalesced submits
    share one job, so N handles may watch one execution.
    """

    def __init__(self, manager: "ServiceManager", job: _Job):
        self._manager = manager
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.job_id

    @property
    def spec(self) -> JobSpec:
        return self._job.spec

    @property
    def spec_hash(self) -> str:
        return self._job.spec_hash

    @property
    def state(self) -> str:
        return self._job.state

    def status(self) -> Dict[str, Any]:
        return self._job.snapshot()

    async def result(self) -> JobOutcome:
        await self._job.done.wait()
        if self._job.state == JobState.CANCELLED:
            raise JobCancelledError(f"job {self.job_id} was cancelled")
        if self._job.outcome is None:
            raise JobFailedError(self._job.error or f"job {self.job_id} failed")
        return self._job.outcome

    def events(self) -> AsyncIterator:
        return self._job.log.subscribe()

    async def cancel(self) -> bool:
        return await self._manager.cancel(self.job_id)


class ServiceManager:
    """Asyncio job manager: submit/dedup/dispatch/recover on one loop."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self.store = ResultStore(self.config.store_path)
        self.queue = FairShareQueue(self.config.queue_capacity)
        self.jobs: Dict[str, _Job] = {}
        self._inflight: Dict[str, _Job] = {}  # spec_hash -> live job
        self._workers: List[asyncio.Task] = []
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.max_workers,
            thread_name_prefix="repro-service",
        )
        self._jobs_dir = self.config.jobs_dir or tempfile.mkdtemp(
            prefix="repro-jobs-"
        )
        os.makedirs(self._jobs_dir, exist_ok=True)
        self._ids = itertools.count(1)
        self._running = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Exponentially-weighted mean job seconds, for retry_after.
        self._ewma_job_s = 0.0
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "executed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "rejected": 0,
            "recoveries": 0,
            "failed": 0,
            "cancelled": 0,
        }

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ServiceManager":
        if self._running:
            return self
        self._running = True
        self._loop = asyncio.get_running_loop()
        for i in range(self.config.max_workers):
            self._workers.append(
                asyncio.ensure_future(self._worker_loop(i))
            )
        return self

    async def close(self) -> None:
        if not self._running:
            return
        self._running = False
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers.clear()
        self._pool.shutdown(wait=False)
        self.store.close()

    # -- submission ----------------------------------------------------

    async def submit(self, spec: JobSpec, *, tenant: str = "anon") -> JobHandle:
        """Admit one request: coalesce, serve from cache, or enqueue.

        Raises :class:`~repro.service.spec.SpecError` on a malformed
        spec and :class:`~repro.service.queue.QueueFullError` when the
        admission queue is at capacity.
        """
        spec.resolve()  # SpecError before any bookkeeping
        spec_hash = spec.content_hash()
        self.stats["submitted"] += 1

        # 1. Coalesce with an identical in-flight job.
        live = self._inflight.get(spec_hash)
        if live is not None and live.state not in JobState.TERMINAL:
            self.stats["coalesced"] += 1
            return JobHandle(self, live)

        job_id = f"job-{next(self._ids):05d}"
        job = _Job(
            job_id=job_id,
            spec=spec,
            spec_hash=spec_hash,
            tenant=tenant,
            log=JobEventLog(job_id),
            submitted_s=time.time(),
        )
        self.jobs[job_id] = job
        self._trim_history()

        # 2. Serve from the durable cache: born DONE, no simulation run,
        #    and — deliberately — no ledger row (nothing executed).
        cached = self.store.get(spec_hash)
        if cached is not None:
            self.stats["cache_hits"] += 1
            job.cached = True
            outcome_dict = dict(cached.outcome)
            outcome_dict["cached"] = True
            job.outcome = JobOutcome.from_dict(outcome_dict)
            job.set_state(JobState.DONE)
            job.finished_s = time.time()
            job.log.publish(
                "queued", tenant=tenant, spec_hash=spec_hash, cached=True
            )
            job.log.publish(
                "done",
                cached=True,
                run_id=cached.run_id,
                result_digest=cached.result_digest,
            )
            job.done.set()
            return JobHandle(self, job)

        # 3. Fresh work: admit or reject with backpressure.
        try:
            self.queue.put_nowait(
                job, tenant=tenant, retry_after=self._retry_after()
            )
        except QueueFullError:
            self.stats["rejected"] += 1
            del self.jobs[job.job_id]
            raise
        self._inflight[spec_hash] = job
        job.log.publish("queued", tenant=tenant, spec_hash=spec_hash)
        return JobHandle(self, job)

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; no-op on terminal states."""
        job = self.jobs.get(job_id)
        if job is None or job.state in JobState.TERMINAL:
            return False
        if job.state == JobState.QUEUED and self.queue.remove(job):
            self._finish(job, JobState.CANCELLED)
            return True
        job.cancel_flag.set()
        return True

    # -- dispatch ------------------------------------------------------

    async def _worker_loop(self, slot: int) -> None:
        while True:
            job = await self.queue.get()
            if job.state in JobState.TERMINAL:  # cancelled while queued
                continue
            started = time.time()
            try:
                await self._execute(job)
            finally:
                if job.state == JobState.DONE and not job.cached:
                    elapsed = time.time() - started
                    self._ewma_job_s = (
                        elapsed
                        if self._ewma_job_s == 0.0
                        else 0.7 * self._ewma_job_s + 0.3 * elapsed
                    )

    async def _execute(self, job: _Job) -> None:
        from ..core.simulation import RunCancelled
        from ..observability.ledger import new_run_id

        job.set_state(JobState.RUNNING)
        job.log.publish("started", isolation=self.config.isolation)
        run_id = new_run_id(job.spec.scenario)
        job_dir = os.path.join(self._jobs_dir, job.job_id)
        try:
            if self.config.isolation == "process":
                outcome = await self._run_in_process(job, job_dir, run_id)
            else:
                outcome = await self._run_inline(job, job_dir, run_id)
        except RunCancelled:
            self._finish(job, JobState.CANCELLED)
            return
        except Exception as exc:  # noqa: BLE001 - job boundary
            job.error = f"{type(exc).__name__}: {exc}"
            self._finish(job, JobState.FAILED)
            return
        job.outcome = outcome
        self.stats["executed"] += 1
        self.store.put(job.spec_hash, outcome.as_dict())
        self._finish(job, JobState.DONE)

    def _finish(self, job: _Job, state: str) -> None:
        job.set_state(state)
        job.finished_s = time.time()
        self._inflight.pop(job.spec_hash, None)
        if state == JobState.DONE:
            job.log.publish(
                "done",
                cached=False,
                run_id=job.outcome.run_id,
                result_digest=job.outcome.result_digest,
                recoveries=job.recoveries,
            )
        elif state == JobState.FAILED:
            self.stats["failed"] += 1
            job.log.publish("failed", error=job.error)
        elif state == JobState.CANCELLED:
            self.stats["cancelled"] += 1
            job.log.publish("cancelled")
        job.done.set()

    # -- inline isolation ---------------------------------------------

    async def _run_inline(
        self, job: _Job, job_dir: str, run_id: str
    ) -> JobOutcome:
        loop = asyncio.get_running_loop()
        publish = job.log.publish

        def progress(payload: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                functools.partial(publish, "step", **payload)
            )

        return await loop.run_in_executor(
            self._pool,
            lambda: execute_spec(
                job.spec,
                job_dir=None,  # same process: death absorption is moot
                ledger_path=self.config.ledger_path,
                run_id=run_id,
                spec_hash=job.spec_hash,
                progress=progress,
                cancel_check=job.cancel_flag.is_set,
            ),
        )

    # -- process isolation + respawn-on-death --------------------------

    async def _run_in_process(
        self, job: _Job, job_dir: str, run_id: str
    ) -> JobOutcome:
        """One job, N attempts: spawn, monitor, respawn until a verdict.

        A child that exits without sending ``done``/``error`` *died*
        (SIGKILL, crash).  The respawn reuses the same ``job_dir``, so
        checkpoint autoresume continues from the last completed step —
        the manager publishes ``recovered`` and the job transitions
        RUNNING → RECOVERED → RUNNING rather than restarting.
        """
        os.makedirs(job_dir, exist_ok=True)
        loop = asyncio.get_running_loop()
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        spec_dict = job.spec.as_dict()
        while True:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=process_worker_main,
                args=(
                    spec_dict,
                    job.spec_hash,
                    job_dir,
                    run_id,
                    self.config.checkpoint_every,
                    self.config.ledger_path,
                    child_conn,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            outcome_dict: Optional[Dict[str, Any]] = None
            error: Optional[str] = None
            try:
                while True:
                    if job.cancel_flag.is_set():
                        proc.terminate()
                        await loop.run_in_executor(None, proc.join)
                        from ..core.simulation import RunCancelled

                        raise RunCancelled(0)
                    ready = await loop.run_in_executor(
                        None, parent_conn.poll, 0.05
                    )
                    if ready:
                        try:
                            kind, payload = parent_conn.recv()
                        except EOFError:
                            break
                        if kind == "step":
                            job.log.publish("step", **payload)
                        elif kind == "done":
                            outcome_dict = payload
                            break
                        elif kind == "error":
                            error = payload
                            break
                    elif not proc.is_alive():
                        break
                await loop.run_in_executor(None, proc.join)
            finally:
                parent_conn.close()
            if outcome_dict is not None:
                outcome_dict["recoveries"] = job.recoveries
                return JobOutcome.from_dict(outcome_dict)
            if error is not None:
                raise JobFailedError(error)
            # Death without a verdict: absorb it and respawn.
            job.recoveries += 1
            self.stats["recoveries"] += 1
            if job.recoveries > self.config.max_recoveries:
                raise JobFailedError(
                    f"worker died {job.recoveries} times "
                    f"(exitcode {proc.exitcode}); giving up"
                )
            job.set_state(JobState.RECOVERED)
            job.log.publish(
                "recovered",
                exitcode=proc.exitcode,
                respawn=job.recoveries,
            )
            job.set_state(JobState.RUNNING)

    # -- introspection -------------------------------------------------

    def handle(self, job_id: str) -> Optional[JobHandle]:
        job = self.jobs.get(job_id)
        return JobHandle(self, job) if job is not None else None

    def jobs_snapshot(self) -> List[Dict[str, Any]]:
        return [job.snapshot() for job in self.jobs.values()]

    def stats_snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = dict(self.stats)
        submitted = out["submitted"] or 1
        out["served_from_cache"] = (
            (out["cache_hits"] + out["coalesced"]) / submitted
        )
        out["queue_depth"] = len(self.queue)
        out["store_entries"] = len(self.store)
        out["isolation"] = self.config.isolation
        return out

    def _retry_after(self) -> float:
        per_job = self._ewma_job_s or 1.0
        waves = (len(self.queue) + 1) / max(1, self.config.max_workers)
        return round(max(0.1, per_job * waves), 3)

    def _trim_history(self) -> None:
        """Bound the terminal-job history (live jobs are never evicted)."""
        excess = len(self.jobs) - self.config.history_limit
        if excess <= 0:
            return
        for job_id in [
            jid
            for jid, j in self.jobs.items()
            if j.state in JobState.TERMINAL
        ][:excess]:
            del self.jobs[job_id]


# ---------------------------------------------------------------------------
# Synchronous facade
# ---------------------------------------------------------------------------


class SyncJobHandle:
    """Blocking view of a job, for synchronous callers (api/CLI)."""

    def __init__(self, service: "LocalService", handle: JobHandle):
        self._service = service
        self._handle = handle

    @property
    def job_id(self) -> str:
        return self._handle.job_id

    @property
    def spec(self) -> JobSpec:
        return self._handle.spec

    @property
    def spec_hash(self) -> str:
        return self._handle.spec_hash

    @property
    def state(self) -> str:
        return self._handle.state

    def status(self) -> Dict[str, Any]:
        return self._handle.status()

    def result(self, timeout: Optional[float] = None) -> JobOutcome:
        return self._service._call(self._handle.result(), timeout=timeout)

    def cancel(self) -> bool:
        return self._service._call(self._handle.cancel())

    def events(self) -> Iterator:
        """Blocking generator over the job's event stream."""
        bridge: "_thread_queue.Queue" = _thread_queue.Queue()

        async def pump() -> None:
            try:
                async for event in self._handle.events():
                    bridge.put(event)
            finally:
                bridge.put(None)

        self._service._spawn(pump())
        while True:
            event = bridge.get()
            if event is None:
                return
            yield event


class LocalService:
    """In-process service on a background event-loop thread.

    The synchronous face of :class:`ServiceManager` — what
    :func:`repro.api.submit` and single-process CLI use.  Same dedup
    cache, same queue, same worker slots; just bridged so plain code
    can call ``submit(...).result()`` without touching asyncio.
    """

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-service-loop",
            daemon=True,
        )
        self._thread.start()
        self.manager = ServiceManager(self.config)
        self._call(self.manager.start())
        self._closed = False

    def _call(self, coro, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result(timeout)

    def _spawn(self, coro) -> None:
        asyncio.run_coroutine_threadsafe(coro, self._loop)

    def submit(self, spec: JobSpec, *, tenant: str = "anon") -> SyncJobHandle:
        handle = self._call(self.manager.submit(spec, tenant=tenant))
        return SyncJobHandle(self, handle)

    def run(self, spec: JobSpec, *, tenant: str = "anon") -> JobOutcome:
        """Submit and block for the outcome (convenience)."""
        return self.submit(spec, tenant=tenant).result()

    def handle(self, job_id: str) -> Optional[SyncJobHandle]:
        job = self.manager.jobs.get(job_id)
        if job is None:
            return None
        return SyncJobHandle(self, JobHandle(self.manager, job))

    def jobs(self) -> List[Dict[str, Any]]:
        return self.manager.jobs_snapshot()

    def stats(self) -> Dict[str, Any]:
        return self.manager.stats_snapshot()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self.manager.close(), timeout=10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop.close()

    def __enter__(self) -> "LocalService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
