"""Bounded fair-share admission queue with reject-with-retry-after.

Fairness is per *tenant* (the submitter identity a transport supplies —
one CLI connection, one API caller): each tenant gets its own FIFO lane
and the dispatcher round-robins across lanes, so a tenant that dumps a
thousand jobs cannot starve one that submits a single run.  Capacity is
global; an admission beyond it raises :class:`QueueFullError` carrying
a ``retry_after`` estimate instead of growing without bound — the
backpressure contract the load bench exercises.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Optional

__all__ = ["QueueFullError", "FairShareQueue"]


class QueueFullError(Exception):
    """Admission rejected: the queue is at capacity.

    ``retry_after`` is the server's estimate (seconds) of when capacity
    frees up — transports surface it verbatim (HTTP would call this a
    429 with ``Retry-After``).
    """

    def __init__(self, retry_after: float, depth: int):
        self.retry_after = float(retry_after)
        self.depth = int(depth)
        super().__init__(
            f"queue full ({depth} queued); retry after {retry_after:.2f}s"
        )


class FairShareQueue:
    """Bounded multi-lane FIFO with round-robin dispatch.

    Not thread-safe: all calls must come from the owning event loop
    (the manager's), which is also what makes the unlocked bookkeeping
    below safe.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lanes: "OrderedDict[str, Deque[Any]]" = OrderedDict()
        self._size = 0
        self._ready = asyncio.Event()

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def put_nowait(
        self, item: Any, *, tenant: str = "anon",
        retry_after: float = 1.0,
    ) -> None:
        """Admit one item to the tenant's lane or reject with backpressure."""
        if self._size >= self.capacity:
            raise QueueFullError(retry_after, self._size)
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = self._lanes[tenant] = deque()
        lane.append(item)
        self._size += 1
        self._ready.set()

    def get_nowait(self) -> Optional[Any]:
        """Next item, round-robin across tenants; ``None`` when empty.

        The served tenant's lane moves to the back, so lanes take turns
        regardless of their depth.
        """
        for tenant, lane in self._lanes.items():
            item = lane.popleft()
            self._size -= 1
            if lane:
                self._lanes.move_to_end(tenant)
            else:
                del self._lanes[tenant]
            if self._size == 0:
                self._ready.clear()
            return item
        return None

    async def get(self) -> Any:
        """Await the next item (round-robin fair across tenants)."""
        while True:
            if self._size:
                return self.get_nowait()
            self._ready.clear()
            await self._ready.wait()

    def remove(self, item: Any) -> bool:
        """Withdraw a queued item (job cancellation); True if found."""
        for tenant, lane in list(self._lanes.items()):
            try:
                lane.remove(item)
            except ValueError:
                continue
            self._size -= 1
            if not lane:
                del self._lanes[tenant]
            if self._size == 0:
                self._ready.clear()
            return True
        return False

    def depths(self) -> Dict[str, int]:
        """Per-tenant queue depths (diagnostics / ``repro jobs``)."""
        return {tenant: len(lane) for tenant, lane in self._lanes.items()}
