"""Simulation-as-a-service: async job farm with a content-addressed cache.

ROADMAP item 4, the production-traffic axis.  The runtime below this
package is parallel, self-healing, self-measuring and autotuned — but a
run is still one blocking :meth:`~repro.core.simulation.Simulation.run`
call.  This package turns it into a service:

:mod:`repro.service.spec`
    :class:`JobSpec` — one simulation request (scenario + typed config
    overrides), canonicalized into a stable content hash over the IC
    parameters, the resolved run-config knobs and the code version.
:mod:`repro.service.store`
    :class:`ResultStore` — durable sqlite map ``spec_hash -> outcome``
    (run report JSON + final-field digests), the dedup cache.
:mod:`repro.service.queue`
    :class:`FairShareQueue` — bounded fair-share admission queue with
    reject-with-retry-after backpressure.
:mod:`repro.service.events`
    :class:`JobEventLog` — per-job ordered event history with replay +
    live fan-out to any number of subscribers.
:mod:`repro.service.runner`
    :func:`execute_spec` — the one synchronous spec → simulation → outcome
    path shared by the service workers, ``repro.api.run`` and the CLI.
:mod:`repro.service.manager`
    :class:`ServiceManager` — the asyncio job manager tying it together,
    plus the :class:`LocalService` synchronous facade behind
    :func:`repro.api.submit`.
:mod:`repro.service.server`
    The ``repro serve`` / ``repro submit`` UNIX-socket JSON-lines
    transport.
"""

from .events import JobEvent, JobEventLog
from .manager import (
    JobHandle,
    JobState,
    LocalService,
    ServiceConfig,
    ServiceManager,
)
from .queue import FairShareQueue, QueueFullError
from .runner import JobOutcome, execute_spec, field_digests
from .spec import JobSpec, SpecError
from .store import CachedResult, ResultStore

__all__ = [
    "JobSpec",
    "SpecError",
    "JobOutcome",
    "execute_spec",
    "field_digests",
    "ResultStore",
    "CachedResult",
    "FairShareQueue",
    "QueueFullError",
    "JobEvent",
    "JobEventLog",
    "JobState",
    "JobHandle",
    "ServiceConfig",
    "ServiceManager",
    "LocalService",
]
