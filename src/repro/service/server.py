"""UNIX-socket JSON-lines transport for the service.

One request per connection, newline-delimited JSON both ways — trivial
to drive from ``nc``, scripts, or the bundled client helpers the CLI
uses.  Ops:

``{"op": "submit", "spec": {...}, "tenant": "...", "wait": true,
"events": false}``
    Submit a spec.  Immediate ack line
    ``{"ok": true, "job_id": ..., "cached": ...}``; with ``events``
    each job event follows as ``{"event": {...}}`` lines; with ``wait``
    the final line is ``{"ok": true, "outcome": {...}}`` (or
    ``{"ok": false, "error": ...}``).  A full queue answers
    ``{"ok": false, "error": "queue_full", "retry_after": ...}``.
``{"op": "jobs"}`` / ``{"op": "stats"}``
    Snapshot listings.
``{"op": "status", "job_id": ...}``
    One job's snapshot.
``{"op": "cancel", "job_id": ...}``
    Cooperative cancellation.
``{"op": "shutdown"}``
    Stop the server loop.

The socket lives at a filesystem path, so "who may submit" is exactly
"who may open the socket file" — no auth layer of its own.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Any, Dict, Iterator, Optional

from .manager import (
    JobCancelledError,
    JobFailedError,
    ServiceConfig,
    ServiceManager,
)
from .queue import QueueFullError
from .spec import JobSpec, SpecError

__all__ = ["ServiceServer", "serve_forever", "client_request", "client_submit"]


class ServiceServer:
    """Bind a :class:`ServiceManager` to a UNIX socket."""

    def __init__(self, socket_path: str, config: Optional[ServiceConfig] = None):
        self.socket_path = str(socket_path)
        self.manager = ServiceManager(config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    async def start(self) -> "ServiceServer":
        await self.manager.start()
        self._server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path
        )
        return self

    async def serve_until_shutdown(self) -> None:
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close()

    # -- the wire ------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await self._send(writer, ok=False, error=f"bad json: {exc}")
                return
            await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        op = request.get("op")
        if op == "submit":
            await self._op_submit(request, writer)
        elif op == "jobs":
            await self._send(
                writer, ok=True, jobs=self.manager.jobs_snapshot()
            )
        elif op == "stats":
            await self._send(
                writer, ok=True, stats=self.manager.stats_snapshot()
            )
        elif op == "status":
            handle = self.manager.handle(str(request.get("job_id")))
            if handle is None:
                await self._send(writer, ok=False, error="unknown job_id")
            else:
                await self._send(writer, ok=True, job=handle.status())
        elif op == "cancel":
            ok = await self.manager.cancel(str(request.get("job_id")))
            await self._send(writer, ok=ok)
        elif op == "shutdown":
            await self._send(writer, ok=True)
            self._shutdown.set()
        else:
            await self._send(writer, ok=False, error=f"unknown op: {op!r}")

    async def _op_submit(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        try:
            spec = JobSpec.from_dict(dict(request.get("spec") or {}))
            handle = await self.manager.submit(
                spec, tenant=str(request.get("tenant", "anon"))
            )
        except SpecError as exc:
            await self._send(writer, ok=False, error=f"bad spec: {exc}")
            return
        except QueueFullError as exc:
            await self._send(
                writer,
                ok=False,
                error="queue_full",
                retry_after=exc.retry_after,
                depth=exc.depth,
            )
            return
        await self._send(
            writer,
            ok=True,
            job_id=handle.job_id,
            spec_hash=handle.spec_hash,
            state=handle.state,
        )
        if request.get("events"):
            async for event in handle.events():
                await self._send(writer, event=event.as_dict())
        if request.get("wait"):
            try:
                outcome = await handle.result()
                await self._send(writer, ok=True, outcome=outcome.as_dict())
            except JobCancelledError:
                await self._send(writer, ok=False, error="cancelled")
            except JobFailedError as exc:
                await self._send(writer, ok=False, error=str(exc))

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, **payload) -> None:
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        await writer.drain()


async def _serve(socket_path: str, config: Optional[ServiceConfig]) -> None:
    server = await ServiceServer(socket_path, config).start()
    await server.serve_until_shutdown()


def serve_forever(
    socket_path: str, config: Optional[ServiceConfig] = None
) -> None:
    """Blocking entry point for ``repro serve``."""
    asyncio.run(_serve(socket_path, config))


# -- synchronous client helpers (the `repro submit` / `repro jobs` side) --


def client_request(
    socket_path: str, request: Dict[str, Any], *, timeout: float = 600.0
) -> Dict[str, Any]:
    """Send one request, return the first response line."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            line = stream.readline()
    if not line:
        raise ConnectionError("server closed the connection without a reply")
    return json.loads(line)


def client_submit(
    socket_path: str,
    spec: JobSpec,
    *,
    tenant: str = "cli",
    wait: bool = True,
    events: bool = False,
    timeout: float = 600.0,
) -> Iterator[Dict[str, Any]]:
    """Submit over the socket, yielding each response line as a dict."""
    request = {
        "op": "submit",
        "spec": spec.as_dict(),
        "tenant": tenant,
        "wait": wait,
        "events": events,
    }
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(request).encode("utf-8") + b"\n")
        with sock.makefile("r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    yield json.loads(line)
