"""Momentum and energy equations (Algorithm 1, step 3).

One fused pass over the pair list evaluates the pressure-gradient
acceleration and the internal-energy rate:

    dv_i/dt = - sum_j m_j [ P_i/(Omega_i rho_i^2) G^(i)_ij
                          + P_j/(Omega_j rho_j^2) G^(j)_ij
                          + Pi_ij Gbar_ij ]
    du_i/dt =   P_i/(Omega_i rho_i^2) sum_j m_j v_ij . G^(i)_ij
              + 1/2 sum_j m_j Pi_ij v_ij . Gbar_ij

where ``G`` is either the standard kernel gradient or the IAD operator
(Tables 1-2 "Gradients"), ``Pi_ij`` the Monaghan artificial viscosity and
``Omega`` the optional grad-h factors.  Because ``G_ij = -G_ji`` for both
operators, the pairwise exchange conserves linear momentum exactly (and
angular momentum for the standard operator, which is central).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..gradients.iad import compute_iad_matrices, iad_pair_gradients
from ..gradients.kernel_gradient import kernel_pair_gradients
from ..kernels.base import Kernel
from ..tree.box import Box
from ..tree.neighborlist import NeighborList
from .density import grad_h_terms
from .viscosity import ViscosityParams, balsara_switch, pairwise_viscosity

__all__ = ["ForceResult", "compute_forces", "velocity_divergence_curl"]


@dataclass(frozen=True)
class ForceResult:
    """Output of the force loop."""

    a: np.ndarray
    du: np.ndarray
    max_mu: float  # viscous signal speed diagnostic for the time step


def velocity_divergence_curl(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    rows: Tuple[int, int] | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """SPH estimates of ``div v`` and ``|curl v|`` per particle.

    ``rows`` restricts the evaluation to a query-row slice (pool fan-out).
    """
    if rows is None:
        lo, hi = 0, particles.n
        sub = nlist
    else:
        lo, hi = rows
        sub = nlist.row_slice(lo, hi)
    i = sub.pair_i() + lo
    j = sub.indices
    dx, r = sub.pair_geometry(particles.x, box, row_offset=lo)
    dim = particles.dim
    rho = particles.rho[lo:hi]
    grad = kernel.gradient(dx, r, particles.h[i], dim)
    v_ij = particles.v[i] - particles.v[j]
    mj = particles.m[j]
    div = -sub.reduce(mj * np.einsum("kd,kd->k", v_ij, grad)) / rho
    if dim == 3:
        cross = np.cross(v_ij, grad)
        curl_vec = sub.reduce(mj[:, None] * cross)
        curl = np.sqrt(np.einsum("kd,kd->k", curl_vec, curl_vec)) / rho
    elif dim == 2:
        cz = v_ij[:, 0] * grad[:, 1] - v_ij[:, 1] * grad[:, 0]
        curl = np.abs(sub.reduce(mj * cz)) / rho
    else:
        curl = np.zeros(hi - lo)
    return div, curl


def compute_forces(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    *,
    gradients: str = "standard",
    viscosity: ViscosityParams = ViscosityParams(),
    grad_h: bool = False,
    c_matrices: np.ndarray | None = None,
    rows: Tuple[int, int] | None = None,
    omega: np.ndarray | None = None,
    balsara_f: np.ndarray | None = None,
) -> ForceResult:
    """Evaluate accelerations and energy rates; updates particles in place.

    Parameters
    ----------
    gradients:
        ``"standard"`` (kernel derivatives) or ``"iad"``.
    c_matrices:
        Pre-computed IAD matrices; computed here when omitted.
    grad_h:
        Apply grad-h ``Omega`` corrections to the pressure terms.
    rows:
        Optional query-row range ``(lo, hi)``: evaluate only those rows
        and return slice-sized arrays without touching
        ``particles.a``/``particles.du`` (pool fan-out mode).  Slice mode
        requires every cross-particle input to be global: ``c_matrices``
        for IAD, ``omega`` when ``grad_h``, ``balsara_f`` when the
        viscosity uses the Balsara switch.
    omega, balsara_f:
        Pre-computed global grad-h factors / Balsara limiter values; both
        are computed here when omitted (serial path).
    """
    if gradients not in ("standard", "iad"):
        raise ValueError(f"gradients must be 'standard' or 'iad', got {gradients!r}")
    if np.any(particles.rho <= 0.0):
        raise ValueError("densities must be computed (positive) before forces")

    if rows is None:
        lo, hi = 0, particles.n
        sub = nlist
    else:
        lo, hi = rows
        sub = nlist.row_slice(lo, hi)
        if gradients == "iad" and c_matrices is None:
            raise ValueError("slice mode needs pre-computed global c_matrices")
        if grad_h and omega is None:
            raise ValueError("slice mode needs pre-computed global omega")
        if viscosity.use_balsara and balsara_f is None:
            raise ValueError("slice mode needs pre-computed global balsara_f")
    i = sub.pair_i() + lo
    j = sub.indices
    dx, r = sub.pair_geometry(particles.x, box, row_offset=lo)
    dim = particles.dim
    h_i = particles.h[i]
    h_j = particles.h[j]

    if gradients == "standard":
        pg = kernel_pair_gradients(kernel, dx, r, h_i, h_j, dim)
    else:
        if c_matrices is None:
            c_matrices = compute_iad_matrices(particles, nlist, kernel, box)
        pg = iad_pair_gradients(c_matrices, kernel, i, j, dx, r, h_i, h_j, dim)

    if omega is None:
        omega = (
            grad_h_terms(particles, nlist, kernel, box)
            if grad_h
            else np.ones(particles.n)
        )
    p_over = particles.p / (omega * particles.rho**2)

    v_ij = particles.v[i] - particles.v[j]
    balsara_i = balsara_j = None
    if viscosity.use_balsara:
        if balsara_f is None:
            div_v, curl_v = velocity_divergence_curl(particles, nlist, kernel, box)
            balsara_f = balsara_switch(div_v, curl_v, particles.cs, particles.h)
        balsara_i, balsara_j = balsara_f[i], balsara_f[j]
    pi_ij = pairwise_viscosity(
        viscosity,
        dx,
        r,
        v_ij,
        h_i,
        h_j,
        particles.rho[i],
        particles.rho[j],
        particles.cs[i],
        particles.cs[j],
        balsara_i,
        balsara_j,
    )

    mj = particles.m[j]
    gbar = pg.mean
    pressure_pair = p_over[i][:, None] * pg.gi + p_over[j][:, None] * pg.gj
    acc_pair = -mj[:, None] * (pressure_pair + pi_ij[:, None] * gbar)
    a = sub.reduce(acc_pair)

    vdot_gi = np.einsum("kd,kd->k", v_ij, pg.gi)
    vdot_gbar = np.einsum("kd,kd->k", v_ij, gbar)
    du = p_over[lo:hi] * sub.reduce(mj * vdot_gi) + 0.5 * sub.reduce(
        mj * pi_ij * vdot_gbar
    )

    # Viscous signal diagnostic: max |mu_ij| enters the CFL criterion.
    # Restricted to pairs inside the true kernel support so padded
    # Verlet-skin lists (repro.tree.neighborlist.VerletNeighborCache)
    # yield exactly the fresh-list value; on exact lists the mask is a
    # no-op because the symmetric cutoff *is* the support.
    hbar = 0.5 * (h_i + h_j)
    vdotr = np.einsum("kd,kd->k", v_ij, dx)
    in_support = r <= kernel.support * np.maximum(h_i, h_j)
    with np.errstate(invalid="ignore", divide="ignore"):
        mu = np.where(
            (vdotr < 0.0) & in_support,
            hbar * vdotr / (r * r + viscosity.eta**2 * hbar * hbar),
            0.0,
        )
    max_mu = float(np.abs(mu).max()) if mu.size else 0.0

    if rows is not None:
        return ForceResult(a=a, du=du, max_mu=max_mu)
    particles.a[:] = a
    particles.du[:] = du
    return ForceResult(a=particles.a, du=particles.du, max_mu=max_mu)
