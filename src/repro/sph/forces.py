"""Momentum and energy equations (Algorithm 1, step 3).

One fused pass over the pair list evaluates the pressure-gradient
acceleration and the internal-energy rate:

    dv_i/dt = - sum_j m_j [ P_i/(Omega_i rho_i^2) G^(i)_ij
                          + P_j/(Omega_j rho_j^2) G^(j)_ij
                          + Pi_ij Gbar_ij ]
    du_i/dt =   P_i/(Omega_i rho_i^2) sum_j m_j v_ij . G^(i)_ij
              + 1/2 sum_j m_j Pi_ij v_ij . Gbar_ij

where ``G`` is either the standard kernel gradient or the IAD operator
(Tables 1-2 "Gradients"), ``Pi_ij`` the Monaghan artificial viscosity and
``Omega`` the optional grad-h factors.  Because ``G_ij = -G_ji`` for both
operators, the pairwise exchange conserves linear momentum exactly (and
angular momentum for the standard operator, which is central).

Pair geometry, gathers and per-pair temporaries are borrowed from a
:class:`~repro.sph.pair_engine.PairContext` (the driver's per-step one
when given, an ephemeral one otherwise): the gradients here are the same
arrays the div/curl phase computed, ``v_ij``/``v . dx``/``hbar``/``mu``
are evaluated once and shared between the viscosity and the CFL
diagnostic, and every temporary is an ``out=`` write into a reused
arena buffer — the arithmetic and its order are unchanged, so results
are bitwise identical to the historical allocating implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..backend.base import backend_ops
from ..gradients.iad import compute_iad_matrices, iad_pair_gradients
from ..gradients.kernel_gradient import PairGradients, kernel_pair_gradients
from ..kernels.base import Kernel
from ..tree.box import Box
from ..tree.neighborlist import NeighborList
from .density import _rows_tokens, grad_h_terms
from .pair_engine import PairContext
from .viscosity import ViscosityParams, balsara_switch, pairwise_viscosity

__all__ = ["ForceResult", "compute_forces", "velocity_divergence_curl"]


@dataclass(frozen=True)
class ForceResult:
    """Output of the force loop."""

    a: np.ndarray
    du: np.ndarray
    max_mu: float  # viscous signal speed diagnostic for the time step


def velocity_divergence_curl(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    rows: Tuple[int, int] | None = None,
    ctx: PairContext | None = None,
    backend=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """SPH estimates of ``div v`` and ``|curl v|`` per particle.

    ``rows`` restricts the evaluation to a query-row slice (pool
    fan-out); ``ctx`` shares pair geometry, ``grad W`` and ``v_ij`` with
    the force loop; a compiled ``backend`` fuses the gradient pass and
    the pair reductions.
    """
    ops = backend_ops(backend, kernel)
    if ops is not None:
        lo, hi, tokens = _rows_tokens(nlist, rows, ctx)
        dim = particles.dim
        rho = particles.rho[lo:hi]
        plist = ops.support_list(
            particles.x, particles.h, nlist, box, kernel, tokens
        )
        gs = ops.pair_products(
            x=particles.x, h=particles.h, nlist=plist, box=box,
            kernel=kernel, dim=dim, lo=lo, hi=hi, tokens=tokens,
            side="i", want=("gs",),
        )["gs"]
        divsum, curlsum = ops.div_curl_sums(
            particles.x, particles.v, plist, box, particles.m, gs,
            dim, lo, hi,
        )
        div = -divsum / rho
        if dim == 3:
            curl = np.sqrt(np.einsum("kd,kd->k", curlsum, curlsum)) / rho
        elif dim == 2:
            curl = np.abs(curlsum[:, 0]) / rho
        else:
            curl = np.zeros(hi - lo)
        return div, curl
    pc = ctx if ctx is not None else PairContext()
    pc.bind(particles.x, nlist, box, rows=rows)
    lo, hi = pc.lo, pc.hi
    dim = particles.dim
    rho = particles.rho[lo:hi]
    grad = pc.grad_i(kernel, particles.h, dim)
    v_ij = pc.vel_ij(particles.v)
    mj = pc.m_j(particles.m)
    take = pc.arena.take
    vg = np.einsum("kd,kd->k", v_ij, grad, out=take("dc_s1", (pc.n_pairs,)))
    np.multiply(mj, vg, out=vg)
    div = -pc.reduce(vg) / rho
    if dim == 3:
        cross = np.cross(v_ij, grad)
        mc = np.multiply(mj[:, None], cross, out=take("dc_v1", (pc.n_pairs, dim)))
        curl_vec = pc.reduce(mc)
        curl = np.sqrt(np.einsum("kd,kd->k", curl_vec, curl_vec)) / rho
    elif dim == 2:
        cz = np.multiply(v_ij[:, 0], grad[:, 1], out=take("dc_s1", (pc.n_pairs,)))
        zb = np.multiply(v_ij[:, 1], grad[:, 0], out=take("dc_s2", (pc.n_pairs,)))
        np.subtract(cz, zb, out=cz)
        np.multiply(mj, cz, out=cz)
        curl = np.abs(pc.reduce(cz)) / rho
    else:
        curl = np.zeros(hi - lo)
    return div, curl


def compute_forces(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    *,
    gradients: str = "standard",
    viscosity: ViscosityParams = ViscosityParams(),
    grad_h: bool = False,
    c_matrices: np.ndarray | None = None,
    rows: Tuple[int, int] | None = None,
    omega: np.ndarray | None = None,
    balsara_f: np.ndarray | None = None,
    ctx: PairContext | None = None,
    backend=None,
) -> ForceResult:
    """Evaluate accelerations and energy rates; updates particles in place.

    Parameters
    ----------
    gradients:
        ``"standard"`` (kernel derivatives) or ``"iad"``.
    c_matrices:
        Pre-computed IAD matrices; computed here when omitted.
    grad_h:
        Apply grad-h ``Omega`` corrections to the pressure terms.
    rows:
        Optional query-row range ``(lo, hi)``: evaluate only those rows
        and return slice-sized arrays without touching
        ``particles.a``/``particles.du`` (pool fan-out mode).  Slice mode
        requires every cross-particle input to be global: ``c_matrices``
        for IAD, ``omega`` when ``grad_h``, ``balsara_f`` when the
        viscosity uses the Balsara switch.
    omega, balsara_f:
        Pre-computed global grad-h factors / Balsara limiter values; both
        are computed here when omitted (serial path).
    ctx:
        Optional persistent :class:`~repro.sph.pair_engine.PairContext`;
        subsidiary phases evaluated here (grad-h, div/curl, IAD) borrow
        the same context.
    """
    if gradients not in ("standard", "iad"):
        raise ValueError(f"gradients must be 'standard' or 'iad', got {gradients!r}")
    if np.any(particles.rho <= 0.0):
        raise ValueError("densities must be computed (positive) before forces")

    if rows is not None:
        if gradients == "iad" and c_matrices is None:
            raise ValueError("slice mode needs pre-computed global c_matrices")
        if grad_h and omega is None:
            raise ValueError("slice mode needs pre-computed global omega")
        if viscosity.use_balsara and balsara_f is None:
            raise ValueError("slice mode needs pre-computed global balsara_f")
    ops = backend_ops(backend, kernel)
    if ops is not None:
        return _compute_forces_compiled(
            ops, particles, nlist, kernel, box, gradients, viscosity,
            grad_h, c_matrices, rows, omega, balsara_f, ctx, backend,
        )
    pc = ctx if ctx is not None else PairContext()
    pc.bind(particles.x, nlist, box, rows=rows)
    lo, hi = pc.lo, pc.hi
    n_pairs = pc.n_pairs
    dx, r = pc.dx, pc.r
    take = pc.arena.take
    dim = particles.dim
    h_i = pc.h_i(particles.h)
    h_j = pc.h_j(particles.h)

    if gradients == "standard":
        pg = kernel_pair_gradients(
            kernel, dx, r, h_i, h_j, dim, ctx=pc, h=particles.h
        )
    else:
        if c_matrices is None:
            c_matrices = compute_iad_matrices(
                particles, nlist, kernel, box, ctx=pc
            )
        pg = iad_pair_gradients(
            c_matrices, kernel, pc.i, pc.j, dx, r, h_i, h_j, dim,
            ctx=pc, h=particles.h,
        )

    if omega is None:
        omega = (
            grad_h_terms(particles, nlist, kernel, box, ctx=pc)
            if grad_h
            else np.ones(particles.n)
        )
    p_over = particles.p / (omega * particles.rho**2)

    v_ij = pc.vel_ij(particles.v)
    balsara_i = balsara_j = None
    if viscosity.use_balsara:
        if balsara_f is None:
            div_v, curl_v = velocity_divergence_curl(
                particles, nlist, kernel, box, ctx=pc
            )
            balsara_f = balsara_switch(div_v, curl_v, particles.cs, particles.h)
        balsara_i = pc.gather_scratch("f_bal_i", balsara_f, "i")
        balsara_j = pc.gather_scratch("f_bal_j", balsara_f, "j")

    # v . dx, hbar and the viscous mu feed both the artificial viscosity
    # and the CFL diagnostic below; the historical code evaluated the
    # identical expressions twice, so computing them once is bitwise-free.
    vdotr = np.einsum("kd,kd->k", v_ij, dx, out=take("f_vdotr", (n_pairs,)))
    hbar = np.add(h_i, h_j, out=take("f_hbar", (n_pairs,)))
    np.multiply(hbar, 0.5, out=hbar)
    mu = np.multiply(hbar, vdotr, out=take("f_mu", (n_pairs,)))
    denom = np.multiply(r, r, out=take("f_s1", (n_pairs,)))
    eta_h = np.multiply(hbar, viscosity.eta**2, out=take("f_s2", (n_pairs,)))
    np.multiply(eta_h, hbar, out=eta_h)
    np.add(denom, eta_h, out=denom)
    np.divide(mu, denom, out=mu)

    pi_ij = pairwise_viscosity(
        viscosity,
        dx,
        r,
        v_ij,
        h_i,
        h_j,
        pc.gather_scratch("f_rho_i", particles.rho, "i"),
        pc.gather_scratch("f_rho_j", particles.rho, "j"),
        pc.gather_scratch("f_cs_i", particles.cs, "i"),
        pc.gather_scratch("f_cs_j", particles.cs, "j"),
        balsara_i,
        balsara_j,
        vdotr=vdotr,
        hbar=hbar,
        mu=mu,
    )

    mj = pc.m_j(particles.m)
    gbar = np.add(pg.gi, pg.gj, out=take("f_gbar", (n_pairs, dim)))
    np.multiply(gbar, 0.5, out=gbar)
    po_i = pc.gather_scratch("f_po_i", p_over, "i")
    po_j = pc.gather_scratch("f_po_j", p_over, "j")
    pressure_pair = np.multiply(
        po_i[:, None], pg.gi, out=take("f_vec1", (n_pairs, dim))
    )
    pres_j = np.multiply(po_j[:, None], pg.gj, out=take("f_vec2", (n_pairs, dim)))
    np.add(pressure_pair, pres_j, out=pressure_pair)
    visc_pair = np.multiply(
        pi_ij[:, None], gbar, out=take("f_vec2", (n_pairs, dim))
    )
    np.add(pressure_pair, visc_pair, out=visc_pair)
    neg_mj = np.negative(mj, out=take("f_negmj", (n_pairs,)))
    acc_pair = np.multiply(neg_mj[:, None], visc_pair, out=visc_pair)
    a = pc.reduce(acc_pair)

    vdot_gi = np.einsum("kd,kd->k", v_ij, pg.gi, out=take("f_s1", (n_pairs,)))
    vdot_gbar = np.einsum("kd,kd->k", v_ij, gbar, out=take("f_s2", (n_pairs,)))
    np.multiply(mj, vdot_gi, out=vdot_gi)
    mpi = np.multiply(mj, pi_ij, out=take("f_s3", (n_pairs,)))
    np.multiply(mpi, vdot_gbar, out=mpi)
    du = p_over[lo:hi] * pc.reduce(vdot_gi) + 0.5 * pc.reduce(mpi)

    # Viscous signal diagnostic: max |mu_ij| enters the CFL criterion.
    # Restricted to pairs inside the true kernel support so padded
    # Verlet-skin lists (repro.tree.neighborlist.VerletNeighborCache)
    # yield exactly the fresh-list value; on exact lists the mask is a
    # no-op because the symmetric cutoff *is* the support.
    hmax = np.maximum(h_i, h_j, out=take("f_s3", (n_pairs,)))
    np.multiply(hmax, kernel.support, out=hmax)
    in_support = r <= hmax
    with np.errstate(invalid="ignore", divide="ignore"):
        mu_masked = np.where((vdotr < 0.0) & in_support, mu, 0.0)
    max_mu = float(np.abs(mu_masked).max()) if mu_masked.size else 0.0

    if rows is not None:
        return ForceResult(a=a, du=du, max_mu=max_mu)
    particles.a[:] = a
    particles.du[:] = du
    return ForceResult(a=particles.a, du=particles.du, max_mu=max_mu)


def _compute_forces_compiled(
    ops, particles, nlist, kernel, box, gradients, viscosity, grad_h,
    c_matrices, rows, omega, balsara_f, ctx, backend,
):
    """Fused momentum/energy pair loop: one compiled pass consumes the
    memoized kernel values/gradients and accumulates ``a``, the two
    energy sums and the viscous-signal diagnostic.  The n-sized glue
    (``p_over``, the final ``du`` combination) stays in numpy to match
    the reference expressions exactly; subsidiary phases (IAD, grad-h,
    Balsara) are delegated to their own backend-aware entry points."""
    lo, hi, tokens = _rows_tokens(nlist, rows, ctx)
    dim = particles.dim
    use_iad = gradients == "iad"
    plist = ops.support_list(
        particles.x, particles.h, nlist, box, kernel, tokens
    )

    common = dict(
        x=particles.x, h=particles.h, nlist=plist, box=box, kernel=kernel,
        dim=dim, lo=lo, hi=hi, tokens=tokens,
    )
    # Only the query-side product is materialized; the neighbour-side
    # factor (w_j / gs_j) is evaluated inline by the fused force loop —
    # bitwise-identical arithmetic, one whole pair pass saved.
    wi = wj = gsi = gsj = None
    if use_iad:
        if c_matrices is None:
            c_matrices = compute_iad_matrices(
                particles, nlist, kernel, box, ctx=ctx, backend=backend
            )
        wi = ops.pair_products(side="i", want=("w",), **common)["w"]
    else:
        gsi = ops.pair_products(side="i", want=("gs",), **common)["gs"]

    if omega is None:
        omega = (
            grad_h_terms(particles, nlist, kernel, box, ctx=ctx, backend=backend)
            if grad_h
            else np.ones(particles.n)
        )
    p_over = particles.p / (omega * particles.rho**2)

    if viscosity.use_balsara and balsara_f is None:
        div_v, curl_v = velocity_divergence_curl(
            particles, nlist, kernel, box, ctx=ctx, backend=backend
        )
        balsara_f = balsara_switch(div_v, curl_v, particles.cs, particles.h)

    a, s1, s2, max_mu = ops.forces(
        x=particles.x, v=particles.v, h=particles.h, m=particles.m,
        rho=particles.rho, p_over=p_over, cs=particles.cs,
        nlist=plist, box=box, dim=dim, lo=lo, hi=hi,
        wi=wi, wj=wj, gsi=gsi, gsj=gsj,
        use_iad=use_iad, c_matrices=c_matrices, balsara_f=balsara_f,
        alpha=viscosity.alpha, beta=viscosity.beta,
        eta2=viscosity.eta**2, support=kernel.support,
        kernel=kernel, tokens=tokens,
    )
    du = p_over[lo:hi] * s1 + 0.5 * s2
    if rows is not None:
        return ForceResult(a=a, du=du, max_mu=max_mu)
    particles.a[:] = a
    particles.du[:] = du
    return ForceResult(a=particles.a, du=particles.du, max_mu=max_mu)
