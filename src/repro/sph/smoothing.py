"""Smoothing-length adaptation (Algorithm 1, step 2).

"The simulation will try to reach a given target number of neighbors and
this influences the value of the resulting smoothing length" (Section 3,
footnote 2).  The update used by SPH-EXA and SPHYNX is the damped
fixed-point iteration

    h <- h/2 * (1 + (n_target / n_i)^(1/dim))

which converges in a handful of sweeps because the neighbour count scales
like ``h^dim`` in locally-uniform distributions.  Each sweep re-runs the
neighbour search with the updated radii.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..tree.box import Box
from ..tree.cellgrid import cell_grid_search
from ..tree.neighborlist import NeighborList, VerletNeighborCache

__all__ = [
    "SmoothingConfig",
    "update_smoothing_lengths",
    "adapt_smoothing_lengths",
    "adapt_from_cached_list",
]


@dataclass(frozen=True)
class SmoothingConfig:
    """Parameters of the neighbour-count-driven h update."""

    n_target: int = 100
    tolerance: float = 0.05
    max_iterations: int = 10
    h_min: float = 1e-12
    h_max: float = np.inf

    def __post_init__(self) -> None:
        if self.n_target < 1:
            raise ValueError(f"n_target must be >= 1, got {self.n_target}")
        if not 0.0 < self.tolerance < 1.0:
            raise ValueError(f"tolerance must be in (0, 1), got {self.tolerance}")


def update_smoothing_lengths(
    h: np.ndarray, counts: np.ndarray, n_target: int, dim: int
) -> np.ndarray:
    """One damped fixed-point update of ``h`` toward the target count."""
    counts = np.maximum(np.asarray(counts, dtype=np.float64), 1.0)
    return 0.5 * h * (1.0 + (float(n_target) / counts) ** (1.0 / dim))


def adapt_smoothing_lengths(
    particles,
    box: Box | None = None,
    config: SmoothingConfig = SmoothingConfig(),
    search: Callable[..., NeighborList] | None = None,
    cache: VerletNeighborCache | None = None,
    ctx=None,
    backend=None,
) -> NeighborList:
    """Iterate h and the neighbour search until counts hit the target band.

    Updates ``particles.h`` in place and returns the final neighbour list
    (symmetric mode, self-pair included) ready for the SPH kernels.

    ``search`` defaults to the cell-grid path; pass
    ``octree.walk_neighbors``-compatible callables to use the tree walk.

    With a :class:`~repro.tree.neighborlist.VerletNeighborCache`, every
    search uses the padded radius ``(1 + skin) * 2 h`` and the final
    (padded) list is stored in the cache together with the reference
    ``x``/``h``; the driver serves subsequent steps from the cache until a
    particle out-drifts the skin.  The neighbour *counts* driving the h
    iteration are unaffected: they are always re-filtered to the true
    gather support ``r <= 2 h_i``.

    ``ctx`` is an optional :class:`~repro.sph.pair_engine.PairContext`:
    each sweep's pair geometry is then computed through (and left primed
    in) the context, so the SPH phases that follow reuse the final
    list's ``(i, j, dx, r)`` block instead of recomputing it.

    With a compiled ``backend`` the per-sweep counts come from a single
    fused pass (``repro.backend`` ``neighbor_counts``) whose separation
    arithmetic is bitwise-identical to the numpy expression, so the h
    trajectory — and therefore every downstream neighbour list — is
    exactly the same; the context priming is skipped because the
    compiled phases do not consume context products.
    """
    ops = backend.ops if backend is not None else None
    if search is None:
        search = lambda x, radii, box, mode: cell_grid_search(  # noqa: E731
            x, radii, box, mode=mode
        )
    dim = particles.dim
    factor = 2.0 if cache is None else cache.search_factor
    nlist = search(particles.x, factor * particles.h, box, "symmetric")
    for _ in range(config.max_iterations):
        # Count only gather neighbours (r <= 2 h_i): recompute from the
        # symmetric list so no extra search is needed.
        if ops is not None:
            counts = ops.neighbor_counts(
                particles.x, particles.h, nlist, box, 2.0
            )
        else:
            if ctx is not None:
                pc = ctx.bind(particles.x, nlist, box)
                i, r = pc.i, pc.r
            else:
                i, _ = nlist.pairs()
                _, r = nlist.pair_geometry(particles.x, box)
            within = r <= 2.0 * particles.h[i]
            counts = np.bincount(i[within], minlength=particles.n)
        rel_err = np.abs(counts - config.n_target) / config.n_target
        if float(rel_err.max(initial=0.0)) <= config.tolerance:
            break
        h_new = update_smoothing_lengths(particles.h, counts, config.n_target, dim)
        particles.h[:] = np.clip(h_new, config.h_min, config.h_max)
        particles.bump_epoch("h")
        nlist = search(particles.x, factor * particles.h, box, "symmetric")
    if cache is not None:
        cache.store(nlist, particles.x, particles.h)
    if ctx is not None and ops is None:
        # Prime the final list so downstream phases bind as a pure reuse.
        ctx.bind(particles.x, nlist, box)
    return nlist


def adapt_from_cached_list(
    particles,
    nlist: NeighborList,
    box: Box | None = None,
    config: SmoothingConfig = SmoothingConfig(),
    cache: VerletNeighborCache | None = None,
    ctx=None,
    backend=None,
) -> NeighborList | None:
    """Run the h iteration off a cached padded list — no fresh search.

    While every iterate stays inside the cache's h-growth budget
    (:meth:`~repro.tree.neighborlist.VerletNeighborCache.covers`), the
    neighbour counts filtered to ``r <= 2 h_i`` computed from the padded
    list are *exact*, so the damped fixed-point iteration takes exactly
    the same h trajectory a fresh-search adaptation would.  Returns the
    padded list on success.

    If an iterate out-grows the budget, ``particles.h`` is restored to
    its entry value, the cache is invalidated (the provisional lookup hit
    is re-counted as an h-change miss) and ``None`` is returned — the
    caller then falls back to :func:`adapt_smoothing_lengths`, which
    replays the identical iteration with real searches.
    """
    if cache is None:
        raise ValueError("adapt_from_cached_list requires the owning cache")
    dim = particles.dim
    ops = backend.ops if backend is not None else None
    if ops is not None:
        # One compiled separation pass per call (memoized on the
        # geometry token, so the support filter reuses it); each sweep
        # below is then a single compare per pair — mirroring how the
        # numpy path computes ``r`` once and re-filters per iteration.
        r_pairs = ops.pair_radii(
            particles.x, nlist, box,
            tokens=ctx.tokens if ctx is not None else None,
        )
    else:
        if ctx is not None:
            pc = ctx.bind(particles.x, nlist, box)
            i, r = pc.i, pc.r
        else:
            i, _ = nlist.pairs()
            _, r = nlist.pair_geometry(particles.x, box)
    h_entry = particles.h.copy()

    def bail() -> None:
        particles.h[:] = h_entry
        particles.bump_epoch("h")
        cache.stats.hits -= 1
        cache.stats.misses_h_change += 1
        cache.invalidate()

    for _ in range(config.max_iterations):
        if not cache.covers(particles.h):
            bail()
            return None
        if ops is not None:
            counts = ops.counts_from_radii(
                r_pairs, particles.h, nlist, 2.0
            )
        else:
            within = r <= 2.0 * particles.h[i]
            counts = np.bincount(i[within], minlength=particles.n)
        rel_err = np.abs(counts - config.n_target) / config.n_target
        if float(rel_err.max(initial=0.0)) <= config.tolerance:
            break
        h_new = update_smoothing_lengths(particles.h, counts, config.n_target, dim)
        particles.h[:] = np.clip(h_new, config.h_min, config.h_max)
        particles.bump_epoch("h")
    if not cache.covers(particles.h):
        bail()
        return None
    return nlist
