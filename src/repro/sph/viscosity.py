"""Monaghan artificial viscosity with optional Balsara limiter.

Shock capturing for the momentum/energy equations (Algorithm 1, step 3).
The pairwise viscous pressure is

    Pi_ij = (-alpha cbar_ij mu_ij + beta mu_ij^2) / rhobar_ij     if v_ij . dx_ij < 0
    Pi_ij = 0                                                     otherwise

with ``mu_ij = hbar_ij (v_ij . dx_ij) / (r^2 + eta^2 hbar_ij^2)``.  The
Balsara (1995) switch suppresses viscosity in pure shear flows — relevant
for the rotating-square-patch test, which is exactly such a flow.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ViscosityParams", "pairwise_viscosity", "balsara_switch"]


@dataclass(frozen=True)
class ViscosityParams:
    """Artificial viscosity parameters (Monaghan & Gingold 1983 form)."""

    alpha: float = 1.0
    beta: float = 2.0
    eta: float = 0.1
    use_balsara: bool = False

    def __post_init__(self) -> None:
        if self.alpha < 0.0 or self.beta < 0.0 or self.eta <= 0.0:
            raise ValueError(
                f"invalid viscosity parameters: alpha={self.alpha}, "
                f"beta={self.beta}, eta={self.eta}"
            )


def pairwise_viscosity(
    params: ViscosityParams,
    dx: np.ndarray,
    r: np.ndarray,
    v_ij: np.ndarray,
    h_i: np.ndarray,
    h_j: np.ndarray,
    rho_i: np.ndarray,
    rho_j: np.ndarray,
    cs_i: np.ndarray,
    cs_j: np.ndarray,
    balsara_i: np.ndarray | None = None,
    balsara_j: np.ndarray | None = None,
    *,
    vdotr: np.ndarray | None = None,
    hbar: np.ndarray | None = None,
    mu: np.ndarray | None = None,
) -> np.ndarray:
    """Per-pair viscous pressure ``Pi_ij`` (zero for receding pairs).

    ``vdotr``/``hbar``/``mu`` may be supplied precomputed (the force
    loop shares them with its CFL diagnostic); they must equal the
    expressions below, which is what the default ``None`` computes.
    """
    if vdotr is None:
        vdotr = np.einsum("kd,kd->k", v_ij, dx)
    approaching = vdotr < 0.0
    if hbar is None:
        hbar = 0.5 * (h_i + h_j)
    if mu is None:
        mu = hbar * vdotr / (r * r + params.eta**2 * hbar * hbar)
    cbar = 0.5 * (cs_i + cs_j)
    rhobar = 0.5 * (rho_i + rho_j)
    pi = (-params.alpha * cbar * mu + params.beta * mu * mu) / rhobar
    if balsara_i is not None and balsara_j is not None:
        pi = pi * 0.5 * (balsara_i + balsara_j)
    return np.where(approaching, pi, 0.0)


def balsara_switch(
    div_v: np.ndarray, curl_v: np.ndarray, cs: np.ndarray, h: np.ndarray
) -> np.ndarray:
    """Balsara factor ``f_i = |div v| / (|div v| + |curl v| + 1e-4 c/h)``."""
    abs_div = np.abs(div_v)
    denom = abs_div + np.abs(curl_v) + 1e-4 * cs / h
    with np.errstate(invalid="ignore", divide="ignore"):
        f = np.where(denom > 0.0, abs_div / np.where(denom > 0.0, denom, 1.0), 1.0)
    return f
