"""SPH density evaluation (Algorithm 1, step 3).

Implements both volume-element choices of Tables 1-2:

* **standard** — the classic mass-weighted summation
  ``rho_i = sum_j m_j W(r_ij, h_i)`` used by ChaNGa and SPH-flow.
* **generalized** — SPHYNX's generalized volume elements (Cabezón,
  García-Senz & Figueira 2017): a per-particle estimator ``X_i`` defines
  the volume ``V_i = X_i / kappa_i`` with ``kappa_i = sum_j X_j W_ij``, and
  ``rho_i = m_i / V_i``.  ``X = m`` recovers the standard summation
  exactly; ``X = (m / rho_prev)^k`` (0 < k <= 1) reduces the density error
  at contact discontinuities.

Both run over a gather-compatible CSR neighbour list (self-pair included);
pairs beyond the support of ``h_i`` contribute exactly zero, so a
symmetric-mode list may be reused.
"""

from __future__ import annotations

import numpy as np

from ..kernels.base import Kernel
from ..tree.box import Box
from ..tree.neighborlist import NeighborList

__all__ = ["compute_density", "grad_h_terms"]


def compute_density(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    *,
    volume_elements: str = "standard",
    xmass_exponent: float = 0.7,
    rows: tuple[int, int] | None = None,
) -> np.ndarray:
    """Update ``particles.rho`` in place and return it.

    Parameters
    ----------
    volume_elements:
        ``"standard"`` or ``"generalized"`` (Tables 1-2 "Volume Elements").
    xmass_exponent:
        Exponent ``k`` of the generalized estimator ``X = (m/rho_prev)^k``.
        Ignored for the standard summation.
    rows:
        Optional query-row range ``(lo, hi)``: evaluate only those
        particles and *return* the slice without touching
        ``particles.rho`` — the worker-side entry point of the
        process-pool fan-out.  The generalized estimator then requires a
        valid (positive) global ``particles.rho`` from a previous pass;
        the bootstrap summation is orchestrated by the caller.
    """
    if volume_elements not in ("standard", "generalized"):
        raise ValueError(
            f"volume_elements must be 'standard' or 'generalized', got {volume_elements!r}"
        )
    if rows is None:
        lo, hi = 0, particles.n
        sub = nlist
    else:
        lo, hi = rows
        sub = nlist.row_slice(lo, hi)
    i = sub.pair_i() + lo
    j = sub.indices
    _, r = sub.pair_geometry(particles.x, box, row_offset=lo)
    dim = particles.dim
    w = kernel.value(r, particles.h[i], dim)

    if volume_elements == "standard":
        rho = sub.reduce(particles.m[j] * w)
    else:
        rho_prev = particles.rho
        if np.any(rho_prev <= 0.0):
            if rows is not None:
                raise ValueError(
                    "generalized volume elements in slice mode need a "
                    "bootstrapped global density; run a standard pass first"
                )
            # First call: bootstrap with a standard summation.
            rho_prev = sub.reduce(particles.m[j] * w)
        xmass = (particles.m / rho_prev) ** float(xmass_exponent)
        kappa = sub.reduce(xmass[j] * w)
        if np.any(kappa <= 0.0):
            raise ValueError(
                "generalized volume elements: a particle has no kernel support "
                "(kappa <= 0); check neighbour lists include the self pair"
            )
        rho = particles.m[lo:hi] * kappa / xmass[lo:hi]
    if rows is not None:
        return rho
    particles.rho[:] = rho
    return particles.rho


def grad_h_terms(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    rows: tuple[int, int] | None = None,
) -> np.ndarray:
    """Grad-h correction factors ``Omega_i`` (Springel & Hernquist 2002).

    ``Omega_i = 1 + (h_i / (dim rho_i)) sum_j m_j dW/dh(r_ij, h_i)``.
    Pressure-gradient terms are divided by ``Omega_i`` to keep the scheme
    consistent when ``h`` varies in space.  ``rows`` restricts the
    evaluation to a query-row slice (pool fan-out).
    """
    if rows is None:
        lo, hi = 0, particles.n
        sub = nlist
    else:
        lo, hi = rows
        sub = nlist.row_slice(lo, hi)
    i = sub.pair_i() + lo
    j = sub.indices
    _, r = sub.pair_geometry(particles.x, box, row_offset=lo)
    dim = particles.dim
    dwdh = kernel.h_derivative(r, particles.h[i], dim)
    s = sub.reduce(particles.m[j] * dwdh)
    omega = 1.0 + particles.h[lo:hi] / (dim * particles.rho[lo:hi]) * s
    # Guard against pathological clustering driving Omega toward 0.
    return np.clip(omega, 0.1, 10.0)
