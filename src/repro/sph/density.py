"""SPH density evaluation (Algorithm 1, step 3).

Implements both volume-element choices of Tables 1-2:

* **standard** — the classic mass-weighted summation
  ``rho_i = sum_j m_j W(r_ij, h_i)`` used by ChaNGa and SPH-flow.
* **generalized** — SPHYNX's generalized volume elements (Cabezón,
  García-Senz & Figueira 2017): a per-particle estimator ``X_i`` defines
  the volume ``V_i = X_i / kappa_i`` with ``kappa_i = sum_j X_j W_ij``, and
  ``rho_i = m_i / V_i``.  ``X = m`` recovers the standard summation
  exactly; ``X = (m / rho_prev)^k`` (0 < k <= 1) reduces the density error
  at contact discontinuities.

Both run over a gather-compatible CSR neighbour list (self-pair included);
pairs beyond the support of ``h_i`` contribute exactly zero, so a
symmetric-mode list may be reused.

Pair-loop storage and geometry go through a
:class:`~repro.sph.pair_engine.PairContext`: the driver passes its
per-step context so the ``(i, j, dx, r)`` block and the kernel values are
computed once per step and shared with the other phases; without one an
ephemeral context is used (same arithmetic, fresh storage).
"""

from __future__ import annotations

import numpy as np

from ..backend.base import backend_ops
from ..kernels.base import Kernel
from ..tree.box import Box
from ..tree.neighborlist import NeighborList
from .pair_engine import PairContext

__all__ = ["compute_density", "grad_h_terms"]


def _rows_tokens(nlist, rows, ctx):
    """Resolve (lo, hi) and the epoch tokens for a compiled-path call."""
    lo, hi = rows if rows is not None else (0, nlist.n)
    tokens = ctx.tokens if ctx is not None else None
    return lo, hi, tokens


def compute_density(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    *,
    volume_elements: str = "standard",
    xmass_exponent: float = 0.7,
    rows: tuple[int, int] | None = None,
    ctx: PairContext | None = None,
    backend=None,
) -> np.ndarray:
    """Update ``particles.rho`` in place and return it.

    Parameters
    ----------
    volume_elements:
        ``"standard"`` or ``"generalized"`` (Tables 1-2 "Volume Elements").
    xmass_exponent:
        Exponent ``k`` of the generalized estimator ``X = (m/rho_prev)^k``.
        Ignored for the standard summation.
    rows:
        Optional query-row range ``(lo, hi)``: evaluate only those
        particles and *return* the slice without touching
        ``particles.rho`` — the worker-side entry point of the
        process-pool fan-out.  The generalized estimator then requires a
        valid (positive) global ``particles.rho`` from a previous pass;
        the bootstrap summation is orchestrated by the caller.
    ctx:
        Optional persistent :class:`~repro.sph.pair_engine.PairContext`
        sharing pair geometry and kernel values across phases.
    backend:
        Optional resolved :class:`repro.backend.Backend`; a compiled
        backend takes the fused pair-loop path below (same results
        within the documented tolerance), the numpy reference falls
        through to the vectorized code unchanged.
    """
    if volume_elements not in ("standard", "generalized"):
        raise ValueError(
            f"volume_elements must be 'standard' or 'generalized', got {volume_elements!r}"
        )
    ops = backend_ops(backend, kernel)
    if ops is not None:
        return _compute_density_compiled(
            ops, particles, nlist, kernel, box, volume_elements,
            xmass_exponent, rows, ctx,
        )
    pc = ctx if ctx is not None else PairContext()
    pc.bind(particles.x, nlist, box, rows=rows)
    lo, hi = pc.lo, pc.hi
    j = pc.j
    dim = particles.dim
    w = pc.w_i(kernel, particles.h, dim)
    m_j = pc.m_j(particles.m)

    if volume_elements == "standard":
        mw = np.multiply(m_j, w, out=pc.arena.take("den_tmp", (pc.n_pairs,)))
        rho = pc.reduce(mw)
    else:
        rho_prev = particles.rho
        if np.any(rho_prev <= 0.0):
            if rows is not None:
                raise ValueError(
                    "generalized volume elements in slice mode need a "
                    "bootstrapped global density; run a standard pass first"
                )
            # First call: bootstrap with a standard summation.
            mw = np.multiply(m_j, w, out=pc.arena.take("den_tmp", (pc.n_pairs,)))
            rho_prev = pc.reduce(mw)
        xmass = (particles.m / rho_prev) ** float(xmass_exponent)
        xw = pc.gather_scratch("den_tmp", xmass, "j")
        np.multiply(xw, w, out=xw)
        kappa = pc.reduce(xw)
        if np.any(kappa <= 0.0):
            raise ValueError(
                "generalized volume elements: a particle has no kernel support "
                "(kappa <= 0); check neighbour lists include the self pair"
            )
        rho = particles.m[lo:hi] * kappa / xmass[lo:hi]
    if rows is not None:
        return rho
    particles.rho[:] = rho
    return particles.rho


def _compute_density_compiled(
    ops, particles, nlist, kernel, box, volume_elements, xmass_exponent,
    rows, ctx,
):
    """Fused-pair-loop density: one compiled pass builds W, compiled row
    sums replace gather/multiply/bincount.  Glue arithmetic (xmass,
    rho = m*kappa/xmass) stays in numpy — it is n-sized and must match
    the reference expression exactly."""
    lo, hi, tokens = _rows_tokens(nlist, rows, ctx)
    dim = particles.dim
    plist = ops.support_list(
        particles.x, particles.h, nlist, box, kernel, tokens
    )
    w = ops.pair_products(
        x=particles.x, h=particles.h, nlist=plist, box=box, kernel=kernel,
        dim=dim, lo=lo, hi=hi, tokens=tokens, side="i", want=("w",),
    )["w"]
    if volume_elements == "standard":
        rho = ops.rowsum(plist, lo, hi, particles.m, w)
    else:
        rho_prev = particles.rho
        if np.any(rho_prev <= 0.0):
            if rows is not None:
                raise ValueError(
                    "generalized volume elements in slice mode need a "
                    "bootstrapped global density; run a standard pass first"
                )
            rho_prev = ops.rowsum(plist, lo, hi, particles.m, w)
        xmass = (particles.m / rho_prev) ** float(xmass_exponent)
        kappa = ops.rowsum(plist, lo, hi, xmass, w)
        if np.any(kappa <= 0.0):
            raise ValueError(
                "generalized volume elements: a particle has no kernel support "
                "(kappa <= 0); check neighbour lists include the self pair"
            )
        rho = particles.m[lo:hi] * kappa / xmass[lo:hi]
    if rows is not None:
        return rho
    particles.rho[:] = rho
    return particles.rho


def grad_h_terms(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    rows: tuple[int, int] | None = None,
    ctx: PairContext | None = None,
    backend=None,
) -> np.ndarray:
    """Grad-h correction factors ``Omega_i`` (Springel & Hernquist 2002).

    ``Omega_i = 1 + (h_i / (dim rho_i)) sum_j m_j dW/dh(r_ij, h_i)``.
    Pressure-gradient terms are divided by ``Omega_i`` to keep the scheme
    consistent when ``h`` varies in space.  ``rows`` restricts the
    evaluation to a query-row slice (pool fan-out); ``ctx`` shares pair
    geometry with the other phases; a compiled ``backend`` fuses the
    ``dW/dh`` pass and its row sum.
    """
    ops = backend_ops(backend, kernel)
    if ops is not None:
        lo, hi, tokens = _rows_tokens(nlist, rows, ctx)
        dim = particles.dim
        plist = ops.support_list(
            particles.x, particles.h, nlist, box, kernel, tokens
        )
        dwdh = ops.pair_products(
            x=particles.x, h=particles.h, nlist=plist, box=box,
            kernel=kernel, dim=dim, lo=lo, hi=hi, tokens=tokens, side="i",
            want=("dwdh",),
        )["dwdh"]
        s = ops.rowsum(plist, lo, hi, particles.m, dwdh)
        omega = 1.0 + particles.h[lo:hi] / (dim * particles.rho[lo:hi]) * s
        return np.clip(omega, 0.1, 10.0)
    pc = ctx if ctx is not None else PairContext()
    pc.bind(particles.x, nlist, box, rows=rows)
    lo, hi = pc.lo, pc.hi
    dim = particles.dim
    dwdh = pc.dwdh_i(kernel, particles.h, dim)
    mdw = np.multiply(
        pc.m_j(particles.m), dwdh, out=pc.arena.take("gh_tmp", (pc.n_pairs,))
    )
    s = pc.reduce(mdw)
    omega = 1.0 + particles.h[lo:hi] / (dim * particles.rho[lo:hi]) * s
    # Guard against pathological clustering driving Omega toward 0.
    return np.clip(omega, 0.1, 10.0)
