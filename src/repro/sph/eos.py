"""Equations of state.

Two EOS cover the paper's test cases:

* :class:`IdealGasEOS` — ``P = (gamma - 1) rho u`` with ``gamma = 5/3`` for
  the Evrard collapse (Section 5.1, "an ideal equation of state with
  gamma = 5/3 was used").
* :class:`WeaklyCompressibleEOS` — the Tait/stiffened equation standard in
  CFD free-surface SPH (SPH-flow's regime), used for the rotating square
  patch where the physical fluid is incompressible and negative pressures
  drive the tensile instability the test is designed to provoke.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["EquationOfState", "IdealGasEOS", "WeaklyCompressibleEOS", "IsothermalEOS"]


class EquationOfState(abc.ABC):
    """Maps (rho, u) to pressure and sound speed."""

    name: str = "eos"

    @abc.abstractmethod
    def pressure(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Pressure for densities ``rho`` and specific internal energies ``u``."""

    @abc.abstractmethod
    def sound_speed(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Adiabatic sound speed; must be positive for stable time stepping."""

    def apply(self, particles) -> None:
        """Update ``particles.p`` and ``particles.cs`` in place."""
        particles.p[:] = self.pressure(particles.rho, particles.u)
        particles.cs[:] = self.sound_speed(particles.rho, particles.u)


class IdealGasEOS(EquationOfState):
    """Ideal gas ``P = (gamma - 1) rho u``."""

    name = "ideal-gas"

    def __init__(self, gamma: float = 5.0 / 3.0) -> None:
        if gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {gamma}")
        self.gamma = float(gamma)

    def pressure(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        return (self.gamma - 1.0) * np.asarray(rho) * np.asarray(u)

    def sound_speed(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        # c^2 = gamma (gamma - 1) u; clamp u at 0 to survive transient
        # negative internal energies mid-iteration.
        u = np.maximum(np.asarray(u, dtype=np.float64), 0.0)
        return np.sqrt(self.gamma * (self.gamma - 1.0) * u)


class WeaklyCompressibleEOS(EquationOfState):
    """Tait equation ``P = c0^2 rho0 / gamma [ (rho/rho0)^gamma - 1 ]``.

    ``c0`` is chosen ~10x the maximum flow speed so density errors stay at
    the percent level.  Pressure may be *negative* where ``rho < rho0`` —
    exactly the regime that triggers the tensile instability in the
    rotating-square-patch test.

    ``pressure_floor`` optionally clamps the (stiff) Tait pressure from
    below.  Kernel-deficient particles on a *free surface* see densities
    far under ``rho0`` and, unclamped, Tait turns that into enormous
    spurious tension (|P| ~ B >> the physical pressure scale), which
    shreds the surface in a few steps.  A floor a few times the physical
    negative-pressure scale (for the rotating patch, O(rho0 omega^2 L^2))
    keeps the interior tensile region — the physics the test probes —
    while taming the surface artifact.
    """

    name = "weakly-compressible"

    def __init__(
        self,
        rho0: float = 1.0,
        c0: float = 50.0,
        gamma: float = 7.0,
        pressure_floor: float | None = None,
    ) -> None:
        if rho0 <= 0.0 or c0 <= 0.0 or gamma <= 0.0:
            raise ValueError("rho0, c0 and gamma must all be positive")
        if pressure_floor is not None and pressure_floor > 0.0:
            raise ValueError("pressure_floor must be <= 0 (it bounds tension)")
        self.rho0 = float(rho0)
        self.c0 = float(c0)
        self.gamma = float(gamma)
        self.pressure_floor = None if pressure_floor is None else float(pressure_floor)

    def pressure(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        b = self.c0**2 * self.rho0 / self.gamma
        p = b * ((rho / self.rho0) ** self.gamma - 1.0)
        if self.pressure_floor is not None:
            p = np.maximum(p, self.pressure_floor)
        return p

    def sound_speed(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        rho = np.asarray(rho, dtype=np.float64)
        return self.c0 * (rho / self.rho0) ** ((self.gamma - 1.0) / 2.0)


class IsothermalEOS(EquationOfState):
    """Isothermal ``P = cs^2 rho`` with constant sound speed."""

    name = "isothermal"

    def __init__(self, cs: float = 1.0) -> None:
        if cs <= 0.0:
            raise ValueError(f"cs must be positive, got {cs}")
        self.cs = float(cs)

    def pressure(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        return self.cs**2 * np.asarray(rho)

    def sound_speed(self, rho: np.ndarray, u: np.ndarray) -> np.ndarray:
        return np.full_like(np.asarray(rho, dtype=np.float64), self.cs)
