"""Zero-redundancy pair engine: per-step geometry cache + scratch arena.

Every pair-loop phase of Algorithm 1 (h adaptation, IAD moments, density,
grad-h, div/curl, momentum/energy) walks the *same* CSR neighbour list,
and before this module each of them independently re-expanded ``pair_i``,
recomputed the min-image separations ``dx``/``r`` and allocated fresh
multi-MB per-pair temporaries.  The :class:`PairContext` computes the
pair geometry once per step and lets every phase borrow it, plus a
memo of derived per-pair products (``q = r/h``, kernel values and
gradients, ``v_ij``, gathered masses) shared between phases, all stored
in a :class:`ScratchArena` of grow-only buffers reused across steps.

Invalidation contract
---------------------

The engine never inspects array contents; it is driven by *tokens*:

* ``geometry`` token — a process-unique integer minted by the driver
  whenever the position epoch changes (i.e. after every drift).  The
  cached ``(i, j, dx, r)`` block is keyed on
  ``(geometry token, lo, hi, n_pairs)`` plus — in the default mode — the
  *identity* of the neighbour-list object, on which the context keeps a
  strong reference so the id can never be recycled.  The Verlet-skin
  cache hands phases the same :class:`~repro.tree.neighborlist.NeighborList`
  object across a whole step, which is exactly what makes the geometry
  reusable from the h iteration through the force loop.
* ``h`` / ``v`` tokens — minted when the smoothing-length / velocity
  epochs change; they key the derived products (``q``, ``W``,
  ``dW/dh``, gradients key on ``h``; ``v_ij`` keys on ``v``).

Every geometry recompute clears the product memo outright (every product
depends on the pair set), so tokens only need to capture *in-step*
changes such as the h re-adaptation between the smoothing phase and the
density phase.

A context created with ``trust_tokens=True`` (the row-sliced worker path
in :mod:`repro.parallel`) drops the identity requirement: workers
rebuild their neighbour-list views from shared memory on every task, so
object identity is meaningless there, while the parent-minted tokens
still uniquely describe the state.  In exchange the trusted context
copies everything it retains (``j`` in particular) out of shared memory
into private buffers, because the parent republishes the arena between
phases.

Contexts without tokens (``set_tokens`` never called, or called with
``None``) still deduplicate work *within* one bound geometry — the
legacy per-phase behaviour — but never reuse anything across rebinds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..tree.box import Box
from ..tree.neighborlist import NeighborList, reduce_pairs

__all__ = [
    "PairEngineStats",
    "ScratchArena",
    "PairContext",
    "new_pair_token",
]

#: Process-global monotonic token source.  Tokens are minted by the
#: driver (never by workers) and are unique for the process lifetime, so
#: a token can never ambiguously refer to two different states — the
#: property the trusted (worker) mode relies on.
_TOKEN_COUNTER = itertools.count(1)


def new_pair_token() -> int:
    """Mint a fresh, process-unique epoch token."""
    return next(_TOKEN_COUNTER)


@dataclass
class PairEngineStats:
    """Counters of one context's cache behaviour (reported by profiling).

    ``geometry_*`` count full ``(i, j, dx, r)`` evaluations;
    ``product_*`` count derived per-pair arrays (kernel values,
    gradients, ``v_ij``, ...); ``bytes_*`` count scratch-arena traffic —
    ``bytes_allocated`` grows only while buffers are first sized (or
    regrown), ``bytes_reused`` is per-pair storage served without
    touching the allocator.
    """

    geometry_computes: int = 0
    geometry_reuses: int = 0
    product_computes: int = 0
    product_reuses: int = 0
    bytes_allocated: int = 0
    bytes_reused: int = 0

    _FIELDS = (
        "geometry_computes",
        "geometry_reuses",
        "product_computes",
        "product_reuses",
        "bytes_allocated",
        "bytes_reused",
    )

    def snapshot(self) -> Tuple[int, ...]:
        """Current counter values (for later :meth:`delta`)."""
        return tuple(getattr(self, f) for f in self._FIELDS)

    def delta(self, since: Tuple[int, ...]) -> Dict[str, int]:
        """Counter increments since a :meth:`snapshot` (picklable)."""
        return {
            f: getattr(self, f) - prev for f, prev in zip(self._FIELDS, since)
        }

    def merge(self, delta: Optional[Dict[str, int]]) -> None:
        """Fold a :meth:`delta` dict (e.g. from a worker reply) in."""
        if not delta:
            return
        for f in self._FIELDS:
            setattr(self, f, getattr(self, f) + int(delta.get(f, 0)))

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in self._FIELDS}


class ScratchArena:
    """Named, grow-only, shape-stable scratch buffers.

    ``take(name, shape, dtype)`` returns a view of a persistent flat
    buffer, (re)allocating only when the requested size first exceeds the
    buffer's capacity — after warm-up every request is served without
    touching the allocator.  Contents are *not* cleared: callers must
    fully overwrite what they take (all engine writes go through
    ``out=`` ufuncs or ``np.take(..., out=...)``).
    """

    def __init__(self, stats: Optional[PairEngineStats] = None) -> None:
        self._buffers: Dict[str, np.ndarray] = {}
        self.stats = stats if stats is not None else PairEngineStats()

    def take(
        self, name: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        size = int(np.prod(shape, dtype=np.int64))
        dt = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dt or buf.size < size:
            buf = np.empty(max(size, 1), dtype=dt)
            self._buffers[name] = buf
            self.stats.bytes_allocated += buf.nbytes
        else:
            self.stats.bytes_reused += size * dt.itemsize
        return buf[:size].reshape(shape)

    @property
    def n_buffers(self) -> int:
        return len(self._buffers)

    @property
    def capacity_bytes(self) -> int:
        return sum(b.nbytes for b in self._buffers.values())


class PairContext:
    """Per-step pair-geometry cache + derived-product memo.

    One context serves one stream of phases (the driver's serial path,
    or one worker's row slice).  Use :meth:`set_tokens` to install the
    current epoch tokens, then :meth:`bind` at the top of every phase;
    the product accessors (:meth:`h_i`, :meth:`w_i`, :meth:`grad_i`,
    :meth:`vel_ij`, ...) compute on first use and replay afterwards.
    All results are read-only borrows: they live in the context's arena
    and are overwritten by the next recompute.
    """

    def __init__(self, trust_tokens: bool = False) -> None:
        self.trust_tokens = trust_tokens
        self.stats = PairEngineStats()
        self.arena = ScratchArena(self.stats)
        self._tok_geom: Optional[int] = None
        self._tok_h: Optional[int] = None
        self._tok_v: Optional[int] = None
        self._geom_key: Optional[tuple] = None
        self._nlist_ref: Optional[NeighborList] = None
        self._generation = 0
        self._products: Dict[str, Tuple[tuple, np.ndarray]] = {}
        # Bound geometry (valid after the first bind):
        self.lo = 0
        self.hi = 0
        self.n_rows = 0
        self.n_pairs = 0
        self.local_i: Optional[np.ndarray] = None
        self.i: Optional[np.ndarray] = None
        self.j: Optional[np.ndarray] = None
        self.dx: Optional[np.ndarray] = None
        self.r: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Tokens and binding
    # ------------------------------------------------------------------
    def set_tokens(
        self,
        geometry: Optional[int] = None,
        h: Optional[int] = None,
        v: Optional[int] = None,
    ) -> None:
        """Install the current epoch tokens (``None`` = untracked)."""
        self._tok_geom = geometry
        self._tok_h = h
        self._tok_v = v

    @property
    def tokens(self) -> Tuple[Optional[int], Optional[int], Optional[int]]:
        """Current ``(geometry, h, v)`` epoch tokens (compiled-path memo key)."""
        return (self._tok_geom, self._tok_h, self._tok_v)

    def invalidate(self) -> None:
        """Drop the cached geometry and every derived product."""
        self._geom_key = None
        self._nlist_ref = None
        self._products.clear()
        self._generation += 1

    def bind(
        self,
        x: np.ndarray,
        nlist: NeighborList,
        box: Optional[Box] = None,
        rows: Optional[Tuple[int, int]] = None,
    ) -> "PairContext":
        """Make ``(i, j, dx, r)`` for ``(x, nlist[, rows])`` current.

        Reuses the cached geometry when the geometry token, the row
        range, the pair count and (unless ``trust_tokens``) the
        neighbour-list identity all match; otherwise recomputes into the
        arena and clears the product memo.
        """
        lo, hi = rows if rows is not None else (0, nlist.n)
        key = (self._tok_geom, lo, hi, nlist.n_pairs)
        if (
            self._tok_geom is not None
            and key == self._geom_key
            and (self.trust_tokens or self._nlist_ref is nlist)
        ):
            self.stats.geometry_reuses += 1
            return self

        sub = nlist.row_slice(lo, hi) if rows is not None else nlist
        take = self.arena.take
        local_i = sub.pair_i()
        n_pairs = local_i.size
        dim = x.shape[1]
        if lo:
            i = take("geom_i", (n_pairs,), np.int64)
            np.add(local_i, lo, out=i)
        else:
            i = local_i
        if self.trust_tokens:
            # Worker mode: ``sub.indices`` views shared memory that the
            # parent republishes between phases — keep a private copy.
            j = take("geom_j", (n_pairs,), np.int64)
            np.copyto(j, sub.indices)
        else:
            j = sub.indices
        dx = take("geom_dx", (n_pairs, dim))
        gather = take("geom_gather_vec", (n_pairs, dim))
        np.take(x, i, axis=0, out=dx)
        np.take(x, j, axis=0, out=gather)
        np.subtract(dx, gather, out=dx)
        if box is not None:
            box.min_image(dx, out=dx)
        r = take("geom_r", (n_pairs,))
        np.einsum("ij,ij->i", dx, dx, out=r)
        np.sqrt(r, out=r)

        self.lo, self.hi = lo, hi
        self.n_rows = hi - lo
        self.n_pairs = n_pairs
        self.local_i, self.i, self.j = local_i, i, j
        self.dx, self.r = dx, r
        self._geom_key = key if self._tok_geom is not None else None
        self._nlist_ref = None if self.trust_tokens else nlist
        self._products.clear()
        self._generation += 1
        self.stats.geometry_computes += 1
        return self

    # ------------------------------------------------------------------
    # Product memo
    # ------------------------------------------------------------------
    def _pkey(self, token: Optional[int], *extra) -> tuple:
        """Memo key: epoch token when tracked, bind generation otherwise."""
        base = token if token is not None else ("gen", self._generation)
        return (base,) + extra

    def cached(
        self, name: str, key: tuple, compute: Callable[[], np.ndarray]
    ) -> np.ndarray:
        """Return the memoized product ``name`` for ``key``, computing once."""
        hit = self._products.get(name)
        if hit is not None and hit[0] == key:
            self.stats.product_reuses += 1
            return hit[1]
        arr = compute()
        self._products[name] = (key, arr)
        self.stats.product_computes += 1
        return arr

    def _gather(self, name: str, src: np.ndarray, idx: np.ndarray) -> np.ndarray:
        out = self.arena.take(name, idx.shape + src.shape[1:], src.dtype)
        np.take(src, idx, axis=0, out=out)
        return out

    def gather_scratch(
        self, name: str, src: np.ndarray, side: str
    ) -> np.ndarray:
        """Uncached gather of ``src`` along side ``"i"``/``"j"`` into scratch.

        For fields whose epochs the engine does not track (``rho``,
        ``p``, ``cs``, ...): storage is reused but values are always
        re-gathered.
        """
        idx = self.i if side == "i" else self.j
        return self._gather(name, src, idx)

    # -- tracked per-pair products -------------------------------------
    def h_i(self, h: np.ndarray) -> np.ndarray:
        return self.cached(
            "h_i", self._pkey(self._tok_h), lambda: self._gather("h_i", h, self.i)
        )

    def h_j(self, h: np.ndarray) -> np.ndarray:
        return self.cached(
            "h_j", self._pkey(self._tok_h), lambda: self._gather("h_j", h, self.j)
        )

    def m_j(self, m: np.ndarray) -> np.ndarray:
        # Masses are immutable for a particle set; the memo is cleared on
        # every geometry rebind, which covers particle-set changes too.
        return self.cached(
            "m_j", self._pkey(self._tok_geom), lambda: self._gather("m_j", m, self.j)
        )

    def vel_ij(self, v: np.ndarray) -> np.ndarray:
        def compute() -> np.ndarray:
            out = self._gather("v_ij", v, self.i)
            vj = self._gather("geom_gather_vec", v, self.j)
            np.subtract(out, vj, out=out)
            return out

        return self.cached("v_ij", self._pkey(self._tok_v), compute)

    def q_i(self, h: np.ndarray) -> np.ndarray:
        def compute() -> np.ndarray:
            out = self.arena.take("q_i", (self.n_pairs,))
            np.divide(self.r, self.h_i(h), out=out)
            return out

        return self.cached("q_i", self._pkey(self._tok_h), compute)

    def q_j(self, h: np.ndarray) -> np.ndarray:
        def compute() -> np.ndarray:
            out = self.arena.take("q_j", (self.n_pairs,))
            np.divide(self.r, self.h_j(h), out=out)
            return out

        return self.cached("q_j", self._pkey(self._tok_h), compute)

    def _kernel_product(
        self, name: str, kernel, h: np.ndarray, dim: int, compute
    ) -> np.ndarray:
        key = self._pkey(self._tok_h, kernel.cache_key(), dim)
        return self.cached(name, key, compute)

    def w_i(self, kernel, h: np.ndarray, dim: int) -> np.ndarray:
        """Kernel values ``W(r, h_i)`` (bitwise ``kernel.value(r, h[i])``)."""
        return self._kernel_product(
            "w_i",
            kernel,
            h,
            dim,
            lambda: kernel.value_from_q(
                self.q_i(h), self.h_i(h), dim, out=self.arena.take("w_i", (self.n_pairs,))
            ),
        )

    def w_j(self, kernel, h: np.ndarray, dim: int) -> np.ndarray:
        return self._kernel_product(
            "w_j",
            kernel,
            h,
            dim,
            lambda: kernel.value_from_q(
                self.q_j(h), self.h_j(h), dim, out=self.arena.take("w_j", (self.n_pairs,))
            ),
        )

    def dwdh_i(self, kernel, h: np.ndarray, dim: int) -> np.ndarray:
        """``dW/dh(r, h_i)`` (bitwise ``kernel.h_derivative(r, h[i])``)."""
        return self._kernel_product(
            "dwdh_i",
            kernel,
            h,
            dim,
            lambda: kernel.h_derivative_from_q(
                self.q_i(h),
                self.h_i(h),
                dim,
                out=self.arena.take("dwdh_i", (self.n_pairs,)),
            ),
        )

    def _grad(self, name: str, kernel, q, hg, dim: int) -> np.ndarray:
        out = self.arena.take(name, (self.n_pairs, dim))
        scratch = self.arena.take("grad_scratch", (self.n_pairs,))
        return kernel.gradient_from_q(
            self.dx, self.r, q, hg, dim, out=out, scratch=scratch
        )

    def grad_i(self, kernel, h: np.ndarray, dim: int) -> np.ndarray:
        """``grad_i W(dx, r, h_i)`` (bitwise ``kernel.gradient(dx, r, h[i])``)."""
        return self._kernel_product(
            "grad_i",
            kernel,
            h,
            dim,
            lambda: self._grad("grad_i", kernel, self.q_i(h), self.h_i(h), dim),
        )

    def grad_j(self, kernel, h: np.ndarray, dim: int) -> np.ndarray:
        return self._kernel_product(
            "grad_j",
            kernel,
            h,
            dim,
            lambda: self._grad("grad_j", kernel, self.q_j(h), self.h_j(h), dim),
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduce_index(self, k: int) -> np.ndarray:
        """Flattened bincount index for ``k``-column reductions (memoized)."""

        def compute() -> np.ndarray:
            idx = self.arena.take(f"reduce_index_{k}", (self.n_pairs, k), np.int64)
            np.multiply(self.local_i[:, None], k, out=idx)
            np.add(idx, np.arange(k, dtype=np.int64), out=idx)
            return idx

        return self.cached(f"reduce_index_{k}", self._pkey(self._tok_geom, k), compute)

    def reduce(self, values: np.ndarray) -> np.ndarray:
        """Per-row sums of per-pair ``values`` (bitwise ``NeighborList.reduce``)."""
        values = np.asarray(values)
        if values.ndim == 1:
            return reduce_pairs(self.local_i, self.n_rows, values)
        k = int(np.prod(values.shape[1:]))
        return reduce_pairs(
            self.local_i,
            self.n_rows,
            values,
            flat_index=self._reduce_index(k).reshape(-1),
        )

    def reduce_into(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """:meth:`reduce` copied into a preallocated ``out``."""
        np.copyto(out, self.reduce(values))
        return out
