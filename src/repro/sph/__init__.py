"""SPH physics kernels: density, forces, viscosity, EOS, smoothing lengths.

Implements step 3 of Algorithm 1 (and the h-adaptation half of step 2) with
the algorithm choices of Tables 1-2 as switches: standard vs generalized
volume elements, kernel-derivative vs IAD gradients, Monaghan viscosity
with optional Balsara limiting.
"""

from .density import compute_density, grad_h_terms
from .eos import (
    EquationOfState,
    IdealGasEOS,
    IsothermalEOS,
    WeaklyCompressibleEOS,
)
from .forces import ForceResult, compute_forces, velocity_divergence_curl
from .pair_engine import (
    PairContext,
    PairEngineStats,
    ScratchArena,
    new_pair_token,
)
from .smoothing import (
    SmoothingConfig,
    adapt_smoothing_lengths,
    update_smoothing_lengths,
)
from .viscosity import ViscosityParams, balsara_switch, pairwise_viscosity

__all__ = [
    "compute_density",
    "grad_h_terms",
    "EquationOfState",
    "IdealGasEOS",
    "IsothermalEOS",
    "WeaklyCompressibleEOS",
    "ForceResult",
    "compute_forces",
    "velocity_divergence_curl",
    "PairContext",
    "PairEngineStats",
    "ScratchArena",
    "new_pair_token",
    "SmoothingConfig",
    "adapt_smoothing_lengths",
    "update_smoothing_lengths",
    "ViscosityParams",
    "balsara_switch",
    "pairwise_viscosity",
]
