"""Weak-scaling experiments — the paper's stated next step.

"A factor that has not yet been explored is the weak scaling of these
codes, which is usually the regime in which they operate in production
runs.  This is part of ongoing analysis work." (Section 5.2.)

This module carries that analysis out on the model: the particle count
grows with the core count at fixed particles/core, each point building
its own workload geometry (the square patch re-gridded, the Evrard
sphere re-sampled), decomposing it, and running the calibrated step
model.  Ideal weak scaling is a *flat* time-per-step curve; deviations
measure the O(log P) collectives, the halo surface growth and the
replicated work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.config import SimulationConfig
from ..profiling.metrics import PopMetrics, compute_pop_metrics
from ..profiling.trace import Tracer
from .calibration import calibrate_kappa
from .cluster import ClusterModel
from .machine import MachineSpec
from .workloads import build_workload

__all__ = ["WeakScalingPoint", "WeakScalingSeries", "weak_scaling"]


@dataclass(frozen=True)
class WeakScalingPoint:
    """One (cores, n_particles, time) sample at fixed particles/core."""

    cores: int
    n_particles: int
    time_per_step: float
    pop: PopMetrics


@dataclass(frozen=True)
class WeakScalingSeries:
    """A weak-scaling curve for one (code, test, machine)."""

    code: str
    test: str
    machine: str
    particles_per_core: int
    points: List[WeakScalingPoint]

    def times(self) -> np.ndarray:
        return np.array([p.time_per_step for p in self.points])

    def weak_efficiency(self) -> np.ndarray:
        """t(base) / t(P): 1.0 is ideal weak scaling."""
        t = self.times()
        return t[0] / t

    def report(self) -> str:
        lines = [
            f"weak scaling: {self.code} / {self.test} on {self.machine} "
            f"({self.particles_per_core:,} particles/core)",
            f"  {'cores':>7} {'N':>12} {'t/step [s]':>12} {'weak eff':>9} {'LB':>6}",
        ]
        eff = self.weak_efficiency()
        for p, e in zip(self.points, eff):
            lines.append(
                f"  {p.cores:>7d} {p.n_particles:>12,} {p.time_per_step:>12.2f} "
                f"{e:>9.2f} {p.pop.load_balance:>6.3f}"
            )
        return "\n".join(lines)


def weak_scaling(
    preset: SimulationConfig,
    test: str,
    machine: MachineSpec,
    core_counts: Sequence[int],
    particles_per_core: int = 50_000,
    n_steps: int = 3,
) -> WeakScalingSeries:
    """Sweep core counts at fixed particles/core.

    Calibration: kappa comes from the paper's strong-scaling anchor (the
    12-core point of the 10^6-particle run); the same constant applies
    across the sweep since it is a per-pair cost.
    """
    # Calibrate once against the paper's configuration.
    anchor_workload = build_workload(test, 1_000_000)
    kappa = calibrate_kappa(preset, anchor_workload)
    points: List[WeakScalingPoint] = []
    ref_useful_per_rank: float | None = None
    for cores in core_counts:
        workload = build_workload(test, particles_per_core * cores)
        tracer = Tracer()
        model = ClusterModel(
            workload=workload,
            preset=preset,
            machine=machine,
            n_cores=cores,
            kappa=kappa,
            tracer=tracer,
        )
        avg = model.average_step_time(n_steps=n_steps)
        # Weak-scaling CompScal: useful per rank should stay constant.
        m = compute_pop_metrics(tracer)
        if ref_useful_per_rank is None:
            ref_useful_per_rank = m.total_useful / m.n_ranks
        m = compute_pop_metrics(
            tracer,
            reference_useful_total=ref_useful_per_rank * m.n_ranks,
        )
        points.append(
            WeakScalingPoint(
                cores=cores,
                n_particles=workload.n,
                time_per_step=avg,
                pop=m,
            )
        )
    return WeakScalingSeries(
        code=preset.label,
        test=test,
        machine=machine.name,
        particles_per_core=particles_per_core,
        points=points,
    )
