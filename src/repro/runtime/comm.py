"""Simulated MPI-like communication layer.

An mpi4py-shaped interface (Table 4: "X = {MPI}") executed in-process over
simulated ranks: data really moves between per-rank buffers, and the
network model charges modeled time to per-rank clocks, which feed the
Extrae-like tracer.  The API is bulk-synchronous — the driver invokes each
operation for all ranks at once, mirroring how the distributed SPH step is
written — and follows the mpi4py buffer convention (numpy arrays in,
numpy arrays out).

This layer is what makes the distributed algorithms *testable*: a
distributed density evaluation over ``SimComm`` must agree with the serial
one to machine precision while the clocks record the communication the
network model priced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..profiling.trace import State, Tracer
from .machine import NetworkSpec

__all__ = ["SimComm"]

_REDUCE_OPS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sum": lambda v: np.sum(v, axis=0),
    "min": lambda v: np.min(v, axis=0),
    "max": lambda v: np.max(v, axis=0),
}


@dataclass
class SimComm:
    """Communicator over ``size`` simulated ranks.

    Per-rank clocks advance with modeled compute (:meth:`compute`) and
    communication; collectives synchronize clocks like real barriers,
    which is how waiting time (load imbalance) becomes visible in the
    trace.
    """

    size: int
    network: NetworkSpec
    tracer: Tracer = field(default_factory=Tracer)
    bytes_per_element: int = 8

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        self.clocks = np.zeros(self.size)
        self._stats = {"p2p_messages": 0, "p2p_bytes": 0.0, "collectives": 0}

    # ------------------------------------------------------------------
    def compute(self, rank: int, seconds: float, phase: str = "") -> None:
        """Charge useful compute time to one rank's clock."""
        if seconds < 0.0:
            raise ValueError("compute time must be non-negative")
        self.tracer.record(
            rank, phase, State.USEFUL, seconds, start=self.clocks[rank]
        )
        self.clocks[rank] += seconds

    def idle_until(self, rank: int, t: float, phase: str = "") -> None:
        """Advance a rank's clock to ``t``, recording the wait as idle."""
        wait = t - self.clocks[rank]
        if wait > 0.0:
            self.tracer.record(
                rank, phase, State.IDLE, wait, start=self.clocks[rank]
            )
            self.clocks[rank] = t

    # ------------------------------------------------------------------
    def barrier(self, phase: str = "barrier") -> float:
        """Synchronize all clocks; returns the release time."""
        release = float(self.clocks.max()) + self.network.collective_time(self.size)
        for r in range(self.size):
            self.idle_until(r, float(self.clocks.max()), phase)
            mpi = release - self.clocks[r]
            if mpi > 0:
                self.tracer.record(r, phase, State.MPI, mpi, start=self.clocks[r])
        self.clocks[:] = release
        self._stats["collectives"] += 1
        return release

    def allreduce(self, values: List[np.ndarray] | np.ndarray, op: str = "sum", phase: str = "allreduce"):
        """Reduce per-rank values; every rank receives the result.

        Synchronizing collective: all clocks advance to the slowest rank
        plus the log-tree collective time (waiting recorded as idle, the
        collective itself as MPI).
        """
        if op not in _REDUCE_OPS:
            raise ValueError(f"op must be one of {sorted(_REDUCE_OPS)}, got {op!r}")
        vals = [np.asarray(v) for v in values]
        if len(vals) != self.size:
            raise ValueError(f"expected {self.size} values, got {len(vals)}")
        result = _REDUCE_OPS[op](np.stack(vals))
        nbytes = float(np.asarray(result).size * self.bytes_per_element)
        enter = float(self.clocks.max())
        release = enter + self.network.collective_time(self.size, nbytes)
        for r in range(self.size):
            self.idle_until(r, enter, phase)
            self.tracer.record(r, phase, State.MPI, release - enter, start=enter)
        self.clocks[:] = release
        self._stats["collectives"] += 1
        return result

    def alltoallv(
        self,
        payloads: Dict[Tuple[int, int], np.ndarray],
        phase: str = "halo",
    ) -> Dict[Tuple[int, int], np.ndarray]:
        """Sparse all-to-all: ``payloads[(src, dst)]`` arrays are delivered.

        Each rank is charged latency per message plus volume/bandwidth for
        everything it sends and receives; delivery completes when both
        endpoints are ready (the receiver waits for the sender).
        """
        send_time = np.zeros(self.size)
        recv_time = np.zeros(self.size)
        for (src, dst), arr in payloads.items():
            if not (0 <= src < self.size and 0 <= dst < self.size):
                raise ValueError(f"rank pair out of range: {(src, dst)}")
            if src == dst:
                continue
            nbytes = float(np.asarray(arr).size * self.bytes_per_element)
            t = self.network.transfer_time(nbytes)
            send_time[src] += t
            recv_time[dst] += t
            self._stats["p2p_messages"] += 1
            self._stats["p2p_bytes"] += nbytes
        # Post sends, then wait for the slowest matching sender: a rank's
        # exchange ends no earlier than every sender's post time plus wire
        # time for its inbound data.
        post = self.clocks + send_time
        for r in range(self.size):
            self.tracer.record(r, phase, State.MPI, send_time[r], start=self.clocks[r])
        done = np.array(
            [
                max(
                    [post[r]]
                    + [
                        post[src] + recv_time[r]
                        for (src, dst) in payloads
                        if dst == r and src != r
                    ]
                )
                for r in range(self.size)
            ]
        )
        for r in range(self.size):
            wait = done[r] - post[r]
            if wait > 0:
                self.tracer.record(r, phase, State.MPI, wait, start=post[r])
        self.clocks[:] = np.maximum(self.clocks + send_time, done)
        return {k: v for k, v in payloads.items()}

    def exchange_bytes(
        self, recv_bytes: np.ndarray, phase: str = "halo"
    ) -> np.ndarray:
        """Charge a halo exchange given only its volume matrix.

        ``recv_bytes[r, s]`` is what rank r receives from rank s.  No data
        moves — this is the cluster model's path, where exchanging real
        10^6-particle payloads would be pointless.  Each rank is charged
        latency per partner message (both directions) plus its total
        in+out volume over the NIC bandwidth.  Returns per-rank comm
        seconds.
        """
        recv = np.asarray(recv_bytes, dtype=np.float64)
        if recv.shape != (self.size, self.size):
            raise ValueError(f"recv_bytes must be ({self.size}, {self.size})")
        in_bytes = recv.sum(axis=1)
        out_bytes = recv.sum(axis=0)
        in_msgs = (recv > 0).sum(axis=1)
        out_msgs = (recv > 0).sum(axis=0)
        t = (in_msgs + out_msgs) * self.network.latency + (
            in_bytes + out_bytes
        ) / self.network.bandwidth
        for r in range(self.size):
            if t[r] > 0:
                self.tracer.record(r, phase, State.MPI, t[r], start=self.clocks[r])
        self.clocks += t
        self._stats["p2p_messages"] += int(in_msgs.sum())
        self._stats["p2p_bytes"] += float(in_bytes.sum())
        return t

    # ------------------------------------------------------------------
    @property
    def stats(self) -> Dict[str, float]:
        """Message/byte counters accumulated so far."""
        return dict(self._stats)

    def elapsed(self) -> float:
        """Wall time of the slowest rank."""
        return float(self.clocks.max())
