"""Communication-skeleton extraction (Section 2's skeleton apps).

"Skeleton applications, the name used to refer to reduced versions of
applications that produce the same network traffic of the full ones, are
of interest to model the performance of networks through simulation."
The paper points at compiler-assisted skeletonization [48] as a way to
obtain exactly-representative mini-apps.

This module implements the idea for the modeled SPH step: it *extracts*
the step's communication pattern — every point-to-point volume and every
collective, in order, with compute intervals replaced by their durations
— into a replayable :class:`CommSkeleton`.  Replaying the skeleton on a
fresh :class:`~repro.runtime.comm.SimComm` must reproduce the original
step time without re-running any of the SPH cost model, which is what
makes skeletons useful for fast network-design studies (e.g. sweeping
latency/bandwidth without touching the application model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Literal

import numpy as np

from ..profiling.trace import Tracer
from .cluster import ClusterModel
from .comm import SimComm
from .machine import NetworkSpec

__all__ = ["SkeletonOp", "CommSkeleton", "extract_skeleton"]


@dataclass(frozen=True)
class SkeletonOp:
    """One replayable operation of the skeletonized step."""

    kind: Literal["compute", "exchange", "allreduce"]
    phase: str
    #: compute: per-rank seconds; exchange: (R, R) bytes; allreduce: None.
    payload: np.ndarray | None = None


@dataclass
class CommSkeleton:
    """Ordered operation list extracted from one application step."""

    n_ranks: int
    ops: List[SkeletonOp] = field(default_factory=list)

    @property
    def n_exchanges(self) -> int:
        return sum(1 for op in self.ops if op.kind == "exchange")

    @property
    def n_collectives(self) -> int:
        return sum(1 for op in self.ops if op.kind == "allreduce")

    def total_bytes(self) -> float:
        return float(
            sum(op.payload.sum() for op in self.ops if op.kind == "exchange")
        )

    def replay(
        self, network: NetworkSpec, tracer: Tracer | None = None
    ) -> float:
        """Execute the skeleton on a fresh communicator; returns step time.

        Only the network model participates — compute intervals are
        replayed as recorded — so sweeping ``network`` isolates the
        interconnect's contribution exactly.
        """
        comm = SimComm(self.n_ranks, network, tracer or Tracer())
        for op in self.ops:
            if op.kind == "compute":
                for r in range(self.n_ranks):
                    if op.payload[r] > 0:
                        comm.compute(r, float(op.payload[r]), op.phase)
            elif op.kind == "exchange":
                comm.exchange_bytes(op.payload, phase=op.phase)
            else:
                comm.allreduce(
                    [np.zeros(1) for _ in range(self.n_ranks)],
                    op="min",
                    phase=op.phase,
                )
        return comm.elapsed()

    def replay_trace(self, network: NetworkSpec) -> tuple[float, Tracer]:
        """Replay and keep the replay's per-rank trace.

        The returned tracer feeds the same observability pipeline real
        executions use — :func:`repro.observability.pop.pop_from_events`,
        the Chrome-trace/JSONL exporters — so modeled skeleton replays
        and measured pool runs are comparable row for row.
        """
        tracer = Tracer()
        elapsed = self.replay(network, tracer)
        return elapsed, tracer


def extract_skeleton(model: ClusterModel) -> CommSkeleton:
    """Skeletonize one step of the cluster model.

    Walks the same substep/phase structure the model simulates, but
    records operations instead of executing them against a communicator.
    The compute payloads are the per-rank phase seconds; exchanges carry
    the scaled halo-byte matrices; one allreduce closes every substep.
    """
    skel = CommSkeleton(n_ranks=model.n_ranks)
    for s in range(model.substeps):
        cols = model._active_cols(s)
        active_frac = np.divide(
            model.rank_rung_counts[:, cols].sum(axis=1),
            np.maximum(model.rank_rung_counts.sum(axis=1), 1),
        )
        for phase in model.phase_letters:
            units_r = model.rank_rung_units[phase][:, cols].sum(axis=1)
            if phase == "A" and s > 0:
                units_r = units_r * 0.2
            if phase in ("A", "B"):
                units_r = units_r + 0.5 * model.ghost_units * active_frac
            if phase == "A":
                from .cluster import _SUBSTEP_REPL_SHARE

                units_r = units_r + model.replicated_units * (
                    1.0 if s == 0 else _SUBSTEP_REPL_SHARE
                )
            secs = model._phase_seconds(units_r, phase)
            skel.ops.append(SkeletonOp("compute", phase, secs))
        scale = 0.5 * (active_frac[:, None] + active_frac[None, :])
        from .cluster import EXCHANGES_PER_STEP

        skel.ops.append(
            SkeletonOp("exchange", "G", model.halo_bytes * scale * EXCHANGES_PER_STEP)
        )
        skel.ops.append(SkeletonOp("allreduce", "J"))
    return skel
