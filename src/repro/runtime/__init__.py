"""Simulated cluster runtime (the Figures 1-4 substrate).

Machine models of Piz Daint and MareNostrum 4, an MPI-like communication
layer with modeled costs, the per-phase compute cost model with paper
anchors, and the strong-scaling experiment driver.
"""

from .calibration import PAPER_ANCHORS_12CORES, calibrate_kappa
from .cluster import ClusterModel, StepBreakdown
from .comm import SimComm
from .cost_model import GRAVITY_ORDER_MULT, PhaseWeights, particle_work_units
from .machine import MACHINES, MARENOSTRUM4, PIZ_DAINT, MachineSpec, NetworkSpec
from .scaling import (
    PAPER_CORE_COUNTS,
    ScalingPoint,
    ScalingSeries,
    format_scaling_table,
    strong_scaling,
)
from .skeleton import CommSkeleton, SkeletonOp, extract_skeleton
from .weak_scaling import WeakScalingPoint, WeakScalingSeries, weak_scaling
from .workloads import TESTS, Workload, build_workload

__all__ = [
    "PIZ_DAINT",
    "MARENOSTRUM4",
    "MACHINES",
    "MachineSpec",
    "NetworkSpec",
    "SimComm",
    "PhaseWeights",
    "particle_work_units",
    "GRAVITY_ORDER_MULT",
    "ClusterModel",
    "StepBreakdown",
    "PAPER_ANCHORS_12CORES",
    "calibrate_kappa",
    "PAPER_CORE_COUNTS",
    "ScalingPoint",
    "ScalingSeries",
    "strong_scaling",
    "format_scaling_table",
    "Workload",
    "build_workload",
    "TESTS",
    "WeakScalingPoint",
    "WeakScalingSeries",
    "weak_scaling",
    "CommSkeleton",
    "SkeletonOp",
    "extract_skeleton",
]
