"""Functionally-distributed SPH over the simulated communicator.

Proof that the MPI-like layer really carries the algorithm (Table 4
"X = {MPI}"): the density evaluation is executed rank-by-rank — each rank
owns a subdomain from the domain decomposition, receives ghost particles
through :meth:`SimComm.alltoallv`, runs the *same* vectorized density
kernel on its local+ghost set, and the gathered result must equal the
serial evaluation to machine precision while the communicator's clocks
record the modeled exchange cost.

This is the template a real MPI port would follow; the tests pin the
exactness property.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..core.particles import ParticleSystem
from ..domain.decomposition import decompose
from ..kernels.base import Kernel
from ..sph.density import compute_density
from ..tree.box import Box
from ..tree.cellgrid import cell_grid_search
from .comm import SimComm

__all__ = ["distributed_density", "exchange_ghosts"]


def exchange_ghosts(
    comm: SimComm,
    particles: ParticleSystem,
    box: Box,
    assignment: np.ndarray,
    support: np.ndarray,
) -> Dict[int, np.ndarray]:
    """Ship every particle to each remote rank whose particles need it.

    A particle j is a ghost of rank r when some particle i of r has
    ``|x_i - x_j| <= max(support_i, support_j)`` — computed here exactly
    with a symmetric neighbour search (the coarse estimator in
    :mod:`repro.domain.halo` is for the cost model; the functional path
    must not miss anyone).  Returns, per rank, the *global indices* of its
    ghosts, after charging the exchange to the communicator.
    """
    nl = cell_grid_search(
        particles.x, support, box, mode="symmetric", include_self=False
    )
    i, j = nl.pairs()
    ri, rj = assignment[i], assignment[j]
    cross = ri != rj
    # Ghosts of rank r: unique j with a partner i on r.
    need = np.unique(np.stack([ri[cross], j[cross]], axis=1), axis=0)
    ghosts: Dict[int, np.ndarray] = {
        r: need[need[:, 0] == r, 1] for r in range(comm.size)
    }
    # Charge the wire: each ghost is one particle record from its owner.
    payloads: Dict[Tuple[int, int], np.ndarray] = {}
    for r, idx in ghosts.items():
        if idx.size == 0:
            continue
        owners = assignment[idx]
        for s in np.unique(owners):
            if s == r:
                continue
            sel = idx[owners == s]
            payloads[(int(s), int(r))] = particles.x[sel]
    comm.alltoallv(payloads, phase="halo")
    return ghosts


def distributed_density(
    particles: ParticleSystem,
    box: Box,
    kernel: Kernel,
    comm: SimComm,
    method: str = "sfc-hilbert",
) -> np.ndarray:
    """Rank-parallel density summation; returns the assembled global rho.

    Each rank computes rho only for its owned particles, using its owned +
    ghost set; the pieces are then assembled (the "gather" a root rank
    would do for output).  Must equal the serial result exactly.
    """
    d = decompose(method, particles.x, comm.size, box)
    support = 2.0 * particles.h
    ghosts = exchange_ghosts(comm, particles, box, d.assignment, support)

    rho = np.zeros(particles.n)
    for r in range(comm.size):
        own = d.rank_particles(r)
        halo = ghosts[r]
        local_idx = np.concatenate([own, halo])
        local = particles.select(local_idx)
        nl = cell_grid_search(local.x, 2.0 * local.h, box, mode="symmetric")
        compute_density(local, nl, kernel, box)
        # Only the owned entries are authoritative on this rank.
        rho[own] = local.rho[: own.size]
        # Charge the local work to this rank's clock (cost model units
        # are irrelevant here; wall-clock stands in).
        comm.compute(r, 1e-9 * nl.n_pairs, phase="E")
    comm.barrier(phase="J")
    return rho
