"""The simulated cluster: strong-scaling execution model (Figures 1-3).

Given a test-case :class:`~repro.runtime.workloads.Workload` (the real
10^6-particle geometry), a parent-code preset, a machine model and a core
count, :class:`ClusterModel`:

1. chooses the rank/thread layout (hybrid codes: one rank per node,
   ``cores_per_node`` threads; pure-MPI SPH-flow: one rank per core);
2. decomposes the *actual particle positions* with the preset's method —
   work-weighted if the preset load-balances dynamically;
3. estimates the halo matrix from the decomposition;
4. charges per-rank, per-phase compute (pair-equivalents x kappa), with
   per-preset serial thread fractions (SPHYNX 1.3.1's serial tree build
   is what creates the idle regions of Figure 4), thread-scheduling
   imbalance by load-balancing scheme, individual-time-step rungs for
   ChaNGa, and communication through :class:`~repro.runtime.comm.SimComm`;
5. produces the average time per time-step and an Extrae-like trace.

The absolute scale comes from one calibration constant per (code, test)
anchored at the smallest measured core count (12 cores on Piz Daint);
everything about the *shape* of the curves — speedup, the stall when
particles/core drops toward 10^4, the load-imbalance-driven efficiency
loss — comes out of the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.config import SimulationConfig
from ..domain.decomposition import Decomposition, decompose
from ..domain.halo import estimate_halo
from ..profiling.trace import State, Tracer
from .comm import SimComm
from .cost_model import PhaseWeights, particle_work_units
from .machine import MachineSpec
from .workloads import Workload

__all__ = ["ClusterModel", "StepBreakdown"]

#: Bytes exchanged per halo particle (x, v, m, h, rho, u, p -> ~10 doubles).
HALO_FIELDS_BYTES = 80.0

#: Halo exchanges per step: positions/h for the search, updated densities
#: before forces, and one h-iteration refresh.
EXCHANGES_PER_STEP = 3.0

#: Fraction of a local particle's tree/search cost charged per ghost:
#: ghosts are inserted into the tree, sorted, and filtered as candidates,
#: but never integrated.  This term is what bends the strong-scaling
#: curves: with ~100-neighbour SPH the ghost shell of a subdomain holding
#: ~10^4 particles rivals the subdomain itself — "scaling stalls when
#: there are not enough particles/core (typically 10^4)" (Section 5.2).
HALO_WORK_FACTOR = 0.6

#: Serial thread fractions per phase, per preset (Amdahl within a rank).
#: SPHYNX 1.3.1: the paper's trace analysis found the tree build serial
#: ("the importance of parallelizing the tree building (phase A)") and
#: idle regions in B, D and J.
_SERIAL_FRACTIONS: Dict[str, Dict[str, float]] = {
    "SPHYNX": {"A": 1.0, "B": 0.25, "D": 0.35, "J": 0.70},
    "ChaNGa": {"A": 0.10, "J": 0.10},
    "SPH-flow": {},
    "SPH-EXA": {"A": 0.05},
}
_DEFAULT_SERIAL = 0.03

#: Thread-scheduling imbalance multiplier on the parallel part.
_THREAD_IMBALANCE = {"static": 1.10, "dynamic": 1.02, "local-inner-outer": 1.0}

#: Fraction of the global step work that is *replicated on every rank*
#: rather than partitioned: global-tree top levels, per-step domain
#: decomposition (ChaNGa re-sorts the SFC and rebuilds its Charm++ object
#: map every big step), runtime bookkeeping that parallelizes over
#: threads but not over ranks.  This is the non-scaling floor that makes
#: strong scaling stall; values chosen to reproduce the plateau heights
#: of Figures 2-3 (ChaNGa's square-patch curve flattens near 1/8 of its
#: single-node time; SPH-flow near 1/11; SPHYNX's floor is dominated by
#: halo work instead).
_REPLICATED_FRACTION = {
    "SPHYNX": 0.012,
    "ChaNGa": 0.10,
    "SPH-flow": 0.008,
    "SPH-EXA": 0.004,
}

#: Deepest individual-time-step rung the model resolves.
_MAX_RUNG = 4

#: Share of the replicated global work re-paid on every fine substep
#: (individual time stepping patches the domain/tree each rung — the
#: multi-time-stepping overhead the paper names among the load-imbalance
#: factors).
_SUBSTEP_REPL_SHARE = 0.04


@dataclass(frozen=True)
class StepBreakdown:
    """Modeled timings of one step at one scale."""

    step_time: float
    compute_time: np.ndarray  # per rank
    comm_time: np.ndarray  # per rank
    substeps: int


@dataclass
class ClusterModel:
    """Execution model of one (workload, preset, machine, cores) point."""

    workload: Workload
    preset: SimulationConfig
    machine: MachineSpec
    n_cores: int
    weights: PhaseWeights = field(default_factory=PhaseWeights)
    kappa: float = 1.0e-9  # seconds per pair-equivalent (calibrated)
    tracer: Optional[Tracer] = None

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("n_cores must be >= 1")
        hybrid = "OpenMP" in self.preset.parallelization or "HPX" in self.preset.parallelization
        if hybrid:
            # One rank per NUMA domain (12 cores): standard MPI+OpenMP
            # placement, and what keeps the MareNostrum (48-core nodes)
            # curves of Fig. 1 close to Piz Daint at equal core counts.
            numa = min(12, self.machine.cores_per_node)
            self.threads_per_rank = min(numa, self.n_cores)
        else:
            self.threads_per_rank = 1
        self.n_ranks = max(self.n_cores // self.threads_per_rank, 1)
        if self.tracer is None:
            self.tracer = Tracer()
        self._plan()

    # ------------------------------------------------------------------
    def _plan(self) -> None:
        w = self.workload
        p = self.preset
        use_gravity = p.gravity is not None and w.has_gravity_source
        self.gravity_order = p.gravity_order if use_gravity else None
        units = particle_work_units(
            self.weights,
            mean_neighbors=w.mean_neighbors,
            n_total=w.n,
            density_factor=w.density_factor,
            use_iad=(p.gradients == "iad"),
            generalized_ve=(p.volume_elements == "generalized"),
            gravity_order=self.gravity_order,
        )
        self.phase_letters = [
            k for k in "ABCDEFGHIJ" if units[k].any() or k in "AEFGJ"
        ]
        total_units = sum(units.values())

        # Decomposition: dynamic load balancing cuts by measured work.
        dyn = p.load_balancing == "dynamic"
        self.decomposition: Decomposition = decompose(
            p.domain_decomposition,
            w.x,
            self.n_ranks,
            w.box,
            weights=total_units if dyn else None,
        )
        self.halo = estimate_halo(w.x, w.support, w.box, self.decomposition)

        # Individual time stepping: rungs from the free-fall time contrast
        # (dt ~ rho^-1/2 -> rung ~ log2 sqrt(rho/rho_ref)).  The reference
        # is a low percentile, not the minimum: partially-filled boundary
        # cells of the counting grid would otherwise fake a density
        # contrast in perfectly uniform distributions.
        if p.timestepping == "individual":
            dens = np.maximum(w.density_factor, 1e-3)
            ref = max(float(np.median(dens)), 1e-3)
            rung = np.floor(0.5 * np.log2(np.maximum(dens / ref, 1.0)))
            self.rung = np.clip(rung.astype(np.int64), 0, _MAX_RUNG)
        else:
            self.rung = np.zeros(w.n, dtype=np.int64)
        self.max_rung = int(self.rung.max())
        self.substeps = 1 << self.max_rung

        # Per-rank, per-rung unit matrices: U[phase][r, b].
        ranks = self.decomposition.assignment
        nb = self.max_rung + 1
        key = ranks * nb + self.rung
        self.rank_rung_units: Dict[str, np.ndarray] = {}
        for phase, u in units.items():
            mat = np.bincount(key, weights=u, minlength=self.n_ranks * nb)
            self.rank_rung_units[phase] = mat.reshape(self.n_ranks, nb)
        counts = np.bincount(key, minlength=self.n_ranks * nb)
        self.rank_rung_counts = counts.reshape(self.n_ranks, nb)

        # Halo bytes matrix (per exchange).
        self.halo_bytes = self.halo.recv * HALO_FIELDS_BYTES

        # Ghost-processing compute: charge a fraction of the per-particle
        # tree + search unit cost for every received halo particle.
        halo_counts = self.halo.recv_totals()
        logn = max(np.log2(max(w.n, 2)), 1.0)
        per_ghost = HALO_WORK_FACTOR * (
            self.weights.tree * logn
            + self.weights.search * w.mean_neighbors * self.weights.h_iterations
        )
        self.ghost_units = halo_counts * per_ghost  # (R,), split A/B below

        self.serial_frac = dict(_SERIAL_FRACTIONS.get(p.label, {}))
        self.thread_imb = _THREAD_IMBALANCE[p.load_balancing]
        frac = _REPLICATED_FRACTION.get(p.label, 0.01)
        self.replicated_units = frac * float(total_units.sum())

    # ------------------------------------------------------------------
    def _phase_seconds(self, units_r: np.ndarray, phase: str) -> np.ndarray:
        """Seconds per rank for a phase's unit vector (thread-aware)."""
        serial = self.serial_frac.get(phase, _DEFAULT_SERIAL)
        threads = self.threads_per_rank
        per_core = self.kappa / self.machine.core_speed
        if threads == 1:
            return units_r * per_core
        parallel = units_r * (1.0 - serial) / threads * self.thread_imb
        return (units_r * serial + parallel) * per_core

    def _active_cols(self, substep: int) -> np.ndarray:
        """Rung columns whose particles step at this substep."""
        b = np.arange(self.max_rung + 1)
        period = 1 << (self.max_rung - b)
        return (substep % period) == 0

    def simulate_step(self, comm: Optional[SimComm] = None) -> StepBreakdown:
        """Charge one Algorithm-1 step; returns its timing breakdown."""
        if comm is None:
            comm = SimComm(self.n_ranks, self.machine.network, self.tracer)
        t0 = comm.clocks.copy()
        compute = np.zeros(self.n_ranks)
        for s in range(self.substeps):
            cols = self._active_cols(s)
            active_frac = np.divide(
                self.rank_rung_counts[:, cols].sum(axis=1),
                np.maximum(self.rank_rung_counts.sum(axis=1), 1),
            )
            for phase in self.phase_letters:
                mat = self.rank_rung_units[phase]
                units_r = mat[:, cols].sum(axis=1)
                if phase == "A" and s > 0:
                    # Tree is patched, not rebuilt, on fine substeps.
                    units_r = units_r * 0.2
                if phase in ("A", "B"):
                    # Ghost processing rides on tree build and search.
                    units_r = units_r + 0.5 * self.ghost_units * active_frac
                if phase == "A":
                    # Replicated global work (every rank pays it in full).
                    repl = self.replicated_units * (
                        1.0 if s == 0 else _SUBSTEP_REPL_SHARE
                    )
                    units_r = units_r + repl
                secs = self._phase_seconds(units_r, phase)
                for r in range(self.n_ranks):
                    if secs[r] > 0:
                        comm.compute(r, secs[r], phase)
                compute += secs
            # Halo exchanges (volume scaled by the active fraction) around
            # the search, density and force evaluations.
            scale = 0.5 * (active_frac[:, None] + active_frac[None, :])
            comm.exchange_bytes(
                self.halo_bytes * scale * EXCHANGES_PER_STEP, phase="G"
            )
            # New dt: the synchronizing collective of phase J.
            comm.allreduce(
                [np.zeros(1) for _ in range(self.n_ranks)], op="min", phase="J"
            )
        step_time = float((comm.clocks - t0).max())
        comm_time = (comm.clocks - t0) - compute
        return StepBreakdown(
            step_time=step_time,
            compute_time=compute,
            comm_time=comm_time,
            substeps=self.substeps,
        )

    def average_step_time(self, n_steps: int = 1) -> float:
        """Average modeled seconds per time step over ``n_steps``."""
        comm = SimComm(self.n_ranks, self.machine.network, self.tracer)
        total = 0.0
        for _ in range(n_steps):
            total += self.simulate_step(comm).step_time
        return total / max(n_steps, 1)

    # ------------------------------------------------------------------
    def thread_trace(self, tracer: Tracer, n_steps: int = 1) -> None:
        """Record a thread-resolved trace (the Figure 4 view).

        Rank-level phases are expanded onto ``threads_per_rank`` rows:
        serial parts run on thread 0 while the others idle; parallel
        parts get a fork/join sliver, slightly imbalanced useful spans
        (by the scheme's imbalance factor) and a sync tail.
        """
        threads = self.threads_per_rank
        per_core = self.kappa / self.machine.core_speed
        for _ in range(n_steps):
            clock = {r: max(tracer.clock(r, t) for t in range(threads)) for r in range(self.n_ranks)}
            for s in range(self.substeps):
                cols = self._active_cols(s)
                for phase in self.phase_letters:
                    mat = self.rank_rung_units[phase]
                    units_r = mat[:, cols].sum(axis=1)
                    if phase == "A" and s > 0:
                        units_r = units_r * 0.2
                    if phase in ("A", "B"):
                        units_r = units_r + 0.5 * self.ghost_units
                    if phase == "A":
                        units_r = units_r + self.replicated_units * (
                            1.0 if s == 0 else _SUBSTEP_REPL_SHARE
                        )
                    serial = self.serial_frac.get(phase, _DEFAULT_SERIAL)
                    for r in range(self.n_ranks):
                        u = units_r[r]
                        if u <= 0:
                            continue
                        t_serial = u * serial * per_core
                        t_par = u * (1.0 - serial) / threads * per_core
                        start = clock[r]
                        # Serial span on thread 0; other threads idle.
                        if t_serial > 0:
                            tracer.record(r, phase, State.USEFUL, t_serial, 0, start)
                            for th in range(1, threads):
                                tracer.record(r, phase, State.IDLE, t_serial, th, start)
                        # Fork, imbalanced parallel spans, sync to the max.
                        fork = 0.02 * t_par
                        spans = t_par * (
                            1.0
                            + (self.thread_imb - 1.0)
                            * np.linspace(-1.0, 1.0, max(threads, 2))[:threads]
                        )
                        tmax = float(spans.max()) if threads else 0.0
                        base = start + t_serial
                        for th in range(threads):
                            tracer.record(r, phase, State.FORK_JOIN, fork, th, base)
                            tracer.record(
                                r, phase, State.USEFUL, spans[th], th, base + fork
                            )
                            tail = tmax - spans[th]
                            if tail > 0:
                                tracer.record(
                                    r,
                                    phase,
                                    State.SYNC,
                                    tail,
                                    th,
                                    base + fork + spans[th],
                                )
                        clock[r] = base + fork + tmax
                # Communication + dt collective on thread 0, others idle.
                in_bytes = self.halo_bytes.sum(axis=1)
                out_bytes = self.halo_bytes.sum(axis=0)
                msgs = (self.halo_bytes > 0).sum(axis=1) + (self.halo_bytes > 0).sum(axis=0)
                net = self.machine.network
                t_comm = msgs * net.latency + (in_bytes + out_bytes) / net.bandwidth
                release = max(
                    clock[r] + t_comm[r] for r in range(self.n_ranks)
                ) + net.collective_time(self.n_ranks)
                for r in range(self.n_ranks):
                    tracer.record(r, "J", State.MPI, t_comm[r], 0, clock[r])
                    mpi_tail = release - (clock[r] + t_comm[r])
                    if mpi_tail > 0:
                        tracer.record(
                            r, "J", State.MPI, mpi_tail, 0, clock[r] + t_comm[r]
                        )
                    for th in range(1, threads):
                        tracer.record(
                            r, "J", State.IDLE, release - clock[r], th, clock[r]
                        )
                    clock[r] = release
