"""Strong-scaling experiment driver (Figures 1-3).

"This work employs a set of strong-scaling experiments to assess the
performance at scale with fixed number of particles for each test"
(Section 5.2).  :func:`strong_scaling` sweeps core counts for one
(code, test, machine) combination with the calibrated cluster model, and
:func:`format_scaling_table` prints the series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.config import SimulationConfig
from ..profiling.metrics import PopMetrics, compute_pop_metrics
from ..profiling.trace import Tracer
from .calibration import calibrate_kappa
from .cluster import ClusterModel
from .machine import MachineSpec
from .workloads import Workload, build_workload

__all__ = [
    "ScalingPoint",
    "ScalingSeries",
    "strong_scaling",
    "format_scaling_table",
    "PAPER_CORE_COUNTS",
]

#: Core counts of the paper's x-axes (12 = one Piz Daint node).
PAPER_CORE_COUNTS = (12, 24, 48, 96, 192, 384, 768, 1536)


@dataclass(frozen=True)
class ScalingPoint:
    """One (cores, time) sample of a strong-scaling curve."""

    cores: int
    ranks: int
    time_per_step: float
    particles_per_core: float
    pop: PopMetrics

    @property
    def speedup_base(self) -> float:
        return self.cores * self.time_per_step  # used for relative speedup


@dataclass(frozen=True)
class ScalingSeries:
    """A full strong-scaling curve for one (code, test, machine)."""

    code: str
    test: str
    machine: str
    points: List[ScalingPoint]

    def times(self) -> np.ndarray:
        return np.array([p.time_per_step for p in self.points])

    def cores(self) -> np.ndarray:
        return np.array([p.cores for p in self.points])

    def speedups(self) -> np.ndarray:
        t = self.times()
        c = self.cores()
        return (t[0] * c[0] / c) / t * (c / c[0])  # = t[0]/t

    def parallel_efficiency(self) -> np.ndarray:
        t = self.times()
        c = self.cores()
        return t[0] * c[0] / (t * c)


def strong_scaling(
    preset: SimulationConfig,
    test: str,
    machine: MachineSpec,
    core_counts: Sequence[int] = PAPER_CORE_COUNTS,
    n_particles: int = 1_000_000,
    n_steps: int = 20,
    workload: Workload | None = None,
) -> ScalingSeries:
    """Sweep core counts with the calibrated model; returns the curve.

    ``n_steps`` matches the paper's 20-step runs; steps are statistically
    identical in the model so the average equals a single step, but the
    sweep still simulates all of them so traces carry per-step structure.
    """
    if workload is None:
        workload = build_workload(test, n_particles)
    kappa = calibrate_kappa(preset, workload)
    points: List[ScalingPoint] = []
    ref_useful: float | None = None
    for cores in core_counts:
        tracer = Tracer()
        model = ClusterModel(
            workload=workload,
            preset=preset,
            machine=machine,
            n_cores=cores,
            kappa=kappa,
            tracer=tracer,
        )
        avg = model.average_step_time(n_steps=min(n_steps, 3))
        pop = compute_pop_metrics(tracer, reference_useful_total=ref_useful)
        if ref_useful is None:
            # Reference scale: its own useful total (CompScal = 1 there).
            ref_useful = pop.total_useful
            pop = compute_pop_metrics(tracer, reference_useful_total=ref_useful)
        points.append(
            ScalingPoint(
                cores=cores,
                ranks=model.n_ranks,
                time_per_step=avg,
                particles_per_core=workload.n / cores,
                pop=pop,
            )
        )
    return ScalingSeries(
        code=preset.label, test=test, machine=machine.name, points=points
    )


def format_scaling_table(series_list: Sequence[ScalingSeries]) -> str:
    """Side-by-side table of time-per-step curves (the figure data)."""
    if not series_list:
        return "(no series)"
    all_cores = sorted({p.cores for s in series_list for p in s.points})
    head = f"{'cores':>7} " + " ".join(
        f"{s.machine[:12]:>14}" for s in series_list
    )
    sub = f"{'':>7} " + " ".join(
        f"{(s.code + '/' + s.test)[:14]:>14}" for s in series_list
    )
    lines = [sub, head, "-" * len(head)]
    lookup: List[Dict[int, float]] = [
        {p.cores: p.time_per_step for p in s.points} for s in series_list
    ]
    for cores in all_cores:
        row = [f"{cores:>7d}"]
        for table in lookup:
            t = table.get(cores)
            row.append(f"{t:>14.2f}" if t is not None else f"{'-':>14}")
        lines.append(" ".join(row))
    lines.append("(average seconds per time-step, lower is better)")
    return "\n".join(lines)
