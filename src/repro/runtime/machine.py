"""Machine models of the paper's two test platforms (Section 5.2).

* **Piz Daint** (hybrid partition): Cray XC50 nodes with one 12-core
  Intel E5-2690 v3 (Haswell) — the study used 12 cores/node — on an
  Aries dragonfly fabric.
* **MareNostrum 4**: Lenovo nodes with two 24-core Xeon Platinum 8160
  (Skylake), 48 cores/node, on 100 Gb/s Intel Omni-Path in a full
  fat-tree.

The numbers below are public figures for these interconnects/CPUs; the
per-code absolute time scale is calibrated separately (see
:mod:`repro.runtime.calibration`), so only the *ratios* — cores per node,
latency vs bandwidth, relative core speed — shape the simulated curves,
which is exactly the information the paper's figures encode.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkSpec", "MachineSpec", "PIZ_DAINT", "MARENOSTRUM4", "MACHINES"]


@dataclass(frozen=True)
class NetworkSpec:
    """Analytic interconnect model: ``t(msg) = latency + bytes/bandwidth``."""

    name: str
    latency: float  # seconds per message (MPI short-message latency)
    bandwidth: float  # bytes/second per NIC direction
    topology: str  # "dragonfly" | "fat-tree"

    def transfer_time(self, nbytes: float, n_messages: int = 1) -> float:
        """Time to move ``nbytes`` in ``n_messages`` point-to-point sends."""
        if nbytes < 0 or n_messages < 0:
            raise ValueError("nbytes and n_messages must be non-negative")
        return n_messages * self.latency + nbytes / self.bandwidth

    def collective_time(self, n_ranks: int, nbytes: float = 8.0) -> float:
        """Log-tree collective (allreduce/bcast) over ``n_ranks``."""
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if n_ranks == 1:
            return 0.0
        import math

        rounds = math.ceil(math.log2(n_ranks))
        return 2.0 * rounds * (self.latency + nbytes / self.bandwidth)


@dataclass(frozen=True)
class MachineSpec:
    """Compute-node and fabric description of one platform."""

    name: str
    cores_per_node: int
    #: Relative per-core throughput (Piz Daint Haswell == 1.0).
    core_speed: float
    network: NetworkSpec
    max_nodes: int

    def nodes_for_cores(self, cores: int) -> int:
        """Nodes needed for ``cores`` at full-node allocation."""
        if cores < 1:
            raise ValueError("cores must be >= 1")
        nodes = -(-cores // self.cores_per_node)  # ceil
        if nodes > self.max_nodes:
            raise ValueError(
                f"{cores} cores need {nodes} nodes > {self.max_nodes} on {self.name}"
            )
        return nodes


#: Cray XC50 hybrid partition: 5320 nodes, Aries dragonfly.
PIZ_DAINT = MachineSpec(
    name="Piz Daint",
    cores_per_node=12,
    core_speed=1.0,
    network=NetworkSpec(
        name="Aries",
        latency=1.3e-6,
        bandwidth=10.2e9,  # ~10 GB/s injection per node
        topology="dragonfly",
    ),
    max_nodes=5320,
)

#: MareNostrum 4 general-purpose partition: 3456 nodes, Omni-Path fat tree.
MARENOSTRUM4 = MachineSpec(
    name="MareNostrum",
    cores_per_node=48,
    # Skylake 8160 at 2.1 GHz vs Haswell 2690v3 at 2.6 GHz: slightly lower
    # per-core clock, wider vectors; the measured curves in Fig. 1 sit a
    # touch above Piz Daint at equal core counts.
    core_speed=0.95,
    network=NetworkSpec(
        name="Omni-Path",
        latency=1.1e-6,
        bandwidth=12.5e9,  # 100 Gb/s
        topology="fat-tree",
    ),
    max_nodes=3456,
)

MACHINES = {"piz-daint": PIZ_DAINT, "marenostrum4": MARENOSTRUM4}
