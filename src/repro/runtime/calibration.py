"""Per-(code, test) absolute-time calibration.

"You are not expected to match absolute numbers" — but the paper prints
its y-axes, so the model is anchored to them: for each code and test the
average time per time-step at the smallest measured scale (12 cores = one
Piz Daint node) fixes the seconds-per-pair-equivalent constant kappa.
Everything else — the shape of the curves across core counts and machines
— comes from the model (real decomposition, halos, serial fractions,
rungs, network).

Anchor values read off Figures 1-3 (the top y-axis tick is the 12-core
point of each panel):

=========  =======  ==============
code       test     seconds @ 12c
=========  =======  ==============
SPHYNX     square   38.25   (Fig 1a)
SPHYNX     evrard   40.27   (Fig 1b)
ChaNGa     square   738.0   (Fig 2a)
ChaNGa     evrard   30.38   (Fig 2b)
SPH-flow   square   31.00   (Fig 3)
SPH-EXA    square   20.0    (design target: no anchor in the paper —
SPH-EXA    evrard   22.0     set to "faster than the best parent")
=========  =======  ==============
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core.config import SimulationConfig
from .cluster import ClusterModel
from .machine import PIZ_DAINT, MachineSpec
from .workloads import Workload

__all__ = ["PAPER_ANCHORS_12CORES", "calibrate_kappa"]

#: (code label, test) -> measured avg seconds per step at 12 Piz Daint cores.
PAPER_ANCHORS_12CORES: Dict[Tuple[str, str], float] = {
    ("SPHYNX", "square"): 38.25,
    ("SPHYNX", "evrard"): 40.27,
    ("ChaNGa", "square"): 738.0,
    ("ChaNGa", "evrard"): 30.38,
    ("SPH-flow", "square"): 31.00,
    ("SPH-EXA", "square"): 20.0,
    ("SPH-EXA", "evrard"): 22.0,
}

_CACHE: Dict[Tuple[str, str, int], float] = {}


def calibrate_kappa(
    preset: SimulationConfig,
    workload: Workload,
    anchor_machine: MachineSpec = PIZ_DAINT,
    anchor_cores: int = 12,
) -> float:
    """Seconds per pair-equivalent matching the paper's 12-core anchor.

    Runs the model once with kappa = 1 at the anchor scale; the anchor
    time divided by the resulting model time is kappa.  Cached per
    (code, test, n) because the 12-core plan (decomposition + halo of the
    full particle set) is the expensive part.
    """
    key = (preset.label, workload.name, workload.n)
    if key in _CACHE:
        return _CACHE[key]
    anchor = PAPER_ANCHORS_12CORES.get((preset.label, workload.name))
    if anchor is None:
        raise ValueError(
            f"no paper anchor for ({preset.label!r}, {workload.name!r}); "
            f"known: {sorted(PAPER_ANCHORS_12CORES)}"
        )
    # Step time is affine in kappa: T(kappa) = kappa * W + C, where C is
    # the (kappa-independent) communication time.  Two probe runs solve it
    # exactly, so the anchor is matched to machine precision.
    def probe(kappa: float) -> float:
        model = ClusterModel(
            workload=workload,
            preset=preset,
            machine=anchor_machine,
            n_cores=anchor_cores,
            kappa=kappa,
        )
        return model.average_step_time(n_steps=1)

    t1 = probe(1.0)
    t0 = probe(1e-300)  # pure communication
    work = t1 - t0
    if work <= 0.0:
        raise RuntimeError("calibration run produced non-positive work time")
    kappa = (anchor - t0) / work
    if kappa <= 0.0:
        raise RuntimeError(
            f"anchor {anchor}s is below the modeled communication floor {t0}s"
        )
    _CACHE[key] = kappa
    return kappa
