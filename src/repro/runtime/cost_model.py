"""Per-phase compute cost model.

All compute is accounted in *pair-interaction equivalents* — the cost of
one SPH particle-pair update — and converted to seconds with a single
per-(code, test) constant kappa calibrated at the smallest measured scale
(see :mod:`repro.runtime.calibration`).  The relative phase weights below
are order-of-magnitude ratios of the kernels' arithmetic; the scaling
*shape* of Figures 1-3 is insensitive to their exact values because it is
driven by how per-rank work, halos and collectives scale with core count.

Per-particle work items (units of pair-equivalents):

=========  =====================================================
phase      units per particle
=========  =====================================================
A  tree    ``w_tree * log2(n_local + halo)``
B  search  ``w_search * nn``                   (the tree walk)
C  h adapt ``w_search * nn * (h_iterations - 1)``  (re-walks)
D  IAD     ``w_iad * nn``                      (IAD gradients only)
E  density ``w_density * nn``                  (x1.4 generalized VE)
F  EOS     ``w_scalar``
G  forces  ``w_forces * nn``
H  aux     ``w_aux * nn``                      (div/curl, diagnostics)
I  gravity ``w_gravity * log2(N) * order_mult * density_boost``
J  update  ``w_scalar``
=========  =====================================================

Per-particle *weights* for load-balance purposes are the same expressions
evaluated per particle (the density boost makes Evrard's core heavier).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PhaseWeights", "GRAVITY_ORDER_MULT", "particle_work_units"]

#: Relative M2P cost by multipole order (moment tensor sizes 1/10/20/35
#: plus the matching derivative tensors).
GRAVITY_ORDER_MULT = {None: 0.0, 0: 0.6, 2: 1.0, 3: 1.6, 4: 2.6}


@dataclass(frozen=True)
class PhaseWeights:
    """Relative compute weights (pair-interaction equivalents)."""

    tree: float = 12.0  # per particle per log2(n)
    search: float = 1.2  # per candidate pair per h-iteration
    h_iterations: float = 2.0
    iad: float = 1.6  # per pair: moment accumulation + 3x3 inverse share
    density: float = 1.0  # the definitional unit
    generalized_ve_factor: float = 1.4
    scalar: float = 4.0  # per particle: EOS, update, floors
    forces: float = 2.6  # per pair: momentum + energy + viscosity
    aux: float = 0.3  # per pair: div/curl estimates, diagnostics
    gravity: float = 28.0  # per particle per log2(N), quadrupole baseline
    gravity_density_exponent: float = 0.35  # boost ~ (rho/rhobar)^exp


def particle_work_units(
    weights: PhaseWeights,
    *,
    mean_neighbors: float,
    n_total: int,
    density_factor: np.ndarray,
    use_iad: bool,
    generalized_ve: bool,
    gravity_order: int | None,
) -> dict[str, np.ndarray]:
    """Per-particle work units for each Algorithm-1 phase.

    Returns a dict of per-particle arrays keyed by phase letter; the
    cluster model reduces them per rank with ``bincount``.
    """
    n = density_factor.shape[0]
    nn = mean_neighbors
    ones = np.ones(n)
    logn = max(np.log2(max(n_total, 2)), 1.0)
    out: dict[str, np.ndarray] = {}
    out["A"] = weights.tree * logn * ones
    out["B"] = weights.search * nn * ones
    out["C"] = weights.search * nn * max(weights.h_iterations - 1.0, 0.0) * ones
    out["D"] = (weights.iad * nn * ones) if use_iad else np.zeros(n)
    dens_w = weights.density * nn
    if generalized_ve:
        dens_w *= weights.generalized_ve_factor
    out["E"] = dens_w * ones
    out["F"] = weights.scalar * ones
    out["G"] = weights.forces * nn * ones
    out["H"] = weights.aux * nn * ones
    if gravity_order is not None:
        boost = np.maximum(density_factor, 1e-3) ** weights.gravity_density_exponent
        out["I"] = weights.gravity * logn * GRAVITY_ORDER_MULT[gravity_order] * boost
    else:
        out["I"] = np.zeros(n)
    out["J"] = weights.scalar * ones
    return out
