"""Benchmark workloads: the Table-5 test cases at full 10^6-particle scale.

The cluster model needs the *geometry* of the real particle distribution
(positions, box, density contrast) to decompose domains, estimate halos
and derive per-particle work weights — but not the hydrodynamic state, so
building the full 10^6-particle workload is cheap even though running the
physics at that N in Python is not.  The density factor is estimated on a
coarse grid; for the square patch it is ~1 everywhere, for the Evrard
sphere it spans ~3 decades, which is what drives gravity-work and
time-step-rung imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ics.evrard import EvrardConfig
from ..ics.lattice import cubic_lattice, lattice_sphere
from ..ics.square_patch import SquarePatchConfig
from ..tree.box import Box

__all__ = ["Workload", "build_workload", "TESTS"]

TESTS = ("square", "evrard")


@dataclass(frozen=True)
class Workload:
    """Geometry + statistics of one benchmark test case."""

    name: str
    x: np.ndarray
    box: Box
    support: float  # mean interaction reach (2 h)
    mean_neighbors: float
    density_factor: np.ndarray  # rho_local / mean(rho_local), (n,)
    has_gravity_source: bool  # whether the test includes self-gravity

    @property
    def n(self) -> int:
        return self.x.shape[0]


def _density_factor(x: np.ndarray, box: Box, cells: int = 48) -> np.ndarray:
    """Relative local density from a coarse counting grid."""
    span = box.span
    ncells = np.maximum((cells * span / span.max()).astype(np.int64), 1)
    width = span / ncells
    coords = np.minimum(
        ((box.wrap(x) - box.lo) / width).astype(np.int64), ncells - 1
    )
    flat = coords[:, 0]
    for axis in range(1, x.shape[1]):
        flat = flat * ncells[axis] + coords[:, axis]
    counts = np.bincount(flat, minlength=int(np.prod(ncells)))
    per_particle = counts[flat].astype(np.float64)
    occupied = counts[counts > 0]
    return per_particle / occupied.mean()


def build_workload(
    name: str, n_particles: int = 1_000_000, mean_neighbors: float = 100.0
) -> Workload:
    """Construct the geometry of one of the paper's two tests (Table 5)."""
    if name == "square":
        side = int(round(n_particles ** (1.0 / 3.0)))
        cfg = SquarePatchConfig(side=side, layers=side)
        L = cfg.length
        dx = L / side
        x = cubic_lattice(
            [side, side, side], [-0.5 * L, -0.5 * L, 0.0], [0.5 * L, 0.5 * L, side * dx]
        )
        box = Box(
            lo=np.array([-L, -L, 0.0]),
            hi=np.array([L, L, side * dx]),
            periodic=np.array([False, False, True]),
        )
        # Uniform lattice: reach 2h holding `mean_neighbors` particles:
        # nn = (4 pi / 3) (2h)^3 / spacing^3.
        spacing = dx
        support = spacing * (3.0 * mean_neighbors / (4.0 * np.pi)) ** (1.0 / 3.0)
        return Workload(
            name=name,
            x=x,
            box=box,
            support=support,
            mean_neighbors=mean_neighbors,
            density_factor=_density_factor(x, box),
            has_gravity_source=False,
        )
    if name == "evrard":
        cfg = EvrardConfig(n_target=n_particles)
        base = lattice_sphere(cfg.n_target, radius=1.0)
        s = np.sqrt(np.einsum("ij,ij->i", base, base))
        keep = s > 0.0
        base, s = base[keep], s[keep]
        r_new = cfg.radius * s**1.5
        x = base * (r_new / s)[:, None]
        box = Box(
            lo=np.full(3, -1.5 * cfg.radius),
            hi=np.full(3, 1.5 * cfg.radius),
            periodic=np.zeros(3, dtype=bool),
        )
        # Analytic 1/r profile (Eq. 2): the coarse counting grid cannot
        # resolve the central density spike, and the spike is precisely
        # what drives gravity-work and time-step-rung imbalance.
        r = np.sqrt(np.einsum("ij,ij->i", x, x))
        rho = 1.0 / np.maximum(r, 1e-3)
        dens = rho / rho.mean()
        # Mean spacing of the stretched sphere sets the mean support.
        vol = 4.0 / 3.0 * np.pi * cfg.radius**3
        spacing = (vol / x.shape[0]) ** (1.0 / 3.0)
        support = spacing * (3.0 * mean_neighbors / (4.0 * np.pi)) ** (1.0 / 3.0)
        return Workload(
            name=name,
            x=x,
            box=box,
            support=support,
            mean_neighbors=mean_neighbors,
            density_factor=dens,
            has_gravity_source=True,
        )
    raise ValueError(f"unknown test {name!r}; choose from {TESTS}")
