"""Halo (ghost-particle) exchange estimation.

In a distributed SPH step every rank needs the remote particles within
kernel support of its own — the halo.  The communication volume per rank
pair is what the cluster's network model charges, so it must be computed
from the *actual* decomposition of the *actual* particle distribution.

Exact halo computation is O(pairs) and infeasible at the 10^6-particle
scale of the benchmarks, so the estimator works at cell granularity: bin
particles into a grid of cells one support radius wide, dilate each
rank's cell set by one cell layer (the support reach), and count remote
particles inside the dilated set.  Each remote particle is counted at
most once per receiving rank (it lives in exactly one cell), making this
a tight upper bound on the true halo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..tree.box import Box
from .decomposition import Decomposition

__all__ = ["HaloEstimate", "estimate_halo"]


@dataclass(frozen=True)
class HaloEstimate:
    """Pairwise halo volumes between ranks.

    ``recv[r, s]`` is the number of particles of rank ``s`` that rank
    ``r`` must receive (0 on the diagonal).
    """

    recv: np.ndarray  # (R, R)

    @property
    def n_ranks(self) -> int:
        return self.recv.shape[0]

    def recv_totals(self) -> np.ndarray:
        """Total particles received per rank."""
        return self.recv.sum(axis=1)

    def send_totals(self) -> np.ndarray:
        """Total particles sent per rank."""
        return self.recv.sum(axis=0)

    def partners(self) -> np.ndarray:
        """Number of communication partners per rank."""
        return (self.recv > 0).sum(axis=1)


def estimate_halo(
    x: np.ndarray,
    support: float,
    box: Box,
    decomposition: Decomposition,
    max_cells_per_axis: int = 128,
) -> HaloEstimate:
    """Estimate the rank-to-rank halo exchange matrix.

    Parameters
    ----------
    support:
        Interaction reach (``2 h`` for SPH); sets the cell width.
    max_cells_per_axis:
        Grid resolution cap — finer grids sharpen the estimate but cost
        memory; 128^3 cells cover the benchmark scales.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n, dim = x.shape
    if support <= 0.0:
        raise ValueError(f"support must be positive, got {support}")
    R = decomposition.n_ranks
    xw = box.wrap(x)
    span = box.span
    ncells = np.clip((span / support).astype(np.int64), 1, max_cells_per_axis)
    width = span / ncells
    coords = np.minimum(((xw - box.lo) / width).astype(np.int64), ncells - 1)

    def flatten(c: np.ndarray) -> np.ndarray:
        flat = c[..., 0].astype(np.int64)
        for axis in range(1, dim):
            flat = flat * ncells[axis] + c[..., axis]
        return flat

    flat = flatten(coords)
    unique_cells, cell_idx = np.unique(flat, return_inverse=True)
    ncell = unique_cells.size
    ranks = decomposition.assignment

    # S[c, r] = number of particles of rank r in cell c.
    S = sp.coo_matrix(
        (np.ones(n), (cell_idx, ranks)), shape=(ncell, R)
    ).tocsr()
    # P[c, r] = rank r present in cell c.
    P = (S > 0).astype(np.float64)

    # Adjacency A[c, c'] = c' within one cell of c (periodic-aware).
    offsets = np.stack(
        np.meshgrid(*([np.array([-1, 0, 1])] * dim), indexing="ij"), axis=-1
    ).reshape(-1, dim)
    cell_coords = np.stack(
        np.unravel_index(unique_cells, ncells), axis=1
    ).astype(np.int64)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for off in offsets:
        neigh = cell_coords + off[None, :]
        valid = np.ones(ncell, dtype=bool)
        for axis in range(dim):
            if box.periodic[axis]:
                neigh[:, axis] = np.mod(neigh[:, axis], ncells[axis])
            else:
                ok = (neigh[:, axis] >= 0) & (neigh[:, axis] < ncells[axis])
                valid &= ok
        nf = flatten(np.clip(neigh, 0, None))
        pos = np.searchsorted(unique_cells, nf)
        pos = np.clip(pos, 0, ncell - 1)
        hit = valid & (unique_cells[pos] == nf)
        rows.append(np.nonzero(hit)[0])
        cols.append(pos[hit])
    A = sp.coo_matrix(
        (np.ones(sum(r.size for r in rows)), (np.concatenate(rows), np.concatenate(cols))),
        shape=(ncell, ncell),
    ).tocsr()
    A.data[:] = 1.0  # de-duplicate aliased periodic neighbours

    # D[c, r] = cell c is within rank r's dilated (reach) region.
    D = (A.T @ P > 0).astype(np.float64)
    recv = np.asarray((D.T @ S).todense())
    np.fill_diagonal(recv, 0.0)
    # A rank never receives its own particles; also remove particles of s
    # sitting in cells where r is not actually adjacent... already handled
    # by construction (D only covers r's reach).
    return HaloEstimate(recv=recv)
