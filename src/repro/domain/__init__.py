"""Domain decomposition and halo-exchange substrate (Tables 3-4).

ORB, space-filling-curve (Morton/Hilbert), uniform-slab and block-index
partitioners plus the cell-granular halo estimator the cluster's network
model charges communication from.
"""

from .decomposition import DECOMPOSITION_METHODS, Decomposition, decompose
from .halo import HaloEstimate, estimate_halo

__all__ = [
    "DECOMPOSITION_METHODS",
    "Decomposition",
    "decompose",
    "HaloEstimate",
    "estimate_halo",
]
