"""Domain decomposition dispatch (Tables 3-4 "Domain Decomposition").

Five methods, covering the three parent codes plus two baselines:

* ``uniform-slabs`` — SPHYNX's "Straightforward": sort along the longest
  axis, cut into equal-count slabs.
* ``orb`` — SPH-flow's Orthogonal Recursive Bisection: recursively split
  the longest axis at the weighted median.
* ``sfc-morton`` / ``sfc-hilbert`` — ChaNGa-style space-filling-curve
  cuts: sort by curve key, cut into equal-weight chunks.
* ``block-index`` — contiguous input-order chunks with no spatial
  locality at all; the worst-case baseline for halo volume.

All methods return a per-particle rank assignment and support per-particle
work weights (so the dynamic load balancer can re-cut by measured cost).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tree.box import Box
from ..tree.morton import hilbert_keys, morton_keys

__all__ = ["Decomposition", "decompose", "DECOMPOSITION_METHODS"]

DECOMPOSITION_METHODS = (
    "uniform-slabs",
    "orb",
    "sfc-morton",
    "sfc-hilbert",
    "block-index",
)


@dataclass(frozen=True)
class Decomposition:
    """Result of a domain decomposition."""

    method: str
    n_ranks: int
    assignment: np.ndarray  # (n,) int rank per particle

    def counts(self) -> np.ndarray:
        """Particles per rank."""
        return np.bincount(self.assignment, minlength=self.n_ranks)

    def load(self, weights: np.ndarray | None = None) -> np.ndarray:
        """Work per rank (particle counts, or summed weights)."""
        if weights is None:
            return self.counts().astype(np.float64)
        return np.bincount(
            self.assignment, weights=weights, minlength=self.n_ranks
        )

    def imbalance(self, weights: np.ndarray | None = None) -> float:
        """``max/mean`` load ratio (1.0 is perfectly balanced)."""
        load = self.load(weights)
        mean = load.mean()
        return float(load.max() / mean) if mean > 0 else 1.0

    def rank_particles(self, rank: int) -> np.ndarray:
        """Indices of the particles owned by ``rank``."""
        return np.nonzero(self.assignment == rank)[0]


def _equal_weight_cuts(
    order: np.ndarray, weights: np.ndarray, n_ranks: int
) -> np.ndarray:
    """Assign sorted particles to ranks at equal-cumulative-weight cuts."""
    w_sorted = weights[order]
    cum = np.cumsum(w_sorted)
    total = cum[-1] if cum.size else 0.0
    if total <= 0.0:
        raise ValueError("total weight must be positive")
    # Rank of each sorted particle: which of the n equal buckets its
    # cumulative midpoint falls in.
    mid = cum - 0.5 * w_sorted
    ranks_sorted = np.minimum(
        (mid / total * n_ranks).astype(np.int64), n_ranks - 1
    )
    assignment = np.empty(order.size, dtype=np.int64)
    assignment[order] = ranks_sorted
    return assignment


def _orb(
    x: np.ndarray,
    weights: np.ndarray,
    index: np.ndarray,
    n_ranks: int,
    assignment: np.ndarray,
    rank_offset: int,
) -> None:
    """Recursive bisection: split the widest axis at the weighted median."""
    if n_ranks == 1:
        assignment[index] = rank_offset
        return
    pts = x[index]
    spans = pts.max(axis=0) - pts.min(axis=0)
    axis = int(np.argmax(spans))
    order = np.argsort(pts[:, axis], kind="stable")
    w_sorted = weights[index][order]
    cum = np.cumsum(w_sorted)
    total = cum[-1]
    # Split rank count as evenly as possible; weight splits proportionally.
    left_ranks = n_ranks // 2
    target = total * left_ranks / n_ranks
    split = int(np.searchsorted(cum, target))
    split = min(max(split, 1), index.size - 1)
    left = index[order[:split]]
    right = index[order[split:]]
    _orb(x, weights, left, left_ranks, assignment, rank_offset)
    _orb(x, weights, right, n_ranks - left_ranks, assignment, rank_offset + left_ranks)


def decompose(
    method: str,
    x: np.ndarray,
    n_ranks: int,
    box: Box | None = None,
    weights: np.ndarray | None = None,
) -> Decomposition:
    """Partition particles across ``n_ranks`` by the named method.

    ``weights`` (per-particle work estimates) make every method balance
    *work* instead of counts — the hook the dynamic load balancer uses.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n = x.shape[0]
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    if n_ranks > n:
        raise ValueError(f"more ranks ({n_ranks}) than particles ({n})")
    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,) or np.any(weights < 0.0):
            raise ValueError("weights must be a non-negative (n,) array")
    if box is None:
        box = Box.bounding(x)

    if method == "block-index":
        assignment = _equal_weight_cuts(np.arange(n), weights, n_ranks)
    elif method == "uniform-slabs":
        axis = int(np.argmax(box.span))
        order = np.argsort(x[:, axis], kind="stable")
        assignment = _equal_weight_cuts(order, weights, n_ranks)
    elif method == "sfc-morton":
        keys = morton_keys(box.wrap(x), box.lo, box.hi)
        assignment = _equal_weight_cuts(np.argsort(keys, kind="stable"), weights, n_ranks)
    elif method == "sfc-hilbert":
        keys = hilbert_keys(box.wrap(x), box.lo, box.hi)
        assignment = _equal_weight_cuts(np.argsort(keys, kind="stable"), weights, n_ranks)
    elif method == "orb":
        assignment = np.empty(n, dtype=np.int64)
        _orb(x, weights, np.arange(n), n_ranks, assignment, 0)
    else:
        raise ValueError(
            f"unknown decomposition {method!r}; choose from {DECOMPOSITION_METHODS}"
        )
    return Decomposition(method=method, n_ranks=n_ranks, assignment=assignment)
