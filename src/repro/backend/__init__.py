"""Backend registry + dispatch for the compiled SPH hot path.

Three execution backends stand behind every pair-loop phase:

``numpy``
    The reference.  ``Backend.ops is None`` and each phase runs its
    original vectorized code — byte-for-byte the pre-backend behaviour.
``numba``
    JIT-compiled nopython mirrors (:mod:`repro.backend.numba_backend`).
``cffi``
    The same kernels as C, compiled at runtime with the system C
    compiler (:mod:`repro.backend.cffi_backend`) — a compiled hot path
    for hosts without numba.

``auto`` resolves silently to the first available compiled backend
(numba, then cffi) and falls back to numpy when neither toolchain
exists.  Requesting a *specific* unavailable backend warns exactly once
(:func:`repro.observability.deprecation.warn_once` with
``RuntimeWarning``) and degrades to numpy — never a traceback.

Selection is ``ExecConfig(backend=...)`` / ``--backend``; the resolved
name + toolchain version land in ``RunReport.backend`` provenance.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .base import (
    BACKEND_CHOICES,
    Backend,
    BackendUnavailableError,
    UnsupportedKernelError,
    backend_ops,
    kernel_spec,
)

__all__ = [
    "BACKEND_CHOICES",
    "Backend",
    "BackendUnavailableError",
    "UnsupportedKernelError",
    "backend_ops",
    "kernel_spec",
    "select_backend",
    "available_backends",
]


def _make_numpy() -> Backend:
    import numpy

    return Backend(
        name="numpy", ops=None, version=f"numpy {numpy.__version__}",
        detail="vectorized reference",
    )


def _make_numba() -> Backend:
    from .compiled import CompiledOps
    from .numba_backend import load_numba_impl

    impl = load_numba_impl()
    return Backend(
        name="numba", ops=CompiledOps("numba", impl),
        version=impl.version,
        detail=f"threading_layer={impl.thread_layer}",
    )


def _make_cffi() -> Backend:
    from .cffi_backend import load_cffi_impl
    from .compiled import CompiledOps

    impl = load_cffi_impl()
    return Backend(
        name="cffi", ops=CompiledOps("cffi", impl), version=impl.version,
        detail="runtime-compiled C (ABI mode)",
    )


#: Factories, monkeypatchable in tests to fake unavailability.
_FACTORIES: Dict[str, Callable[[], Backend]] = {
    "numpy": _make_numpy,
    "numba": _make_numba,
    "cffi": _make_cffi,
}

#: Preference order for ``auto``: compiled first, reference last.
_AUTO_ORDER = ("numba", "cffi", "numpy")

_INSTANCES: Dict[str, Backend] = {}


def _instantiate(name: str) -> Backend:
    cached = _INSTANCES.get(name)
    if cached is None:
        cached = _INSTANCES[name] = _FACTORIES[name]()
    return cached


def select_backend(name: str = "numpy") -> Backend:
    """Resolve a backend request to a usable :class:`Backend`.

    Unknown names raise ``ValueError`` listing the choices.  ``auto``
    silently picks the best available; a named-but-unavailable compiled
    backend warns once per process and returns the numpy reference.
    """
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(BACKEND_CHOICES)}"
        )
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    if name == "auto":
        for candidate in _AUTO_ORDER:
            try:
                backend = _instantiate(candidate)
                break
            except BackendUnavailableError:
                continue
        else:  # pragma: no cover - numpy factory cannot fail
            backend = _instantiate("numpy")
    else:
        try:
            backend = _instantiate(name)
        except BackendUnavailableError as exc:
            from ..observability.deprecation import warn_once

            warn_once(
                f"backend-unavailable:{name}",
                f"backend {name!r} is unavailable on this host ({exc}); "
                f"falling back to the numpy reference",
                category=RuntimeWarning,
            )
            backend = _instantiate("numpy")
    _INSTANCES[name] = backend
    return backend


def available_backends() -> Dict[str, bool]:
    """Map of backend name -> constructible on this host (probes lazily)."""
    out: Dict[str, bool] = {}
    for name in ("numpy", "numba", "cffi"):
        try:
            _instantiate(name)
            out[name] = True
        except BackendUnavailableError:
            out[name] = False
    return out


def _reset_backends() -> None:
    """Drop resolved instances (test isolation for fallback paths)."""
    _INSTANCES.clear()
