"""Numba-JIT backend: nopython mirrors of the C ops in ``csrc``.

Same algorithms, same operation order, same shared polynomial constants
(:mod:`repro.backend.poly`) as the cffi backend — the two compiled
implementations differ only in toolchain, so they agree with each other
to the rounding of identical arithmetic and with the numpy reference
within the documented tolerance (``fastmath`` is off everywhere).

numba is imported lazily inside :func:`load_numba_impl`; module import
must stay numba-free so the tier-1 environment never touches it.  The
plain-Python function bodies below are the JIT sources — they are
rebound to their compiled dispatchers in dependency order on first load
(callees first, so callers capture the compiled globals).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .base import BackendUnavailableError
from .poly import COS_COEFFS, PI_LO, SIN_COEFFS

__all__ = ["load_numba_impl", "NumbaImpl"]

_PI = np.pi
_PI_2 = 0.5 * np.pi

(_S1, _S2, _S3, _S4, _S5, _S6, _S7, _S8, _S9, _S10) = SIN_COEFFS
(_C1, _C2, _C3, _C4, _C5, _C6, _C7, _C8, _C9, _C10) = COS_COEFFS
_PI_LO = PI_LO


def _sinpoly(z):
    z2 = z * z
    p = _S10
    p = _S9 + z2 * p
    p = _S8 + z2 * p
    p = _S7 + z2 * p
    p = _S6 + z2 * p
    p = _S5 + z2 * p
    p = _S4 + z2 * p
    p = _S3 + z2 * p
    p = _S2 + z2 * p
    p = _S1 + z2 * p
    return z + (z * z2) * p


def _cospoly(z):
    z2 = z * z
    p = _C10
    p = _C9 + z2 * p
    p = _C8 + z2 * p
    p = _C7 + z2 * p
    p = _C6 + z2 * p
    p = _C5 + z2 * p
    p = _C4 + z2 * p
    p = _C3 + z2 * p
    p = _C2 + z2 * p
    p = _C1 + z2 * p
    return 1.0 + z2 * p


def _sincos(x):
    if x <= _PI_2:
        return _sinpoly(x), _cospoly(x)
    z = (_PI - x) + _PI_LO
    return _sinpoly(z), -_cospoly(z)


def _powi(a, n):
    r = 1.0
    while n > 0:
        if n & 1:
            r *= a
        a *= a
        n >>= 1
    return r


def _pow_pos(a, e):
    ri = np.rint(e)
    if e == ri and 0.0 <= ri <= 32.0:
        return _powi(a, int(ri))
    return a ** e


def _sep(x, ii, jj, dim, psel, pdiv, dx):
    r2 = 0.0
    for d in range(dim):
        t = x[ii, d] - x[jj, d]
        t -= psel[d] * np.rint(t / pdiv[d])
        dx[d] = t
        r2 += t * t
    return np.sqrt(r2)


def _shape(kind, p1, q, need_f, need_fp):
    f = 0.0
    fp = 0.0
    if kind == 0:  # M4 cubic spline
        if q < 1.0:
            if need_f:
                f = (1.0 - (1.5 * q) * q) + (((0.75 * q) * q) * q)
            if need_fp:
                fp = (-3.0 * q) + ((2.25 * q) * q)
        elif q < 2.0:
            t = 2.0 - q
            if need_f:
                f = 0.25 * ((t * t) * t)
            if need_fp:
                fp = -0.75 * (t * t)
    elif kind == 1:  # Wendland C2
        l = 0.5 * q
        p = 1.0 - l
        pm = p if p > 0.0 else 0.0
        p2 = pm * pm
        if p1 == 1.0:
            if need_f:
                f = (p2 * pm) * (1.0 + 3.0 * l)
            if need_fp:
                fp = 0.5 * ((-12.0 * l) * p2)
        else:
            if need_f:
                f = (p2 * p2) * (1.0 + 4.0 * l)
            if need_fp:
                fp = 0.5 * ((-20.0 * l) * (p2 * pm))
    elif kind == 2:  # Wendland C4
        l = 0.5 * q
        p = 1.0 - l
        pm = p if p > 0.0 else 0.0
        p2 = pm * pm
        p4 = p2 * p2
        if p1 == 1.0:
            if need_f:
                f = (p4 * pm) * ((1.0 + 5.0 * l) + (8.0 * l) * l)
            if need_fp:
                fp = 0.5 * ((-p4) * ((14.0 * l) + (56.0 * l) * l))
        else:
            if need_f:
                f = (p4 * p2) * ((1.0 + 6.0 * l) + ((35.0 / 3.0) * l) * l)
            if need_fp:
                fp = 0.5 * ((-(p4 * pm))
                            * (((56.0 / 3.0) * l)
                               + ((280.0 / 3.0) * l) * l))
    elif kind == 3:  # Wendland C6
        l = 0.5 * q
        p = 1.0 - l
        pm = p if p > 0.0 else 0.0
        p2 = pm * pm
        p4 = p2 * p2
        if p1 == 1.0:
            if need_f:
                f = ((p4 * p2) * pm) * (((1.0 + 7.0 * l) + (19.0 * l) * l)
                                        + 21.0 * ((l * l) * l))
            if need_fp:
                fp = 0.5 * ((((-6.0) * (p4 * p2)) * l)
                            * (((35.0 * l) * l + (18.0 * l)) + 3.0))
        else:
            if need_f:
                f = (p4 * p4) * (((1.0 + 8.0 * l) + (25.0 * l) * l)
                                 + 32.0 * ((l * l) * l))
            if need_fp:
                fp = 0.5 * (((((-22.0) * ((p4 * p2) * pm)) * l))
                            * (((16.0 * l) * l + (7.0 * l)) + 1.0))
    else:  # sinc^n
        if q <= 0.0:
            if q == 0.0:
                f = 1.0
            return f, fp
        if q >= 2.0:
            return f, fp
        xv = _PI * (0.5 * q)
        sx, cx = _sincos(xv)
        s = sx / xv
        if need_f:
            f = _pow_pos(abs(s), p1)
        if need_fp:
            dsdq = (0.5 * _PI) * ((cx - s) / xv)
            sgn = 1.0 if s > 0.0 else (-1.0 if s < 0.0 else 0.0)
            fp = ((p1 * _pow_pos(abs(s), p1 - 1.0)) * sgn) * dsdq
    return f, fp


def _pair_kernel(x, h, whn, whn1, offsets, indices, lo, hi, dim, psel,
                 pdiv, kind, p1, want, side, w, gs, dwdh):
    k0 = offsets[lo]
    need_f = bool(want & 1) or bool(want & 4)
    need_fp = bool(want & 2) or bool(want & 4)
    dx = np.empty(3)
    for i in range(lo, hi):
        hi_ = h[i]
        wni = whn[i]
        wn1i = whn1[i]
        for k in range(offsets[i], offsets[i + 1]):
            j = indices[k]
            r = _sep(x, i, j, dim, psel, pdiv, dx)
            if side == 0:
                hs = hi_
                wn = wni
                wn1 = wn1i
            else:
                hs = h[j]
                wn = whn[j]
                wn1 = whn1[j]
            q = r / hs
            f, fp = _shape(kind, p1, q, need_f, need_fp)
            o = k - k0
            if want & 1:
                w[o] = wn * f
            if want & 2:
                dwdr = wn1 * fp
                gs[o] = dwdr / r if r > 0.0 else 0.0
            if want & 4:
                dwdh[o] = (-wn1) * (float(dim) * f + q * fp)


def _counts(x, h, offsets, indices, n, dim, psel, pdiv, factor, counts):
    dx = np.empty(3)
    for i in range(n):
        rmax = factor * h[i]
        c = 0
        for k in range(offsets[i], offsets[i + 1]):
            r = _sep(x, i, indices[k], dim, psel, pdiv, dx)
            if r <= rmax:
                c += 1
        counts[i] = c


def _rowsum(offsets, indices, lo, hi, wgt, vals, out):
    k0 = offsets[lo]
    for i in range(lo, hi):
        acc = 0.0
        for k in range(offsets[i], offsets[i + 1]):
            acc += wgt[indices[k]] * vals[k - k0]
        out[i - lo] = acc


def _iad_tau(x, offsets, indices, lo, hi, dim, psel, pdiv, m, rho, w, tau):
    k0 = offsets[lo]
    dx = np.empty(3)
    acc = np.empty((3, 3))
    for i in range(lo, hi):
        for a in range(dim):
            for b in range(dim):
                acc[a, b] = 0.0
        for k in range(offsets[i], offsets[i + 1]):
            j = indices[k]
            _sep(x, i, j, dim, psel, pdiv, dx)
            wgt = (m[j] / rho[j]) * w[k - k0]
            for a in range(dim):
                for b in range(dim):
                    acc[a, b] += (dx[a] * dx[b]) * wgt
        for a in range(dim):
            for b in range(dim):
                tau[i - lo, a, b] = acc[a, b]


def _div_curl(x, v, offsets, indices, lo, hi, dim, psel, pdiv, m, gs,
              divsum, curlsum):
    k0 = offsets[lo]
    dx = np.empty(3)
    vij = np.empty(3)
    grad = np.empty(3)
    for i in range(lo, hi):
        dacc = 0.0
        c0 = 0.0
        c1 = 0.0
        c2 = 0.0
        for k in range(offsets[i], offsets[i + 1]):
            j = indices[k]
            _sep(x, i, j, dim, psel, pdiv, dx)
            g = gs[k - k0]
            mj = m[j]
            vg = 0.0
            for d in range(dim):
                vij[d] = v[i, d] - v[j, d]
                grad[d] = dx[d] * g
                vg += vij[d] * grad[d]
            dacc += mj * vg
            if dim == 3:
                t = vij[1] * grad[2] - vij[2] * grad[1]
                c0 += mj * t
                t = vij[2] * grad[0] - vij[0] * grad[2]
                c1 += mj * t
                t = vij[0] * grad[1] - vij[1] * grad[0]
                c2 += mj * t
            elif dim == 2:
                t = vij[0] * grad[1] - vij[1] * grad[0]
                c0 += mj * t
        divsum[i - lo] = dacc
        curlsum[i - lo, 0] = c0
        curlsum[i - lo, 1] = c1
        curlsum[i - lo, 2] = c2


def _forces(x, v, h, m, rho, p_over, cs, offsets, indices, lo, hi, dim,
            psel, pdiv, wi, wj, gsi, gsj, use_iad, cmat, bals, use_balsara,
            alpha, beta, eta2, support, inline_j, kind, p1, whn, whn1,
            out_a, out_s1, out_s2):
    k0 = offsets[lo]
    max_mu = 0.0
    dx = np.empty(3)
    vij = np.empty(3)
    gi = np.empty(3)
    gj = np.empty(3)
    acc = np.empty(3)
    for i in range(lo, hi):
        for d in range(dim):
            acc[d] = 0.0
        s1 = 0.0
        s2 = 0.0
        hii = h[i]
        poi = p_over[i]
        csi = cs[i]
        rhoi = rho[i]
        bi = bals[i] if use_balsara else 0.0
        for k in range(offsets[i], offsets[i + 1]):
            j = indices[k]
            o = k - k0
            r = _sep(x, i, j, dim, psel, pdiv, dx)
            hj = h[j]
            for d in range(dim):
                vij[d] = v[i, d] - v[j, d]
            if use_iad:
                wio = wi[o]
                if inline_j:
                    f, fp = _shape(kind, p1, r / hj, True, False)
                    wjo = whn[j] * f
                else:
                    wjo = wj[o]
                for a in range(dim):
                    ai = 0.0
                    aj = 0.0
                    for b in range(dim):
                        tj = -dx[b]
                        ai += cmat[i, a, b] * tj
                        aj += cmat[j, a, b] * tj
                    gi[a] = ai * wio
                    gj[a] = aj * wjo
            else:
                gio = gsi[o]
                if inline_j:
                    f, fp = _shape(kind, p1, r / hj, False, True)
                    dwdr = whn1[j] * fp
                    gjo = dwdr / r if r > 0.0 else 0.0
                else:
                    gjo = gsj[o]
                for d in range(dim):
                    gi[d] = dx[d] * gio
                    gj[d] = dx[d] * gjo
            vdotr = 0.0
            for d in range(dim):
                vdotr += vij[d] * dx[d]
            hbar = (hii + hj) * 0.5
            mu = hbar * vdotr
            denom = r * r
            eta_h = hbar * eta2
            eta_h *= hbar
            denom += eta_h
            mu /= denom
            cbar = 0.5 * (csi + cs[j])
            rhobar = 0.5 * (rhoi + rho[j])
            pi_ = ((-alpha) * cbar * mu + (beta * mu) * mu) / rhobar
            if use_balsara:
                pi_ = (pi_ * 0.5) * (bi + bals[j])
            approaching = vdotr < 0.0
            if not approaching:
                pi_ = 0.0
            poj = p_over[j]
            mj = m[j]
            vdot_gi = 0.0
            vdot_gbar = 0.0
            for d in range(dim):
                gbar = (gi[d] + gj[d]) * 0.5
                vdot_gi += vij[d] * gi[d]
                vdot_gbar += vij[d] * gbar
                pres = poi * gi[d] + poj * gj[d]
                acc[d] += (-mj) * (pres + pi_ * gbar)
            s1 += mj * vdot_gi
            s2 += (mj * pi_) * vdot_gbar
            hmax = (hii if hii > hj else hj) * support
            if approaching and r <= hmax:
                am = abs(mu)
                if am > max_mu:
                    max_mu = am
        for d in range(dim):
            out_a[i - lo, d] = acc[d]
        out_s1[i - lo] = s1
        out_s2[i - lo] = s2
    return max_mu


def _pair_gradients(x, offsets, indices, lo, hi, dim, psel, pdiv, per_pair,
                    mode, cmat, side, out):
    k0 = offsets[lo]
    dx = np.empty(3)
    for i in range(lo, hi):
        for k in range(offsets[i], offsets[i + 1]):
            j = indices[k]
            o = k - k0
            _sep(x, i, j, dim, psel, pdiv, dx)
            pp = per_pair[o]
            if mode == 0:
                for d in range(dim):
                    out[o, d] = dx[d] * pp
            else:
                row = i if side == 0 else j
                for a in range(dim):
                    s = 0.0
                    for b in range(dim):
                        s += cmat[row, a, b] * (-dx[b])
                    out[o, a] = s * pp
    return None


def _radii(x, offsets, indices, lo, hi, dim, psel, pdiv, out_r):
    k0 = offsets[lo]
    dx = np.empty(3)
    for i in range(lo, hi):
        for k in range(offsets[i], offsets[i + 1]):
            out_r[k - k0] = _sep(x, i, indices[k], dim, psel, pdiv, dx)


def _counts_r(r, h, offsets, n, factor, counts):
    for i in range(n):
        rmax = factor * h[i]
        c = 0
        for k in range(offsets[i], offsets[i + 1]):
            if r[k] <= rmax:
                c += 1
        counts[i] = c


def _filter_count(offsets, indices, r, h, n, support, kept):
    for i in range(n):
        hi_ = h[i]
        c = 0
        for k in range(offsets[i], offsets[i + 1]):
            hj = h[indices[k]]
            hmax = (hi_ if hi_ > hj else hj) * support
            if r[k] <= hmax:
                c += 1
        kept[i] = c


def _filter_fill(offsets, indices, r, h, n, support, new_offsets,
                 new_indices):
    for i in range(n):
        hi_ = h[i]
        p = new_offsets[i]
        for k in range(offsets[i], offsets[i + 1]):
            j = indices[k]
            hj = h[j]
            hmax = (hi_ if hi_ > hj else hj) * support
            if r[k] <= hmax:
                new_indices[p] = j
                p += 1


def _tau_inv(tau, rows, dim, rcond, out):
    for i in range(rows):
        t = tau[i]
        o = out[i]
        if dim == 1:
            reg = max(t[0, 0] * rcond, 1e-300)
            o[0, 0] = 1.0 / (t[0, 0] + reg)
        elif dim == 2:
            reg = max((t[0, 0] + t[1, 1]) * rcond, 1e-300)
            a = t[0, 0] + reg
            b = t[0, 1]
            c = t[1, 0]
            d = t[1, 1] + reg
            det = a * d - b * c
            o[0, 0] = d / det
            o[0, 1] = -b / det
            o[1, 0] = -c / det
            o[1, 1] = a / det
        else:
            reg = max((t[0, 0] + t[1, 1] + t[2, 2]) * rcond, 1e-300)
            a = t[0, 0] + reg
            b = t[0, 1]
            c = t[0, 2]
            d = t[1, 0]
            e = t[1, 1] + reg
            f = t[1, 2]
            g = t[2, 0]
            hh = t[2, 1]
            k = t[2, 2] + reg
            A = e * k - f * hh
            B = f * g - d * k
            C = d * hh - e * g
            det = a * A + b * B + c * C
            o[0, 0] = A / det
            o[0, 1] = (c * hh - b * k) / det
            o[0, 2] = (b * f - c * e) / det
            o[1, 0] = B / det
            o[1, 1] = (a * k - c * g) / det
            o[1, 2] = (c * d - a * f) / det
            o[2, 0] = C / det
            o[2, 1] = (b * g - a * hh) / det
            o[2, 2] = (a * e - b * d) / det


#: JIT compilation order: callees before callers so callers capture the
#: compiled dispatchers through module globals.
_JIT_ORDER = (
    "_sinpoly", "_cospoly", "_sincos", "_powi", "_pow_pos", "_sep",
    "_shape", "_pair_kernel", "_counts", "_rowsum", "_iad_tau",
    "_div_curl", "_forces", "_pair_gradients", "_radii", "_counts_r",
    "_filter_count", "_filter_fill", "_tau_inv",
)

_JITTED = False
_CACHED: Optional["NumbaImpl"] = None
_FAILED: Optional[str] = None


class NumbaImpl:
    """Low-level op table delegating to the JIT dispatchers.

    Same surface as :class:`repro.backend.cffi_backend.CffiImpl`; arrays
    are passed through unchanged (the mirrors index them natively).
    """

    name = "numba"

    def __init__(self, version: str, thread_layer: str):
        self.version = version
        self.thread_layer = thread_layer

    def pair_kernel(self, x, h, whn, whn1, offsets, indices, lo, hi, dim,
                    psel, pdiv, kind, p1, want, side, w, gs, dwdh):
        _pair_kernel(x, h, whn, whn1, offsets, indices, lo, hi, dim, psel,
                     pdiv, kind, p1, want, side, w, gs, dwdh)

    def counts(self, x, h, offsets, indices, n, dim, psel, pdiv, factor,
               out):
        _counts(x, h, offsets, indices, n, dim, psel, pdiv, factor, out)

    def rowsum(self, offsets, indices, lo, hi, wgt, vals, out):
        _rowsum(offsets, indices, lo, hi, wgt, vals, out)

    def iad_tau(self, x, offsets, indices, lo, hi, dim, psel, pdiv, m, rho,
                w, tau):
        _iad_tau(x, offsets, indices, lo, hi, dim, psel, pdiv, m, rho, w,
                 tau)

    def div_curl(self, x, v, offsets, indices, lo, hi, dim, psel, pdiv, m,
                 gs, divsum, curlsum):
        _div_curl(x, v, offsets, indices, lo, hi, dim, psel, pdiv, m, gs,
                  divsum, curlsum)

    def forces(self, x, v, h, m, rho, p_over, cs, offsets, indices, lo, hi,
               dim, psel, pdiv, wi, wj, gsi, gsj, use_iad, cmat, bals,
               use_balsara, alpha, beta, eta2, support, inline_j, kind, p1,
               whn, whn1, out_a, out_s1, out_s2):
        return _forces(x, v, h, m, rho, p_over, cs, offsets, indices, lo,
                       hi, dim, psel, pdiv, wi, wj, gsi, gsj, use_iad,
                       cmat, bals, use_balsara, alpha, beta, eta2, support,
                       inline_j, kind, p1, whn, whn1, out_a, out_s1,
                       out_s2)

    def pair_gradients(self, x, offsets, indices, lo, hi, dim, psel, pdiv,
                       per_pair, mode, cmat, side, out):
        _pair_gradients(x, offsets, indices, lo, hi, dim, psel, pdiv,
                        per_pair, mode, cmat, side, out)

    def radii(self, x, offsets, indices, lo, hi, dim, psel, pdiv, out_r):
        _radii(x, offsets, indices, lo, hi, dim, psel, pdiv, out_r)

    def counts_r(self, r, h, offsets, n, factor, out):
        _counts_r(r, h, offsets, n, factor, out)

    def filter_count(self, offsets, indices, r, h, n, support, kept):
        _filter_count(offsets, indices, r, h, n, support, kept)

    def filter_fill(self, offsets, indices, r, h, n, support, new_offsets,
                    new_indices):
        _filter_fill(offsets, indices, r, h, n, support, new_offsets,
                     new_indices)

    def tau_inv(self, tau, rows, dim, rcond, out):
        _tau_inv(tau, rows, dim, rcond, out)


def load_numba_impl() -> NumbaImpl:
    """Import numba, JIT the mirrors (once), return the op table."""
    global _JITTED, _CACHED, _FAILED
    if _CACHED is not None:
        return _CACHED
    if _FAILED is not None:
        raise BackendUnavailableError(_FAILED)
    try:
        import numba
    except ImportError as exc:
        _FAILED = f"numba not importable: {exc}"
        raise BackendUnavailableError(_FAILED)
    if not _JITTED:
        jit = numba.njit(fastmath=False)
        g = globals()
        for fname in _JIT_ORDER:
            g[fname] = jit(g[fname])
        _JITTED = True
    try:
        thread_layer = str(numba.config.THREADING_LAYER)
    except Exception:  # pragma: no cover - config surface varies
        thread_layer = "unknown"
    _CACHED = NumbaImpl(
        version=f"numba {numba.__version__}", thread_layer=thread_layer
    )
    return _CACHED
