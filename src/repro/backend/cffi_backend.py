"""Runtime-compiled C backend (cffi ABI mode + the system C compiler).

CPython-only environments without numba still get a compiled hot path:
the C translation unit in :mod:`repro.backend.csrc` is compiled once per
(source, compiler, flags) fingerprint into a shared library cached under
the system temp directory, then loaded with ``ffi.dlopen``.  Any failure
along the way — no ``cffi``, no working C compiler, unwritable cache —
raises :class:`~repro.backend.base.BackendUnavailableError` and the
registry falls back to numpy.

Arrays cross the boundary zero-copy via ``ffi.from_buffer`` (the shared
-memory views the pool workers operate on are C-contiguous, so this
works identically in serial and fan-out execution).
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys
import tempfile
from typing import Optional

import numpy as np

from .base import BackendUnavailableError
from .csrc import CDEF, SOURCE

__all__ = ["load_cffi_impl", "CffiImpl"]

#: Optimization flags; ``-march=native`` is retried-without on compilers
#: or platforms that reject it.  Strict IEEE: no ``-ffast-math``.
_BASE_FLAGS = ("-O3", "-fPIC", "-shared")
_NATIVE_FLAG = "-march=native"

_CACHED: Optional["CffiImpl"] = None
_FAILED: Optional[str] = None


def _compiler() -> str:
    return os.environ.get("CC", "gcc")


def _compiler_version(cc: str) -> str:
    try:
        out = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise BackendUnavailableError(f"C compiler {cc!r} not runnable: {exc}")
    if out.returncode != 0:
        raise BackendUnavailableError(
            f"C compiler {cc!r} not runnable (exit {out.returncode})"
        )
    return out.stdout.splitlines()[0] if out.stdout else cc


def _build_library(cc: str, cc_version: str) -> str:
    """Compile the backend source into a cached .so; return its path."""
    key = hashlib.sha256(
        "\x00".join((SOURCE, cc_version, " ".join(_BASE_FLAGS))).encode()
    ).hexdigest()[:16]
    cache_dir = os.path.join(
        tempfile.gettempdir(), f"repro-backend-{os.getuid()}"
    )
    lib_path = os.path.join(cache_dir, f"rp_ops_{key}.so")
    if os.path.exists(lib_path):
        return lib_path
    try:
        os.makedirs(cache_dir, exist_ok=True)
    except OSError as exc:
        raise BackendUnavailableError(f"cannot create build cache: {exc}")

    src_path = os.path.join(cache_dir, f"rp_ops_{key}.c")
    tmp_lib = f"{lib_path}.tmp{os.getpid()}"
    try:
        with open(src_path, "w") as fh:
            fh.write(SOURCE)
        for flags in ((_NATIVE_FLAG,) + _BASE_FLAGS, _BASE_FLAGS):
            cmd = [cc, *flags, src_path, "-o", tmp_lib, "-lm"]
            try:
                res = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                raise BackendUnavailableError(f"compile failed: {exc}")
            if res.returncode == 0:
                break
        else:
            tail = (res.stderr or "").strip().splitlines()[-3:]
            raise BackendUnavailableError(
                "compile failed: " + " | ".join(tail)
            )
        os.replace(tmp_lib, lib_path)  # atomic: concurrent builds race safely
    except OSError as exc:
        raise BackendUnavailableError(f"build cache I/O failed: {exc}")
    finally:
        if os.path.exists(tmp_lib):
            try:
                os.unlink(tmp_lib)
            except OSError:
                pass
    return lib_path


class CffiImpl:
    """Low-level op table bound to the compiled shared library.

    Method signatures take numpy arrays; pointers are cast zero-copy.
    This is the contract :class:`repro.backend.compiled.CompiledOps`
    orchestrates against (the numba impl exposes the same surface).
    """

    name = "cffi"

    def __init__(self, ffi, lib, version: str):
        self._ffi = ffi
        self._lib = lib
        self.version = version

    def _d(self, arr: np.ndarray):
        return self._ffi.cast("double *", self._ffi.from_buffer(arr))

    def _i(self, arr: np.ndarray):
        return self._ffi.cast("int64_t *", self._ffi.from_buffer(arr))

    def pair_kernel(self, x, h, whn, whn1, offsets, indices, lo, hi, dim,
                    psel, pdiv, kind, p1, want, side, w, gs, dwdh):
        self._lib.rp_pair_kernel(
            self._d(x), self._d(h), self._d(whn), self._d(whn1),
            self._i(offsets), self._i(indices), lo, hi, dim,
            self._d(psel), self._d(pdiv), kind, p1, want, side,
            self._d(w), self._d(gs), self._d(dwdh),
        )

    def counts(self, x, h, offsets, indices, n, dim, psel, pdiv, factor,
               out):
        self._lib.rp_counts(
            self._d(x), self._d(h), self._i(offsets), self._i(indices),
            n, dim, self._d(psel), self._d(pdiv), factor, self._i(out),
        )

    def rowsum(self, offsets, indices, lo, hi, wgt, vals, out):
        self._lib.rp_rowsum(
            self._i(offsets), self._i(indices), lo, hi,
            self._d(wgt), self._d(vals), self._d(out),
        )

    def iad_tau(self, x, offsets, indices, lo, hi, dim, psel, pdiv, m, rho,
                w, tau):
        self._lib.rp_iad_tau(
            self._d(x), self._i(offsets), self._i(indices), lo, hi, dim,
            self._d(psel), self._d(pdiv), self._d(m), self._d(rho),
            self._d(w), self._d(tau),
        )

    def div_curl(self, x, v, offsets, indices, lo, hi, dim, psel, pdiv, m,
                 gs, divsum, curlsum):
        self._lib.rp_div_curl(
            self._d(x), self._d(v), self._i(offsets), self._i(indices),
            lo, hi, dim, self._d(psel), self._d(pdiv), self._d(m),
            self._d(gs), self._d(divsum), self._d(curlsum),
        )

    def forces(self, x, v, h, m, rho, p_over, cs, offsets, indices, lo, hi,
               dim, psel, pdiv, wi, wj, gsi, gsj, use_iad, cmat, bals,
               use_balsara, alpha, beta, eta2, support, inline_j, kind, p1,
               whn, whn1, out_a, out_s1, out_s2):
        return self._lib.rp_forces(
            self._d(x), self._d(v), self._d(h), self._d(m), self._d(rho),
            self._d(p_over), self._d(cs), self._i(offsets),
            self._i(indices), lo, hi, dim, self._d(psel), self._d(pdiv),
            self._d(wi), self._d(wj), self._d(gsi), self._d(gsj),
            use_iad, self._d(cmat), self._d(bals), use_balsara,
            alpha, beta, eta2, support, inline_j, kind, p1,
            self._d(whn), self._d(whn1),
            self._d(out_a), self._d(out_s1), self._d(out_s2),
        )

    def pair_gradients(self, x, offsets, indices, lo, hi, dim, psel, pdiv,
                       per_pair, mode, cmat, side, out):
        self._lib.rp_pair_gradients(
            self._d(x), self._i(offsets), self._i(indices), lo, hi, dim,
            self._d(psel), self._d(pdiv), self._d(per_pair), mode,
            self._d(cmat), side, self._d(out),
        )

    def radii(self, x, offsets, indices, lo, hi, dim, psel, pdiv, out_r):
        self._lib.rp_radii(
            self._d(x), self._i(offsets), self._i(indices), lo, hi, dim,
            self._d(psel), self._d(pdiv), self._d(out_r),
        )

    def counts_r(self, r, h, offsets, n, factor, out):
        self._lib.rp_counts_r(
            self._d(r), self._d(h), self._i(offsets), n, factor,
            self._i(out),
        )

    def filter_count(self, offsets, indices, r, h, n, support, kept):
        self._lib.rp_filter_count(
            self._i(offsets), self._i(indices), self._d(r), self._d(h),
            n, support, self._i(kept),
        )

    def filter_fill(self, offsets, indices, r, h, n, support, new_offsets,
                    new_indices):
        self._lib.rp_filter_fill(
            self._i(offsets), self._i(indices), self._d(r), self._d(h),
            n, support, self._i(new_offsets), self._i(new_indices),
        )

    def tau_inv(self, tau, rows, dim, rcond, out):
        self._lib.rp_tau_inv(self._d(tau), rows, dim, rcond, self._d(out))


def load_cffi_impl() -> CffiImpl:
    """Build (or reuse) the shared library and bind the op table."""
    global _CACHED, _FAILED
    if _CACHED is not None:
        return _CACHED
    if _FAILED is not None:
        raise BackendUnavailableError(_FAILED)
    try:
        try:
            import cffi
        except ImportError as exc:
            raise BackendUnavailableError(f"cffi not importable: {exc}")
        cc = _compiler()
        cc_version = _compiler_version(cc)
        lib_path = _build_library(cc, cc_version)
        ffi = cffi.FFI()
        ffi.cdef(CDEF)
        try:
            lib = ffi.dlopen(lib_path)
        except OSError as exc:
            raise BackendUnavailableError(f"dlopen failed: {exc}")
    except BackendUnavailableError as exc:
        _FAILED = str(exc)
        raise
    version = f"cffi {cffi.__version__} / {cc_version}"
    _CACHED = CffiImpl(ffi, lib, version)
    return _CACHED


def _self_test() -> None:  # pragma: no cover - manual smoke hook
    impl = load_cffi_impl()
    print(impl.version, file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    _self_test()
