"""C source for the runtime-compiled (cffi) backend.

One translation unit holding the fused pair-loop kernels.  Every loop
mirrors the numpy reference arithmetic *operation for operation* (same
association order, same special-case masks) so that:

* pure-rational fields (``dx``, ``r``, the neighbour-count predicate
  ``r <= 2*h[i]``) are **bitwise identical** to numpy — the smoothing
  -length iteration therefore takes the same trajectory on every
  backend;
* transcendental-touched fields (kernel values, gradients, forces)
  agree to a few ulp, gated by the documented backend tolerance.

Design notes:

* ``h``-dependent normalizations ``sigma/h**dim`` / ``sigma/h**(dim+1)``
  arrive as precomputed per-particle arrays (``whn``/``whn1``) —
  computed in Python with the same numpy ufuncs as the reference, which
  removes ``pow`` from the inner loops *and* makes those factors
  bitwise-equal by construction.
* The minimum-image convention is branchless: per-axis ``psel`` (span
  or 0) and ``pdiv`` (span or 1) turn the periodic wrap into
  ``dx -= psel * rint(dx / pdiv)``, an exact no-op on open axes and a
  bitwise mirror of ``out -= span * np.round(out / span)`` on periodic
  ones (``np.round`` at 0 decimals is ``rint``: round half to even).
* ``sin``/``cos`` for the sinc-family kernels use the shared Taylor
  polynomials (:mod:`repro.backend.poly`) after an exact split-at-pi/2
  reduction; integer powers use multiply chains.  No ``-ffast-math``
  anywhere — the compiled backends are run at strict IEEE semantics.
* Row accumulations walk each CSR row in ascending pair order, the same
  order ``np.bincount`` applies its weights, so row sums match the
  reference given identical per-pair values.
"""

from __future__ import annotations

from .poly import COS_COEFFS, PI_LO, SIN_COEFFS

__all__ = ["CDEF", "SOURCE", "source_fingerprint"]

#: Declarations shared by ``ffi.cdef`` and (as documentation) the numba
#: mirrors. ``want`` bits: 1 = W, 2 = dW/dr / r, 4 = dW/dh.  ``side``:
#: 0 = evaluate with h[i] (row side), 1 = with h[j] (neighbour side).
CDEF = """
void rp_pair_kernel(const double *x, const double *h, const double *whn,
                    const double *whn1, const int64_t *offsets,
                    const int64_t *indices, int64_t lo, int64_t hi, int dim,
                    const double *psel, const double *pdiv, int kind,
                    double p1, int want, int side, double *w, double *gs,
                    double *dwdh);
void rp_counts(const double *x, const double *h, const int64_t *offsets,
               const int64_t *indices, int64_t n, int dim,
               const double *psel, const double *pdiv, double factor,
               int64_t *counts);
void rp_rowsum(const int64_t *offsets, const int64_t *indices, int64_t lo,
               int64_t hi, const double *wgt, const double *vals,
               double *out);
void rp_iad_tau(const double *x, const int64_t *offsets,
                const int64_t *indices, int64_t lo, int64_t hi, int dim,
                const double *psel, const double *pdiv, const double *m,
                const double *rho, const double *w, double *tau);
void rp_div_curl(const double *x, const double *v, const int64_t *offsets,
                 const int64_t *indices, int64_t lo, int64_t hi, int dim,
                 const double *psel, const double *pdiv, const double *m,
                 const double *gs, double *divsum, double *curlsum);
double rp_forces(const double *x, const double *v, const double *h,
                 const double *m, const double *rho, const double *p_over,
                 const double *cs, const int64_t *offsets,
                 const int64_t *indices, int64_t lo, int64_t hi, int dim,
                 const double *psel, const double *pdiv, const double *wi,
                 const double *wj, const double *gsi, const double *gsj,
                 int use_iad, const double *cmat, const double *bals,
                 int use_balsara, double alpha, double beta, double eta2,
                 double support, int inline_j, int kind, double p1,
                 const double *whn, const double *whn1, double *out_a,
                 double *out_s1, double *out_s2);
void rp_pair_gradients(const double *x, const int64_t *offsets,
                       const int64_t *indices, int64_t lo, int64_t hi,
                       int dim, const double *psel, const double *pdiv,
                       const double *per_pair, int mode, const double *cmat,
                       int side, double *out);
void rp_radii(const double *x, const int64_t *offsets,
              const int64_t *indices, int64_t lo, int64_t hi, int dim,
              const double *psel, const double *pdiv, double *out_r);
void rp_counts_r(const double *r, const double *h, const int64_t *offsets,
                 int64_t n, double factor, int64_t *counts);
void rp_filter_count(const int64_t *offsets, const int64_t *indices,
                     const double *r, const double *h, int64_t n,
                     double support, int64_t *kept);
void rp_filter_fill(const int64_t *offsets, const int64_t *indices,
                    const double *r, const double *h, int64_t n,
                    double support, const int64_t *new_offsets,
                    int64_t *new_indices);
void rp_tau_inv(const double *tau, int64_t rows, int dim, double rcond,
                double *out);
"""


def _literals(name: str, coeffs) -> str:
    return "\n".join(
        f"static const double {name}{k + 1} = {c!r};"
        for k, c in enumerate(coeffs)
    )


_HELPERS = f"""
#include <stdint.h>
#include <math.h>

static const double RP_PI_LO = {PI_LO!r};

{_literals("RP_S", SIN_COEFFS)}
{_literals("RP_C", COS_COEFFS)}

/* sin(z) for z in [0, pi/2]: z + z*z2*Horner(S, z2). */
static inline double rp_sinpoly(double z)
{{
    const double z2 = z * z;
    double p = RP_S10;
    p = RP_S9 + z2 * p;
    p = RP_S8 + z2 * p;
    p = RP_S7 + z2 * p;
    p = RP_S6 + z2 * p;
    p = RP_S5 + z2 * p;
    p = RP_S4 + z2 * p;
    p = RP_S3 + z2 * p;
    p = RP_S2 + z2 * p;
    p = RP_S1 + z2 * p;
    return z + (z * z2) * p;
}}

/* cos(z) for z in [0, pi/2]: 1 + z2*Horner(C, z2). */
static inline double rp_cospoly(double z)
{{
    const double z2 = z * z;
    double p = RP_C10;
    p = RP_C9 + z2 * p;
    p = RP_C8 + z2 * p;
    p = RP_C7 + z2 * p;
    p = RP_C6 + z2 * p;
    p = RP_C5 + z2 * p;
    p = RP_C4 + z2 * p;
    p = RP_C3 + z2 * p;
    p = RP_C2 + z2 * p;
    p = RP_C1 + z2 * p;
    return 1.0 + z2 * p;
}}

/* sin and cos of x in [0, pi): reflect about pi/2 with a two-part pi so
 * relative accuracy survives at both ends of the interval. */
static inline void rp_sincos(double x, double *sx, double *cx)
{{
    if (x <= M_PI_2) {{
        *sx = rp_sinpoly(x);
        *cx = rp_cospoly(x);
    }} else {{
        const double z = (M_PI - x) + RP_PI_LO;
        *sx = rp_sinpoly(z);
        *cx = -rp_cospoly(z);
    }}
}}

/* a**n for small non-negative integer n by binary multiply chain. */
static inline double rp_powi(double a, int n)
{{
    double r = 1.0;
    while (n > 0) {{
        if (n & 1)
            r *= a;
        a *= a;
        n >>= 1;
    }}
    return r;
}}

/* a**e, shortcutting small integer exponents to multiply chains. */
static inline double rp_pow_pos(double a, double e)
{{
    const double ri = rint(e);
    if (e == ri && ri >= 0.0 && ri <= 32.0)
        return rp_powi(a, (int)ri);
    return pow(a, e);
}}

/* Minimum-image separation and distance, mirroring pair_geometry:
 * dx = x[i]-x[j]; per-axis wrap; r = sqrt(sum dx*dx) in axis order. */
static inline double rp_sep(const double *x, int64_t ii, int64_t jj, int dim,
                            const double *psel, const double *pdiv,
                            double *dx)
{{
    double r2 = 0.0;
    for (int d = 0; d < dim; ++d) {{
        double t = x[ii * dim + d] - x[jj * dim + d];
        t -= psel[d] * rint(t / pdiv[d]);
        dx[d] = t;
        r2 += t * t;
    }}
    return sqrt(r2);
}}

/* Kernel shape f(q) and f'(q).  kind: 0 = M4 cubic spline, 1/2/3 =
 * Wendland C2/C4/C6 (p1 = the kernel's 1-D/3-D shape hint), 4 = sinc
 * (p1 = exponent).  Each branch mirrors the numpy shape functions'
 * exact operation order. */
static inline void rp_shape(int kind, double p1, double q, int need_f,
                            int need_fp, double *f, double *fp)
{{
    *f = 0.0;
    *fp = 0.0;
    switch (kind) {{
    case 0: {{ /* M4 cubic spline */
        if (q < 1.0) {{
            if (need_f)
                *f = (1.0 - (1.5 * q) * q) + (((0.75 * q) * q) * q);
            if (need_fp)
                *fp = (-3.0 * q) + ((2.25 * q) * q);
        }} else if (q < 2.0) {{
            const double t = 2.0 - q;
            if (need_f)
                *f = 0.25 * ((t * t) * t);
            if (need_fp)
                *fp = -0.75 * (t * t);
        }}
        break;
    }}
    case 1: {{ /* Wendland C2 */
        const double l = 0.5 * q;
        const double p = 1.0 - l;
        const double pm = p > 0.0 ? p : 0.0;
        const double p2 = pm * pm;
        if (p1 == 1.0) {{
            if (need_f)
                *f = (p2 * pm) * (1.0 + 3.0 * l);
            if (need_fp)
                *fp = 0.5 * ((-12.0 * l) * p2);
        }} else {{
            if (need_f)
                *f = (p2 * p2) * (1.0 + 4.0 * l);
            if (need_fp)
                *fp = 0.5 * ((-20.0 * l) * (p2 * pm));
        }}
        break;
    }}
    case 2: {{ /* Wendland C4 */
        const double l = 0.5 * q;
        const double p = 1.0 - l;
        const double pm = p > 0.0 ? p : 0.0;
        const double p2 = pm * pm;
        const double p4 = p2 * p2;
        if (p1 == 1.0) {{
            if (need_f)
                *f = (p4 * pm) * ((1.0 + 5.0 * l) + (8.0 * l) * l);
            if (need_fp)
                *fp = 0.5 * ((-p4) * ((14.0 * l) + (56.0 * l) * l));
        }} else {{
            if (need_f)
                *f = (p4 * p2)
                     * ((1.0 + 6.0 * l) + ((35.0 / 3.0) * l) * l);
            if (need_fp)
                *fp = 0.5 * ((-(p4 * pm))
                             * (((56.0 / 3.0) * l)
                                + ((280.0 / 3.0) * l) * l));
        }}
        break;
    }}
    case 3: {{ /* Wendland C6 */
        const double l = 0.5 * q;
        const double p = 1.0 - l;
        const double pm = p > 0.0 ? p : 0.0;
        const double p2 = pm * pm;
        const double p4 = p2 * p2;
        if (p1 == 1.0) {{
            if (need_f)
                *f = ((p4 * p2) * pm)
                     * (((1.0 + 7.0 * l) + (19.0 * l) * l)
                        + 21.0 * ((l * l) * l));
            if (need_fp)
                *fp = 0.5 * ((((-6.0) * (p4 * p2)) * l)
                             * (((35.0 * l) * l + (18.0 * l)) + 3.0));
        }} else {{
            if (need_f)
                *f = (p4 * p4)
                     * (((1.0 + 8.0 * l) + (25.0 * l) * l)
                        + 32.0 * ((l * l) * l));
            if (need_fp)
                *fp = 0.5 * (((((-22.0) * ((p4 * p2) * pm)) * l))
                             * (((16.0 * l) * l + (7.0 * l)) + 1.0));
        }}
        break;
    }}
    case 4: {{ /* sinc^n */
        if (q <= 0.0) {{
            if (q == 0.0)
                *f = 1.0;
            break;
        }}
        if (q >= 2.0)
            break;
        const double xv = M_PI * (0.5 * q);
        double sx, cx;
        rp_sincos(xv, &sx, &cx);
        const double s = sx / xv;
        if (need_f)
            *f = rp_pow_pos(fabs(s), p1);
        if (need_fp) {{
            const double dsdq = (0.5 * M_PI) * ((cx - s) / xv);
            const double sgn = (s > 0.0) ? 1.0 : ((s < 0.0) ? -1.0 : 0.0);
            *fp = ((p1 * rp_pow_pos(fabs(s), p1 - 1.0)) * sgn) * dsdq;
        }}
        break;
    }}
    }}
}}
"""

_OPS = """
/* Fused per-pair kernel products over CSR rows [lo, hi): q = r/h_side,
 * W = whn_side*f(q), grad scale = (whn1_side*f'(q))/r (0 at r = 0),
 * dW/dh = -whn1_side*(dim*f + q*f'), written at pair offset k-offsets[lo]
 * for whichever of w/gs/dwdh the want bits select. */
void rp_pair_kernel(const double *x, const double *h, const double *whn,
                    const double *whn1, const int64_t *offsets,
                    const int64_t *indices, int64_t lo, int64_t hi, int dim,
                    const double *psel, const double *pdiv, int kind,
                    double p1, int want, int side, double *w, double *gs,
                    double *dwdh)
{
    const int64_t k0 = offsets[lo];
    const int need_f = (want & 1) || (want & 4);
    const int need_fp = (want & 2) || (want & 4);
    for (int64_t i = lo; i < hi; ++i) {
        const double hi_ = h[i];
        const double wni = whn[i];
        const double wn1i = whn1[i];
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const int64_t j = indices[k];
            double dx[3];
            const double r = rp_sep(x, i, j, dim, psel, pdiv, dx);
            double hs, wn, wn1;
            if (side == 0) {
                hs = hi_;
                wn = wni;
                wn1 = wn1i;
            } else {
                hs = h[j];
                wn = whn[j];
                wn1 = whn1[j];
            }
            const double q = r / hs;
            double f, fp;
            rp_shape(kind, p1, q, need_f, need_fp, &f, &fp);
            const int64_t o = k - k0;
            if (want & 1)
                w[o] = wn * f;
            if (want & 2) {
                const double dwdr = wn1 * fp;
                gs[o] = (r > 0.0) ? dwdr / r : 0.0;
            }
            if (want & 4)
                dwdh[o] = (-wn1) * ((double)dim * f + q * fp);
        }
    }
}

/* Neighbour counts within factor*h[i]; the predicate is pure rational
 * arithmetic, bitwise identical to the numpy h-iteration. */
void rp_counts(const double *x, const double *h, const int64_t *offsets,
               const int64_t *indices, int64_t n, int dim,
               const double *psel, const double *pdiv, double factor,
               int64_t *counts)
{
    for (int64_t i = 0; i < n; ++i) {
        const double rmax = factor * h[i];
        int64_t c = 0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            double dx[3];
            const double r = rp_sep(x, i, indices[k], dim, psel, pdiv, dx);
            if (r <= rmax)
                ++c;
        }
        counts[i] = c;
    }
}

/* Row sums of wgt[j] * vals[pair] in ascending pair order (the order
 * np.bincount applies weights). */
void rp_rowsum(const int64_t *offsets, const int64_t *indices, int64_t lo,
               int64_t hi, const double *wgt, const double *vals,
               double *out)
{
    const int64_t k0 = offsets[lo];
    for (int64_t i = lo; i < hi; ++i) {
        double acc = 0.0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k)
            acc += wgt[indices[k]] * vals[k - k0];
        out[i - lo] = acc;
    }
}

/* IAD tau accumulation: sum over pairs of (dx_a*dx_b) * ((m_j/rho_j)*w).
 * Regularization and inversion stay in numpy. */
void rp_iad_tau(const double *x, const int64_t *offsets,
                const int64_t *indices, int64_t lo, int64_t hi, int dim,
                const double *psel, const double *pdiv, const double *m,
                const double *rho, const double *w, double *tau)
{
    const int64_t k0 = offsets[lo];
    const int dd = dim * dim;
    for (int64_t i = lo; i < hi; ++i) {
        double acc[9];
        for (int a = 0; a < dd; ++a)
            acc[a] = 0.0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const int64_t j = indices[k];
            double dx[3];
            rp_sep(x, i, j, dim, psel, pdiv, dx);
            const double wgt = (m[j] / rho[j]) * w[k - k0];
            for (int a = 0; a < dim; ++a)
                for (int b = 0; b < dim; ++b)
                    acc[a * dim + b] += (dx[a] * dx[b]) * wgt;
        }
        for (int a = 0; a < dd; ++a)
            tau[(i - lo) * dd + a] = acc[a];
    }
}

/* Velocity divergence/curl pair sums with standard gradients
 * grad = dx * gs.  Python finishes the normalization by rho. */
void rp_div_curl(const double *x, const double *v, const int64_t *offsets,
                 const int64_t *indices, int64_t lo, int64_t hi, int dim,
                 const double *psel, const double *pdiv, const double *m,
                 const double *gs, double *divsum, double *curlsum)
{
    const int64_t k0 = offsets[lo];
    for (int64_t i = lo; i < hi; ++i) {
        double dacc = 0.0, c0 = 0.0, c1 = 0.0, c2 = 0.0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const int64_t j = indices[k];
            double dx[3];
            rp_sep(x, i, j, dim, psel, pdiv, dx);
            const double g = gs[k - k0];
            const double mj = m[j];
            double vij[3], grad[3];
            double vg = 0.0;
            for (int d = 0; d < dim; ++d) {
                vij[d] = v[i * dim + d] - v[j * dim + d];
                grad[d] = dx[d] * g;
                vg += vij[d] * grad[d];
            }
            dacc += mj * vg;
            if (dim == 3) {
                double t = vij[1] * grad[2] - vij[2] * grad[1];
                c0 += mj * t;
                t = vij[2] * grad[0] - vij[0] * grad[2];
                c1 += mj * t;
                t = vij[0] * grad[1] - vij[1] * grad[0];
                c2 += mj * t;
            } else if (dim == 2) {
                const double t = vij[0] * grad[1] - vij[1] * grad[0];
                c0 += mj * t;
            }
        }
        divsum[i - lo] = dacc;
        curlsum[(i - lo) * 3 + 0] = c0;
        curlsum[(i - lo) * 3 + 1] = c1;
        curlsum[(i - lo) * 3 + 2] = c2;
    }
}

/* Fused momentum + energy pair loop.  Per-pair gradients come either
 * from the IAD matrices (use_iad, with per-pair wi/wj) or from the
 * standard per-pair scales gsi/gsj (grad = dx*gs).  With inline_j the
 * neighbour-side product (wj or gsj) is evaluated in-loop via rp_shape
 * — the same arithmetic as the dedicated side=1 rp_pair_kernel pass,
 * so results are bitwise what the precomputed-array path produces
 * while an entire pair pass is saved.  Writes the row sums of the
 * acceleration pairs, of m_j*(v_ij . g_i) (s1) and of
 * (m_j*pi_ij)*(v_ij . gbar) (s2); Python combines du = p_over*s1 +
 * 0.5*s2.  Returns max |mu| over approaching pairs within the kernel
 * support (the viscous signal-speed term of the CFL). */
double rp_forces(const double *x, const double *v, const double *h,
                 const double *m, const double *rho, const double *p_over,
                 const double *cs, const int64_t *offsets,
                 const int64_t *indices, int64_t lo, int64_t hi, int dim,
                 const double *psel, const double *pdiv, const double *wi,
                 const double *wj, const double *gsi, const double *gsj,
                 int use_iad, const double *cmat, const double *bals,
                 int use_balsara, double alpha, double beta, double eta2,
                 double support, int inline_j, int kind, double p1,
                 const double *whn, const double *whn1, double *out_a,
                 double *out_s1, double *out_s2)
{
    const int64_t k0 = offsets[lo];
    const int dd = dim * dim;
    double max_mu = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
        double acc[3] = {0.0, 0.0, 0.0};
        double s1 = 0.0, s2 = 0.0;
        const double hii = h[i];
        const double poi = p_over[i];
        const double csi = cs[i];
        const double rhoi = rho[i];
        const double bi = use_balsara ? bals[i] : 0.0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const int64_t j = indices[k];
            const int64_t o = k - k0;
            double dx[3];
            const double r = rp_sep(x, i, j, dim, psel, pdiv, dx);
            const double hj = h[j];
            double vij[3];
            for (int d = 0; d < dim; ++d)
                vij[d] = v[i * dim + d] - v[j * dim + d];
            double gi[3], gj[3];
            if (use_iad) {
                const double wio = wi[o];
                double wjo;
                if (inline_j) {
                    double f, fp;
                    rp_shape(kind, p1, r / hj, 1, 0, &f, &fp);
                    wjo = whn[j] * f;
                } else {
                    wjo = wj[o];
                }
                const double *ci = cmat + i * dd;
                const double *cj = cmat + j * dd;
                for (int a = 0; a < dim; ++a) {
                    double ai = 0.0, aj = 0.0;
                    for (int b = 0; b < dim; ++b) {
                        const double tj = -dx[b];
                        ai += ci[a * dim + b] * tj;
                        aj += cj[a * dim + b] * tj;
                    }
                    gi[a] = ai * wio;
                    gj[a] = aj * wjo;
                }
            } else {
                const double gio = gsi[o];
                double gjo;
                if (inline_j) {
                    double f, fp;
                    rp_shape(kind, p1, r / hj, 0, 1, &f, &fp);
                    const double dwdr = whn1[j] * fp;
                    gjo = (r > 0.0) ? dwdr / r : 0.0;
                } else {
                    gjo = gsj[o];
                }
                for (int d = 0; d < dim; ++d) {
                    gi[d] = dx[d] * gio;
                    gj[d] = dx[d] * gjo;
                }
            }
            double vdotr = 0.0;
            for (int d = 0; d < dim; ++d)
                vdotr += vij[d] * dx[d];
            const double hbar = (hii + hj) * 0.5;
            double mu = hbar * vdotr;
            double denom = r * r;
            double eta_h = hbar * eta2;
            eta_h *= hbar;
            denom += eta_h;
            mu /= denom;
            const double cbar = 0.5 * (csi + cs[j]);
            const double rhobar = 0.5 * (rhoi + rho[j]);
            double pi_ = ((-alpha) * cbar * mu + (beta * mu) * mu) / rhobar;
            if (use_balsara)
                pi_ = (pi_ * 0.5) * (bi + bals[j]);
            const int approaching = vdotr < 0.0;
            if (!approaching)
                pi_ = 0.0;
            const double poj = p_over[j];
            const double mj = m[j];
            double vdot_gi = 0.0, vdot_gbar = 0.0;
            for (int d = 0; d < dim; ++d) {
                const double gbar = (gi[d] + gj[d]) * 0.5;
                vdot_gi += vij[d] * gi[d];
                vdot_gbar += vij[d] * gbar;
                const double pres = poi * gi[d] + poj * gj[d];
                acc[d] += (-mj) * (pres + pi_ * gbar);
            }
            s1 += mj * vdot_gi;
            s2 += (mj * pi_) * vdot_gbar;
            const double hmax = (hii > hj ? hii : hj) * support;
            if (approaching && r <= hmax) {
                const double am = fabs(mu);
                if (am > max_mu)
                    max_mu = am;
            }
        }
        for (int d = 0; d < dim; ++d)
            out_a[(i - lo) * dim + d] = acc[d];
        out_s1[i - lo] = s1;
        out_s2[i - lo] = s2;
    }
    return max_mu;
}

/* Per-pair gradient vectors, (n_pairs, dim).  mode 0: standard,
 * out = dx * per_pair (per_pair = gs of the requested side).  mode 1:
 * IAD, out = (C[row or neighbour] . -dx) * per_pair (per_pair = w of
 * the requested side).  side: 0 = i, 1 = j. */
void rp_pair_gradients(const double *x, const int64_t *offsets,
                       const int64_t *indices, int64_t lo, int64_t hi,
                       int dim, const double *psel, const double *pdiv,
                       const double *per_pair, int mode, const double *cmat,
                       int side, double *out)
{
    const int64_t k0 = offsets[lo];
    const int dd = dim * dim;
    for (int64_t i = lo; i < hi; ++i) {
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const int64_t j = indices[k];
            const int64_t o = k - k0;
            double dx[3];
            rp_sep(x, i, j, dim, psel, pdiv, dx);
            const double pp = per_pair[o];
            if (mode == 0) {
                for (int d = 0; d < dim; ++d)
                    out[o * dim + d] = dx[d] * pp;
            } else {
                const double *c = cmat + (side == 0 ? i : j) * dd;
                for (int a = 0; a < dim; ++a) {
                    double s = 0.0;
                    for (int b = 0; b < dim; ++b)
                        s += c[a * dim + b] * (-dx[b]);
                    out[o * dim + a] = s * pp;
                }
            }
        }
    }
}
/* Per-pair distances over CSR rows [lo, hi), same rp_sep arithmetic as
 * the fused ops — one pass per step serves the h-iteration's repeated
 * count sweeps and the support filter below. */
void rp_radii(const double *x, const int64_t *offsets,
              const int64_t *indices, int64_t lo, int64_t hi, int dim,
              const double *psel, const double *pdiv, double *out_r)
{
    const int64_t k0 = offsets[lo];
    for (int64_t i = lo; i < hi; ++i) {
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            double dx[3];
            out_r[k - k0] = rp_sep(x, i, indices[k], dim, psel, pdiv, dx);
        }
    }
}

/* Neighbour counts from precomputed radii: the predicate is the same
 * r <= factor*h[i] as rp_counts on radii the same rp_sep produced, so
 * the counts stay bitwise-identical while each h-iteration sweep costs
 * one branchless compare per pair instead of a full separation pass. */
void rp_counts_r(const double *r, const double *h, const int64_t *offsets,
                 int64_t n, double factor, int64_t *counts)
{
    for (int64_t i = 0; i < n; ++i) {
        const double rmax = factor * h[i];
        int64_t c = 0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k)
            c += (r[k] <= rmax);
        counts[i] = c;
    }
}

/* Support filter, counting pass: per row, how many pairs fall within
 * support*max(h_i, h_j) — exactly the rp_forces in-support predicate,
 * and a superset of either side's kernel support, so every dropped
 * pair contributes an exact 0.0 to every pair sum. */
void rp_filter_count(const int64_t *offsets, const int64_t *indices,
                     const double *r, const double *h, int64_t n,
                     double support, int64_t *kept)
{
    for (int64_t i = 0; i < n; ++i) {
        const double hi_ = h[i];
        int64_t c = 0;
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const double hj = h[indices[k]];
            const double hmax = (hi_ > hj ? hi_ : hj) * support;
            c += (r[k] <= hmax);
        }
        kept[i] = c;
    }
}

/* Support filter, fill pass: write the kept pairs' particle indices in
 * ascending pair order (row sums over the sub-list therefore add the
 * surviving terms in the same order as the full list). */
void rp_filter_fill(const int64_t *offsets, const int64_t *indices,
                    const double *r, const double *h, int64_t n,
                    double support, const int64_t *new_offsets,
                    int64_t *new_indices)
{
    for (int64_t i = 0; i < n; ++i) {
        const double hi_ = h[i];
        int64_t p = new_offsets[i];
        for (int64_t k = offsets[i]; k < offsets[i + 1]; ++k) {
            const int64_t j = indices[k];
            const double hj = h[j];
            const double hmax = (hi_ > hj ? hi_ : hj) * support;
            if (r[k] <= hmax)
                new_indices[p++] = j;
        }
    }
}

/* Regularized batched inversion of the IAD moment matrices: add
 * fmax(trace*rcond, 1e-300) to the diagonal (the reference expression)
 * then invert in closed form — adjugate/det for 2x2/3x3, reciprocal in
 * 1-D.  Differs from LAPACK at rounding level only; covered by the
 * documented backend tolerance. */
void rp_tau_inv(const double *tau, int64_t rows, int dim, double rcond,
                double *out)
{
    const int dd = dim * dim;
    for (int64_t i = 0; i < rows; ++i) {
        const double *t = tau + i * dd;
        double *o = out + i * dd;
        if (dim == 1) {
            const double reg = fmax(t[0] * rcond, 1e-300);
            o[0] = 1.0 / (t[0] + reg);
        } else if (dim == 2) {
            const double reg = fmax((t[0] + t[3]) * rcond, 1e-300);
            const double a = t[0] + reg, b = t[1];
            const double c = t[2], d = t[3] + reg;
            const double det = a * d - b * c;
            o[0] = d / det;
            o[1] = -b / det;
            o[2] = -c / det;
            o[3] = a / det;
        } else {
            const double reg = fmax((t[0] + t[4] + t[8]) * rcond, 1e-300);
            const double a = t[0] + reg, b = t[1], c = t[2];
            const double d = t[3], e = t[4] + reg, f = t[5];
            const double g = t[6], hh = t[7], k = t[8] + reg;
            const double A = e * k - f * hh;
            const double B = f * g - d * k;
            const double C = d * hh - e * g;
            const double det = a * A + b * B + c * C;
            o[0] = A / det;
            o[1] = (c * hh - b * k) / det;
            o[2] = (b * f - c * e) / det;
            o[3] = B / det;
            o[4] = (a * k - c * g) / det;
            o[5] = (c * d - a * f) / det;
            o[6] = C / det;
            o[7] = (b * g - a * hh) / det;
            o[8] = (a * e - b * d) / det;
        }
    }
}
"""

SOURCE = _HELPERS + _OPS


def source_fingerprint() -> str:
    """Hashable identity of the generated source (build-cache key)."""
    import hashlib

    return hashlib.sha256(SOURCE.encode()).hexdigest()[:16]
