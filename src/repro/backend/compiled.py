"""Orchestration of compiled pair-loop ops behind the phase functions.

:class:`CompiledOps` wraps a low-level implementation table (cffi or
numba — same method surface) with everything the phases need but the
compiled code should not care about:

* **Marshalling** — contiguity checks, the branchless minimum-image
  ``psel``/``pdiv`` encodings of the box, per-particle kernel
  normalization arrays ``whn = sigma/h**dim`` / ``whn1 = sigma/h**(dim+1)``
  (computed with the *same numpy ufunc sequence* as the reference so the
  factors are bitwise-equal by construction).
* **Memoization** — per-pair kernel products (``W``, the gradient scale
  ``dW/dr / r``, ``dW/dh``) are cached per CSR row slice, keyed on the
  :class:`~repro.sph.pair_engine.PairContext` epoch tokens, mirroring
  the pair engine's sharing discipline: the IAD phase's ``W_i`` row pass
  is reused by the force phase within the same step and invalidated the
  moment positions or smoothing lengths move.  Without tokens (pair
  engine disabled) every call recomputes — correct, just less shared.
* **Scratch** — pair-axis buffers are grow-only per row slice, so
  steady-state steps allocate nothing on the pair axis, matching the
  ScratchArena discipline of the numpy path.

One ``CompiledOps`` instance is shared per backend per process (epoch
tokens are process-unique, so cross-simulation sharing is safe; forked
pool workers inherit the already-built library).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

import numpy as np

from .base import UnsupportedKernelError, kernel_spec

__all__ = ["CompiledOps"]


class SupportList(NamedTuple):
    """Support-filtered sub-CSR of a (padded) neighbour list.

    Keeps exactly the pairs within ``support * max(h_i, h_j)`` — the
    pairs whose kernel terms can be non-zero on either side.  Dropped
    pairs contribute an exact ``0.0`` to every pair sum, and the fill
    preserves ascending pair order, so running the fused loops over the
    sub-list reproduces the full-list reductions while skipping the
    Verlet-skin padding (~2x fewer pairs at the default skin).
    """

    offsets: np.ndarray
    indices: np.ndarray
    n: int

#: want-bitmask per product name (matches the C ABI).
_WANT_BITS = {"w": 1, "gs": 2, "dwdh": 4}
_SIDES = {"i": 0, "j": 1}

#: Bound on live per-slice scratch caches (matches the worker-context
#: cap in the pool: slices are stable across steps, so in practice a
#: handful are ever live).
_MAX_SLICES = 64


def _pspans(box, dim: int) -> Tuple[np.ndarray, np.ndarray]:
    """Branchless min-image encoding: psel = span|0, pdiv = span|1."""
    psel = np.zeros(dim)
    pdiv = np.ones(dim)
    if box is not None:
        per = box.periodic
        span = box.span
        psel[per] = span[per]
        pdiv[per] = span[per]
    return psel, pdiv


def _as_c(arr: np.ndarray, dtype) -> np.ndarray:
    """C-contiguous view of the expected dtype (no copy when already so)."""
    return np.ascontiguousarray(arr, dtype=dtype)


class _SliceCache:
    """Grow-only named pair-axis buffers + memo keys for one row slice."""

    __slots__ = ("bufs", "keys")

    def __init__(self) -> None:
        self.bufs: Dict[str, np.ndarray] = {}
        self.keys: Dict[str, tuple] = {}

    def take(self, name: str, shape) -> np.ndarray:
        size = int(np.prod(shape))
        buf = self.bufs.get(name)
        if buf is None or buf.size < size:
            buf = np.empty(max(size, 1))
            self.bufs[name] = buf
        return buf[:size].reshape(shape)


class CompiledOps:
    """Phase-facing op table for one compiled backend."""

    def __init__(self, name: str, impl) -> None:
        self.name = name
        self.impl = impl
        self._slices: Dict[Tuple[int, int], _SliceCache] = {}
        self._factors: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._filters: Dict[tuple, SupportList] = {}

    # -- capability ----------------------------------------------------
    def supports(self, kernel) -> bool:
        try:
            kernel_spec(kernel)
        except UnsupportedKernelError:
            return False
        return True

    # -- internals -----------------------------------------------------
    def _slice(self, lo: int, hi: int) -> _SliceCache:
        sc = self._slices.get((lo, hi))
        if sc is None:
            if len(self._slices) >= _MAX_SLICES:
                self._slices.clear()
            sc = self._slices[(lo, hi)] = _SliceCache()
        return sc

    def _normalizations(
        self, kernel, h: np.ndarray, dim: int, tok_h
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-particle sigma/h**dim and sigma/h**(dim+1).

        Same ufunc sequence as ``Kernel.value_from_q`` /
        ``radial_derivative_from_q`` (power then divide), hence bitwise
        -equal factors; cached on the h epoch token when available.
        """
        key = None
        if tok_h is not None:
            key = (tok_h, kernel.cache_key(), dim, h.shape[0])
            hit = self._factors.get(key)
            if hit is not None:
                return hit
        sigma = kernel.sigma(dim)
        whn = np.power(h, dim)
        np.divide(sigma, whn, out=whn)
        whn1 = np.power(h, dim + 1)
        np.divide(sigma, whn1, out=whn1)
        if key is not None:
            if len(self._factors) >= 8:
                self._factors.clear()
            self._factors[key] = (whn, whn1)
        return whn, whn1

    @staticmethod
    def _pair_count(nlist, lo: int, hi: int) -> int:
        return int(nlist.offsets[hi] - nlist.offsets[lo])

    # -- fused kernel products -----------------------------------------
    def pair_products(
        self,
        *,
        x: np.ndarray,
        h: np.ndarray,
        nlist,
        box,
        kernel,
        dim: int,
        lo: int,
        hi: int,
        tokens: Optional[tuple],
        side: str,
        want: Tuple[str, ...],
    ) -> Dict[str, np.ndarray]:
        """Per-pair kernel products for one side, memoized on tokens.

        ``want`` names any subset of ``("w", "gs", "dwdh")``; missing
        products are computed in a single fused pass over the CSR rows.
        Returned arrays are cache-owned views — consume before the next
        call that could recompute the same slot.
        """
        kind, p1 = kernel_spec(kernel)
        sc = self._slice(lo, hi)
        n_pairs = self._pair_count(nlist, lo, hi)
        tok_geom, tok_h = (tokens[0], tokens[1]) if tokens else (None, None)
        key = None
        if tok_geom is not None and tok_h is not None:
            key = (tok_geom, tok_h, kernel.cache_key(), dim, n_pairs)

        out: Dict[str, np.ndarray] = {}
        missing = 0
        for prod in want:
            slot = f"{prod}_{side}"
            if key is not None and sc.keys.get(slot) == key:
                out[prod] = sc.bufs[slot][:n_pairs]
            else:
                missing |= _WANT_BITS[prod]

        if missing:
            whn, whn1 = self._normalizations(kernel, h, dim, tok_h)
            psel, pdiv = _pspans(box, dim)
            dummy = sc.take("dummy", (1,))
            bufs = {}
            for prod, bit in _WANT_BITS.items():
                if missing & bit:
                    bufs[prod] = sc.take(f"{prod}_{side}", (n_pairs,))
            self.impl.pair_kernel(
                _as_c(x, np.float64), _as_c(h, np.float64), whn, whn1,
                nlist.offsets, nlist.indices, lo, hi, dim, psel, pdiv,
                kind, p1, missing, _SIDES[side],
                bufs.get("w", dummy), bufs.get("gs", dummy),
                bufs.get("dwdh", dummy),
            )
            for prod, buf in bufs.items():
                sc.keys[f"{prod}_{side}"] = key
                out[prod] = buf
        return out

    # -- row reductions ------------------------------------------------
    def rowsum(
        self, nlist, lo: int, hi: int, wgt: np.ndarray, vals: np.ndarray
    ) -> np.ndarray:
        out = np.empty(hi - lo)
        self.impl.rowsum(
            nlist.offsets, nlist.indices, lo, hi,
            _as_c(wgt, np.float64), _as_c(vals, np.float64), out,
        )
        return out

    def neighbor_counts(
        self, x: np.ndarray, h: np.ndarray, nlist, box, factor: float
    ) -> np.ndarray:
        dim = x.shape[1]
        psel, pdiv = _pspans(box, dim)
        counts = np.empty(nlist.n, dtype=np.int64)
        self.impl.counts(
            _as_c(x, np.float64), _as_c(h, np.float64),
            nlist.offsets, nlist.indices, nlist.n, dim, psel, pdiv,
            float(factor), counts,
        )
        return counts

    def iad_tau(
        self,
        x: np.ndarray,
        nlist,
        box,
        m: np.ndarray,
        rho: np.ndarray,
        w: np.ndarray,
        dim: int,
        lo: int,
        hi: int,
    ) -> np.ndarray:
        psel, pdiv = _pspans(box, dim)
        tau = np.empty((hi - lo, dim, dim))
        self.impl.iad_tau(
            _as_c(x, np.float64), nlist.offsets, nlist.indices, lo, hi,
            dim, psel, pdiv, _as_c(m, np.float64), _as_c(rho, np.float64),
            _as_c(w, np.float64), tau,
        )
        return tau

    def div_curl_sums(
        self,
        x: np.ndarray,
        v: np.ndarray,
        nlist,
        box,
        m: np.ndarray,
        gs: np.ndarray,
        dim: int,
        lo: int,
        hi: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        psel, pdiv = _pspans(box, dim)
        divsum = np.empty(hi - lo)
        curlsum = np.empty((hi - lo, 3))
        self.impl.div_curl(
            _as_c(x, np.float64), _as_c(v, np.float64),
            nlist.offsets, nlist.indices, lo, hi, dim, psel, pdiv,
            _as_c(m, np.float64), _as_c(gs, np.float64), divsum, curlsum,
        )
        return divsum, curlsum

    def forces(
        self,
        *,
        x,
        v,
        h,
        m,
        rho,
        p_over,
        cs,
        nlist,
        box,
        dim,
        lo,
        hi,
        wi,
        wj,
        gsi,
        gsj,
        use_iad,
        c_matrices,
        balsara_f,
        alpha,
        beta,
        eta2,
        support,
        kernel=None,
        tokens=None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        psel, pdiv = _pspans(box, dim)
        rows = hi - lo
        a = np.empty((rows, dim))
        s1 = np.empty(rows)
        s2 = np.empty(rows)
        # Unused optional inputs still need shape-correct placeholders:
        # the numba mirrors compile every branch against these types.
        dummy = np.empty(1)
        dummy3 = np.empty((1, 1, 1))
        use_balsara = balsara_f is not None
        # When the caller leaves the neighbour-side product (wj / gsj)
        # out and hands the kernel over instead, it is evaluated inline
        # in the fused loop — one whole pair pass saved, bitwise-same
        # values (identical shape/normalization arithmetic).
        inline_j = 0
        kind = 0
        p1 = 0.0
        whn = whn1 = dummy
        missing_j = wj is None if use_iad else gsj is None
        if kernel is not None and missing_j:
            kind, p1 = kernel_spec(kernel)
            tok_h = tokens[1] if tokens else None
            whn, whn1 = self._normalizations(kernel, h, dim, tok_h)
            inline_j = 1
        max_mu = self.impl.forces(
            _as_c(x, np.float64), _as_c(v, np.float64),
            _as_c(h, np.float64), _as_c(m, np.float64),
            _as_c(rho, np.float64), _as_c(p_over, np.float64),
            _as_c(cs, np.float64), nlist.offsets, nlist.indices, lo, hi,
            dim, psel, pdiv,
            _as_c(wi, np.float64) if wi is not None else dummy,
            _as_c(wj, np.float64) if wj is not None else dummy,
            _as_c(gsi, np.float64) if gsi is not None else dummy,
            _as_c(gsj, np.float64) if gsj is not None else dummy,
            int(use_iad),
            _as_c(c_matrices, np.float64) if use_iad else dummy3,
            _as_c(balsara_f, np.float64) if use_balsara else dummy,
            int(use_balsara), float(alpha), float(beta), float(eta2),
            float(support), inline_j, kind, float(p1), whn, whn1,
            a, s1, s2,
        )
        return a, s1, s2, float(max_mu)

    # -- pair geometry reuse -------------------------------------------
    def pair_radii(
        self, x: np.ndarray, nlist, box, tokens: Optional[tuple] = None
    ) -> np.ndarray:
        """Per-pair distances over the full list, memoized on the
        geometry token.

        One separation pass per step serves every
        :meth:`counts_from_radii` sweep of the h iteration *and* the
        :meth:`support_list` build; the values are bitwise what the
        fused loops compute inline (same ``rp_sep`` arithmetic).
        """
        dim = x.shape[1]
        n = int(nlist.n)
        n_pairs = int(nlist.offsets[n])
        sc = self._slice(0, n)
        tok_geom = tokens[0] if tokens else None
        key = (tok_geom, n_pairs) if tok_geom is not None else None
        if key is not None and sc.keys.get("radii") == key:
            return sc.bufs["radii"][:n_pairs]
        psel, pdiv = _pspans(box, dim)
        r = sc.take("radii", (n_pairs,))
        self.impl.radii(
            _as_c(x, np.float64), nlist.offsets, nlist.indices, 0, n, dim,
            psel, pdiv, r,
        )
        if key is not None:
            sc.keys["radii"] = key
        return r

    def counts_from_radii(
        self, r: np.ndarray, h: np.ndarray, nlist, factor: float
    ) -> np.ndarray:
        """Neighbour counts from precomputed radii — bitwise the same
        ``r <= factor*h[i]`` predicate as :meth:`neighbor_counts`, at
        one compare per pair."""
        counts = np.empty(nlist.n, dtype=np.int64)
        self.impl.counts_r(
            _as_c(r, np.float64), _as_c(h, np.float64), nlist.offsets,
            int(nlist.n), float(factor), counts,
        )
        return counts

    def support_list(
        self, x: np.ndarray, h: np.ndarray, nlist, box, kernel,
        tokens: Optional[tuple],
    ):
        """Resolve the pair list the fused loops should run over.

        With valid geometry/h tokens, returns a memoized
        :class:`SupportList` keeping only pairs within
        ``kernel.support * max(h_i, h_j)`` — every per-pair op then
        skips the Verlet-skin padding.  Alignment discipline: per-pair
        buffers produced against a given list are only meaningful to
        ops called with the *same* list; phases resolve it once per
        call, and the token-keyed memo makes every phase of a step
        agree.  Without tokens the original ``nlist`` is returned
        unchanged (filtering would cost more than one unshared pass
        saves).
        """
        if not tokens or tokens[0] is None or tokens[1] is None:
            return nlist
        n = int(nlist.n)
        n_pairs = int(nlist.offsets[n])
        support = float(kernel.support)
        key = (tokens[0], tokens[1], support, n, n_pairs)
        hit = self._filters.get(key)
        if hit is not None:
            return hit
        r = self.pair_radii(x, nlist, box, tokens)
        kept = np.empty(n, dtype=np.int64)
        h64 = _as_c(h, np.float64)
        r64 = _as_c(r, np.float64)
        self.impl.filter_count(
            nlist.offsets, nlist.indices, r64, h64, n, support, kept,
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(kept, out=offsets[1:])
        indices = np.empty(int(offsets[n]), dtype=np.int64)
        self.impl.filter_fill(
            nlist.offsets, nlist.indices, r64, h64, n, support, offsets,
            indices,
        )
        sub = SupportList(offsets=offsets, indices=indices, n=n)
        if len(self._filters) >= 4:
            self._filters.clear()
        self._filters[key] = sub
        return sub

    def tau_inverse(
        self, tau: np.ndarray, dim: int, rcond: float
    ) -> np.ndarray:
        """Regularize (``max(trace*rcond, 1e-300)`` on the diagonal)
        and invert the IAD moment matrices in one compiled pass."""
        rows = tau.shape[0]
        out = np.empty((rows, dim, dim))
        self.impl.tau_inv(
            _as_c(tau, np.float64), rows, dim, float(rcond), out
        )
        return out

    def pair_gradients(
        self,
        x: np.ndarray,
        nlist,
        box,
        per_pair: np.ndarray,
        mode: int,
        c_matrices: Optional[np.ndarray],
        side: str,
        dim: int,
        lo: int,
        hi: int,
    ) -> np.ndarray:
        psel, pdiv = _pspans(box, dim)
        n_pairs = self._pair_count(nlist, lo, hi)
        out = np.empty((n_pairs, dim))
        dummy3 = np.empty((1, 1, 1))
        self.impl.pair_gradients(
            _as_c(x, np.float64), nlist.offsets, nlist.indices, lo, hi,
            dim, psel, pdiv, _as_c(per_pair, np.float64), mode,
            _as_c(c_matrices, np.float64) if c_matrices is not None
            else dummy3,
            _SIDES[side], out,
        )
        return out
