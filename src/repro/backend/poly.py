"""Shared transcendental-polynomial constants for the compiled backends.

The compiled pair loops cannot call ``numpy``'s vectorized ``sin``/``cos``
(the sinc-family kernels are the default in every preset), and scalar
libm ``sin`` costs more than the whole rest of the fused pair visit.
Both compiled backends therefore evaluate the same degree-10 Taylor
polynomials in ``z**2`` after an exact split-at-``pi/2`` range reduction:

* the argument ``x = pi * (q / 2)`` lives in ``[0, pi)`` by construction
  (``q = r/h`` is clipped to ``[0, 2)`` before evaluation);
* ``x <= pi/2`` evaluates ``sin``/``cos`` directly;
* otherwise the reflection ``z = (pi_hi - x) + pi_lo`` uses a two-part
  representation of pi so ``sin(x) = sin(z)`` keeps full *relative*
  accuracy as ``x -> pi`` (where ``sin`` underflows toward zero and a
  naive ``pi - x`` would cancel catastrophically).

Truncation error of the series on ``[0, pi/2]`` is ``(pi/2)**23 / 23!``
(~1.2e-18) for ``sin`` and ``(pi/2)**22 / 22!`` (~1.9e-17) for ``cos`` —
one to two ulp of the exact value, well inside the documented backend
tolerance (see DESIGN.md, "Tolerance policy").

These constants are imported by both the C-source generator
(:mod:`repro.backend.csrc`) and the numba mirrors
(:mod:`repro.backend.numba_backend`) so the two compiled backends agree
with each other to the last rounding of identical arithmetic.
"""

from __future__ import annotations

import math

__all__ = [
    "PI_HI",
    "PI_LO",
    "SIN_COEFFS",
    "COS_COEFFS",
]

#: Two-part representation of pi: ``PI_HI`` is the double nearest pi and
#: ``PI_LO`` the leading correction (``pi - PI_HI`` to double precision,
#: numerically ``sin(PI_HI)`` to first order).
PI_HI = math.pi
PI_LO = 1.2246467991473532e-16

#: Taylor coefficients of ``sin(z)/z - 1`` in powers of ``z**2``:
#: ``sin(z) = z + z*z2*(S1 + z2*(S2 + ...))`` with ``Sk = (-1)^k/(2k+1)!``.
SIN_COEFFS = (
    -0.16666666666666666,
    0.008333333333333333,
    -0.0001984126984126984,
    2.7557319223985893e-06,
    -2.505210838544172e-08,
    1.6059043836821613e-10,
    -7.647163731819816e-13,
    2.8114572543455206e-15,
    -8.22063524662433e-18,
    1.9572941063391263e-20,
)

#: Taylor coefficients of ``cos(z) - 1`` in powers of ``z**2``:
#: ``cos(z) = 1 + z2*(C1 + z2*(C2 + ...))`` with ``Ck = (-1)^k/(2k)!``.
COS_COEFFS = (
    -0.5,
    0.041666666666666664,
    -0.001388888888888889,
    2.48015873015873e-05,
    -2.755731922398589e-07,
    2.08767569878681e-09,
    -1.1470745597729725e-11,
    4.779477332387385e-14,
    -1.5619206968586225e-16,
    4.110317623312165e-19,
)
