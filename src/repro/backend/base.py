"""Backend dispatch primitives: errors, kernel specs, the Backend handle.

The dispatch contract is deliberately small.  A :class:`Backend` is a
name plus an optional :class:`~repro.backend.compiled.CompiledOps`
table; ``ops is None`` means "reference numpy path" and every phase
function falls straight through to its original vectorized code — the
numpy backend is therefore *the* existing implementation, not a copy.

Compiled backends only understand the closed set of kernel families the
registry ships (M4, Wendland C2/C4/C6, sinc); :func:`kernel_spec` maps a
kernel instance to a ``(kind, p1)`` pair for the compiled shape
evaluators and raises :class:`UnsupportedKernelError` for anything else
(including *subclasses* of the known kernels, whose overridden shapes
the compiled code could not see).  Phase functions treat that as "use
numpy for this phase" — a user-registered custom kernel keeps working,
just uninterpreted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "BACKEND_CHOICES",
    "Backend",
    "BackendUnavailableError",
    "UnsupportedKernelError",
    "kernel_spec",
    "backend_ops",
]

#: Valid ``ExecConfig.backend`` / ``--backend`` values.
BACKEND_CHOICES = ("numpy", "numba", "cffi", "auto")

#: Kernel-family codes understood by the compiled shape evaluators.
KIND_M4 = 0
KIND_WENDLAND_C2 = 1
KIND_WENDLAND_C4 = 2
KIND_WENDLAND_C6 = 3
KIND_SINC = 4


class BackendUnavailableError(RuntimeError):
    """The requested backend cannot be constructed on this host."""


class UnsupportedKernelError(ValueError):
    """The compiled backends have no evaluator for this kernel type."""


def kernel_spec(kernel) -> Tuple[int, float]:
    """Map a kernel instance to the compiled ``(kind, p1)`` spec.

    ``p1`` carries the one scalar parameter a family needs: the sinc
    exponent, or the Wendland 1-D/3-D shape hint.  Matching is on exact
    type so subclassed (overridden-shape) kernels are refused.
    """
    from ..kernels.cubic_spline import CubicSplineKernel
    from ..kernels.sinc import SincKernel
    from ..kernels.wendland import (
        WendlandC2Kernel,
        WendlandC4Kernel,
        WendlandC6Kernel,
    )

    t = type(kernel)
    if t is CubicSplineKernel:
        return (KIND_M4, 0.0)
    if t is WendlandC2Kernel:
        return (KIND_WENDLAND_C2, float(kernel._dim_hint))
    if t is WendlandC4Kernel:
        return (KIND_WENDLAND_C4, float(kernel._dim_hint))
    if t is WendlandC6Kernel:
        return (KIND_WENDLAND_C6, float(kernel._dim_hint))
    if t is SincKernel:
        return (KIND_SINC, float(kernel.exponent))
    raise UnsupportedKernelError(
        f"no compiled evaluator for kernel {kernel!r}; "
        f"this phase falls back to the numpy reference"
    )


@dataclass(frozen=True)
class Backend:
    """A resolved execution backend.

    ``ops`` is ``None`` for the numpy reference (phases run their
    original vectorized code) and a ``CompiledOps`` table for compiled
    backends.  ``version`` identifies the toolchain for provenance.
    """

    name: str
    ops: Optional[object]
    version: str
    detail: str = ""

    @property
    def compiled(self) -> bool:
        return self.ops is not None

    def describe(self) -> Dict[str, object]:
        """Provenance record for ``RunReport`` / bench JSON."""
        return {
            "name": self.name,
            "compiled": self.compiled,
            "version": self.version,
            "detail": self.detail,
        }


def backend_ops(backend: Optional[Backend], kernel):
    """The compiled op table to use for a kernel-evaluating phase.

    Returns ``None`` — meaning "take the numpy path" — when no backend
    was threaded through, when the backend is the numpy reference, or
    when the kernel has no compiled evaluator.
    """
    if backend is None:
        return None
    ops = backend.ops
    if ops is None:
        return None
    return ops if ops.supports(kernel) else None
