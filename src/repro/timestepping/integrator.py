"""Kick-drift-kick leapfrog integration (Algorithm 1, step 6).

The symplectic second-order integrator common to the parent codes.  The
driver owns force evaluation; this module provides the two half-kicks and
the drift as separate in-place operations so the step can interleave them
with the tree/neighbour/force phases (and so individual-time-step drivers
can kick subsets):

    kick(dt/2)  ->  drift(dt)  ->  [recompute forces]  ->  kick(dt/2)

Internal energy advances alongside velocity with the same half-step
splitting, keeping (v, u) consistent to second order.
"""

from __future__ import annotations

import numpy as np

from ..tree.box import Box

__all__ = ["kick", "drift", "apply_energy_floor"]


def kick(particles, dt: float, mask: np.ndarray | None = None) -> None:
    """Half-kick: ``v += a dt`` and ``u += du dt`` (in place).

    ``mask`` restricts the update to active particles (individual
    time-step rungs); ``None`` updates everything.
    """
    if mask is None:
        particles.v += particles.a * dt
        particles.u += particles.du * dt
    else:
        particles.v[mask] += particles.a[mask] * dt
        particles.u[mask] += particles.du[mask] * dt
    particles.bump_epoch("v")


def drift(particles, dt: float, box: Box | None = None) -> None:
    """Drift: ``x += v dt`` (in place), wrapping periodic axes."""
    particles.x += particles.v * dt
    if box is not None and bool(np.any(box.periodic)):
        particles.x[:] = box.wrap(particles.x)
    particles.bump_epoch("x")


def apply_energy_floor(particles, u_floor: float = 1e-12) -> int:
    """Clamp internal energies at a positive floor; returns #clamped.

    Strong rarefactions can transiently drive ``u`` negative at second
    order; production codes clamp rather than abort.
    """
    below = particles.u < u_floor
    count = int(np.count_nonzero(below))
    if count:
        particles.u[below] = u_floor
    return count
