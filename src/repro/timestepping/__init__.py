"""Time stepping: criteria, selection policies, leapfrog integration.

Covers step 5-6 of Algorithm 1 and the "Time-Stepping" rows of Tables 1-2
(Global, Individual/block rungs, Adaptive).
"""

from .criteria import (
    TimestepParams,
    acceleration_timestep,
    combined_timestep,
    courant_timestep,
    energy_timestep,
)
from .integrator import apply_energy_floor, drift, kick
from .steppers import (
    AdaptiveTimestep,
    GlobalTimestep,
    IndividualTimesteps,
    RungSchedule,
)

__all__ = [
    "TimestepParams",
    "courant_timestep",
    "acceleration_timestep",
    "energy_timestep",
    "combined_timestep",
    "kick",
    "drift",
    "apply_energy_floor",
    "GlobalTimestep",
    "AdaptiveTimestep",
    "IndividualTimesteps",
    "RungSchedule",
]
