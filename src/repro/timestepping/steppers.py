"""Time-step selection policies (Tables 1-2 "Time-Stepping").

Three policies cover the parent codes:

* :class:`GlobalTimestep` — SPHYNX / SPH-flow "Global": every particle
  advances with the same dt, the global minimum of the criteria.
* :class:`IndividualTimesteps` — ChaNGa "Individual": particles are sorted
  into power-of-two bins ("rungs") below a base step; bin b advances with
  ``dt_base / 2^b`` and all bins synchronize at base-step boundaries.
  This saves work when time scales are spatially inhomogeneous (the
  Evrard core vs its halo) at the cost of load imbalance — exactly the
  effect Section 4 lists among the "load imbalance factors arising from
  the characteristic of the three SPH codes (multi-time-stepping)".
* :class:`AdaptiveTimestep` — SPH-flow "Adaptive": a global dt re-scaled
  each step within growth/shrink limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .criteria import TimestepParams, combined_timestep

__all__ = [
    "GlobalTimestep",
    "AdaptiveTimestep",
    "IndividualTimesteps",
    "RungSchedule",
]


class GlobalTimestep:
    """Single global dt: minimum criterion over all particles."""

    name = "global"

    def __init__(self, params: TimestepParams = TimestepParams()) -> None:
        self.params = params
        self._dt_prev: float | None = None

    def select(self, particles, max_mu: float = 0.0) -> float:
        dt = float(np.min(combined_timestep(particles, max_mu, self.params)))
        if self._dt_prev is not None:
            dt = min(dt, self.params.max_growth * self._dt_prev)
        self._dt_prev = dt
        return dt


class AdaptiveTimestep:
    """Global dt with symmetric growth/shrink rate limiting (SPH-flow)."""

    name = "adaptive"

    def __init__(
        self,
        params: TimestepParams = TimestepParams(),
        shrink_limit: float = 0.5,
    ) -> None:
        if not 0.0 < shrink_limit <= 1.0:
            raise ValueError(f"shrink_limit must be in (0, 1], got {shrink_limit}")
        self.params = params
        self.shrink_limit = shrink_limit
        self._dt_prev: float | None = None

    def select(self, particles, max_mu: float = 0.0) -> float:
        dt = float(np.min(combined_timestep(particles, max_mu, self.params)))
        if self._dt_prev is not None:
            dt = min(dt, self.params.max_growth * self._dt_prev)
            dt = max(dt, self.shrink_limit * self._dt_prev)
        self._dt_prev = dt
        return dt


@dataclass(frozen=True)
class RungSchedule:
    """Assignment of particles to power-of-two time-step bins.

    ``rung[i] = b`` means particle i advances ``2^b`` times per base step
    with ``dt_base / 2^b``.  The base step runs ``2^max_rung`` substeps;
    substep s advances the particles whose rung satisfies
    ``s % 2^(max_rung - b) == 0`` — the standard block scheme.
    """

    dt_base: float
    rung: np.ndarray

    @property
    def max_rung(self) -> int:
        return int(self.rung.max(initial=0))

    @property
    def n_substeps(self) -> int:
        return 1 << self.max_rung

    def substep_dt(self) -> float:
        """dt of the finest rung — the substep granularity."""
        return self.dt_base / self.n_substeps

    def active_mask(self, substep: int) -> np.ndarray:
        """Particles that start a new step at this substep index."""
        period = 1 << (self.max_rung - self.rung)
        return substep % period == 0

    def active_counts(self) -> List[int]:
        """Active particle count per substep — the work profile of the
        base step (what the cluster cost model charges)."""
        return [int(self.active_mask(s).sum()) for s in range(self.n_substeps)]

    def total_particle_updates(self) -> int:
        """Sum of active counts — compare to ``n * 2^max_rung`` for the
        saving over a global step at the finest dt."""
        return int((1 << self.rung.astype(np.int64)).sum())


@dataclass
class IndividualTimesteps:
    """Per-particle power-of-two binning below a base step (ChaNGa)."""

    params: TimestepParams = field(default_factory=TimestepParams)
    max_rung_cap: int = 10
    name: str = "individual"

    def schedule(self, particles, max_mu: float = 0.0) -> RungSchedule:
        """Bin the per-particle criteria into rungs under the base step."""
        dt_i = combined_timestep(particles, max_mu, self.params)
        finite = np.isfinite(dt_i)
        if not np.any(finite):
            return RungSchedule(dt_base=np.inf, rung=np.zeros(particles.n, dtype=np.int64))
        dt_base = float(dt_i[finite].max())
        with np.errstate(divide="ignore", over="ignore"):
            ratio = dt_base / np.where(finite, dt_i, dt_base)
        rung = np.ceil(np.log2(np.maximum(ratio, 1.0))).astype(np.int64)
        rung = np.clip(rung, 0, self.max_rung_cap)
        return RungSchedule(dt_base=dt_base, rung=rung)

    def select(self, particles, max_mu: float = 0.0) -> float:
        """Global-compatible interface: the finest bin's dt.

        The full block scheme is driven by :meth:`schedule`; drivers that
        only support synchronous stepping (the common mini-app case) use
        the finest dt, and the *cost* of the rung structure is charged by
        the cluster model via :meth:`RungSchedule.active_counts`.
        """
        sched = self.schedule(particles, max_mu)
        if not np.isfinite(sched.dt_base):
            return np.inf
        return sched.dt_base / sched.n_substeps
