"""Per-particle time-step criteria (Algorithm 1, step 5).

Step 5 computes "a new physically relevant and numerically stable
time-step".  Three standard criteria are combined:

* Courant (CFL): ``dt = C h / (c + 1.2 (alpha c + beta h |mu|))`` — the
  signal-velocity form including the viscous contribution.
* Acceleration: ``dt = C sqrt(h / |a|)`` — resolves rapid force changes
  (dominant in the Evrard free-fall stage).
* Energy: ``dt = C u / |du/dt|`` — guards the internal-energy update
  through shocks.

Each returns a per-particle array; the reductions live in the stepper
modules (global minimum vs per-particle bins).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimestepParams", "courant_timestep", "acceleration_timestep", "energy_timestep", "combined_timestep"]


@dataclass(frozen=True)
class TimestepParams:
    """Safety factors for the three criteria."""

    courant: float = 0.3
    accel: float = 0.25
    energy: float = 0.3
    alpha_visc: float = 1.0
    beta_visc: float = 2.0
    #: Per-step growth limiter: dt may rise by at most this factor.
    max_growth: float = 1.25
    #: Disable for barotropic/weakly-compressible runs where u is not a
    #: dynamical variable (the criterion would track numerical noise).
    use_energy_criterion: bool = True

    def __post_init__(self) -> None:
        for name in ("courant", "accel", "energy", "max_growth"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} factor must be positive")


def courant_timestep(
    h: np.ndarray,
    cs: np.ndarray,
    max_mu: float = 0.0,
    params: TimestepParams = TimestepParams(),
) -> np.ndarray:
    """CFL criterion with Monaghan's viscous signal correction.

    Infinite where the signal speed vanishes (cold, static gas) — the
    combined criterion then falls back to acceleration/energy.
    """
    signal = cs + 1.2 * (params.alpha_visc * cs + params.beta_visc * abs(max_mu))
    with np.errstate(divide="ignore"):
        dt = params.courant * h / np.where(signal > 0.0, signal, 1.0)
    return np.where(signal > 0.0, dt, np.inf)


def acceleration_timestep(
    h: np.ndarray, a: np.ndarray, params: TimestepParams = TimestepParams()
) -> np.ndarray:
    """Acceleration criterion ``C sqrt(h/|a|)``; infinite where a == 0."""
    amag = np.sqrt(np.einsum("ij,ij->i", a, a))
    with np.errstate(divide="ignore"):
        dt = params.accel * np.sqrt(h / np.where(amag > 0.0, amag, 1.0))
    return np.where(amag > 0.0, dt, np.inf)


def energy_timestep(
    u: np.ndarray, du: np.ndarray, params: TimestepParams = TimestepParams()
) -> np.ndarray:
    """Internal-energy criterion ``C u/|du|``; infinite where du == 0."""
    du_abs = np.abs(du)
    with np.errstate(divide="ignore", invalid="ignore"):
        dt = params.energy * np.abs(u) / np.where(du_abs > 0.0, du_abs, 1.0)
    return np.where((np.abs(u) > 0.0) & (du_abs > 0.0), dt, np.inf)


def combined_timestep(
    particles,
    max_mu: float = 0.0,
    params: TimestepParams = TimestepParams(),
    include_energy: bool = True,
) -> np.ndarray:
    """Element-wise minimum of all active criteria per particle."""
    dt = courant_timestep(particles.h, particles.cs, max_mu, params)
    dt = np.minimum(dt, acceleration_timestep(particles.h, particles.a, params))
    if include_energy and params.use_energy_criterion:
        dt = np.minimum(dt, energy_timestep(particles.u, particles.du, params))
    return dt
