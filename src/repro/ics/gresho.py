"""Gresho–Chan vortex initial conditions (Gresho & Chan 1990), 2-D.

A triangular azimuthal velocity profile in exact centrifugal balance
with its pressure field: the configuration is a *steady state* of the
Euler equations, so the analytic solution at any time is the initial
condition itself.  The gate therefore measures how well the scheme
*preserves* the vortex — the classic probe of angular-momentum transport
by artificial viscosity (which is why the scenario default turns on the
Balsara shear limiter).

Profiles (``p0`` is the pressure at the origin, default 5):

    v_phi(r) = 5 r            (r < 0.2)
             = 2 - 5 r        (0.2 <= r < 0.4)
             = 0              (r >= 0.4)

    p(r) = p0 + 12.5 r^2                              (r < 0.2)
         = p0 + 12.5 r^2 + 4 - 20 r + 4 ln(5 r)       (0.2 <= r < 0.4)
         = p0 - 2 + 4 ln 2                            (r >= 0.4)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import IdealGasEOS
from ..tree.box import Box
from .lattice import cubic_lattice

__all__ = [
    "GreshoConfig",
    "gresho_velocity_profile",
    "gresho_pressure_profile",
    "make_gresho",
]


@dataclass(frozen=True)
class GreshoConfig:
    """Parameters of the Gresho vortex setup."""

    nx: int = 32  # lattice cells per axis
    length: float = 1.0  # periodic box edge, centered on the vortex
    rho0: float = 1.0
    p0: float = 5.0  # central pressure
    gamma: float = 5.0 / 3.0

    def __post_init__(self) -> None:
        if self.nx < 8:
            raise ValueError(f"nx must be >= 8, got {self.nx}")
        if min(self.length, self.rho0, self.p0) <= 0.0:
            raise ValueError("length, rho0 and p0 must be positive")
        if self.length < 0.9:
            raise ValueError("box edge must cover the r = 0.4 vortex rim")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")

    @property
    def n_particles(self) -> int:
        return self.nx**2


def gresho_velocity_profile(r: np.ndarray) -> np.ndarray:
    """Azimuthal velocity ``v_phi(r)`` of the vortex."""
    r = np.asarray(r, dtype=np.float64)
    return np.where(r < 0.2, 5.0 * r, np.where(r < 0.4, 2.0 - 5.0 * r, 0.0))


def gresho_pressure_profile(r: np.ndarray, p0: float = 5.0) -> np.ndarray:
    """Pressure ``p(r)`` in centrifugal balance with the velocity profile."""
    r = np.asarray(r, dtype=np.float64)
    inner = p0 + 12.5 * r**2
    r_safe = np.maximum(r, 1e-300)
    middle = p0 + 12.5 * r**2 + 4.0 - 20.0 * r + 4.0 * np.log(5.0 * r_safe)
    outer = np.full_like(r, p0 - 2.0 + 4.0 * np.log(2.0))
    return np.where(r < 0.2, inner, np.where(r < 0.4, middle, outer))


def make_gresho(
    config: GreshoConfig = GreshoConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the 2-D Gresho vortex on a periodic square."""
    half = 0.5 * config.length
    dx = config.length / config.nx
    x = cubic_lattice([config.nx] * 2, [-half] * 2, [half] * 2)
    n = x.shape[0]
    r = np.sqrt(np.einsum("ij,ij->i", x, x))
    v_phi = gresho_velocity_profile(r)
    with np.errstate(invalid="ignore", divide="ignore"):
        scale = np.where(r > 0.0, v_phi / np.maximum(r, 1e-300), 0.0)
    v = np.stack([-scale * x[:, 1], scale * x[:, 0]], axis=1)

    p = gresho_pressure_profile(r, config.p0)
    m = np.full(n, config.rho0 * dx**2)
    u = p / ((config.gamma - 1.0) * config.rho0)
    h = np.full(n, 1.5 * dx)
    particles = ParticleSystem(
        x=x, v=v, m=m, h=h, rho=np.full(n, config.rho0), u=u
    )
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)
    box = Box(
        lo=np.full(2, -half),
        hi=np.full(2, half),
        periodic=np.ones(2, dtype=bool),
    )
    return particles, box, eos
