"""Kelvin–Helmholtz instability initial conditions, 2-D.

A dense band moving right through a lighter medium moving left, in
pressure equilibrium, with a small sinusoidal transverse velocity
perturbation localized at the two interfaces (the McNally et al. 2012
style trigger).  No analytic solution exists once the billows roll up —
the scenario is gated by its conserved-quantity invariants and its
golden master.

Equal-mass discretization: the band's lattice pitch is ``1/sqrt(rho_in /
rho_out)`` times the ambient pitch, so ``m = rho * cell_area`` comes out
(nearly) identical across the density jump; residual rounding goes into
the per-strip particle mass, which the variable-mass support of
:class:`~repro.core.particles.ParticleSystem` carries exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import IdealGasEOS
from ..tree.box import Box
from .lattice import cubic_lattice

__all__ = ["KelvinHelmholtzConfig", "make_kelvin_helmholtz"]


@dataclass(frozen=True)
class KelvinHelmholtzConfig:
    """Parameters of the Kelvin–Helmholtz shear-layer setup."""

    nx: int = 32  # ambient lattice cells across the unit box
    length: float = 1.0
    rho_out: float = 1.0
    rho_in: float = 2.0
    v_shear: float = 0.5  # half the velocity jump
    p0: float = 2.5
    gamma: float = 5.0 / 3.0
    amplitude: float = 0.01  # transverse perturbation amplitude
    mode: int = 2  # wavelengths across the box
    sigma: float = 0.05  # Gaussian width of the interface trigger

    def __post_init__(self) -> None:
        if self.nx < 8:
            raise ValueError(f"nx must be >= 8, got {self.nx}")
        if min(self.length, self.rho_out, self.rho_in, self.p0) <= 0.0:
            raise ValueError("length, densities and p0 must be positive")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")
        if self.mode < 1:
            raise ValueError(f"mode must be >= 1, got {self.mode}")


def make_kelvin_helmholtz(
    config: KelvinHelmholtzConfig = KelvinHelmholtzConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the 2-D shear layer: three strips, pressure equilibrium."""
    big_l = config.length
    y_lo, y_hi = 0.25 * big_l, 0.75 * big_l
    dx = big_l / config.nx

    def strip(y0: float, y1: float, rho: float) -> tuple[np.ndarray, float]:
        pitch = dx / np.sqrt(rho / config.rho_out)
        cols = max(1, round(big_l / pitch))
        rows = max(1, round((y1 - y0) / pitch))
        pts = cubic_lattice([cols, rows], [0.0, y0], [big_l, y1])
        mass = rho * big_l * (y1 - y0) / pts.shape[0]
        return pts, mass

    bottom, m_bot = strip(0.0, y_lo, config.rho_out)
    band, m_band = strip(y_lo, y_hi, config.rho_in)
    top, m_top = strip(y_hi, big_l, config.rho_out)
    x = np.concatenate([bottom, band, top])
    counts = (bottom.shape[0], band.shape[0], top.shape[0])
    m = np.concatenate(
        [np.full(c, mm) for c, mm in zip(counts, (m_bot, m_band, m_top))]
    )
    rho = np.concatenate(
        [
            np.full(c, rr)
            for c, rr in zip(
                counts, (config.rho_out, config.rho_in, config.rho_out)
            )
        ]
    )

    in_band = (x[:, 1] >= y_lo) & (x[:, 1] < y_hi)
    v = np.zeros_like(x)
    v[:, 0] = np.where(in_band, config.v_shear, -config.v_shear)
    trigger = np.exp(-((x[:, 1] - y_lo) ** 2) / (2.0 * config.sigma**2)) + np.exp(
        -((x[:, 1] - y_hi) ** 2) / (2.0 * config.sigma**2)
    )
    v[:, 1] = (
        config.amplitude
        * np.sin(2.0 * np.pi * config.mode * x[:, 0] / big_l)
        * trigger
    )

    u = config.p0 / ((config.gamma - 1.0) * rho)
    h = 1.5 * dx / np.sqrt(rho / config.rho_out)
    particles = ParticleSystem(x=x, v=v, m=m, h=h, rho=rho, u=u)
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)
    box = Box(
        lo=np.zeros(2),
        hi=np.full(2, big_l),
        periodic=np.ones(2, dtype=bool),
    )
    return particles, box, eos
