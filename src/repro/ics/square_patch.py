"""Rotating square patch test (Colagrossi 2005; Section 5.1 of the paper).

A free-surface square of inviscid fluid in rigid rotation.  The velocity
field (Eq. 1 of the paper)

    v_x = omega y,   v_y = -omega x

is balanced at t=0 by the pressure field of the incompressible Poisson
problem, expressed as the rapidly-converging double sine series the paper
quotes.  Negative pressures near the corners excite the tensile
instability, which is why the test is a standard stress case for SPH.

Following Section 5.1, the 2-D ``side x side`` patch is extruded
``layers`` times along Z with periodic boundary conditions, so the 3-D
codes solve the original 2-D problem in their native formulation
(``side = layers = 100`` gives the paper's 10^6 particles).

The initial pressure is imprinted through a *variable particle mass*
perturbation consistent with the weakly-compressible EOS (exercising the
"Equal or Variable" mass feature of Table 1): ``m_i = rho(P_0(x_i)) V_cell``
so the SPH density summation reproduces the analytic field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import WeaklyCompressibleEOS
from ..tree.box import Box
from .lattice import cubic_lattice

__all__ = ["SquarePatchConfig", "patch_pressure_field", "make_square_patch"]


@dataclass(frozen=True)
class SquarePatchConfig:
    """Parameters of the rotating-square-patch setup."""

    side: int = 100  # particles per side of the 2-D patch
    layers: int = 100  # Z copies (periodic)
    length: float = 1.0  # physical side length L
    omega: float = 5.0  # rad/s (paper value)
    rho0: float = 1.0
    sound_speed_factor: float = 10.0  # c0 = factor * omega * L
    series_terms: int = 40  # odd-term cutoff of the pressure series
    pressure_init: str = "mass-perturbation"  # or "uniform"

    def __post_init__(self) -> None:
        if self.side < 2 or self.layers < 1:
            raise ValueError("side must be >= 2 and layers >= 1")
        if self.length <= 0.0 or self.rho0 <= 0.0:
            raise ValueError("length and rho0 must be positive")
        if self.pressure_init not in ("mass-perturbation", "uniform"):
            raise ValueError(
                f"pressure_init must be 'mass-perturbation' or 'uniform', "
                f"got {self.pressure_init!r}"
            )

    @property
    def n_particles(self) -> int:
        return self.side * self.side * self.layers


def patch_pressure_field(
    x: np.ndarray,
    y: np.ndarray,
    config: SquarePatchConfig = SquarePatchConfig(),
) -> np.ndarray:
    """Initial pressure of the rotating patch at coordinates (x, y).

    Coordinates are patch-centered (in ``[-L/2, L/2]``).  The series (see
    Section 5.1) runs over odd m, n only — even terms vanish for this
    source — and converges like 1/(m n (m^2+n^2)).
    """
    L = config.length
    omega = config.omega
    rho = config.rho0
    # Shift to [0, L] as in the reference solution.
    xs = np.asarray(x, dtype=np.float64) + 0.5 * L
    ys = np.asarray(y, dtype=np.float64) + 0.5 * L
    mmax = config.series_terms
    ms = np.arange(1, mmax + 1, 2, dtype=np.float64)
    p = np.zeros(np.broadcast(xs, ys).shape)
    sin_mx = np.sin(np.pi * np.multiply.outer(ms, xs) / L)  # (M, ...)
    sin_ny = np.sin(np.pi * np.multiply.outer(ms, ys) / L)
    for im, m in enumerate(ms):
        for jn, n in enumerate(ms):
            coef = (-32.0 * omega**2) / (m * n * np.pi**2)
            coef /= (m * np.pi / L) ** 2 + (n * np.pi / L) ** 2
            p += coef * sin_mx[im] * sin_ny[jn]
    return rho * p


def make_square_patch(
    config: SquarePatchConfig = SquarePatchConfig(),
) -> tuple[ParticleSystem, Box, WeaklyCompressibleEOS]:
    """Build the 3-D rotating square patch (Table 5, first row).

    Returns the particle system, its box (periodic along Z only) and the
    weakly-compressible EOS consistent with the imprinted pressure.
    """
    L = config.length
    dx = L / config.side
    lz = config.layers * dx
    x = cubic_lattice(
        [config.side, config.side, config.layers],
        [-0.5 * L, -0.5 * L, 0.0],
        [0.5 * L, 0.5 * L, lz],
    )
    n = x.shape[0]
    v = np.zeros_like(x)
    # Eq. (1): rigid rotation about the Z axis.
    v[:, 0] = config.omega * x[:, 1]
    v[:, 1] = -config.omega * x[:, 0]

    c0 = config.sound_speed_factor * config.omega * L
    # Floor the Tait tension at ~2x the deepest physical negative pressure
    # of the analytic field (|P0|_min ~ 0.2 rho omega^2 L^2) so the free
    # surface stays intact while the interior tensile region survives.
    floor = -0.4 * config.rho0 * (config.omega * L) ** 2
    eos = WeaklyCompressibleEOS(
        rho0=config.rho0, c0=c0, gamma=7.0, pressure_floor=floor
    )
    p0 = patch_pressure_field(x[:, 0], x[:, 1], config)

    cell_volume = dx**3
    if config.pressure_init == "mass-perturbation":
        b = eos.c0**2 * eos.rho0 / eos.gamma
        # Invert the Tait EOS: rho(P) = rho0 (1 + P/B)^(1/gamma); clamp the
        # argument away from zero for very deep (unphysical) negatives.
        rho_init = config.rho0 * np.maximum(1.0 + p0 / b, 0.5) ** (1.0 / eos.gamma)
        m = rho_init * cell_volume
    else:
        rho_init = np.full(n, config.rho0)
        m = np.full(n, config.rho0 * cell_volume)

    h = np.full(n, 1.3 * dx * (100.0 / 33.5) ** (1.0 / 3.0))
    particles = ParticleSystem(x=x, v=v, m=m, h=h, rho=rho_init, p=p0)
    particles.extra["p0"] = p0.copy()
    eos.apply(particles)

    # Open along X/Y (free surface), periodic along Z (paper setup).  The
    # X/Y bounds leave room for the corners to deform outward.
    box = Box(
        lo=np.array([-2.0 * L, -2.0 * L, 0.0]),
        hi=np.array([2.0 * L, 2.0 * L, lz]),
        periodic=np.array([False, False, True]),
    )
    return particles, box, eos
