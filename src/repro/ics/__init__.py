"""Initial conditions for the paper's two test simulations (Table 5).

The rotating square patch (Colagrossi 2005, extruded to 3-D with periodic
Z as in Section 5.1) and the Evrard collapse (Evrard 1988, Eq. 2), plus
the lattice helpers both share.
"""

from .evrard import EvrardConfig, evrard_density_profile, make_evrard
from .lattice import cubic_lattice, lattice_sphere, side_for_count
from .relax import GlassResult, density_noise, relax_to_glass
from .square_patch import (
    SquarePatchConfig,
    make_square_patch,
    patch_pressure_field,
)

__all__ = [
    "EvrardConfig",
    "evrard_density_profile",
    "make_evrard",
    "SquarePatchConfig",
    "make_square_patch",
    "patch_pressure_field",
    "cubic_lattice",
    "lattice_sphere",
    "side_for_count",
    "GlassResult",
    "density_noise",
    "relax_to_glass",
]
