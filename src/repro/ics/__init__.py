"""Initial conditions for the scenario library.

The paper's two test simulations (Table 5) — the rotating square patch
(Colagrossi 2005, extruded to 3-D with periodic Z as in Section 5.1) and
the Evrard collapse (Evrard 1988, Eq. 2) — plus the six validated
workloads of the scenario library (see :mod:`repro.scenarios`): the
Sedov–Taylor blast, the Sod shock tube, the planar Noh implosion, the
Kelvin–Helmholtz shear layer, the Gresho–Chan vortex and the wind–cloud
(blob) test, and the lattice helpers they all share.
"""

from .evrard import EvrardConfig, evrard_density_profile, make_evrard
from .gresho import (
    GreshoConfig,
    gresho_pressure_profile,
    gresho_velocity_profile,
    make_gresho,
)
from .kelvin_helmholtz import KelvinHelmholtzConfig, make_kelvin_helmholtz
from .lattice import cubic_lattice, lattice_sphere, side_for_count
from .noh import NohConfig, make_noh
from .relax import GlassResult, density_noise, relax_to_glass
from .sedov import SedovConfig, make_sedov
from .sod import SodConfig, make_sod
from .square_patch import (
    SquarePatchConfig,
    make_square_patch,
    patch_pressure_field,
)
from .wind_cloud import WindCloudConfig, make_wind_cloud

__all__ = [
    "EvrardConfig",
    "evrard_density_profile",
    "make_evrard",
    "SquarePatchConfig",
    "make_square_patch",
    "patch_pressure_field",
    "SedovConfig",
    "make_sedov",
    "SodConfig",
    "make_sod",
    "NohConfig",
    "make_noh",
    "GreshoConfig",
    "gresho_velocity_profile",
    "gresho_pressure_profile",
    "make_gresho",
    "KelvinHelmholtzConfig",
    "make_kelvin_helmholtz",
    "WindCloudConfig",
    "make_wind_cloud",
    "cubic_lattice",
    "lattice_sphere",
    "side_for_count",
    "GlassResult",
    "density_noise",
    "relax_to_glass",
]
