"""Wind–cloud interaction initial conditions, 3-D.

A dense spherical cloud at rest, embedded in pressure equilibrium inside
a uniform wind blowing along ``+x`` through a periodic box — the classic
"blob" mixing problem (Agertz et al. 2007).  There is no analytic
solution; the scenario is gated by its conserved-quantity invariants
(mass exactly, the *nonzero* wind momentum to roundoff) and its golden
master.

Equal-mass discretization: the cloud lattice pitch is ``contrast^(-1/3)``
times the ambient pitch, so ``m = rho * cell_volume`` matches across the
density jump up to strip rounding (carried exactly by the variable-mass
particle container).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import IdealGasEOS
from ..tree.box import Box
from .lattice import cubic_lattice

__all__ = ["WindCloudConfig", "make_wind_cloud"]


@dataclass(frozen=True)
class WindCloudConfig:
    """Parameters of the wind–cloud (blob) setup."""

    nx: int = 14  # ambient lattice cells per axis
    length: float = 1.0  # periodic box edge
    rho_ambient: float = 1.0
    density_contrast: float = 5.0  # rho_cloud / rho_ambient
    cloud_radius: float = 0.15
    cloud_center: tuple[float, float, float] = (0.35, 0.5, 0.5)
    p0: float = 0.6  # uniform pressure (equilibrium)
    mach: float = 1.5  # wind speed in ambient sound speeds
    gamma: float = 5.0 / 3.0

    def __post_init__(self) -> None:
        if self.nx < 6:
            raise ValueError(f"nx must be >= 6, got {self.nx}")
        if min(self.length, self.rho_ambient, self.p0, self.mach) <= 0.0:
            raise ValueError("length, rho_ambient, p0 and mach must be positive")
        if self.density_contrast <= 1.0:
            raise ValueError("density_contrast must exceed 1")
        if not 0.0 < self.cloud_radius < 0.5 * self.length:
            raise ValueError("cloud_radius must fit inside the box")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")

    @property
    def wind_speed(self) -> float:
        return self.mach * np.sqrt(self.gamma * self.p0 / self.rho_ambient)


def make_wind_cloud(
    config: WindCloudConfig = WindCloudConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the blob test: ambient wind lattice + dense cloud lattice."""
    big_l = config.length
    dx = big_l / config.nx
    center = np.asarray(config.cloud_center, dtype=np.float64) * big_l

    ambient = cubic_lattice([config.nx] * 3, [0.0] * 3, [big_l] * 3)
    r_amb = np.sqrt(((ambient - center) ** 2).sum(axis=1))
    ambient = ambient[r_amb > config.cloud_radius]

    rho_cl = config.density_contrast * config.rho_ambient
    pitch_cl = dx / config.density_contrast ** (1.0 / 3.0)
    # Extent = n_cl * pitch_cl exactly, so the realized cell volume (and
    # with it m = rho * cell_volume) matches the declared pitch.
    n_cl = max(2, int(np.ceil(2.0 * (config.cloud_radius + pitch_cl) / pitch_cl)))
    span = 0.5 * n_cl * pitch_cl
    cloud = cubic_lattice(
        [n_cl] * 3, (center - span).tolist(), (center + span).tolist()
    )
    r_cl = np.sqrt(((cloud - center) ** 2).sum(axis=1))
    cloud = cloud[r_cl <= config.cloud_radius]
    if cloud.shape[0] == 0:
        raise ValueError(
            "cloud under-resolved: no lattice point inside cloud_radius"
        )

    x = np.concatenate([ambient, cloud])
    n_amb = ambient.shape[0]
    m = np.concatenate(
        [
            np.full(n_amb, config.rho_ambient * dx**3),
            np.full(cloud.shape[0], rho_cl * pitch_cl**3),
        ]
    )
    rho = np.concatenate(
        [np.full(n_amb, config.rho_ambient), np.full(cloud.shape[0], rho_cl)]
    )
    v = np.zeros_like(x)
    v[:n_amb, 0] = config.wind_speed

    u = config.p0 / ((config.gamma - 1.0) * rho)
    h = np.concatenate(
        [np.full(n_amb, 1.2 * dx), np.full(cloud.shape[0], 1.2 * pitch_cl)]
    )
    particles = ParticleSystem(x=x, v=v, m=m, h=h, rho=rho, u=u)
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)
    box = Box(
        lo=np.zeros(3),
        hi=np.full(3, big_l),
        periodic=np.ones(3, dtype=bool),
    )
    return particles, box, eos
