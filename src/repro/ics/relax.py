"""Glass-like particle relaxation.

"Generating initial conditions for different numbers of particles is a
non-trivial process" (Section 5.2) — partly because lattice ICs carry
grid anisotropy that contaminates early dynamics (and, in this repo's
square-patch test, lets the stiff Tait EOS amplify per-lattice-direction
density bias).  Production SPH codes therefore relax their ICs into a
*glass*: run damped SPH on a uniform-pressure fluid until the particles
settle into an isotropic, low-noise configuration.

:func:`relax_to_glass` implements the standard recipe — pressure forces
from a uniform-u ideal gas, velocities zeroed (or strongly damped) every
step so the system descends toward the minimum-energy configuration —
and reports the density-noise history so callers can verify convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.particles import ParticleSystem
from ..kernels.base import Kernel
from ..kernels.registry import make_kernel
from ..sph.density import compute_density
from ..sph.eos import IdealGasEOS
from ..sph.forces import compute_forces
from ..sph.viscosity import ViscosityParams
from ..tree.box import Box
from ..tree.cellgrid import cell_grid_search

__all__ = ["GlassResult", "density_noise", "relax_to_glass"]


@dataclass(frozen=True)
class GlassResult:
    """Outcome of a relaxation run."""

    particles: ParticleSystem
    noise_history: List[float]
    n_steps: int

    @property
    def initial_noise(self) -> float:
        return self.noise_history[0]

    @property
    def final_noise(self) -> float:
        return self.noise_history[-1]


def density_noise(particles: ParticleSystem) -> float:
    """RMS relative density scatter — the glass quality metric."""
    rho = particles.rho
    mean = rho.mean()
    if mean <= 0.0:
        raise ValueError("densities must be computed before measuring noise")
    return float(np.sqrt(np.mean((rho / mean - 1.0) ** 2)))


def relax_to_glass(
    particles: ParticleSystem,
    box: Box,
    kernel: Kernel | None = None,
    *,
    n_steps: int = 60,
    damping: float = 0.3,
    dt_factor: float = 0.2,
    rng: np.random.Generator | None = None,
    jitter: float = 0.0,
) -> GlassResult:
    """Damped-dynamics relaxation toward a glass (in place).

    Parameters
    ----------
    particles:
        Configuration to relax; positions and h are updated in place.
        The box should be periodic (a glass needs no surface).
    damping:
        Fraction of velocity removed after each step.  1.0 is steepest
        descent (robust, slow); ~0.3 keeps enough momentum to converge an
        order of magnitude faster without oscillating.
    dt_factor:
        Step size as a fraction of ``h / c_s``.
    jitter:
        Optional initial random displacement (fraction of the mean
        spacing) to break lattice symmetry before relaxing — without it a
        perfect lattice is already an equilibrium (a saddle), and descent
        leaves it unchanged.
    """
    if not bool(np.all(box.periodic)):
        raise ValueError("glass relaxation requires a fully periodic box")
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must be in (0, 1], got {damping}")
    kernel = kernel or make_kernel("wendland-c2")
    eos = IdealGasEOS(gamma=5.0 / 3.0)
    particles.u[:] = 1.0  # uniform specific energy: pressure ~ rho
    particles.v[:] = 0.0

    spacing = (box.volume / particles.n) ** (1.0 / box.dim)
    if jitter > 0.0:
        rng = rng or np.random.default_rng(0)
        particles.x += jitter * spacing * rng.normal(size=particles.x.shape)
        particles.x[:] = box.wrap(particles.x)

    noise: List[float] = []
    visc = ViscosityParams(alpha=1.0, beta=2.0)
    for _ in range(n_steps):
        nl = cell_grid_search(particles.x, 2.0 * particles.h, box, mode="symmetric")
        compute_density(particles, nl, kernel, box)
        eos.apply(particles)
        noise.append(density_noise(particles))
        compute_forces(particles, nl, kernel, box, viscosity=visc)
        dt = dt_factor * float((particles.h / np.maximum(particles.cs, 1e-12)).min())
        particles.v += particles.a * dt
        particles.x += particles.v * dt
        particles.x[:] = box.wrap(particles.x)
        particles.v *= 1.0 - damping
        particles.du[:] = 0.0  # relaxation is not a thermodynamic process
        particles.u[:] = 1.0
    # Final density for the last noise sample.
    nl = cell_grid_search(particles.x, 2.0 * particles.h, box, mode="symmetric")
    compute_density(particles, nl, kernel, box)
    noise.append(density_noise(particles))
    return GlassResult(particles=particles, noise_history=noise, n_steps=n_steps)
