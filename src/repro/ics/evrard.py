"""Evrard collapse test (Evrard 1988; Section 5.1 of the paper).

An initially static, cold gas sphere with the density profile of Eq. (2),

    rho(r) = M / (2 pi R^2 r)     for r <= R,

total mass M = 1, radius R = 1, specific internal energy u0 = 0.05 and an
ideal-gas EOS with gamma = 5/3 (the configuration of Cabezón+ 2017 that
the paper follows).  Gravitational energy (~ -1 in G=M=R=1 units)
dominates the thermal energy (0.05), so the cloud collapses, bounces at
the center and launches an outward shock — exercising self-gravity and
shock capturing at once.

Particles are placed by radially stretching a uniform lattice sphere so
equal-mass particles sample the 1/r profile: a uniform-sphere point at
fractional radius s encloses mass fraction s^3; the target profile
encloses (r/R)^2, so r(s) = R s^{3/2}.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import IdealGasEOS
from ..tree.box import Box
from .lattice import lattice_sphere

__all__ = ["EvrardConfig", "evrard_density_profile", "make_evrard"]


@dataclass(frozen=True)
class EvrardConfig:
    """Parameters of the Evrard collapse setup."""

    n_target: int = 100_000
    total_mass: float = 1.0
    radius: float = 1.0
    u0: float = 0.05
    gamma: float = 5.0 / 3.0
    g_const: float = 1.0

    def __post_init__(self) -> None:
        if self.n_target < 10:
            raise ValueError(f"n_target must be >= 10, got {self.n_target}")
        if min(self.total_mass, self.radius, self.u0) <= 0.0:
            raise ValueError("total_mass, radius and u0 must be positive")


def evrard_density_profile(
    r: np.ndarray, config: EvrardConfig = EvrardConfig()
) -> np.ndarray:
    """Eq. (2): ``rho(r) = M/(2 pi R^2 r)`` inside R, zero outside."""
    r = np.asarray(r, dtype=np.float64)
    with np.errstate(divide="ignore"):
        inside = config.total_mass / (
            2.0 * np.pi * config.radius**2 * np.maximum(r, 1e-300)
        )
    return np.where((r <= config.radius) & (r > 0.0), inside, 0.0)


def make_evrard(
    config: EvrardConfig = EvrardConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the Evrard sphere (Table 5, second row).

    Returns the particle system, an open bounding box with expansion room
    for the post-bounce shock, and the gamma = 5/3 ideal-gas EOS.
    """
    base = lattice_sphere(config.n_target, radius=1.0)
    s = np.sqrt(np.einsum("ij,ij->i", base, base))
    # Drop the (possible) exact-center point: the stretch map is singular
    # there and a particle at r=0 contributes no volume anyway.
    keep = s > 0.0
    base = base[keep]
    s = s[keep]
    n = base.shape[0]
    # Uniform-sphere mass fraction s^3 == target fraction (r/R)^2.
    r_new = config.radius * s**1.5
    x = base * (r_new / s)[:, None]

    m = np.full(n, config.total_mass / n)
    rho = evrard_density_profile(r_new, config)
    # Local smoothing length from the profile: h ~ eta (m/rho)^(1/3).
    h = 1.9 * (m / np.maximum(rho, 1e-12)) ** (1.0 / 3.0)
    u = np.full(n, config.u0)

    particles = ParticleSystem(
        x=x, v=np.zeros_like(x), m=m, h=h, rho=rho, u=u
    )
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)

    pad = 2.0 * config.radius
    box = Box(
        lo=np.full(3, -config.radius - pad),
        hi=np.full(3, config.radius + pad),
        periodic=np.zeros(3, dtype=bool),
    )
    return particles, box, eos
