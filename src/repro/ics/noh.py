"""Noh implosion initial conditions (Noh 1987), planar one-dimensional.

Cold uniform gas streams toward the origin from both sides at unit
speed; an infinite-strength shock reflects and travels outward at
``(gamma - 1)/2``.  The exact solution (see
:mod:`repro.scenarios.analytic.noh`) makes this the sharpest shock gate
in the suite — the post-shock density is a single number, ``rho0 (gamma +
1)/(gamma - 1)``.

The domain is periodic: the gas at the wrap seam streams *apart*,
opening a (physical, for this test) vacuum gap whose edges free-stream
inward at the inflow speed.  The analytic gate therefore evaluates only
the central window ``|x| < gate_fraction * length`` at times before the
gap edges reach it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import IdealGasEOS
from ..tree.box import Box

__all__ = ["NohConfig", "make_noh"]


@dataclass(frozen=True)
class NohConfig:
    """Parameters of the planar Noh setup."""

    n_target: int = 400
    length: float = 1.0  # half-width: the tube spans [-length, length]
    rho0: float = 1.0
    v0: float = 1.0  # inflow speed
    u0: float = 1e-6  # (near-)cold start
    gamma: float = 5.0 / 3.0

    def __post_init__(self) -> None:
        if self.n_target < 20:
            raise ValueError(f"n_target must be >= 20, got {self.n_target}")
        if min(self.length, self.rho0, self.v0, self.u0) <= 0.0:
            raise ValueError("length, rho0, v0 and u0 must be positive")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")


def make_noh(
    config: NohConfig = NohConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the planar Noh tube: uniform lattice, ``v = -sign(x) v0``."""
    n = 2 * (config.n_target // 2)  # even count keeps x = 0 particle-free
    dx = 2.0 * config.length / n
    x = (-config.length + (np.arange(n) + 0.5) * dx)[:, None]
    v = -np.sign(x) * config.v0

    m = np.full(n, config.rho0 * dx)
    u = np.full(n, config.u0)
    h = np.full(n, 1.5 * dx)
    particles = ParticleSystem(
        x=x, v=v, m=m, h=h, rho=np.full(n, config.rho0), u=u
    )
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)
    box = Box(
        lo=np.array([-config.length]),
        hi=np.array([config.length]),
        periodic=np.array([True]),
    )
    return particles, box, eos
