"""Sedov–Taylor point-blast initial conditions.

A uniform-density periodic cube with the blast energy ``e0`` deposited
as internal energy in the particles nearest the center, weighted by a
smoothing kernel so the injection is resolution-consistent (the approach
of the SPH-EXA follow-up, arXiv:2005.02656, which adds Sedov–Taylor
precisely because the analytic solution provides a quantitative
correctness gate).

The injected energy sums to ``e0`` exactly: with kernel weights ``w_i``
the per-particle contribution is ``u_i = e0 w_i / sum_j m_j w_j``, so
``sum_i m_i u_i = e0`` independent of resolution and injection radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..kernels.registry import make_kernel
from ..sph.eos import IdealGasEOS
from ..tree.box import Box
from .lattice import cubic_lattice

__all__ = ["SedovConfig", "make_sedov"]


@dataclass(frozen=True)
class SedovConfig:
    """Parameters of the Sedov–Taylor blast setup."""

    nx: int = 16  # lattice cells per axis
    length: float = 1.0  # periodic box edge
    rho0: float = 1.0
    e0: float = 1.0
    u_background: float = 1e-6  # ambient specific internal energy
    gamma: float = 5.0 / 3.0
    #: Injection smoothing length in units of the lattice spacing; the
    #: blast energy is spread over the kernel support ``2 x`` this.
    injection_h: float = 2.0

    def __post_init__(self) -> None:
        if self.nx < 4:
            raise ValueError(f"nx must be >= 4, got {self.nx}")
        if min(self.length, self.rho0, self.e0) <= 0.0:
            raise ValueError("length, rho0 and e0 must be positive")
        if self.u_background <= 0.0:
            raise ValueError("u_background must be positive (cold start is singular)")
        if self.injection_h <= 0.0:
            raise ValueError("injection_h must be positive")

    @property
    def n_particles(self) -> int:
        return self.nx**3


def make_sedov(
    config: SedovConfig = SedovConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the Sedov blast: periodic cube, kernel-smoothed injection."""
    half = 0.5 * config.length
    dx = config.length / config.nx
    x = cubic_lattice([config.nx] * 3, [-half] * 3, [half] * 3)
    n = x.shape[0]
    m = np.full(n, config.rho0 * dx**3)

    r = np.sqrt(np.einsum("ij,ij->i", x, x))
    h_inj = config.injection_h * dx
    kernel = make_kernel("wendland-c2")
    w = kernel.value(r, np.full(n, h_inj), dim=3)
    total = float((m * w).sum())
    if total <= 0.0:  # pragma: no cover - defensive (nx >= 4 guards this)
        raise ValueError("no particle falls inside the injection kernel")
    u = config.u_background + config.e0 * w / total

    h = np.full(n, 1.2 * dx)
    particles = ParticleSystem(
        x=x, v=np.zeros_like(x), m=m, h=h, rho=np.full(n, config.rho0), u=u
    )
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)
    box = Box(
        lo=np.full(3, -half),
        hi=np.full(3, half),
        periodic=np.ones(3, dtype=bool),
    )
    return particles, box, eos
