"""Sod shock tube initial conditions (Sod 1978), one-dimensional.

The canonical Riemann problem: ``(rho, p) = (1, 1)`` on the left and
``(0.125, 0.1)`` on the right of the interface, ``gamma = 1.4``.  The
tube is periodic, so it actually carries *two* discontinuities — the Sod
interface at ``x_interface`` and its mirror at the wrap seam — and the
analytic-error gate is evaluated in the central window that neither the
seam waves nor the primary waves' periodic images reach by gate time.

Particles have (near-)equal masses: each side is an independent
cell-centered lattice whose pitch encodes its density, the standard SPH
discretization of a density jump.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.particles import ParticleSystem
from ..sph.eos import IdealGasEOS
from ..tree.box import Box

__all__ = ["SodConfig", "make_sod"]


@dataclass(frozen=True)
class SodConfig:
    """Parameters of the Sod shock-tube setup."""

    n_target: int = 450
    x_min: float = -0.5
    x_interface: float = 0.5
    x_max: float = 1.5
    rho_l: float = 1.0
    p_l: float = 1.0
    rho_r: float = 0.125
    p_r: float = 0.1
    gamma: float = 1.4

    def __post_init__(self) -> None:
        if self.n_target < 20:
            raise ValueError(f"n_target must be >= 20, got {self.n_target}")
        if not self.x_min < self.x_interface < self.x_max:
            raise ValueError("require x_min < x_interface < x_max")
        if min(self.rho_l, self.rho_r, self.p_l, self.p_r) <= 0.0:
            raise ValueError("densities and pressures must be positive")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")


def make_sod(
    config: SodConfig = SodConfig(),
) -> tuple[ParticleSystem, Box, IdealGasEOS]:
    """Build the 1-D Sod tube: two lattices, equal-mass particles."""
    len_l = config.x_interface - config.x_min
    len_r = config.x_max - config.x_interface
    mass_l = config.rho_l * len_l
    mass_r = config.rho_r * len_r
    n_l = max(10, round(config.n_target * mass_l / (mass_l + mass_r)))
    n_r = max(10, config.n_target - n_l)

    def lattice(lo: float, hi: float, count: int) -> np.ndarray:
        return lo + (np.arange(count) + 0.5) * (hi - lo) / count

    x_l = lattice(config.x_min, config.x_interface, n_l)
    x_r = lattice(config.x_interface, config.x_max, n_r)
    x = np.concatenate([x_l, x_r])[:, None]
    n = x.shape[0]

    m = np.concatenate([np.full(n_l, mass_l / n_l), np.full(n_r, mass_r / n_r)])
    rho = np.concatenate([np.full(n_l, config.rho_l), np.full(n_r, config.rho_r)])
    p = np.concatenate([np.full(n_l, config.p_l), np.full(n_r, config.p_r)])
    u = p / ((config.gamma - 1.0) * rho)
    # Per-side pitch sets the initial smoothing-length guess.
    h = 1.5 * np.concatenate(
        [np.full(n_l, len_l / n_l), np.full(n_r, len_r / n_r)]
    )

    particles = ParticleSystem(
        x=x, v=np.zeros_like(x), m=m, h=h, rho=rho, u=u
    )
    eos = IdealGasEOS(gamma=config.gamma)
    eos.apply(particles)
    box = Box(
        lo=np.array([config.x_min]),
        hi=np.array([config.x_max]),
        periodic=np.array([True]),
    )
    return particles, box, eos
