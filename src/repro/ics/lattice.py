"""Lattice helpers for initial-condition generators.

"Generating initial conditions for different numbers of particles is a
non-trivial process" (Section 5.2) — these helpers are the deterministic
building blocks both test cases share: regular cubic lattices (cell
centers) and lattice-sampled spheres.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["cubic_lattice", "lattice_sphere", "side_for_count"]


def cubic_lattice(
    counts: Sequence[int],
    lo: Sequence[float],
    hi: Sequence[float],
) -> np.ndarray:
    """Cell-center lattice with ``counts[d]`` cells per axis in [lo, hi).

    Cell centers (not corners) so periodic copies never coincide.
    """
    counts = [int(c) for c in counts]
    if any(c < 1 for c in counts):
        raise ValueError(f"all axis counts must be >= 1, got {counts}")
    axes = [
        lo[d] + (np.arange(counts[d]) + 0.5) * (hi[d] - lo[d]) / counts[d]
        for d in range(len(counts))
    ]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def side_for_count(n: int, filling: float = 1.0) -> int:
    """Lattice side so that ``side^3 * filling`` is at least ``n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    side = int(np.ceil((n / filling) ** (1.0 / 3.0)))
    while side**3 * filling < n:
        side += 1
    return side


def lattice_sphere(n_target: int, radius: float = 1.0) -> np.ndarray:
    """Points of a cubic lattice inside a sphere, ~``n_target`` of them.

    The lattice pitch is chosen so the sphere contains approximately
    ``n_target`` cell centers; the exact count varies by a few per mille
    (callers use the actual ``len``).
    """
    filling = np.pi / 6.0  # sphere volume fraction of its bounding cube
    side_hi = side_for_count(n_target, filling)

    def build(side: int) -> np.ndarray:
        pts = cubic_lattice([side] * 3, [-radius] * 3, [radius] * 3)
        r = np.sqrt(np.einsum("ij,ij->i", pts, pts))
        return pts[r <= radius]

    # ceil-based sizing can overshoot by ~10%; pick the closer of the two
    # candidate pitches by actually counting.
    best = build(side_hi)
    if side_hi > 1:
        alt = build(side_hi - 1)
        if abs(len(alt) - n_target) < abs(len(best) - n_target):
            best = alt
    return best
