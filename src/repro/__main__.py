"""Command-line interface: ``python -m repro <command>``.

Mini-apps live or die by how easy they are to drive — "the building
should be kept as simple as a Makefile and the preparation of the run to
a handful of command line arguments" (Section 2, quoting Messer et al.).
This CLI exposes the library's main entry points with exactly that
surface.

Commands::

    python -m repro run squarepatch --side 16 --layers 8 --steps 5
    python -m repro run evrard --n 3000 --steps 10 [--preset sphynx]
    python -m repro scaling --code sph-flow --test square --n 200000
    python -m repro tables
"""

from __future__ import annotations

import argparse
import sys


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.presets import get_preset
    from .core.simulation import Simulation
    from .timestepping.criteria import TimestepParams

    preset = get_preset(args.preset)
    if args.case == "squarepatch":
        from .ics.square_patch import SquarePatchConfig, make_square_patch

        particles, box, eos = make_square_patch(
            SquarePatchConfig(side=args.side, layers=args.layers)
        )
        config = preset.with_(
            n_neighbors=args.neighbors,
            timestep_params=TimestepParams(use_energy_criterion=False),
        )
    else:
        from .ics.evrard import EvrardConfig, make_evrard

        particles, box, eos = make_evrard(EvrardConfig(n_target=args.n))
        config = preset.with_(n_neighbors=args.neighbors)
    print(f"{args.case}: {particles.n} particles, preset {preset.label}")
    sim = Simulation(particles, box, eos, config=config)
    for _ in range(args.steps):
        s = sim.step()
        print(f"  step {s.index}: t={s.time:.4e} dt={s.dt:.2e} "
              f"{s.conservation.summary()}")
    drift = sim.conservation_drift()
    print(f"drift: mass={drift['mass']:.2e} momentum={drift['momentum']:.2e} "
          f"energy={drift['energy']:.2e}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .core.presets import get_preset
    from .runtime import (
        MACHINES,
        build_workload,
        format_scaling_table,
        strong_scaling,
    )

    preset = get_preset(args.code)
    workload = build_workload(args.test, args.n)
    machine = MACHINES[args.machine]
    cores = tuple(int(c) for c in args.cores.split(","))
    series = strong_scaling(preset, args.test, machine, cores,
                            workload=workload, n_steps=args.steps)
    print(format_scaling_table([series]))
    for p in series.points:
        print(f"  {p.pop.row()}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .core.feature_tables import (
        table1_physics_features,
        table2_miniapp_features,
        table3_cs_features,
        table4_miniapp_cs_features,
    )

    for table in (
        table1_physics_features(),
        table2_miniapp_features(),
        table3_cs_features(),
        table4_miniapp_cs_features(),
    ):
        print(table)
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SPH-EXA mini-app reproduction (CLUSTER 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a test-case simulation")
    run.add_argument("case", choices=("squarepatch", "evrard"))
    run.add_argument("--preset", default="sph-exa",
                     help="sphynx | changa | sph-flow | sph-exa")
    run.add_argument("--side", type=int, default=12)
    run.add_argument("--layers", type=int, default=6)
    run.add_argument("--n", type=int, default=2000)
    run.add_argument("--steps", type=int, default=5)
    run.add_argument("--neighbors", type=int, default=40)
    run.set_defaults(func=_cmd_run)

    scal = sub.add_parser("scaling", help="strong-scaling sweep (modeled)")
    scal.add_argument("--code", default="sph-flow")
    scal.add_argument("--test", default="square", choices=("square", "evrard"))
    scal.add_argument("--machine", default="piz-daint",
                      choices=("piz-daint", "marenostrum4"))
    scal.add_argument("--n", type=int, default=200_000)
    scal.add_argument("--steps", type=int, default=5)
    scal.add_argument("--cores", default="12,24,48,96,192,384")
    scal.set_defaults(func=_cmd_scaling)

    tables = sub.add_parser("tables", help="print the Table 1-4 matrices")
    tables.set_defaults(func=_cmd_tables)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
