"""``python -m repro`` — thin launcher for :mod:`repro.cli`.

The CLI implementation moved to :mod:`repro.cli` when the service
commands landed; this module keeps both ``python -m repro`` and the
historical ``from repro.__main__ import build_parser, main`` imports
working.
"""

from __future__ import annotations

import sys

from .cli import build_parser, main

__all__ = ["build_parser", "main"]

if __name__ == "__main__":
    sys.exit(main())
