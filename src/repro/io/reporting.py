"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the paper's tables and figure series as
fixed-width text ("the same rows/series the paper reports"); this keeps
the formatting in one place.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a separator rule under the header."""
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells += [[str(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in cells:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row}"
            )
    widths = [max(len(row[c]) for row in cells) for c in range(ncols)]
    def fmt(row: List[str]) -> str:
        return "  ".join(row[c].ljust(widths[c]) for c in range(ncols)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines += [fmt(row) for row in cells[1:]]
    return "\n".join(lines)
