"""Snapshot I/O and report formatting."""

from .reporting import format_table
from .snapshot import load_snapshot, save_snapshot

__all__ = ["save_snapshot", "load_snapshot", "format_table"]
