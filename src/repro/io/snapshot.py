"""Particle snapshots on disk (npz).

Lightweight output for examples and validation scripts — distinct from
checkpoints (:mod:`repro.resilience.checkpoint`), which add integrity
sums and driver state for restart.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.particles import ParticleSystem

__all__ = ["save_snapshot", "load_snapshot"]


def save_snapshot(
    path: str | Path, particles: ParticleSystem, time: float = 0.0
) -> None:
    """Write a compressed snapshot of the particle state."""
    data = {k.replace(":", "__"): v for k, v in particles.state_arrays()}
    np.savez_compressed(Path(path), __time=np.array(time), **data)


def load_snapshot(path: str | Path) -> tuple[ParticleSystem, float]:
    """Read a snapshot; returns ``(particles, time)``."""
    with np.load(Path(path)) as f:
        time = float(f["__time"])
        data = {
            k.replace("__", ":"): f[k] for k in f.files if k != "__time"
        }
    return ParticleSystem.from_dict(data), time
