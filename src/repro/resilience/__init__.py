"""Fault-tolerance substrate (Tables 3-4, Section 4).

Checkpoint/restart with integrity sums, optimal single- and two-level
checkpoint intervals (Young/Daly and the Di et al. style decomposition),
fail-stop and bit-flip failure injection, silent-data-corruption
detectors (checksum / range / ABFT conservation ledger) and selective
replication.

Driver integration: :class:`ResilienceConfig` + :class:`CheckpointManager`
write atomic rolling checkpoints from the real step loop (auto-K via
Young's formula), and :mod:`repro.resilience.chaos` injects deterministic
fail-stop / hang / SDC faults into the supervised worker pool.
"""

from .abft import (
    AbftError,
    AbftForceGuard,
    checksummed_reduce,
    pairwise_antisymmetry_check,
)
from .chaos import (
    ChaosEvent,
    ChaosPolicy,
    CheckpointIOChaos,
    NumericalChaosPolicy,
    NumericalFault,
    parse_numerical_faults,
    random_policy,
)
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointIOError,
    CheckpointManager,
    ResilienceConfig,
    find_latest_checkpoint,
    read_checkpoint,
    retry_io,
    write_checkpoint,
)
from .guard import (
    GuardConfig,
    GuardReport,
    PostMortem,
    StepGuard,
    UnrecoverableStepError,
)
from .failures import (
    FailStopInjector,
    SdcInjector,
    inject_bitflip,
    simulate_checkpointing,
)
from .interval import (
    TwoLevelConfig,
    daly_interval,
    expected_waste,
    two_level_intervals,
    young_interval,
)
from .replication import (
    ReplicaOutcome,
    run_replicated,
    selective_replication_overhead,
)
from .sdc import (
    ChecksumDetector,
    ConservationDetector,
    RangeDetector,
    SdcMonitor,
)

__all__ = [
    "AbftError",
    "AbftForceGuard",
    "checksummed_reduce",
    "pairwise_antisymmetry_check",
    "Checkpoint",
    "CheckpointError",
    "CheckpointIOError",
    "CheckpointManager",
    "ResilienceConfig",
    "write_checkpoint",
    "read_checkpoint",
    "retry_io",
    "find_latest_checkpoint",
    "ChaosEvent",
    "ChaosPolicy",
    "CheckpointIOChaos",
    "NumericalChaosPolicy",
    "NumericalFault",
    "parse_numerical_faults",
    "random_policy",
    "GuardConfig",
    "GuardReport",
    "PostMortem",
    "StepGuard",
    "UnrecoverableStepError",
    "young_interval",
    "daly_interval",
    "expected_waste",
    "TwoLevelConfig",
    "two_level_intervals",
    "FailStopInjector",
    "simulate_checkpointing",
    "inject_bitflip",
    "SdcInjector",
    "ChecksumDetector",
    "RangeDetector",
    "ConservationDetector",
    "SdcMonitor",
    "ReplicaOutcome",
    "run_replicated",
    "selective_replication_overhead",
]
