"""Selective replication (Section 5.2: "fault-tolerance is currently being
addressed via the combination of selective replication, ABFT techniques,
and optimal checkpointing").

Full duplication doubles the machine; *selective* replication duplicates
only the work whose silent corruption is hardest to detect otherwise, and
compares replicas to detect (2 replicas) or correct (3 replicas, voting)
divergence.  This module provides the replica executor and the cost/
coverage accounting the ablation bench reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, TypeVar

import numpy as np

__all__ = ["ReplicaOutcome", "run_replicated", "selective_replication_overhead"]

T = TypeVar("T")


@dataclass(frozen=True)
class ReplicaOutcome:
    """Result of a replicated computation."""

    value: np.ndarray
    agreed: bool
    corrected: bool
    max_divergence: float


def run_replicated(
    fn: Callable[[], np.ndarray],
    n_replicas: int = 2,
    *,
    rtol: float = 1e-12,
    atol: float = 1e-14,
    corrupt: Callable[[int, np.ndarray], np.ndarray] | None = None,
) -> ReplicaOutcome:
    """Execute ``fn`` ``n_replicas`` times and compare/vote.

    Parameters
    ----------
    corrupt:
        Test hook: maps (replica index, result) to the possibly-corrupted
        result, standing in for hardware faults.

    With two replicas, disagreement is *detected* (``agreed=False``); with
    three or more, the majority value wins and ``corrected=True`` marks a
    repaired divergence.  Replicas are compared element-wise within
    (rtol, atol) — replicated floating-point work is bitwise identical on
    real machines, but the tolerance keeps the harness honest about any
    intentional nondeterminism.
    """
    if n_replicas < 2:
        raise ValueError("replication needs at least 2 replicas")
    results: List[np.ndarray] = []
    for i in range(n_replicas):
        r = np.asarray(fn())
        if corrupt is not None:
            r = np.asarray(corrupt(i, r))
        results.append(r)
    ref = results[0]
    close = [
        np.allclose(r, ref, rtol=rtol, atol=atol, equal_nan=True) for r in results
    ]
    divergence = max(
        float(np.max(np.abs(r - ref))) if r.size else 0.0 for r in results
    )
    if all(close):
        return ReplicaOutcome(ref, agreed=True, corrected=False, max_divergence=divergence)
    if n_replicas == 2:
        return ReplicaOutcome(ref, agreed=False, corrected=False, max_divergence=divergence)
    # Majority vote: group replicas by pairwise agreement, pick the biggest.
    groups: List[List[int]] = []
    for i, r in enumerate(results):
        placed = False
        for g in groups:
            if np.allclose(r, results[g[0]], rtol=rtol, atol=atol, equal_nan=True):
                g.append(i)
                placed = True
                break
        if not placed:
            groups.append([i])
    groups.sort(key=len, reverse=True)
    winner = groups[0]
    if len(winner) <= n_replicas // 2:
        # No majority: detection without correction.
        return ReplicaOutcome(ref, agreed=False, corrected=False, max_divergence=divergence)
    return ReplicaOutcome(
        results[winner[0]], agreed=False, corrected=True, max_divergence=divergence
    )


def selective_replication_overhead(
    phase_costs: Sequence[float],
    replicated_phases: Sequence[int],
    n_replicas: int = 2,
) -> float:
    """Relative step-cost increase of replicating selected phases.

    ``phase_costs`` are per-phase times; replicating phase set S with r
    replicas costs ``(r - 1) * sum(S)`` extra.  Returns the multiplier on
    the original step time (1.0 = free, 2.0 = full duplication).
    """
    costs = np.asarray(phase_costs, dtype=np.float64)
    if np.any(costs < 0.0):
        raise ValueError("phase costs must be non-negative")
    total = costs.sum()
    if total <= 0.0:
        return 1.0
    selected = costs[list(replicated_phases)].sum()
    return float((total + (n_replicas - 1) * selected) / total)
