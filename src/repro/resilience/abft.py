"""Algorithm-based fault tolerance for SPH reductions.

Section 5.2: "fault-tolerance is currently being addressed via the
combination of selective replication, algorithm-based fault-tolerance
(ABFT) techniques, and optimal checkpointing."

ABFT protects a computation with *invariants the algorithm itself
provides*, checked at negligible cost:

* :func:`checksummed_reduce` — protects the CSR segmented reductions at
  the heart of every SPH kernel with the linear checksum identity
  ``sum_i out_i == sum_k values_k``: any corruption of the reduction's
  accumulation (not of the inputs) breaks the identity.
* :func:`pairwise_antisymmetry_check` — the momentum loop's defining
  structure: for every symmetric pair list, the summed pair forces must
  cancel; a per-pair corruption leaves a residual of exactly its size.
* :class:`AbftForceGuard` — wraps a force evaluation with both checks
  plus the Newton-III global test, returning findings like the SDC
  detectors do.

These complement the state detectors in :mod:`repro.resilience.sdc`:
SDC detectors watch *data at rest*, ABFT watches *computations in
flight*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..tree.neighborlist import NeighborList

__all__ = [
    "AbftError",
    "checksummed_reduce",
    "pairwise_antisymmetry_check",
    "AbftForceGuard",
]


class AbftError(RuntimeError):
    """A computation violated its algorithmic invariant."""


def checksummed_reduce(
    nlist: NeighborList,
    values: np.ndarray,
    rtol: float = 1e-9,
    raise_on_error: bool = True,
) -> np.ndarray:
    """Segmented reduction with a linear checksum over the result.

    The reduction distributes every pair value into exactly one output
    slot, so ``out.sum() == values.sum()`` holds as a telescoping
    identity (up to floating-point reassociation, hence ``rtol`` scaled
    by the absolute mass of the operands).  Detects faults in the
    accumulation itself — dropped segments, duplicated indices, corrupted
    partial sums — which per-element checks cannot see.
    """
    values = np.asarray(values, dtype=np.float64)
    out = nlist.reduce(values)
    lhs = float(out.sum())
    rhs = float(values.sum())
    scale = float(np.abs(values).sum()) + 1e-300
    if abs(lhs - rhs) > rtol * scale:
        if raise_on_error:
            raise AbftError(
                f"reduction checksum violated: |{lhs} - {rhs}| > {rtol} * {scale}"
            )
    return out


def pairwise_antisymmetry_check(
    nlist: NeighborList,
    pair_forces: np.ndarray,
    rtol: float = 1e-9,
) -> float:
    """Residual of the Newton-III identity over a symmetric pair list.

    For a symmetric list (every (i, j) has its (j, i)), antisymmetric
    pair forces sum to zero componentwise.  Returns the relative
    residual ``|sum F| / sum |F|`` — zero for a healthy loop, O(f/sum|F|)
    when one pair contribution f was corrupted.
    """
    pair_forces = np.asarray(pair_forces, dtype=np.float64)
    if pair_forces.shape[0] != nlist.n_pairs:
        raise ValueError(
            f"pair_forces rows {pair_forces.shape[0]} != pairs {nlist.n_pairs}"
        )
    total = pair_forces.sum(axis=0)
    scale = np.abs(pair_forces).sum() + 1e-300
    return float(np.linalg.norm(np.atleast_1d(total)) / scale)


@dataclass
class AbftForceGuard:
    """ABFT envelope around a force evaluation.

    Usage::

        guard = AbftForceGuard()
        result = compute_forces(...)
        findings = guard.verify(particles)

    The global Newton-III check costs one pass over the accelerations.
    """

    momentum_rtol: float = 1e-10
    checks_run: int = 0
    violations: int = 0

    def verify(self, particles) -> List[str]:
        findings: List[str] = []
        force = particles.m[:, None] * particles.a
        residual = np.linalg.norm(force.sum(axis=0))
        scale = float(np.abs(force).sum()) + 1e-300
        if residual / scale > self.momentum_rtol:
            findings.append(
                f"Newton-III violated: net force {residual:.3e} "
                f"(relative {residual / scale:.3e})"
            )
        if not np.all(np.isfinite(particles.a)):
            findings.append("non-finite accelerations out of the force loop")
        if not np.all(np.isfinite(particles.du)):
            findings.append("non-finite energy rates out of the force loop")
        self.checks_run += 1
        if findings:
            self.violations += 1
        return findings
