"""Failure injection: fail-stop crashes and silent data corruption.

"Faults, errors and failures have become the norm rather than the
exception in large-scale systems" (Section 4).  Two injector families:

* :class:`FailStopInjector` — exponential inter-arrival fail-stop events
  for the checkpoint-interval simulator.
* :func:`inject_bitflip` / :class:`SdcInjector` — IEEE-754 bit flips in
  particle arrays, the silent-data-corruption model the detectors of
  :mod:`repro.resilience.sdc` are evaluated against.
* :func:`simulate_checkpointing` — execute a fixed amount of work under
  periodic checkpointing and injected fail-stop failures; the tests
  validate Young/Daly against its measured waste.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "FailStopInjector",
    "simulate_checkpointing",
    "inject_bitflip",
    "SdcInjector",
]


class FailStopInjector:
    """Exponential fail-stop process with mean time between failures."""

    def __init__(self, mtbf: float, rng: np.random.Generator | None = None) -> None:
        if mtbf <= 0.0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        self.mtbf = float(mtbf)
        self.rng = rng or np.random.default_rng()

    def next_failure(self) -> float:
        """Time until the next failure."""
        return float(self.rng.exponential(self.mtbf))


@dataclass(frozen=True)
class CheckpointRunStats:
    """Outcome of a failure-injected checkpointed execution."""

    total_time: float
    useful_work: float
    n_failures: int
    n_checkpoints: int

    @property
    def waste_fraction(self) -> float:
        return 1.0 - self.useful_work / self.total_time if self.total_time else 0.0


def simulate_checkpointing(
    work: float,
    interval: float,
    checkpoint_cost: float,
    mtbf: float,
    restart_cost: float = 0.0,
    rng: np.random.Generator | None = None,
) -> CheckpointRunStats:
    """Run ``work`` units under periodic checkpointing with failures.

    Progress made since the last completed checkpoint is lost at every
    failure; the run always finishes (failures only cost time).
    """
    if work <= 0.0 or interval <= 0.0:
        raise ValueError("work and interval must be positive")
    injector = FailStopInjector(mtbf, rng)
    t = 0.0
    done = 0.0  # durable progress (covered by a checkpoint)
    since_ckpt = 0.0  # volatile progress
    next_fail = injector.next_failure()
    n_failures = 0
    n_checkpoints = 0
    while done < work:
        # Work until the next checkpoint boundary or completion.
        segment = min(interval - since_ckpt, work - done - since_ckpt)
        # Time to the event that ends this segment (work or checkpoint end).
        end_work = t + segment
        if next_fail <= end_work:
            # Crash mid-segment: lose volatile progress, restart.
            t = next_fail + restart_cost
            since_ckpt = 0.0
            n_failures += 1
            next_fail = t + injector.next_failure()
            continue
        t = end_work
        since_ckpt += segment
        if done + since_ckpt >= work:
            done += since_ckpt
            since_ckpt = 0.0
            break
        # Take a checkpoint; a crash during it loses the interval too.
        if next_fail <= t + checkpoint_cost:
            t = next_fail + restart_cost
            since_ckpt = 0.0
            n_failures += 1
            next_fail = t + injector.next_failure()
            continue
        t += checkpoint_cost
        done += since_ckpt
        since_ckpt = 0.0
        n_checkpoints += 1
    return CheckpointRunStats(
        total_time=t,
        useful_work=work,
        n_failures=n_failures,
        n_checkpoints=n_checkpoints,
    )


def inject_bitflip(
    array: np.ndarray,
    index: int | None = None,
    bit: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, int]:
    """Flip one bit of one float64 element in place.

    Returns ``(flat_index, bit)`` so tests can assert detection.  High
    exponent bits create large, easily-detected excursions; mantissa bits
    create the subtle corruptions that stress the detectors.
    """
    if array.dtype != np.float64:
        raise ValueError(f"bit flips target float64 arrays, got {array.dtype}")
    rng = rng or np.random.default_rng()
    flat = array.reshape(-1)
    if flat.size == 0:
        raise ValueError("cannot inject into an empty array")
    if index is None:
        index = int(rng.integers(flat.size))
    if bit is None:
        bit = int(rng.integers(64))
    as_int = flat[index : index + 1].view(np.uint64)
    as_int ^= np.uint64(1) << np.uint64(bit)
    return index, bit


@dataclass
class SdcInjector:
    """Randomized silent-data-corruption campaign over a particle set."""

    rate_per_step: float = 0.1  # expected flips per step
    rng: np.random.Generator | None = None
    fields: tuple = ("x", "v", "m", "h", "u")

    def __post_init__(self) -> None:
        if self.rate_per_step < 0.0:
            raise ValueError("rate_per_step must be non-negative")
        if self.rng is None:
            self.rng = np.random.default_rng()

    def maybe_inject(self, particles) -> List[tuple]:
        """Inject a Poisson number of flips; returns (field, index, bit)."""
        n_flips = int(self.rng.poisson(self.rate_per_step))
        events = []
        for _ in range(n_flips):
            field = str(self.rng.choice(self.fields))
            arr = getattr(particles, field)
            idx, bit = inject_bitflip(arr, rng=self.rng)
            events.append((field, idx, bit))
        return events
