"""Self-healing step guard: detect → roll back → retry → degrade → die loudly.

The SPH-EXA line names detection of *and recovery from* silent data
corruption as a first-class exascale concern.  The building blocks have
been in the tree for several PRs — :class:`~repro.resilience.sdc
.RangeDetector` and :func:`~repro.resilience.sdc.scan_phase_output` can
*see* a poisoned state, checkpoints can *restore* one — but nothing
closed the loop: a NaN from a bit flip either aborted the run with a
traceback or silently corrupted every later step.  :class:`StepGuard`
closes it at step granularity:

1. **Micro-snapshot ring.**  After every healthy step the guard captures
   an in-memory :class:`~repro.resilience.checkpoint.Checkpoint` (cheap
   array copies — no disk I/O; the same object the disk path serializes,
   so restore is the battle-tested bit-identical one).  The ring keeps
   ``snapshot_ring`` entries: the newest is the rollback target, older
   ones are the deeper fallback when no disk checkpoint exists.

2. **Composite health check** after each step: finiteness and physical
   -range scans (reusing ``RangeDetector`` + ``scan_phase_output``),
   conserved-quantity drift against the per-scenario bounds from the
   scenario registry (with a configurable headroom factor — the registry
   bounds are calibrated for short golden runs), a next-dt probe that
   catches both non-finite time steps and dt *collapse* (a corrupted
   sound speed or acceleration shrinking the CFL dt by orders of
   magnitude), and a mean-neighbour-count floor that flags a diverged
   h iteration.  A step that *raises* is treated as maximally unhealthy.

3. **Degradation ladder** on failure: roll back to the last healthy
   snapshot and retry through escalating rungs —

   ========================  ============================================
   rung                      action after rollback
   ========================  ============================================
   ``retry``                 re-run the step as-is (cures transient SDC;
                             bitwise-neutral)
   ``dt-backoff``            shrink the stepper's dt memory by
                             ``dt_backoff`` (CFL backoff; changes the
                             trajectory, cures marginal-stability blowups)
   ``degrade``               drop to the serial / pair-engine-off path
                             (bitwise-neutral; sheds the optimized
                             machinery in case *it* is the corruptor)
   ``checkpoint-restore``    restore the newest valid disk checkpoint
                             (or the oldest ring snapshot when no disk
                             checkpoint exists) and re-advance
   ========================  ============================================

   with ``attempts_per_rung`` tries per rung and optional exponential
   backoff sleeps between escalations.  When the ladder is exhausted the
   guard rolls back to the last healthy state, writes a last-resort disk
   checkpoint (when checkpointing is configured) so the run is resumable
   after the cause is fixed, and raises :class:`UnrecoverableStepError`
   carrying a structured :class:`PostMortem`.

**Determinism argument.**  Rollback restores bit-identical state (array
copies + stepper memory + Verlet-cache list), and the solver is
deterministic, so a retry recomputes exactly the step the fault-free run
would have taken; the ``retry`` and ``degrade`` rungs (and a disk
restore) are therefore *bitwise-neutral* — a run healed on those rungs
ends bit-identical to the never-faulted run.  Only ``dt-backoff``
intentionally alters the trajectory (that is its job).  Fire-once
injection (:class:`~repro.resilience.chaos.NumericalFault`) models real
transient SDC: the retry is clean by construction.

Guard activity is observable: rollback/retry work runs inside
``State.RECOVERY`` spans, counters land under ``guard.*`` in the
:class:`~repro.observability.registry.MetricsRegistry`, and
``Simulation.report()`` carries a :class:`GuardReport`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.conservation import relative_drift
from ..profiling.trace import State
from ..timestepping.criteria import combined_timestep
from .checkpoint import (
    Checkpoint,
    CheckpointError,
    find_latest_checkpoint,
    read_checkpoint,
    retry_io,
)
from .sdc import RangeDetector, scan_phase_output

__all__ = [
    "GuardConfig",
    "GuardReport",
    "PostMortem",
    "StepGuard",
    "UnrecoverableStepError",
    "RUNG_RETRY",
    "RUNG_DT_BACKOFF",
    "RUNG_DEGRADE",
    "RUNG_CHECKPOINT",
    "DEFAULT_LADDER",
]

RUNG_RETRY = "retry"
RUNG_DT_BACKOFF = "dt-backoff"
RUNG_DEGRADE = "degrade"
RUNG_CHECKPOINT = "checkpoint-restore"
DEFAULT_LADDER: Tuple[str, ...] = (
    RUNG_RETRY,
    RUNG_DT_BACKOFF,
    RUNG_DEGRADE,
    RUNG_CHECKPOINT,
)

#: Loose fallback drift ceilings used for keys the configured scenario
#: bounds do not cover (mass is an exact invariant; energy drifts for
#: physical reasons, so only order-of-magnitude excursions are faults).
_DEFAULT_DRIFT_TOL = {"mass": 1e-9, "momentum": 1e-4, "energy": 0.5}

#: Exceptions a failing step may raise that the ladder can try to heal.
#: Anything else (KeyboardInterrupt, MemoryError, bugs in the guard
#: itself) propagates untouched.
_STEP_EXCEPTIONS = (
    ArithmeticError,
    RuntimeError,
    ValueError,
)


@dataclass(frozen=True)
class GuardConfig:
    """Policy knobs of the self-healing step guard.

    Parameters
    ----------
    snapshot_ring:
        In-memory micro-snapshots kept (>= 1).  The newest is the
        rollback target; the oldest doubles as the last-resort restore
        when no disk checkpoint exists.
    ladder:
        Escalation sequence; a subset/reordering of the four rung names.
    attempts_per_rung:
        Retries spent on each rung before escalating.
    dt_backoff:
        Factor applied to the stepper's dt memory on the ``dt-backoff``
        rung (in (0, 1)).
    dt_collapse_ratio:
        A next-step dt below ``ratio * current_dt`` is flagged as a dt
        collapse.
    neighbor_floor:
        Minimum healthy mean neighbour count (a diverged h iteration
        empties the lists).
    drift_tolerances:
        Per-scenario conserved-quantity bounds (the scenario registry's
        ``invariants`` mapping); ``None`` falls back to loose defaults.
    drift_headroom:
        Multiplier applied to ``drift_tolerances`` — the registry bounds
        are calibrated for short golden runs, the guard watches runs of
        arbitrary length.
    backoff_base:
        Base seconds slept between ladder escalations (exponential,
        ``base * 2**attempt``); 0 disables sleeping (tests, benches).
    range_detector:
        The plausibility scanner used by the health check.
    """

    snapshot_ring: int = 2
    ladder: Tuple[str, ...] = DEFAULT_LADDER
    attempts_per_rung: int = 1
    dt_backoff: float = 0.25
    dt_collapse_ratio: float = 1e-4
    neighbor_floor: float = 1.0
    drift_tolerances: Optional[Mapping[str, float]] = None
    drift_headroom: float = 10.0
    backoff_base: float = 0.0
    range_detector: RangeDetector = field(default_factory=RangeDetector)

    def __post_init__(self) -> None:
        if self.snapshot_ring < 1:
            raise ValueError("snapshot_ring must be >= 1")
        known = (RUNG_RETRY, RUNG_DT_BACKOFF, RUNG_DEGRADE, RUNG_CHECKPOINT)
        for rung in self.ladder:
            if rung not in known:
                raise ValueError(f"unknown ladder rung {rung!r}; choose from {known}")
        if self.attempts_per_rung < 1:
            raise ValueError("attempts_per_rung must be >= 1")
        if not 0.0 < self.dt_backoff < 1.0:
            raise ValueError("dt_backoff must be in (0, 1)")
        if self.dt_collapse_ratio <= 0.0:
            raise ValueError("dt_collapse_ratio must be positive")
        if self.drift_headroom < 1.0:
            raise ValueError("drift_headroom must be >= 1")
        if self.backoff_base < 0.0:
            raise ValueError("backoff_base must be >= 0")

    def tolerance(self, key: str) -> float:
        """Resolved drift ceiling for one conserved quantity."""
        if self.drift_tolerances is not None and key in self.drift_tolerances:
            return float(self.drift_tolerances[key]) * self.drift_headroom
        return _DEFAULT_DRIFT_TOL.get(key, np.inf)


@dataclass
class _Snapshot:
    """One ring entry: the checkpoint plus driver state it cannot carry."""

    checkpoint: Checkpoint
    history_len: int
    rates_current: bool


@dataclass(frozen=True)
class PostMortem:
    """Structured account of an unrecoverable step, for humans and JSON."""

    step: int
    time: float
    attempts: int
    rungs_tried: Tuple[str, ...]
    findings: Tuple[str, ...]
    attempt_log: Tuple[Dict[str, object], ...]
    rolled_back_to_step: int
    last_resort_checkpoint: Optional[str] = None
    checkpoint_note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "step": self.step,
            "time": self.time,
            "attempts": self.attempts,
            "rungs_tried": list(self.rungs_tried),
            "findings": list(self.findings),
            "attempt_log": [dict(a) for a in self.attempt_log],
            "rolled_back_to_step": self.rolled_back_to_step,
            "last_resort_checkpoint": self.last_resort_checkpoint,
            "checkpoint_note": self.checkpoint_note,
        }

    def describe(self) -> str:
        """One-paragraph human post-mortem (the CLI failure message)."""
        rungs = ", ".join(self.rungs_tried) or "none"
        findings = "; ".join(self.findings) or "step raised before any check"
        ckpt = (
            f"a last-resort checkpoint of the healthy state was written to "
            f"{self.last_resort_checkpoint} (restart with autoresume to "
            f"continue once the cause is fixed)"
            if self.last_resort_checkpoint
            else (self.checkpoint_note or "no checkpointing was configured, "
                  "so no restart file could be written")
        )
        return (
            f"step {self.step} (t={self.time:.6g}) could not be completed "
            f"after {self.attempts} attempt(s) through the degradation "
            f"ladder (rungs tried: {rungs}). Last health findings: "
            f"{findings}. The run was rolled back to the last healthy "
            f"state at step {self.rolled_back_to_step}, and {ckpt}."
        )


class UnrecoverableStepError(RuntimeError):
    """The degradation ladder is exhausted; carries the post-mortem."""

    def __init__(self, post_mortem: PostMortem):
        self.post_mortem = post_mortem
        super().__init__(post_mortem.describe())


@dataclass(frozen=True)
class GuardReport:
    """Guard activity of one run, embedded in ``Simulation.report()``."""

    checks: int
    healthy_steps: int
    failures: int
    rollbacks: int
    snapshots: int
    checkpoint_restores: int
    degraded: bool
    terminal: bool
    rung_attempts: Dict[str, int]
    rung_heals: Dict[str, int]
    incidents: List[Dict[str, object]]

    def counters(self) -> Dict[str, float]:
        """Flat numeric counters for the metrics registry (``guard.*``)."""
        out: Dict[str, float] = {
            "checks": self.checks,
            "healthy_steps": self.healthy_steps,
            "failures": self.failures,
            "rollbacks": self.rollbacks,
            "snapshots": self.snapshots,
            "checkpoint_restores": self.checkpoint_restores,
            "degraded": int(self.degraded),
            "terminal": int(self.terminal),
        }
        for rung, n in self.rung_attempts.items():
            out[f"attempts_{rung}"] = n
        for rung, n in self.rung_heals.items():
            out[f"heals_{rung}"] = n
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "checks": self.checks,
            "healthy_steps": self.healthy_steps,
            "failures": self.failures,
            "rollbacks": self.rollbacks,
            "snapshots": self.snapshots,
            "checkpoint_restores": self.checkpoint_restores,
            "degraded": self.degraded,
            "terminal": self.terminal,
            "rung_attempts": dict(self.rung_attempts),
            "rung_heals": dict(self.rung_heals),
            "incidents": [dict(i) for i in self.incidents],
        }

    def summary(self) -> str:
        heals = ", ".join(f"{r}={n}" for r, n in self.rung_heals.items() if n)
        return (
            f"guard: checks={self.checks} failures={self.failures} "
            f"rollbacks={self.rollbacks} "
            f"ckpt-restores={self.checkpoint_restores} "
            f"healed[{heals or '-'}] degraded={self.degraded} "
            f"terminal={self.terminal}"
        )


class StepGuard:
    """Wraps ``Simulation.step()`` in snapshot / check / recover logic.

    One guard instance belongs to one driver (it is created by
    ``Simulation._apply_run_config`` from ``RunConfig.guard``); the
    driver's ``run()`` loop calls :meth:`guarded_step` instead of
    ``step()``.
    """

    def __init__(self, config: Optional[GuardConfig] = None) -> None:
        self.config = config if config is not None else GuardConfig()
        self._ring: List[_Snapshot] = []
        self.checks = 0
        self.healthy_steps = 0
        self.failures = 0
        self.rollbacks = 0
        self.snapshots = 0
        self.checkpoint_restores = 0
        self.degraded = False
        self.terminal: Optional[PostMortem] = None
        self.rung_attempts: Dict[str, int] = {r: 0 for r in self.config.ladder}
        self.rung_heals: Dict[str, int] = {r: 0 for r in self.config.ladder}
        #: Recent incident records (per failed attempt), capped.
        self.incidents: List[Dict[str, object]] = []
        self._max_incidents = 64

    # ------------------------------------------------------------------
    # Health check
    # ------------------------------------------------------------------
    def check_health(self, sim, stats=None) -> List[str]:
        """All findings of the composite post-step health check.

        Empty list = healthy.  ``stats`` is the just-completed step's
        :class:`~repro.core.simulation.StepStats` when available.
        """
        cfg = self.config
        p = sim.particles
        findings = [f"range: {f}" for f in cfg.range_detector.check(p)]
        # The rate/EOS outputs RangeDetector does not cover: a poisoned
        # du only reaches u at the *next* half-kick, so scan it now.
        for name in ("p", "cs", "du"):
            findings += [
                f"range: {f}" for f in scan_phase_output(name, getattr(p, name))
            ]
        # Conserved-quantity ledger vs the scenario's promised bounds.
        if sim.initial_conservation is not None and sim.history:
            drift = relative_drift(
                sim.initial_conservation, sim.history[-1].conservation
            )
            for key, value in drift.items():
                tol = cfg.tolerance(key)
                if not np.isfinite(value):
                    findings.append(f"drift: {key} drift is non-finite")
                elif value > tol:
                    findings.append(
                        f"drift: {key} drift {value:.3e} exceeds bound {tol:.3e}"
                    )
        # Next-dt probe: catches non-finite time steps and dt collapse
        # (corrupted cs / a / h shrink the CFL criterion by orders of
        # magnitude) *before* the next step commits to them.
        params = getattr(sim.stepper, "params", None)
        if params is not None and not findings:
            with np.errstate(all="ignore"):
                dt_next = float(
                    np.min(combined_timestep(p, sim._max_mu, params))
                )
            if not np.isfinite(dt_next) or dt_next <= 0.0:
                findings.append(f"dt: next time step is unusable ({dt_next})")
            elif (
                stats is not None
                and stats.dt > 0.0
                and np.isfinite(stats.dt)
                and dt_next < cfg.dt_collapse_ratio * stats.dt
            ):
                findings.append(
                    f"dt: collapse — next dt {dt_next:.3e} is below "
                    f"{cfg.dt_collapse_ratio:g} x current {stats.dt:.3e}"
                )
        # h-iteration divergence empties (or explodes) the neighbour
        # lists; the mean count is already measured per step.
        if (
            stats is not None
            and p.n > 1
            and stats.mean_neighbors < cfg.neighbor_floor
        ):
            findings.append(
                f"neighbors: mean neighbour count "
                f"{stats.mean_neighbors:.2f} below floor "
                f"{cfg.neighbor_floor:g} (h iteration diverged?)"
            )
        return findings

    # ------------------------------------------------------------------
    # Snapshot ring
    # ------------------------------------------------------------------
    def _snapshot(self, sim) -> None:
        self._ring.append(
            _Snapshot(
                checkpoint=Checkpoint.of_simulation(sim),
                history_len=len(sim.history),
                rates_current=sim._rates_current,
            )
        )
        if len(self._ring) > self.config.snapshot_ring:
            del self._ring[0]
        self.snapshots += 1

    def _restore(self, sim, snap: _Snapshot) -> None:
        snap.checkpoint.restore_into(sim)
        sim._rates_current = snap.rates_current
        del sim.history[snap.history_len:]

    def _rollback(self, sim, *, oldest: bool = False) -> int:
        """Restore a ring snapshot; returns the restored step index."""
        snap = self._ring[0] if oldest else self._ring[-1]
        self._restore(sim, snap)
        self.rollbacks += 1
        return sim.step_index

    # ------------------------------------------------------------------
    # Ladder rungs
    # ------------------------------------------------------------------
    def _recover(self, sim, rung: str) -> None:
        """Roll back and apply one rung's degradation, inside a RECOVERY span."""
        with sim.tracer.phase("guard-recovery", State.RECOVERY, sim.rank):
            self.rung_attempts[rung] = self.rung_attempts.get(rung, 0) + 1
            if rung == RUNG_CHECKPOINT:
                if self._restore_from_disk(sim):
                    return
                # No (valid) disk checkpoint: fall back to the deepest
                # in-memory snapshot the ring still holds.
                self._rollback(sim, oldest=True)
                return
            self._rollback(sim)
            if rung == RUNG_DT_BACKOFF:
                dt_prev = getattr(sim.stepper, "_dt_prev", None)
                if dt_prev:
                    sim.stepper._dt_prev = dt_prev * self.config.dt_backoff
            elif rung == RUNG_DEGRADE:
                sim.degrade_to_serial()
                self.degraded = True

    def _restore_from_disk(self, sim) -> bool:
        res = sim.resilience
        if res is None:
            return False
        path = find_latest_checkpoint(res.checkpoint_dir)
        if path is None:
            return False
        try:
            cp = retry_io(
                lambda: read_checkpoint(path),
                attempts=res.io_retries,
                backoff=res.io_backoff,
                what=f"checkpoint restore from {path}",
            )
        except CheckpointError:
            return False
        cp.restore_into(sim)
        sim._rates_current = True  # disk checkpoints are post-step captures
        # Drop history beyond the restored step and rebase the ring on
        # the restored state: everything newer described a rolled-back
        # timeline.
        while sim.history and sim.history[-1].index > sim.step_index:
            sim.history.pop()
        self._ring.clear()
        self._snapshot(sim)
        self.checkpoint_restores += 1
        self.rollbacks += 1
        return True

    # ------------------------------------------------------------------
    # The guarded step
    # ------------------------------------------------------------------
    def guarded_step(self, sim):
        """Advance the driver one *net* step, healing as needed.

        Normally one ``sim.step()``; after a disk restore it transparently
        re-advances the rolled-back steps too.  Returns the
        :class:`~repro.core.simulation.StepStats` of the target step.
        Raises :class:`UnrecoverableStepError` when the ladder fails.
        """
        if not self._ring:
            self._snapshot(sim)  # pre-first-step baseline
        target = sim.step_index + 1
        stats = None
        while sim.step_index < target:
            stats = self._advance_one(sim)
        return stats

    def _advance_one(self, sim):
        cfg = self.config
        plan: List[Optional[str]] = [None]  # first try is not a rung
        for rung in cfg.ladder:
            plan.extend([rung] * cfg.attempts_per_rung)
        step = sim.step_index
        records: List[Dict[str, object]] = []
        for attempt, rung in enumerate(plan):
            if rung is not None:
                if cfg.backoff_base > 0.0:
                    _time.sleep(cfg.backoff_base * (2 ** (attempt - 1)))
                self._recover(sim, rung)
            try:
                stats = sim.step()
            except _STEP_EXCEPTIONS as exc:
                stats = None
                findings = [f"step raised {type(exc).__name__}: {exc}"]
            else:
                findings = self.check_health(sim, stats)
            self.checks += 1
            if not findings:
                if rung is not None:
                    self.rung_heals[rung] = self.rung_heals.get(rung, 0) + 1
                self.healthy_steps += 1
                self._snapshot(sim)
                if sim.checkpoint_manager is not None:
                    sim.checkpoint_manager.after_step(sim)
                return stats
            self.failures += 1
            record: Dict[str, object] = {
                "step": step,
                "attempt": attempt,
                "rung": rung or "first-try",
                "findings": list(findings),
            }
            records.append(record)
            self.incidents.append(record)
            del self.incidents[: -self._max_incidents]
        self._terminal(sim, step, records)

    def _terminal(self, sim, step: int, records: List[Dict[str, object]]):
        """Exhausted ladder: restore health, write a restart file, raise."""
        with sim.tracer.phase("guard-terminal", State.RECOVERY, sim.rank):
            self._rollback(sim)
            ckpt_path: Optional[str] = None
            note = ""
            if sim.checkpoint_manager is not None:
                try:
                    ckpt_path = str(sim.checkpoint_manager.checkpoint(sim))
                except CheckpointError as exc:
                    note = f"last-resort checkpoint write failed: {exc}"
            pm = PostMortem(
                step=step,
                time=float(sim.time),
                attempts=len(records),
                rungs_tried=tuple(
                    dict.fromkeys(str(r["rung"]) for r in records)
                ),
                findings=tuple(records[-1]["findings"]) if records else (),
                attempt_log=tuple(records),
                rolled_back_to_step=sim.step_index,
                last_resort_checkpoint=ckpt_path,
                checkpoint_note=note,
            )
        self.terminal = pm
        raise UnrecoverableStepError(pm)

    # ------------------------------------------------------------------
    def report(self) -> GuardReport:
        """Immutable snapshot of the guard's activity counters."""
        return GuardReport(
            checks=self.checks,
            healthy_steps=self.healthy_steps,
            failures=self.failures,
            rollbacks=self.rollbacks,
            snapshots=self.snapshots,
            checkpoint_restores=self.checkpoint_restores,
            degraded=self.degraded,
            terminal=self.terminal is not None,
            rung_attempts=dict(self.rung_attempts),
            rung_heals=dict(self.rung_heals),
            incidents=[dict(i) for i in self.incidents[-16:]],
        )
