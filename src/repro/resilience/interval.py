"""Optimal checkpoint intervals (Table 4 "Optimal interval / Multilevel").

Single-level formulas — Young (1974) and Daly (2006) — plus the two-level
optimum in the spirit of Di, Robert, Vivien & Cappello (ref [20] of the
paper): fast (e.g. burst-buffer) checkpoints against frequent failures
combined with slow (parallel-file-system) checkpoints against failures
the fast level cannot cover.

All functions express time in arbitrary consistent units.  The companion
failure-injection simulator (:mod:`repro.resilience.failures`) is what
the tests validate these closed forms against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "young_interval",
    "daly_interval",
    "expected_waste",
    "TwoLevelConfig",
    "two_level_intervals",
]


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimum ``W = sqrt(2 C M)``."""
    if checkpoint_cost <= 0.0 or mtbf <= 0.0:
        raise ValueError("checkpoint_cost and mtbf must be positive")
    return float(np.sqrt(2.0 * checkpoint_cost * mtbf))


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order refinement of Young's formula.

    ``W = sqrt(2 C M) [1 + (1/3)sqrt(C/2M) + C/9M] - C`` for ``C < 2M``,
    falling back to ``W = M`` when checkpoints are overwhelmingly costly.
    """
    if checkpoint_cost <= 0.0 or mtbf <= 0.0:
        raise ValueError("checkpoint_cost and mtbf must be positive")
    c, m = checkpoint_cost, mtbf
    if c >= 2.0 * m:
        return float(m)
    root = np.sqrt(2.0 * c * m)
    w = root * (1.0 + np.sqrt(c / (2.0 * m)) / 3.0 + c / (9.0 * 2.0 * m)) - c
    return float(max(w, c))


def expected_waste(
    interval: float, checkpoint_cost: float, mtbf: float, restart_cost: float = 0.0
) -> float:
    """Expected overhead fraction of a periodic checkpointing scheme.

    First-order model: per period ``W + C`` the overhead is the checkpoint
    ``C`` plus, with probability ``(W + C)/M``, a restart plus half a
    period of recomputation.  Valid for ``W + C << M``.
    """
    if interval <= 0.0:
        raise ValueError("interval must be positive")
    period = interval + checkpoint_cost
    p_fail = period / mtbf
    waste = checkpoint_cost + p_fail * (restart_cost + 0.5 * period)
    return float(waste / period)


@dataclass(frozen=True)
class TwoLevelConfig:
    """Two-level checkpoint system parameters.

    Level 1 (fast, local/burst buffer) covers a fraction of failures
    (e.g. node crashes recoverable from a buddy copy); level 2 (slow,
    PFS) covers the rest (e.g. multi-node or storage failures).
    """

    cost_fast: float
    cost_slow: float
    mtbf: float
    #: Fraction of failures recoverable from the fast level.
    fast_coverage: float = 0.8

    def __post_init__(self) -> None:
        if min(self.cost_fast, self.cost_slow, self.mtbf) <= 0.0:
            raise ValueError("costs and mtbf must be positive")
        if not 0.0 <= self.fast_coverage <= 1.0:
            raise ValueError("fast_coverage must be within [0, 1]")


def two_level_intervals(config: TwoLevelConfig) -> tuple[float, float]:
    """Optimal (fast, slow) checkpoint intervals for a two-level scheme.

    Each level sees an effective failure rate: the fast level recovers
    ``fast_coverage`` of failures (MTBF / coverage apart), the slow level
    the remainder.  Applying Young's formula per level with its effective
    MTBF is the standard first-order decomposition of the multilevel
    optimum; the slow interval is floored at the fast one (a slower level
    cannot usefully checkpoint more often than a faster one).
    """
    cov = config.fast_coverage
    eps = 1e-12
    mtbf_fast = config.mtbf / max(cov, eps)
    mtbf_slow = config.mtbf / max(1.0 - cov, eps)
    w_fast = young_interval(config.cost_fast, mtbf_fast) if cov > 0 else np.inf
    w_slow = (
        young_interval(config.cost_slow, mtbf_slow) if cov < 1.0 else np.inf
    )
    if np.isfinite(w_fast) and np.isfinite(w_slow):
        w_slow = max(w_slow, w_fast)
    return float(w_fast), float(w_slow)
