"""Deterministic, seeded fault injection for the supervised pool.

The paper's resilience pillar (Section 4, Tables 3–4) demands that the
mini-app *demonstrate* fault tolerance, not merely implement it.  This
module is the demonstration harness: a :class:`ChaosPolicy` is a list of
:class:`ChaosEvent` triggers — kill worker ``n`` at phase ``p`` of step
``s``, delay a reply past its deadline, flip a bit in an arena output
slice — matched at task-submission time by
:class:`~repro.parallel.supervisor.SupervisedPool` and shipped to the
worker inside the task dict (see ``_worker_main`` in
:mod:`repro.parallel.pool`).

Every event fires **once**: a kill directive consumed by worker 2 does
not re-fire when the lost chunk is re-issued to worker 0, so an injected
fail-stop is recoverable by construction and a test that injects ``k``
faults observes exactly ``k``.  Policies are plain data + a fired bitmap;
:func:`random_policy` derives a reproducible event list from a seed.

The injections map onto the standard fault taxonomy:

========  ====================  =========================================
action    models                detected by
========  ====================  =========================================
kill      fail-stop crash       ``Process.sentinel`` (supervisor)
delay     hang / slow node      EWMA deadline (supervisor)
flip      silent data           per-phase CRC + range scan
          corruption (SDC)      (``verify_outputs=True``)
========  ====================  =========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["ChaosEvent", "ChaosPolicy", "random_policy"]


@dataclass(frozen=True)
class ChaosEvent:
    """One fault trigger.

    Parameters
    ----------
    step:
        Driver step index at which to fire (matched exactly).
    phase:
        Algorithm-1 phase letter (``"D"``, ``"E"``, ``"G"``, ``"I"``) or
        ``"*"`` for any phase.
    action:
        ``"kill"`` (fail-stop before any work), ``"delay"`` (sleep
        ``delay`` seconds before sending the reply) or ``"flip"`` (XOR
        bit ``bit`` of flattened element ``index`` in the chunk's slice
        of output ``field``, *after* the worker checksummed it).
    worker:
        Pool slot to target, or ``None`` for any worker.
    chunk:
        Chunk index within the fan-out, or ``None`` for any chunk.
    """

    step: int
    phase: str
    action: str
    worker: Optional[int] = None
    chunk: Optional[int] = None
    delay: float = 0.0
    field: str = ""
    index: int = 0
    bit: int = 62

    def __post_init__(self) -> None:
        if self.action not in ("kill", "delay", "flip"):
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.action == "delay" and self.delay <= 0.0:
            raise ValueError("delay events need delay > 0")
        if self.action == "flip" and not self.field:
            raise ValueError("flip events need a target field")

    def matches(self, step: int, phase: str, worker: int, chunk: int) -> bool:
        return (
            self.step == step
            and self.phase in ("*", phase)
            and (self.worker is None or self.worker == worker)
            and (self.chunk is None or self.chunk == chunk)
        )


class ChaosPolicy:
    """Fire-once event list consulted by the supervisor at submit time."""

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self.events: List[ChaosEvent] = list(events)
        self._fired = [False] * len(self.events)

    # ------------------------------------------------------------------
    @property
    def fired(self) -> int:
        """How many events have been consumed so far."""
        return sum(self._fired)

    @property
    def exhausted(self) -> bool:
        return all(self._fired)

    def reset(self) -> None:
        """Re-arm every event (fresh run with the same script)."""
        self._fired = [False] * len(self.events)

    # ------------------------------------------------------------------
    def directives(
        self, *, step: int, phase: str, worker: int, chunk: int
    ) -> Optional[Dict]:
        """Directives for one task submission, or ``None``.

        Each matching event is marked fired immediately, so a directive
        lost with a killed worker is *not* re-injected on re-issue.
        """
        out: Dict = {}
        for i, ev in enumerate(self.events):
            if self._fired[i] or not ev.matches(step, phase, worker, chunk):
                continue
            self._fired[i] = True
            if ev.action == "kill":
                out["kill"] = True
            elif ev.action == "delay":
                out["delay"] = max(float(out.get("delay", 0.0)), ev.delay)
            elif ev.action == "flip":
                out.setdefault("flip", []).append((ev.field, ev.index, ev.bit))
        return out or None


_FLIP_FIELDS = {
    "D": "out_c",
    "E": "out_rho",
    "G": "out_a",
}


def random_policy(
    seed: int,
    *,
    n_steps: int,
    n_workers: int,
    n_events: int = 3,
    phases: Sequence[str] = ("D", "E", "G"),
    actions: Sequence[str] = ("kill", "delay", "flip"),
    delay: float = 5.0,
) -> ChaosPolicy:
    """Reproducible random fault script (same seed → same events)."""
    rng = np.random.default_rng(seed)
    events: List[ChaosEvent] = []
    for _ in range(n_events):
        phase = str(rng.choice(list(phases)))
        action = str(rng.choice(list(actions)))
        events.append(
            ChaosEvent(
                step=int(rng.integers(n_steps)),
                phase=phase,
                action=action,
                worker=int(rng.integers(n_workers)),
                delay=delay if action == "delay" else 0.0,
                field=_FLIP_FIELDS.get(phase, "out_rho") if action == "flip" else "",
                index=int(rng.integers(1 << 16)),
                bit=int(rng.integers(64)),
            )
        )
    return ChaosPolicy(events)
