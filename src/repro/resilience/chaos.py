"""Deterministic, seeded fault injection for the supervised pool.

The paper's resilience pillar (Section 4, Tables 3–4) demands that the
mini-app *demonstrate* fault tolerance, not merely implement it.  This
module is the demonstration harness: a :class:`ChaosPolicy` is a list of
:class:`ChaosEvent` triggers — kill worker ``n`` at phase ``p`` of step
``s``, delay a reply past its deadline, flip a bit in an arena output
slice — matched at task-submission time by
:class:`~repro.parallel.supervisor.SupervisedPool` and shipped to the
worker inside the task dict (see ``_worker_main`` in
:mod:`repro.parallel.pool`).

Every event fires **once**: a kill directive consumed by worker 2 does
not re-fire when the lost chunk is re-issued to worker 0, so an injected
fail-stop is recoverable by construction and a test that injects ``k``
faults observes exactly ``k``.  Policies are plain data + a fired bitmap;
:func:`random_policy` derives a reproducible event list from a seed.

The injections map onto the standard fault taxonomy:

========  ====================  =========================================
action    models                detected by
========  ====================  =========================================
kill      fail-stop crash       ``Process.sentinel`` (supervisor)
delay     hang / slow node      EWMA deadline (supervisor)
flip      silent data           per-phase CRC + range scan
          corruption (SDC)      (``verify_outputs=True``)
========  ====================  =========================================
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "ChaosEvent",
    "ChaosPolicy",
    "random_policy",
    "NumericalFault",
    "NumericalChaosPolicy",
    "CheckpointIOChaos",
    "ProcessKillFault",
    "parse_numerical_faults",
]


@dataclass(frozen=True)
class ChaosEvent:
    """One fault trigger.

    Parameters
    ----------
    step:
        Driver step index at which to fire (matched exactly).
    phase:
        Algorithm-1 phase letter (``"D"``, ``"E"``, ``"G"``, ``"I"``) or
        ``"*"`` for any phase.
    action:
        ``"kill"`` (fail-stop before any work), ``"delay"`` (sleep
        ``delay`` seconds before sending the reply) or ``"flip"`` (XOR
        bit ``bit`` of flattened element ``index`` in the chunk's slice
        of output ``field``, *after* the worker checksummed it).
    worker:
        Pool slot to target, or ``None`` for any worker.
    chunk:
        Chunk index within the fan-out, or ``None`` for any chunk.
    """

    step: int
    phase: str
    action: str
    worker: Optional[int] = None
    chunk: Optional[int] = None
    delay: float = 0.0
    field: str = ""
    index: int = 0
    bit: int = 62

    def __post_init__(self) -> None:
        if self.action not in ("kill", "delay", "flip"):
            raise ValueError(f"unknown chaos action {self.action!r}")
        if self.action == "delay" and self.delay <= 0.0:
            raise ValueError("delay events need delay > 0")
        if self.action == "flip" and not self.field:
            raise ValueError("flip events need a target field")

    def matches(self, step: int, phase: str, worker: int, chunk: int) -> bool:
        return (
            self.step == step
            and self.phase in ("*", phase)
            and (self.worker is None or self.worker == worker)
            and (self.chunk is None or self.chunk == chunk)
        )


class ChaosPolicy:
    """Fire-once event list consulted by the supervisor at submit time."""

    def __init__(self, events: Sequence[ChaosEvent]) -> None:
        self.events: List[ChaosEvent] = list(events)
        self._fired = [False] * len(self.events)

    # ------------------------------------------------------------------
    @property
    def fired(self) -> int:
        """How many events have been consumed so far."""
        return sum(self._fired)

    @property
    def exhausted(self) -> bool:
        return all(self._fired)

    def reset(self) -> None:
        """Re-arm every event (fresh run with the same script)."""
        self._fired = [False] * len(self.events)

    # ------------------------------------------------------------------
    def directives(
        self, *, step: int, phase: str, worker: int, chunk: int
    ) -> Optional[Dict]:
        """Directives for one task submission, or ``None``.

        Each matching event is marked fired immediately, so a directive
        lost with a killed worker is *not* re-injected on re-issue.
        """
        out: Dict = {}
        for i, ev in enumerate(self.events):
            if self._fired[i] or not ev.matches(step, phase, worker, chunk):
                continue
            self._fired[i] = True
            if ev.action == "kill":
                out["kill"] = True
            elif ev.action == "delay":
                out["delay"] = max(float(out.get("delay", 0.0)), ev.delay)
            elif ev.action == "flip":
                out.setdefault("flip", []).append((ev.field, ev.index, ev.bit))
        return out or None


_FLIP_FIELDS = {
    "D": "out_c",
    "E": "out_rho",
    "G": "out_a",
}


def random_policy(
    seed: int,
    *,
    n_steps: int,
    n_workers: int,
    n_events: int = 3,
    phases: Sequence[str] = ("D", "E", "G"),
    actions: Sequence[str] = ("kill", "delay", "flip"),
    delay: float = 5.0,
) -> ChaosPolicy:
    """Reproducible random fault script (same seed → same events)."""
    rng = np.random.default_rng(seed)
    events: List[ChaosEvent] = []
    for _ in range(n_events):
        phase = str(rng.choice(list(phases)))
        action = str(rng.choice(list(actions)))
        events.append(
            ChaosEvent(
                step=int(rng.integers(n_steps)),
                phase=phase,
                action=action,
                worker=int(rng.integers(n_workers)),
                delay=delay if action == "delay" else 0.0,
                field=_FLIP_FIELDS.get(phase, "out_rho") if action == "flip" else "",
                index=int(rng.integers(1 << 16)),
                bit=int(rng.integers(64)),
            )
        )
    return ChaosPolicy(events)


# ======================================================================
# Numerical chaos: poisoned *values* instead of broken *processes*
# ======================================================================
#: Particle fields a numerical fault may target (the full SoA surface).
_NUMERICAL_ARRAYS = ("x", "v", "a", "m", "h", "rho", "u", "p", "cs", "du")
_NUMERICAL_KINDS = ("nan", "inf", "neg", "huge", "bitflip", "set")
_NUMERICAL_SITES = ("rates", "post")


@dataclass(frozen=True)
class NumericalFault:
    """One deterministic value corruption of a named particle array.

    Models the silent-data-corruption taxonomy at *driver* granularity
    (the pool-level ``flip`` action corrupts worker output slices; this
    corrupts the authoritative state the step guard watches):

    ========  =============================================
    kind      writes
    ========  =============================================
    nan       ``NaN`` (exponent-field corruption)
    inf       ``+Inf`` (overflowed accumulate)
    neg       a negative value (sign-bit flip on rho/u/...)
    huge      ``1e12`` (plausibility-ceiling excursion;
              in ``cs`` this collapses the CFL dt)
    bitflip   XOR of bit ``bit`` in the float64 pattern
    set       the literal ``value``
    ========  =============================================

    Parameters
    ----------
    step:
        Driver step index at which to fire — the value of
        ``Simulation.step_index`` *when the step begins* (matched
        exactly).
    array:
        Target :class:`~repro.core.particles.ParticleSystem` field name.
    site:
        ``"rates"`` fires right after the step's main rate evaluation
        (models a corrupted kernel output feeding the closing kick);
        ``"post"`` fires after the step completes (models a bit flip in
        resident state between steps).
    index:
        Flattened element index (wrapped modulo the array size).
    fires:
        Total firing budget: the fault poisons the first ``fires``
        matching injection-site visits, then is spent.  One visit per
        retry means ``fires=k`` fails the first try plus ``k-1`` ladder
        retries — the knob tests use to drive the guard to rung ``k``.
    once:
        Fire-once semantics, like :class:`ChaosEvent` — a healed retry of
        the same step is *not* re-poisoned (beyond the ``fires`` budget),
        so rollback-and-retry cures the fault by construction.
        ``once=False`` makes the fault persistent (re-fires on *every*
        retry of its step, ignoring ``fires``), which is how tests drive
        the guard to its terminal error.
    """

    step: int
    array: str
    kind: str = "nan"
    site: str = "rates"
    index: int = 0
    bit: int = 62
    value: float = 0.0
    fires: int = 1
    once: bool = True

    def __post_init__(self) -> None:
        if self.array not in _NUMERICAL_ARRAYS:
            raise ValueError(
                f"unknown target array {self.array!r}; "
                f"choose from {_NUMERICAL_ARRAYS}"
            )
        if self.kind not in _NUMERICAL_KINDS:
            raise ValueError(f"unknown numerical fault kind {self.kind!r}")
        if self.site not in _NUMERICAL_SITES:
            raise ValueError(f"unknown injection site {self.site!r}")
        if self.fires < 1:
            raise ValueError("fires must be >= 1")

    def inject(self, particles) -> str:
        """Corrupt the target element in place; returns a description."""
        arr = getattr(particles, self.array)
        flat = np.ravel(arr)  # view: the SoA arrays are C-contiguous
        i = self.index % flat.size
        if self.kind == "nan":
            flat[i] = np.nan
        elif self.kind == "inf":
            flat[i] = np.inf
        elif self.kind == "neg":
            flat[i] = -abs(self.value) if self.value else -1.0
        elif self.kind == "huge":
            flat[i] = self.value if self.value else 1e12
        elif self.kind == "set":
            flat[i] = self.value
        else:  # bitflip
            bits = arr.view(np.int64)
            np.ravel(bits)[i] ^= np.int64(1) << np.int64(self.bit % 64)
        # Keep the pair engine honest: tracked fields must announce
        # in-place mutation or cached geometry would outlive the damage.
        if self.array in ("x", "v", "h"):
            particles.bump_epoch(self.array)
        return (
            f"{self.kind} into {self.array}[{i}] at step {self.step} "
            f"({self.site})"
        )


class NumericalChaosPolicy:
    """Fire-once numerical fault list consulted by the driver step.

    The driver calls :meth:`apply` at each injection site; matching
    faults corrupt the particle state in place.  ``once=True`` faults
    are consumed on first fire (so a guard retry recomputes a clean
    step); ``once=False`` faults re-fire on every retry of their step.
    """

    def __init__(self, faults: Sequence[NumericalFault]) -> None:
        self.faults: List[NumericalFault] = list(faults)
        self._count = [0] * len(self.faults)
        self.injections: List[str] = []

    @property
    def fired(self) -> int:
        """Distinct faults that have fired at least once."""
        return sum(1 for c in self._count if c > 0)

    @property
    def exhausted(self) -> bool:
        return all(c > 0 for c in self._count)

    def reset(self) -> None:
        """Re-arm every fault (fresh run with the same script)."""
        self._count = [0] * len(self.faults)
        self.injections = []

    def apply(self, step: int, site: str, particles) -> List[str]:
        """Inject every matching in-budget fault; returns descriptions."""
        applied: List[str] = []
        for i, fault in enumerate(self.faults):
            if fault.step != step or fault.site != site:
                continue
            if fault.once and self._count[i] >= fault.fires:
                continue
            self._count[i] += 1
            applied.append(fault.inject(particles))
        self.injections.extend(applied)
        return applied


def parse_numerical_faults(text: str) -> NumericalChaosPolicy:
    """Parse the CLI spelling ``kind:array@step[:site][*fires][!][,...]``.

    Examples: ``nan:rho@3`` (NaN into the density array after step 3's
    rate evaluation), ``bitflip:a@5:rates``, ``inf:u@2:post``,
    ``huge:cs@4`` (CFL/dt collapse), ``nan:rho@3*3`` (poisons the first
    try and two retries — exercises ladder rung 3), ``nan:rho@1!``
    (persistent — re-fires on every retry, driving the guard to its
    terminal error).
    """
    faults: List[NumericalFault] = []
    for raw in text.split(","):
        spec = raw.strip()
        if not spec:
            continue
        once = not spec.endswith("!")
        spec = spec.rstrip("!")
        spec, star, fires_text = spec.partition("*")
        head, sep, tail = spec.partition("@")
        if not sep:
            raise ValueError(
                f"bad numerical fault spec {raw!r}: expected kind:array@step"
            )
        try:
            kind, array = head.split(":")
        except ValueError:
            raise ValueError(
                f"bad numerical fault spec {raw!r}: expected kind:array@step"
            ) from None
        step_text, _, site = tail.partition(":")
        faults.append(
            NumericalFault(
                step=int(step_text),
                array=array,
                kind=kind,
                site=site or "rates",
                fires=int(fires_text) if star else 1,
                once=once,
            )
        )
    if not faults:
        raise ValueError("empty numerical fault spec")
    return NumericalChaosPolicy(faults)


# ======================================================================
# Process chaos: fail-stop the *hosting* process (service worker slots)
# ======================================================================
@dataclass
class ProcessKillFault:
    """Deterministic fail-stop of the process running a simulation.

    The pool-level ``kill`` action above fail-stops a *pool worker*;
    this fail-stops the whole driver process — the fault model of the
    service's job slots, where one OS process owns one run and the job
    manager must absorb its death via checkpoint autoresume.

    Fire-once must survive the respawn (a recovered job re-reaches the
    trigger step), so the fired bit is a ``marker`` file next to the
    job's checkpoints rather than in-process state: the first process to
    reach ``step`` creates the marker and SIGKILLs itself mid-flight;
    the respawned process sees the marker and runs the step unharmed.
    """

    step: int
    marker: Optional[str] = None
    sig: int = 9  # SIGKILL: no atexit, no cleanup — a true fail-stop

    def maybe_fire(self, step_index: int) -> None:
        """Kill the current process if this is the trigger step and the
        fault has not fired before (marker-file check-and-set)."""
        if step_index != self.step:
            return
        import os

        if self.marker is not None:
            try:
                # O_EXCL create = atomic check-and-set across respawns
                # (and across racing processes sharing one job dir).
                fd = os.open(
                    self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(fd)
            except FileExistsError:
                return
        os.kill(os.getpid(), self.sig)


# ======================================================================
# Checkpoint-I/O chaos: transient OSError at the write/read boundary
# ======================================================================
@dataclass
class CheckpointIOChaos:
    """Deterministic transient ``OSError`` injection for checkpoint I/O.

    The first ``fail_writes`` write attempts (and ``fail_reads`` read
    attempts) raise ``OSError(error, ...)`` — disk-full by default —
    then the budget is spent and I/O succeeds.  Large budgets model a
    persistently broken filesystem (retry exhaustion paths).
    """

    fail_writes: int = 0
    fail_reads: int = 0
    error: int = errno.ENOSPC
    writes_failed: int = 0
    reads_failed: int = 0

    def check(self, op: str) -> None:
        """Raise the injected error while the ``op`` budget lasts."""
        if op == "write" and self.writes_failed < self.fail_writes:
            self.writes_failed += 1
            raise OSError(self.error, "injected transient checkpoint write failure")
        if op == "read" and self.reads_failed < self.fail_reads:
            self.reads_failed += 1
            raise OSError(self.error, "injected transient checkpoint read failure")
