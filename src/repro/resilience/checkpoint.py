"""Checkpoint/restart (Tables 3-4 "Checkpoint-Restart").

"All applications use standard checkpoint/restart mechanisms to enable
fault-tolerance when executing at scale" (Section 4).  A checkpoint
captures the full particle state plus the driver's scalar state (time,
step index, stepper memory); restart reconstructs a bit-identical
simulation.  Checkpoints carry CRC32 integrity sums per array so a
corrupted file is detected at restore time rather than silently resuming
from garbage.
"""

from __future__ import annotations

import io
import json
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..core.particles import ParticleSystem

__all__ = ["Checkpoint", "CheckpointError", "write_checkpoint", "read_checkpoint"]

_MAGIC = "sph-exa-repro-checkpoint"
_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised when a checkpoint is missing, corrupt, or incompatible."""


@dataclass
class Checkpoint:
    """In-memory checkpoint: particle arrays + scalar driver state."""

    particles: ParticleSystem
    time: float
    step_index: int
    meta: Dict[str, float]

    @classmethod
    def capture(
        cls,
        particles: ParticleSystem,
        time: float,
        step_index: int,
        meta: Optional[Dict[str, float]] = None,
    ) -> "Checkpoint":
        """Deep-copy the state (the simulation may keep running)."""
        return cls(
            particles=particles.copy(),
            time=float(time),
            step_index=int(step_index),
            meta=dict(meta or {}),
        )

    @classmethod
    def of_simulation(cls, sim) -> "Checkpoint":
        """Capture a :class:`~repro.core.simulation.Simulation`.

        Besides the particle arrays (which include the accelerations and
        energy rates), the scalar driver state needed for *bit-identical*
        resumption is stored: the viscous signal diagnostic feeding the
        next dt and the stepper's growth-limiter memory.  Production SPH
        restart files carry exactly this so a restarted run replays the
        original trajectory.
        """
        meta = {
            "potential_energy": sim.potential_energy,
            "max_mu": sim._max_mu,
        }
        dt_prev = getattr(sim.stepper, "_dt_prev", None)
        if dt_prev is not None:
            meta["dt_prev"] = dt_prev
        return cls.capture(sim.particles, sim.time, sim.step_index, meta=meta)

    def restore_into(self, sim) -> None:
        """Restore a driver in place (state arrays, clock, counters).

        The checkpointed accelerations/rates are trusted — no recomputation
        happens until the next step's own rate evaluation — so a restarted
        run is bit-identical to the uninterrupted one.
        """
        restored = self.particles.copy()
        sim.particles = restored
        sim.time = self.time
        sim.step_index = self.step_index
        sim.potential_energy = float(self.meta.get("potential_energy", 0.0))
        sim._max_mu = float(self.meta.get("max_mu", 0.0))
        if "dt_prev" in self.meta and hasattr(sim.stepper, "_dt_prev"):
            sim.stepper._dt_prev = float(self.meta["dt_prev"])
        sim._nlist = None
        sim._rates_current = True


def write_checkpoint(path: str | Path, cp: Checkpoint) -> int:
    """Serialize a checkpoint with per-array CRCs; returns bytes written."""
    path = Path(path)
    arrays = dict(cp.particles.state_arrays())
    header = {
        "magic": _MAGIC,
        "version": _VERSION,
        "time": cp.time,
        "step_index": cp.step_index,
        "meta": cp.meta,
        "arrays": {},
    }
    buf = io.BytesIO()
    for name, arr in arrays.items():
        data = np.ascontiguousarray(arr)
        raw = data.tobytes()
        header["arrays"][name] = {
            "dtype": str(data.dtype),
            "shape": list(data.shape),
            "crc32": zlib.crc32(raw) & 0xFFFFFFFF,
            "offset": buf.tell(),
            "nbytes": len(raw),
        }
        buf.write(raw)
    payload = buf.getvalue()
    head = json.dumps(header).encode()
    with open(path, "wb") as f:
        f.write(len(head).to_bytes(8, "little"))
        f.write(head)
        f.write(payload)
    return 8 + len(head) + len(payload)


def read_checkpoint(path: str | Path) -> Checkpoint:
    """Read and verify a checkpoint; raises :class:`CheckpointError`."""
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    file_size = path.stat().st_size
    with open(path, "rb") as f:
        try:
            head_len = int.from_bytes(f.read(8), "little")
            if not 0 < head_len <= file_size:
                raise CheckpointError(
                    f"implausible header length {head_len} in {path}"
                )
            header = json.loads(f.read(head_len).decode())
        except (ValueError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint header: {exc}") from exc
        if header.get("magic") != _MAGIC:
            raise CheckpointError(f"not a checkpoint file: {path}")
        if header.get("version") != _VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {header.get('version')}"
            )
        payload = f.read()
    arrays: Dict[str, np.ndarray] = {}
    for name, spec in header["arrays"].items():
        raw = payload[spec["offset"] : spec["offset"] + spec["nbytes"]]
        if len(raw) != spec["nbytes"]:
            raise CheckpointError(f"truncated checkpoint: array {name!r}")
        if (zlib.crc32(raw) & 0xFFFFFFFF) != spec["crc32"]:
            raise CheckpointError(f"CRC mismatch in array {name!r}")
        arrays[name] = np.frombuffer(raw, dtype=np.dtype(spec["dtype"])).reshape(
            spec["shape"]
        ).copy()
    particles = ParticleSystem.from_dict(arrays)
    return Checkpoint(
        particles=particles,
        time=float(header["time"]),
        step_index=int(header["step_index"]),
        meta=dict(header["meta"]),
    )
