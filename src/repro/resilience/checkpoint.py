"""Checkpoint/restart (Tables 3-4 "Checkpoint-Restart").

"All applications use standard checkpoint/restart mechanisms to enable
fault-tolerance when executing at scale" (Section 4).  A checkpoint
captures the full particle state plus the driver's scalar state (time,
step index, stepper memory); restart reconstructs a bit-identical
simulation.  Checkpoints carry CRC32 integrity sums per array so a
corrupted file is detected at restore time rather than silently resuming
from garbage.

Writes are atomic — the file is assembled under a ``*.tmp`` name, fsynced
and ``os.replace``d into place, and a ``latest`` pointer file (updated
the same way) names the newest complete checkpoint — so a crash at any
instant leaves either the previous consistent pair or the new one, never
a torn file that autoresume would trip over.

:class:`CheckpointManager` drives rolling checkpoints from the step loop:
``checkpoint_every=K`` writes every K steps and keeps the newest ``keep``
files; ``checkpoint_every=0`` self-tunes K with Young's formula from the
measured checkpoint cost, the per-step wall-time EWMA and the configured
MTBF (:mod:`repro.resilience.interval` applied to real I/O, not the
simulator).
"""

from __future__ import annotations

import io
import json
import os
import re
import time as _time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..core.particles import ParticleSystem
from ..tree.neighborlist import NeighborList
from .interval import young_interval

__all__ = [
    "Checkpoint",
    "CheckpointError",
    "CheckpointIOError",
    "retry_io",
    "write_checkpoint",
    "read_checkpoint",
    "find_latest_checkpoint",
    "ResilienceConfig",
    "CheckpointManager",
]

_MAGIC = "sph-exa-repro-checkpoint"
_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised when a checkpoint is missing, corrupt, or incompatible."""


class CheckpointIOError(CheckpointError):
    """Terminal I/O failure: every retry of a checkpoint read/write failed.

    Carries the last underlying ``OSError`` as ``__cause__`` and a
    message naming the operation and the attempt budget, so a run that
    dies on a genuinely broken filesystem reports *what* was exhausted
    instead of a mid-write traceback.
    """


def retry_io(fn, *, attempts: int = 3, backoff: float = 0.0, what: str = "checkpoint I/O"):
    """Run ``fn`` retrying transient ``OSError`` with exponential backoff.

    Disk-full, ``EINTR`` and friends are frequently transient at exascale
    job-farm scale; ``attempts`` tries are made with ``backoff * 2**k``
    seconds between them before giving up with a terminal
    :class:`CheckpointIOError`.  Non-``OSError`` exceptions (including
    :class:`CheckpointError` corruption findings) propagate immediately —
    retrying cannot fix a bad CRC.
    """
    attempts = max(1, int(attempts))
    last: Optional[OSError] = None
    for attempt in range(attempts):
        try:
            return fn()
        except CheckpointIOError:
            raise  # already-wrapped terminal failure from a nested retry
        except OSError as exc:
            last = exc
            if backoff > 0.0 and attempt + 1 < attempts:
                _time.sleep(backoff * (2 ** attempt))
    raise CheckpointIOError(
        f"{what} failed after {attempts} attempt(s): {last}"
    ) from last


@dataclass
class Checkpoint:
    """In-memory checkpoint: particle arrays + scalar driver state.

    ``extras`` holds auxiliary arrays that are not particle state but are
    needed for bit-identical resumption — currently the Verlet cache's
    CSR neighbour list and its reference positions/smoothing lengths.
    """

    particles: ParticleSystem
    time: float
    step_index: int
    meta: Dict[str, float]
    extras: Dict[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        particles: ParticleSystem,
        time: float,
        step_index: int,
        meta: Optional[Dict[str, float]] = None,
        extras: Optional[Dict[str, np.ndarray]] = None,
    ) -> "Checkpoint":
        """Deep-copy the state (the simulation may keep running)."""
        return cls(
            particles=particles.copy(),
            time=float(time),
            step_index=int(step_index),
            meta=dict(meta or {}),
            extras={k: np.array(v, copy=True) for k, v in (extras or {}).items()},
        )

    @classmethod
    def of_simulation(cls, sim) -> "Checkpoint":
        """Capture a :class:`~repro.core.simulation.Simulation`.

        Besides the particle arrays (which include the accelerations and
        energy rates), the scalar driver state needed for *bit-identical*
        resumption is stored: the viscous signal diagnostic feeding the
        next dt and the stepper's growth-limiter memory.  Production SPH
        restart files carry exactly this so a restarted run replays the
        original trajectory.
        """
        meta = {
            "potential_energy": sim.potential_energy,
            "max_mu": sim._max_mu,
        }
        dt_prev = getattr(sim.stepper, "_dt_prev", None)
        if dt_prev is not None:
            meta["dt_prev"] = dt_prev
        extras: Dict[str, np.ndarray] = {}
        ncache = getattr(sim, "_ncache", None)
        if ncache is not None and ncache._nlist is not None:
            # The Verlet cache is not bitwise-neutral (the padded list's
            # reuse schedule shifts summation roundoff), so bit-identical
            # resumption must replay the *exact* cached list and the
            # reference state its validity is judged against.
            meta["ncache_skin"] = ncache.skin
            extras["ncache_offsets"] = ncache._nlist.offsets
            extras["ncache_indices"] = ncache._nlist.indices
            extras["ncache_x_ref"] = ncache._x_ref
            extras["ncache_h_ref"] = ncache._h_ref
        return cls.capture(
            sim.particles, sim.time, sim.step_index, meta=meta, extras=extras
        )

    def restore_into(self, sim) -> None:
        """Restore a driver in place (state arrays, clock, counters).

        The checkpointed accelerations/rates are trusted — no recomputation
        happens until the next step's own rate evaluation — so a restarted
        run is bit-identical to the uninterrupted one.
        """
        restored = self.particles.copy()
        sim.particles = restored
        sim.time = self.time
        sim.step_index = self.step_index
        sim.potential_energy = float(self.meta.get("potential_energy", 0.0))
        sim._max_mu = float(self.meta.get("max_mu", 0.0))
        if "dt_prev" in self.meta and hasattr(sim.stepper, "_dt_prev"):
            sim.stepper._dt_prev = float(self.meta["dt_prev"])
        sim._nlist = None
        sim._rates_current = True
        # The pair engine keys its caches on the particle *object*; the
        # swap above re-mints every token, but drop the cached geometry
        # explicitly so nothing outlives the restore.
        pair_ctx = getattr(sim, "_pair_ctx", None)
        if pair_ctx is not None:
            pair_ctx.invalidate()
        ncache = getattr(sim, "_ncache", None)
        if ncache is None:
            return
        cache_keys = {
            "ncache_offsets", "ncache_indices", "ncache_x_ref", "ncache_h_ref"
        }
        if (
            cache_keys <= self.extras.keys()
            and float(self.meta.get("ncache_skin", -1.0)) == ncache.skin
        ):
            # Reinstate the checkpointed list and its reference state, so
            # the resumed run replays the original reuse schedule exactly.
            # Bypasses store() to copy without counting a fresh build.
            ncache._nlist = NeighborList(
                self.extras["ncache_offsets"].copy(),
                self.extras["ncache_indices"].copy(),
            )
            ncache._x_ref = self.extras["ncache_x_ref"].copy()
            ncache._h_ref = self.extras["ncache_h_ref"].copy()
        else:
            # No (compatible) cache state in the file: the cache holds
            # lists for the pre-restore positions and must rebuild.
            ncache.invalidate()


def write_checkpoint(path: str | Path, cp: Checkpoint, *, io_chaos=None) -> int:
    """Serialize a checkpoint with per-array CRCs; returns bytes written.

    ``io_chaos`` is a test hook (:class:`~repro.resilience.chaos
    .CheckpointIOChaos`) injecting transient ``OSError`` at the write
    boundary; production callers leave it ``None``.
    """
    path = Path(path)
    arrays = dict(cp.particles.state_arrays())
    header = {
        "magic": _MAGIC,
        "version": _VERSION,
        "time": cp.time,
        "step_index": cp.step_index,
        "meta": cp.meta,
        "arrays": {},
        "extras": {},
    }
    buf = io.BytesIO()
    for section, table in (("arrays", arrays), ("extras", cp.extras)):
        for name, arr in table.items():
            data = np.ascontiguousarray(arr)
            raw = data.tobytes()
            header[section][name] = {
                "dtype": str(data.dtype),
                "shape": list(data.shape),
                "crc32": zlib.crc32(raw) & 0xFFFFFFFF,
                "offset": buf.tell(),
                "nbytes": len(raw),
            }
            buf.write(raw)
    payload = buf.getvalue()
    head = json.dumps(header).encode()
    _atomic_write(
        path, [len(head).to_bytes(8, "little"), head, payload], io_chaos=io_chaos
    )
    return 8 + len(head) + len(payload)


def _atomic_write(path: Path, parts: List[bytes], *, io_chaos=None) -> None:
    """Crash-safe file replacement: ``*.tmp`` + fsync + ``os.replace``.

    A crash mid-write leaves only the tmp file; the destination is either
    absent, the previous complete version, or the new complete version.
    A failed write cleans its tmp file up, so the previous rolling
    checkpoint stays the one and only artifact until the replacement is
    fully fsynced and renamed into place.
    """
    tmp = path.with_name(path.name + ".tmp")
    try:
        if io_chaos is not None:
            io_chaos.check("write")
        with open(tmp, "wb") as f:
            for part in parts:
                f.write(part)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def read_checkpoint(path: str | Path, *, io_chaos=None) -> Checkpoint:
    """Read and verify a checkpoint; raises :class:`CheckpointError`."""
    path = Path(path)
    if io_chaos is not None:
        io_chaos.check("read")
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    file_size = path.stat().st_size
    with open(path, "rb") as f:
        try:
            head_len = int.from_bytes(f.read(8), "little")
            if not 0 < head_len <= file_size:
                raise CheckpointError(
                    f"implausible header length {head_len} in {path}"
                )
            header = json.loads(f.read(head_len).decode())
        except (ValueError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint header: {exc}") from exc
        if header.get("magic") != _MAGIC:
            raise CheckpointError(f"not a checkpoint file: {path}")
        if header.get("version") != _VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {header.get('version')}"
            )
        payload = f.read()
    def _decode(section: Dict[str, dict]) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for name, spec in section.items():
            raw = payload[spec["offset"] : spec["offset"] + spec["nbytes"]]
            if len(raw) != spec["nbytes"]:
                raise CheckpointError(f"truncated checkpoint: array {name!r}")
            if (zlib.crc32(raw) & 0xFFFFFFFF) != spec["crc32"]:
                raise CheckpointError(f"CRC mismatch in array {name!r}")
            out[name] = np.frombuffer(raw, dtype=np.dtype(spec["dtype"])).reshape(
                spec["shape"]
            ).copy()
        return out

    particles = ParticleSystem.from_dict(_decode(header["arrays"]))
    return Checkpoint(
        particles=particles,
        time=float(header["time"]),
        step_index=int(header["step_index"]),
        meta=dict(header["meta"]),
        extras=_decode(header.get("extras", {})),
    )


# ======================================================================
# Rolling-checkpoint management for the driver loop
# ======================================================================
_CKPT_RE = re.compile(r"^ckpt_(\d{8})\.ckpt$")
_LATEST = "latest"


def _checkpoint_name(step_index: int) -> str:
    return f"ckpt_{step_index:08d}.ckpt"


def find_latest_checkpoint(directory: str | Path) -> Optional[Path]:
    """Newest *valid* checkpoint in ``directory``, or ``None``.

    The ``latest`` pointer file is tried first; if it is missing, stale,
    or names a torn file, every ``ckpt_*.ckpt`` is probed newest-first
    (full CRC read), so autoresume survives a crash at any point of the
    write/prune sequence.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates: List[Path] = []
    pointer = directory / _LATEST
    if pointer.is_file():
        try:
            named = directory / pointer.read_text().strip()
        except OSError:  # pragma: no cover - unreadable pointer
            named = None
        if named is not None and named.is_file():
            candidates.append(named)
    rolling = [p for p in directory.iterdir() if _CKPT_RE.match(p.name)]
    rolling.sort(key=lambda p: p.name, reverse=True)
    candidates.extend(p for p in rolling if p not in candidates)
    for path in candidates:
        try:
            read_checkpoint(path)
        except CheckpointError:
            continue
        return path
    return None


@dataclass(frozen=True)
class ResilienceConfig:
    """Checkpoint/restart policy for :class:`~repro.core.simulation.Simulation`.

    Parameters
    ----------
    checkpoint_dir:
        Directory for rolling checkpoints (created on first write).
    checkpoint_every:
        Steps between checkpoints; ``0`` self-tunes via Young's formula
        from the measured checkpoint cost, the step-time EWMA and
        ``mtbf``.
    keep:
        Rolling window: older checkpoints beyond the newest ``keep`` are
        pruned after each successful write.
    autoresume:
        Make ``Simulation.run()`` restore the newest valid checkpoint
        (when one exists) before stepping.
    mtbf:
        Assumed mean time between failures in seconds (auto mode only).
    io_retries:
        Attempts per checkpoint write/restore before the transient
        ``OSError`` is declared terminal (:class:`CheckpointIOError`).
    io_backoff:
        Base seconds of the exponential backoff between I/O retries.
    """

    checkpoint_dir: str = "checkpoints"
    checkpoint_every: int = 10
    keep: int = 2
    autoresume: bool = True
    mtbf: float = 3600.0
    io_retries: int = 3
    io_backoff: float = 0.02

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0 (0 = auto)")
        if self.keep < 1:
            raise ValueError("keep must be >= 1")
        if self.mtbf <= 0.0:
            raise ValueError("mtbf must be positive")
        if self.io_retries < 1:
            raise ValueError("io_retries must be >= 1")
        if self.io_backoff < 0.0:
            raise ValueError("io_backoff must be >= 0")


@dataclass
class CheckpointManager:
    """Writes rolling, atomic checkpoints from the step loop.

    ``after_step(sim)`` is called once per completed step; it decides
    (fixed K or Young auto-K), captures, writes atomically, repoints
    ``latest`` and prunes.  Write cost and per-step wall time are
    measured on the fly so auto mode needs no calibration run.
    """

    config: ResilienceConfig
    steps_since: int = 0
    checkpoints_written: int = 0
    last_write_seconds: float = 0.0
    last_path: Optional[Path] = None
    #: Transient write failures absorbed by the retry loop.
    io_retries_used: int = 0
    #: Test hook: :class:`~repro.resilience.chaos.CheckpointIOChaos`.
    io_chaos: Optional[object] = None
    _step_ewma: Optional[float] = field(default=None, repr=False)
    _last_step_end: Optional[float] = field(default=None, repr=False)

    @property
    def directory(self) -> Path:
        return Path(self.config.checkpoint_dir)

    # ------------------------------------------------------------------
    def interval_steps(self) -> int:
        """Current checkpoint interval in steps (fixed or Young auto)."""
        if self.config.checkpoint_every:
            return self.config.checkpoint_every
        if not self.last_write_seconds or not self._step_ewma:
            return 1  # bootstrap: checkpoint immediately to measure cost
        w_seconds = young_interval(self.last_write_seconds, self.config.mtbf)
        return max(1, round(w_seconds / self._step_ewma))

    def after_step(self, sim) -> Optional[Path]:
        """Account one finished step; maybe checkpoint.  Returns the path."""
        now = _time.perf_counter()
        if self._last_step_end is not None:
            dt = now - self._last_step_end
            self._step_ewma = (
                dt if self._step_ewma is None else 0.7 * self._step_ewma + 0.3 * dt
            )
        self._last_step_end = now
        self.steps_since += 1
        if self.steps_since < self.interval_steps():
            return None
        return self.checkpoint(sim)

    def checkpoint(self, sim) -> Path:
        """Unconditional checkpoint of the driver's current state."""
        from contextlib import nullcontext

        from ..profiling.trace import State

        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / _checkpoint_name(sim.step_index)
        tracer = getattr(sim, "tracer", None)
        span = (
            tracer.phase("ckpt", State.RECOVERY, getattr(sim, "rank", 0))
            if tracer is not None
            else nullcontext()
        )
        cp = Checkpoint.of_simulation(sim)
        tries = {"n": 0}

        def _write() -> None:
            tries["n"] += 1
            write_checkpoint(path, cp, io_chaos=self.io_chaos)
            _atomic_write(
                self.directory / _LATEST, [path.name.encode()],
                io_chaos=self.io_chaos,
            )

        start = _time.perf_counter()
        try:
            with span:
                retry_io(
                    _write,
                    attempts=self.config.io_retries,
                    backoff=self.config.io_backoff,
                    what=f"checkpoint write to {path}",
                )
        finally:
            self.io_retries_used += max(0, tries["n"] - 1)
        self.last_write_seconds = _time.perf_counter() - start
        self._last_step_end = _time.perf_counter()  # exclude ckpt from step EWMA
        self.last_path = path
        self.checkpoints_written += 1
        self.steps_since = 0
        self._prune()
        return path

    def stats(self) -> Dict[str, float]:
        """Counters for ``Simulation.report()`` (one flat dict)."""
        return {
            "writes": self.checkpoints_written,
            "last_write_seconds": self.last_write_seconds,
            "interval_steps": self.interval_steps(),
            "io_retries": self.io_retries_used,
        }

    def _prune(self) -> None:
        rolling = sorted(
            (p for p in self.directory.iterdir() if _CKPT_RE.match(p.name)),
            key=lambda p: p.name,
        )
        for stale in rolling[: -self.config.keep]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
