"""Silent-data-corruption detectors (Table 4 "Error Detection").

Three complementary detectors, cheap enough to run every step:

* :class:`ChecksumDetector` — bitwise CRC over arrays that must not
  change between two points of the step (e.g. masses, or positions
  between the force evaluation and the output); catches any flip in its
  window, at zero false positives.
* :class:`RangeDetector` — physical-plausibility bounds (finite values,
  positive density/mass/h, velocities under a configurable ceiling);
  catches the large excursions exponent-bit flips produce.
* :class:`ConservationDetector` — ABFT-style check on the global
  mass/momentum/energy ledger against step-over-step drift tolerances;
  catches corruptions that bend the physics without leaving the
  plausible range.

Each returns a list of human-readable findings (empty = clean), and the
composite :class:`SdcMonitor` aggregates them with detection counters so
recall/precision can be measured against the injector.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..core.conservation import ConservationState, measure_conservation

__all__ = [
    "ChecksumDetector",
    "RangeDetector",
    "ConservationDetector",
    "SdcMonitor",
    "scan_phase_output",
]


def scan_phase_output(
    name: str,
    array: np.ndarray,
    *,
    positive: bool = False,
    ceiling: float = 1e30,
) -> List[str]:
    """Plausibility scan of one phase-output slice (supervisor SDC pass).

    The per-particle analogue of :class:`RangeDetector`, applied to raw
    kernel outputs (density, IAD matrices, accelerations, energy rates)
    right after a pool fan-out: values must be finite, below an absolute
    ceiling no healthy SPH quantity approaches, and — for densities and
    grad-h factors — strictly positive.  Returns findings (empty = clean).
    """
    findings: List[str] = []
    if not np.all(np.isfinite(array)):
        findings.append(f"non-finite values in phase output {name!r}")
    elif np.any(np.abs(array) > ceiling):
        findings.append(f"phase output {name!r} exceeds plausibility ceiling")
    elif positive and np.any(array <= 0.0):
        findings.append(f"non-positive values in phase output {name!r}")
    return findings


class ChecksumDetector:
    """CRC32 snapshots of arrays expected to be invariant over a window."""

    def __init__(self) -> None:
        self._sums: Dict[str, int] = {}

    def snapshot(self, name: str, array: np.ndarray) -> None:
        self._sums[name] = zlib.crc32(np.ascontiguousarray(array).tobytes())

    def verify(self, name: str, array: np.ndarray) -> List[str]:
        if name not in self._sums:
            raise KeyError(f"no snapshot named {name!r}")
        now = zlib.crc32(np.ascontiguousarray(array).tobytes())
        if now != self._sums[name]:
            return [f"checksum mismatch on {name!r}"]
        return []


@dataclass(frozen=True)
class RangeDetector:
    """Physical plausibility bounds on the particle state."""

    v_max: float = 1e6
    h_max: float = 1e6
    u_max: float = 1e12

    def check(self, particles) -> List[str]:
        findings: List[str] = []
        for name in ("x", "v", "a"):
            arr = getattr(particles, name)
            if not np.all(np.isfinite(arr)):
                findings.append(f"non-finite values in {name}")
        for name, lo_ok in (("m", False), ("h", False), ("rho", True), ("u", True)):
            arr = getattr(particles, name)
            if not np.all(np.isfinite(arr)):
                findings.append(f"non-finite values in {name}")
            elif lo_ok:
                if np.any(arr < 0.0):
                    findings.append(f"negative values in {name}")
            elif np.any(arr <= 0.0):
                findings.append(f"non-positive values in {name}")
        if np.any(np.abs(particles.v) > self.v_max):
            findings.append("velocity exceeds plausibility ceiling")
        if np.any(particles.h > self.h_max):
            findings.append("smoothing length exceeds plausibility ceiling")
        if np.any(np.abs(particles.u) > self.u_max):
            findings.append("internal energy exceeds plausibility ceiling")
        return findings


@dataclass
class ConservationDetector:
    """ABFT ledger check: conserved quantities must drift smoothly.

    A per-step relative jump beyond tolerance in mass (exact invariant),
    momentum (machine-precision invariant for symmetric force loops) or
    total energy flags corruption.
    """

    mass_tol: float = 1e-12
    momentum_tol: float = 1e-8
    # Per-step energy jumps: physics drifts too (unstabilized WCSPH free
    # surfaces move several percent of E per step), so the ledger only
    # flags the order-of-magnitude excursions corruption produces.
    energy_tol: float = 0.25
    _last: ConservationState | None = field(default=None, repr=False)

    def observe(self, particles, time: float, potential_energy: float = 0.0) -> List[str]:
        state = measure_conservation(particles, time, potential_energy)
        findings: List[str] = []
        last = self._last
        if last is not None:
            m_scale = max(abs(last.total_mass), 1e-300)
            if abs(state.total_mass - last.total_mass) / m_scale > self.mass_tol:
                findings.append("total mass changed between steps")
            p_scale = max(
                np.sqrt(2.0 * last.total_mass * max(last.kinetic_energy, 1e-300)),
                1e-300,
            )
            dp = float(np.linalg.norm(state.momentum - last.momentum))
            if dp / p_scale > self.momentum_tol:
                findings.append("momentum jumped beyond symmetric-loop tolerance")
            e_scale = max(
                abs(last.kinetic_energy)
                + abs(last.internal_energy)
                + abs(last.potential_energy),
                1e-300,
            )
            de = abs(state.total_energy - last.total_energy)
            if de / e_scale > self.energy_tol:
                findings.append("total energy jumped beyond physical drift")
        self._last = state
        return findings

    def reset(self) -> None:
        self._last = None


@dataclass
class SdcMonitor:
    """Composite detector with detection accounting."""

    range_detector: RangeDetector = field(default_factory=RangeDetector)
    conservation: ConservationDetector = field(default_factory=ConservationDetector)
    checks_run: int = 0
    detections: int = 0

    def check_step(
        self, particles, time: float, potential_energy: float = 0.0
    ) -> List[str]:
        """Run all per-step detectors; returns combined findings."""
        findings = self.range_detector.check(particles)
        findings += self.conservation.observe(particles, time, potential_energy)
        self.checks_run += 1
        if findings:
            self.detections += 1
        return findings
