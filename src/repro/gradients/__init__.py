"""Gradient operators: kernel derivatives and the integral approach (IAD).

Tables 1-2 of the paper list two gradient calculations across the parent
codes — plain kernel derivatives (ChaNGa, SPH-flow) and SPHYNX's IAD —
and require both in the mini-app.  Both produce the same
:class:`~repro.gradients.kernel_gradient.PairGradients` interface consumed
by the force loop.
"""

from .iad import compute_iad_matrices, iad_pair_gradients
from .kernel_gradient import PairGradients, kernel_pair_gradients

__all__ = [
    "PairGradients",
    "kernel_pair_gradients",
    "compute_iad_matrices",
    "iad_pair_gradients",
]
