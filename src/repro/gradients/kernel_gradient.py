"""Standard kernel-derivative gradients (ChaNGa, SPH-flow; Table 1).

The pair gradient operator used by the momentum and energy equations is
``G^(i)_ij ~ grad_i W(r_ij, h_i)`` and ``G^(j)_ij ~ grad_i W(r_ij, h_j)``;
the symmetrized average drives the artificial-viscosity terms.  Both
operators point from i toward j (the direction in which W decreases seen
from i), and satisfy ``G_ij = -G_ji`` exactly, which is what makes the
pairwise momentum exchange conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.base import Kernel

__all__ = ["PairGradients", "kernel_pair_gradients", "compiled_pair_gradients"]


@dataclass(frozen=True)
class PairGradients:
    """Per-pair gradient operators for the force loop.

    Attributes
    ----------
    gi:
        ``G^(i)_ij`` evaluated with the i-side smoothing length, shape
        ``(n_pairs, dim)``.
    gj:
        ``G^(j)_ij`` evaluated with the j-side smoothing length.
    """

    gi: np.ndarray
    gj: np.ndarray

    @property
    def mean(self) -> np.ndarray:
        """Symmetrized operator ``(G^(i) + G^(j)) / 2``."""
        return 0.5 * (self.gi + self.gj)


def kernel_pair_gradients(
    kernel: Kernel,
    dx: np.ndarray,
    r: np.ndarray,
    h_i: np.ndarray,
    h_j: np.ndarray,
    dim: int,
    ctx=None,
    h: np.ndarray | None = None,
) -> PairGradients:
    """Standard SPH pair gradients from the kernel's radial derivative.

    ``dx`` must be ``x_i - x_j`` (minimum image already applied).  With a
    bound :class:`~repro.sph.pair_engine.PairContext` ``ctx`` (and the
    full per-particle ``h`` it gathers from), the gradients come out of
    the context's product memo — shared with the div/curl phase — and
    live in reused arena buffers; the arithmetic is identical either way.
    """
    if ctx is not None and h is not None:
        return PairGradients(
            gi=ctx.grad_i(kernel, h, dim), gj=ctx.grad_j(kernel, h, dim)
        )
    gi = kernel.gradient(dx, r, h_i, dim)
    gj = kernel.gradient(dx, r, h_j, dim)
    return PairGradients(gi=gi, gj=gj)


def compiled_pair_gradients(
    ops,
    *,
    x: np.ndarray,
    h: np.ndarray,
    nlist,
    box,
    kernel: Kernel,
    dim: int,
    lo: int,
    hi: int,
    tokens=None,
) -> PairGradients:
    """Standard pair gradients via a compiled backend's fused ops.

    The force loop itself never calls this — its compiled path folds the
    gradient expansion into the single momentum/energy pass — but it is
    the backend-shaped equivalent of :func:`kernel_pair_gradients` for
    diagnostics and the op-level parity tests: one fused ``dW/dr / r``
    pass per side, then the per-pair ``dx`` expansion, both in the
    compiled kernel.
    """
    common = dict(
        x=x, h=h, nlist=nlist, box=box, kernel=kernel, dim=dim,
        lo=lo, hi=hi, tokens=tokens,
    )
    gsi = ops.pair_products(side="i", want=("gs",), **common)["gs"]
    gsj = ops.pair_products(side="j", want=("gs",), **common)["gs"]
    gi = ops.pair_gradients(x, nlist, box, gsi, 0, None, "i", dim, lo, hi)
    gj = ops.pair_gradients(x, nlist, box, gsj, 0, None, "j", dim, lo, hi)
    return PairGradients(gi=gi, gj=gj)
