"""Standard kernel-derivative gradients (ChaNGa, SPH-flow; Table 1).

The pair gradient operator used by the momentum and energy equations is
``G^(i)_ij ~ grad_i W(r_ij, h_i)`` and ``G^(j)_ij ~ grad_i W(r_ij, h_j)``;
the symmetrized average drives the artificial-viscosity terms.  Both
operators point from i toward j (the direction in which W decreases seen
from i), and satisfy ``G_ij = -G_ji`` exactly, which is what makes the
pairwise momentum exchange conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.base import Kernel

__all__ = ["PairGradients", "kernel_pair_gradients"]


@dataclass(frozen=True)
class PairGradients:
    """Per-pair gradient operators for the force loop.

    Attributes
    ----------
    gi:
        ``G^(i)_ij`` evaluated with the i-side smoothing length, shape
        ``(n_pairs, dim)``.
    gj:
        ``G^(j)_ij`` evaluated with the j-side smoothing length.
    """

    gi: np.ndarray
    gj: np.ndarray

    @property
    def mean(self) -> np.ndarray:
        """Symmetrized operator ``(G^(i) + G^(j)) / 2``."""
        return 0.5 * (self.gi + self.gj)


def kernel_pair_gradients(
    kernel: Kernel,
    dx: np.ndarray,
    r: np.ndarray,
    h_i: np.ndarray,
    h_j: np.ndarray,
    dim: int,
    ctx=None,
    h: np.ndarray | None = None,
) -> PairGradients:
    """Standard SPH pair gradients from the kernel's radial derivative.

    ``dx`` must be ``x_i - x_j`` (minimum image already applied).  With a
    bound :class:`~repro.sph.pair_engine.PairContext` ``ctx`` (and the
    full per-particle ``h`` it gathers from), the gradients come out of
    the context's product memo — shared with the div/curl phase — and
    live in reused arena buffers; the arithmetic is identical either way.
    """
    if ctx is not None and h is not None:
        return PairGradients(
            gi=ctx.grad_i(kernel, h, dim), gj=ctx.grad_j(kernel, h, dim)
        )
    gi = kernel.gradient(dx, r, h_i, dim)
    gj = kernel.gradient(dx, r, h_j, dim)
    return PairGradients(gi=gi, gj=gj)
