"""Integral Approach to Derivatives — IAD (García-Senz et al. 2012).

SPHYNX's gradient scheme (Table 1 "IAD").  Instead of differentiating the
kernel, gradients are obtained from a linearly-consistent integral
estimator: each particle carries the inverse ``C_i`` of the local moment
matrix

    tau_i[ab] = sum_j V_j (x_j - x_i)_a (x_j - x_i)_b W(r_ij, h_i)

and the pair gradient operator becomes

    A^(i)_ij = C_i (x_j - x_i) W(r_ij, h_i).

``A`` has the same orientation as ``grad_i W`` (pointing from i toward j),
is exact for linear fields regardless of particle disorder, and — used in
the same symmetrized pair form as the standard operator — conserves linear
momentum to machine precision.
"""

from __future__ import annotations

import numpy as np

from ..backend.base import backend_ops
from ..kernels.base import Kernel
from ..tree.box import Box
from ..tree.neighborlist import NeighborList
from .kernel_gradient import PairGradients

__all__ = ["compute_iad_matrices", "iad_pair_gradients"]


def _ephemeral_ctx():
    # Imported lazily: repro.sph.forces imports this module at load time,
    # so a top-level import of repro.sph here would be circular.
    from ..sph.pair_engine import PairContext

    return PairContext()


def compute_iad_matrices(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    *,
    rcond: float = 1e-10,
    rows: tuple[int, int] | None = None,
    ctx=None,
    backend=None,
) -> np.ndarray:
    """Per-particle IAD coefficient matrices ``C_i``, shape ``(n, dim, dim)``.

    The moment matrix is regularized by ``rcond * trace`` on the diagonal
    before inversion so isolated or degenerate particle configurations
    (e.g. perfectly coplanar neighbours in 3-D) stay finite.  ``rows``
    restricts the computation to a query-row slice, returning
    ``(hi - lo, dim, dim)`` matrices (pool fan-out mode).  ``ctx`` is an
    optional :class:`~repro.sph.pair_engine.PairContext` sharing pair
    geometry and kernel values with the other phases; a compiled
    ``backend`` fuses the ``W`` pass, the moment accumulation and the
    regularized inversion (closed-form instead of LAPACK — identical
    to rounding, covered by the documented backend tolerance).
    """
    ops = backend_ops(backend, kernel)
    if ops is not None:
        lo, hi = rows if rows is not None else (0, nlist.n)
        tokens = ctx.tokens if ctx is not None else None
        dim = particles.dim
        plist = ops.support_list(
            particles.x, particles.h, nlist, box, kernel, tokens
        )
        w = ops.pair_products(
            x=particles.x, h=particles.h, nlist=plist, box=box,
            kernel=kernel, dim=dim, lo=lo, hi=hi, tokens=tokens,
            side="i", want=("w",),
        )["w"]
        tau = ops.iad_tau(
            particles.x, plist, box, particles.m, particles.rho, w,
            dim, lo, hi,
        )
        return ops.tau_inverse(tau, dim, rcond)
    pc = ctx if ctx is not None else _ephemeral_ctx()
    pc.bind(particles.x, nlist, box, rows=rows)
    dim = particles.dim
    w = pc.w_i(kernel, particles.h, dim)
    vol_j = pc.gather_scratch("iad_rho_j", particles.rho, "j")
    np.divide(pc.m_j(particles.m), vol_j, out=vol_j)
    # dx = x_i - x_j; tau uses (x_j - x_i) but the sign cancels in the outer
    # product, so accumulate dx (x) dx directly.
    weights = np.multiply(vol_j, w, out=vol_j)
    dx = pc.dx
    outer = np.multiply(
        dx[:, :, None],
        dx[:, None, :],
        out=pc.arena.take("iad_outer", (pc.n_pairs, dim, dim)),
    )
    np.multiply(outer, weights[:, None, None], out=outer)
    tau = pc.reduce(outer)
    trace = np.einsum("kaa->k", tau)
    reg = np.maximum(trace * rcond, 1e-300)
    tau += reg[:, None, None] * np.eye(dim)[None, :, :]
    return np.linalg.inv(tau)


def iad_pair_gradients(
    c_matrices: np.ndarray,
    kernel: Kernel,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    dx: np.ndarray,
    r: np.ndarray,
    h_i: np.ndarray,
    h_j: np.ndarray,
    dim: int,
    ctx=None,
    h: np.ndarray | None = None,
) -> PairGradients:
    """IAD pair gradients ``A^(i)_ij`` and ``A^(j)_ij``.

    ``dx`` must be ``x_i - x_j``; the operator uses ``x_j - x_i = -dx`` so
    it points toward j like the standard kernel gradient.  With a bound
    ``ctx`` (and the full ``h`` it gathers from), the kernel values come
    out of the shared product memo and all temporaries live in reused
    arena buffers.
    """
    if ctx is not None and h is not None:
        take = ctx.arena.take
        wi = ctx.w_i(kernel, h, dim)
        wj = ctx.w_j(kernel, h, dim)
        n_pairs = ctx.n_pairs
        towards_j = np.negative(dx, out=take("iad_negdx", (n_pairs, dim)))
        cg = take("iad_cg", (n_pairs, dim, dim))
        np.take(c_matrices, pair_i, axis=0, out=cg)
        gi = np.einsum(
            "kab,kb->ka", cg, towards_j, out=take("iad_gi", (n_pairs, dim))
        )
        np.multiply(gi, wi[:, None], out=gi)
        np.take(c_matrices, pair_j, axis=0, out=cg)
        gj = np.einsum(
            "kab,kb->ka", cg, towards_j, out=take("iad_gj", (n_pairs, dim))
        )
        np.multiply(gj, wj[:, None], out=gj)
        return PairGradients(gi=gi, gj=gj)
    wi = kernel.value(r, h_i, dim)
    wj = kernel.value(r, h_j, dim)
    towards_j = -dx
    gi = np.einsum("kab,kb->ka", c_matrices[pair_i], towards_j) * wi[:, None]
    gj = np.einsum("kab,kb->ka", c_matrices[pair_j], towards_j) * wj[:, None]
    return PairGradients(gi=gi, gj=gj)
