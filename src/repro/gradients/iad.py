"""Integral Approach to Derivatives — IAD (García-Senz et al. 2012).

SPHYNX's gradient scheme (Table 1 "IAD").  Instead of differentiating the
kernel, gradients are obtained from a linearly-consistent integral
estimator: each particle carries the inverse ``C_i`` of the local moment
matrix

    tau_i[ab] = sum_j V_j (x_j - x_i)_a (x_j - x_i)_b W(r_ij, h_i)

and the pair gradient operator becomes

    A^(i)_ij = C_i (x_j - x_i) W(r_ij, h_i).

``A`` has the same orientation as ``grad_i W`` (pointing from i toward j),
is exact for linear fields regardless of particle disorder, and — used in
the same symmetrized pair form as the standard operator — conserves linear
momentum to machine precision.
"""

from __future__ import annotations

import numpy as np

from ..kernels.base import Kernel
from ..tree.box import Box
from ..tree.neighborlist import NeighborList
from .kernel_gradient import PairGradients

__all__ = ["compute_iad_matrices", "iad_pair_gradients"]


def compute_iad_matrices(
    particles,
    nlist: NeighborList,
    kernel: Kernel,
    box: Box | None = None,
    *,
    rcond: float = 1e-10,
    rows: tuple[int, int] | None = None,
) -> np.ndarray:
    """Per-particle IAD coefficient matrices ``C_i``, shape ``(n, dim, dim)``.

    The moment matrix is regularized by ``rcond * trace`` on the diagonal
    before inversion so isolated or degenerate particle configurations
    (e.g. perfectly coplanar neighbours in 3-D) stay finite.  ``rows``
    restricts the computation to a query-row slice, returning
    ``(hi - lo, dim, dim)`` matrices (pool fan-out mode).
    """
    if rows is None:
        lo, hi = 0, particles.n
        sub = nlist
    else:
        lo, hi = rows
        sub = nlist.row_slice(lo, hi)
    n_rows = hi - lo
    i = sub.pair_i() + lo
    j = sub.indices
    dx, r = sub.pair_geometry(particles.x, box, row_offset=lo)
    dim = particles.dim
    w = kernel.value(r, particles.h[i], dim)
    vol_j = particles.m[j] / particles.rho[j]
    # dx = x_i - x_j; tau uses (x_j - x_i) but the sign cancels in the outer
    # product, so accumulate dx (x) dx directly.
    weights = vol_j * w
    outer = dx[:, :, None] * dx[:, None, :] * weights[:, None, None]
    tau = np.zeros((n_rows, dim, dim))
    flat_i = sub.pair_i()
    for a in range(dim):
        for b in range(a, dim):
            col = np.bincount(flat_i, weights=outer[:, a, b], minlength=n_rows)
            tau[:, a, b] = col
            if b != a:
                tau[:, b, a] = col
    trace = np.einsum("kaa->k", tau)
    reg = np.maximum(trace * rcond, 1e-300)
    tau += reg[:, None, None] * np.eye(dim)[None, :, :]
    return np.linalg.inv(tau)


def iad_pair_gradients(
    c_matrices: np.ndarray,
    kernel: Kernel,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    dx: np.ndarray,
    r: np.ndarray,
    h_i: np.ndarray,
    h_j: np.ndarray,
    dim: int,
) -> PairGradients:
    """IAD pair gradients ``A^(i)_ij`` and ``A^(j)_ij``.

    ``dx`` must be ``x_i - x_j``; the operator uses ``x_j - x_i = -dx`` so
    it points toward j like the standard kernel gradient.
    """
    wi = kernel.value(r, h_i, dim)
    wj = kernel.value(r, h_j, dim)
    towards_j = -dx
    gi = np.einsum("kab,kb->ka", c_matrices[pair_i], towards_j) * wi[:, None]
    gj = np.einsum("kab,kb->ka", c_matrices[pair_j], towards_j) * wj[:, None]
    return PairGradients(gi=gi, gj=gj)
