"""The deprecated pre-``repro.api`` surface, in one documented place.

Between PR 4 (driver-API consolidation) and PR 10 (the service/API
redesign) the old entry points lived as warn-shims scattered through
:mod:`repro.core.simulation`.  They now live here — one module to read
to learn what moved where, one module to delete when the compatibility
window closes.  Everything below keeps working and warns exactly once
per process (:func:`repro.observability.deprecation.warn_once`).

Migration table
===============

=============================================  ==============================
Deprecated                                     Replacement
=============================================  ==============================
``Simulation(exec_config=...)``                ``Simulation(run_config=RunConfig(exec=...))``
                                               or ``sim.configure(exec=...)``
``Simulation(resilience=...)``                 ``Simulation(run_config=RunConfig(resilience=...))``
                                               or ``sim.configure(resilience=...)``
``sim.pair_engine_stats``                      ``sim.report().pair_engine``
``sim.neighbor_cache_stats``                   ``sim.report().neighbor_cache``
``sim.supervisor_stats``                       ``sim.report().recovery``
``from repro import Tracer, State, ...``       keep importing from the owning
(profiling/tree/conservation helpers pruned    submodule (``repro.profiling``,
from ``repro.__all__``)                        ``repro.tree``, ``repro.core``)
blocking ``Simulation.run()`` as the only      ``repro.api.submit(spec)`` (job
entry point                                    farm + result cache) with
                                               ``repro.api.run(spec)`` as the
                                               synchronous wrapper
=============================================  ==============================

The shims are exercised by the PR-4 era tests (``tests/test_simulation
.py``, ``tests/test_observability.py``) — they pin both that the old
spellings still work and that each warns.
"""

from __future__ import annotations

from .observability.deprecation import warn_once

__all__ = [
    "resolve_legacy_driver_kwargs",
    "legacy_pair_engine_stats",
    "legacy_neighbor_cache_stats",
    "legacy_supervisor_stats",
]


def resolve_legacy_driver_kwargs(sim) -> None:
    """Fold the deprecated ``exec_config``/``resilience`` constructor
    kwargs into ``sim.run_config`` (PR-4 shim, unchanged semantics).

    Called from ``Simulation.__post_init__``.  Passing both the old
    kwargs and a ``run_config`` is an error, not a merge.
    """
    if sim.run_config is not None and (
        sim.exec_config is not None or sim.resilience is not None
    ):
        raise ValueError(
            "pass either run_config or the deprecated "
            "exec_config/resilience kwargs, not both"
        )
    if sim.run_config is None:
        from .core.config import RunConfig

        if sim.exec_config is not None:
            warn_once(
                "Simulation.exec_config",
                "Simulation(exec_config=...) is deprecated; use "
                "run_config=RunConfig(exec=...) or "
                "Simulation.configure(exec=...)",
            )
        if sim.resilience is not None:
            warn_once(
                "Simulation.resilience",
                "Simulation(resilience=...) is deprecated; use "
                "run_config=RunConfig(resilience=...) or "
                "Simulation.configure(resilience=...)",
            )
        sim.run_config = RunConfig(
            exec=sim.exec_config, resilience=sim.resilience
        )


def legacy_pair_engine_stats(sim):
    """``sim.pair_engine_stats`` shim → ``report().pair_engine``."""
    warn_once(
        "Simulation.pair_engine_stats",
        "Simulation.pair_engine_stats is deprecated; use "
        "Simulation.report().pair_engine",
    )
    return sim._pair_stats_total()


def legacy_neighbor_cache_stats(sim):
    """``sim.neighbor_cache_stats`` shim → ``report().neighbor_cache``."""
    warn_once(
        "Simulation.neighbor_cache_stats",
        "Simulation.neighbor_cache_stats is deprecated; use "
        "Simulation.report().neighbor_cache",
    )
    return sim._ncache.stats if sim._ncache is not None else None


def legacy_supervisor_stats(sim):
    """``sim.supervisor_stats`` shim → ``report().recovery``."""
    warn_once(
        "Simulation.supervisor_stats",
        "Simulation.supervisor_stats is deprecated; use "
        "Simulation.report().recovery",
    )
    return sim._engine.supervisor_stats if sim._engine is not None else None
