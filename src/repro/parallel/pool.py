"""Persistent process pool with shared-memory task fan-out.

One long-lived worker process per slot, each holding a duplex pipe to the
parent.  A task is a small picklable dict — kind, arena descriptor, row
range, scalar parameters — and all bulk data travels through the
:class:`~repro.parallel.shm.ShmArena`.  Workers execute the kind's
handler from :data:`TASK_HANDLERS`, write bulk results into arena output
fields at their disjoint row slice, and reply with scalars only.

``parallel_map`` is the one fan-out primitive: split the query rows into
chunks (pair-balanced when CSR offsets are given), round-robin the chunks
over the workers, then gather replies in submission order.  Fault
tolerance lives one layer up, in
:class:`~repro.parallel.supervisor.SupervisedPool`; this module supplies
the hooks it needs: a ``stamp`` echoed verbatim in every reply (so late
replies from presumed-dead workers are identifiable), per-slot
:meth:`WorkerPool.respawn`, and deterministic worker-side fault injection
driven by an optional ``chaos`` entry in the task dict (see
:mod:`repro.resilience.chaos`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import traceback
import zlib
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from .shm import ArenaView

__all__ = ["WorkerPool", "parallel_map", "row_chunks"]

#: kind -> handler(views: ArenaView, params: dict, lo: int, hi: int) -> dict
TASK_HANDLERS: Dict[str, Callable[..., dict]] = {}


def register_task(kind: str):
    """Decorator adding a worker-side task handler under ``kind``."""

    def _register(fn):
        TASK_HANDLERS[kind] = fn
        return fn

    return _register


def _flip_output_bit(views, field: str, lo: int, hi: int, index: int, bit: int) -> None:
    """Chaos SDC injection: flip one bit inside an output row slice."""
    flat = views.view(field)[lo:hi].reshape(-1)
    if flat.size == 0:
        return
    cell = flat[index % flat.size : index % flat.size + 1].view(np.uint64)
    cell ^= np.uint64(1) << np.uint64(bit % 64)


def _worker_main(conn) -> None:
    """Worker loop: recv task, execute handler, reply; ``None`` stops."""
    # Handlers live in repro.parallel.executor; import inside the worker so
    # spawn-start contexts (no inherited module state) also find them.
    from . import executor  # noqa: F401  (populates TASK_HANDLERS)

    views = ArenaView()
    while True:
        try:
            task = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if task is None:
            break
        chaos = task.get("chaos") or {}
        if chaos.get("kill"):
            # Injected fail-stop: die before doing any work; the reply is
            # lost and the supervisor must detect and re-issue.
            os._exit(1)
        reply: Dict[str, Any]
        try:
            views.refresh(task["arena"])
            handler = TASK_HANDLERS[task["kind"]]
            t0 = time.perf_counter()
            data = handler(views, task["params"], task["lo"], task["hi"])
            dur = time.perf_counter() - t0
            reply = {"ok": True, "data": data}
            # Span envelope: perf_counter is CLOCK_MONOTONIC system-wide
            # on Linux, so the parent can place this interval on its own
            # timeline with nothing but an origin shift.
            reply["span"] = {
                "t0": t0,
                "dur": dur,
                "kind": task["kind"],
                "phase": task.get("phase", "?"),
                "lo": task["lo"],
                "hi": task["hi"],
            }
            if task.get("verify"):
                # CRC the output slices *after* computing so the parent can
                # detect corruption between this write and its read.
                reply["crc"] = {
                    name: zlib.crc32(
                        np.ascontiguousarray(
                            views.view(name)[task["lo"] : task["hi"]]
                        ).tobytes()
                    )
                    for name in task["verify"]
                }
            for field, index, bit in chaos.get("flip", ()):
                # Injected SDC: corrupt the shared-memory output *after*
                # the checksum was taken (models a torn/late write).
                _flip_output_bit(views, field, task["lo"], task["hi"], index, bit)
        except Exception:
            reply = {"ok": False, "error": traceback.format_exc()}
        if "stamp" in task:
            reply["stamp"] = task["stamp"]
        if chaos.get("delay"):
            # Injected hang: reply eventually, but well past any deadline.
            time.sleep(float(chaos["delay"]))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # parent gave up on us
            break
    views.close()
    conn.close()


class WorkerPool:
    """Fixed set of persistent worker processes fed over pipes."""

    #: optional callable ``(worker_slot, span_dict) -> None``; installed by
    #: the observability layer to merge worker spans into the driver trace.
    span_sink: Callable[[int, dict], None] | None = None

    def __init__(self, n_workers: int, start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.n_workers = n_workers
        self._conns: List[Any] = [None] * n_workers
        self._procs: List[Any] = [None] * n_workers
        for worker in range(n_workers):
            self._spawn(worker)
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _spawn(self, worker: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        self._conns[worker] = parent_conn
        self._procs[worker] = proc

    def submit(self, worker: int, task: dict) -> None:
        self._conns[worker].send(task)

    def recv(self, worker: int) -> dict:
        reply = self._conns[worker].recv()
        if not reply["ok"]:
            raise RuntimeError(
                f"pool worker {worker} failed:\n{reply['error']}"
            )
        if self.span_sink is not None and "span" in reply:
            self.span_sink(worker, reply["span"])
        return reply["data"]

    # ------------------------------------------------------------------
    # Liveness interface for the supervisor
    # ------------------------------------------------------------------
    def connection(self, worker: int):
        """Parent end of the worker's pipe (for ``connection.wait``)."""
        return self._conns[worker]

    def sentinel(self, worker: int) -> int:
        """Process sentinel: readable when the worker has exited."""
        return self._procs[worker].sentinel

    def is_alive(self, worker: int) -> bool:
        return self._procs[worker].is_alive()

    def respawn(self, worker: int) -> None:
        """Replace a dead or hung worker with a fresh process.

        The old slot is torn down unconditionally (terminate → kill), so a
        presumed-dead worker can never write into a future arena cycle.
        """
        proc, conn = self._procs[worker], self._conns[worker]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - terminate ignored
            proc.kill()
            proc.join(timeout=5.0)
        try:
            proc.close()
        except ValueError:  # pragma: no cover - still running somehow
            pass
        self._spawn(worker)

    def terminate_worker(self, worker: int) -> None:
        """Kill one worker without replacement (degraded operation)."""
        proc, conn = self._procs[worker], self._conns[worker]
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        try:
            proc.close()
        except ValueError:  # pragma: no cover
            pass
        self._procs[worker] = None
        self._conns[worker] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Idempotent shutdown: drain, join with timeout, then terminate.

        Unregisters the ``atexit`` hook on the first explicit call so a
        closed pool leaves no dangling interpreter-exit callback, and
        reaps every child (``Process.close``) so ``-W error`` runs see no
        resource warnings.
        """
        if self._closed:
            return
        self._closed = True
        atexit.unregister(self.close)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for proc in self._procs:
            if proc is None:
                continue
            if proc.is_alive():  # pragma: no cover - reap the terminated
                proc.join(timeout=1.0)
            try:
                proc.close()
            except ValueError:  # pragma: no cover
                pass
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def row_chunks(
    n_rows: int,
    n_chunks: int,
    offsets: np.ndarray | None = None,
) -> List[Tuple[int, int]]:
    """Contiguous row ranges covering ``[0, n_rows)``.

    With CSR ``offsets`` the cuts fall on ~equal *pair* counts (the unit
    of SPH work); otherwise rows are split evenly.
    """
    n_chunks = max(1, min(n_chunks, n_rows)) if n_rows else 1
    if n_rows == 0:
        return []
    if offsets is not None:
        from ..tree.neighborlist import balanced_row_slices

        return balanced_row_slices(offsets, n_chunks)
    bounds = np.linspace(0, n_rows, n_chunks + 1).astype(np.int64)
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def parallel_map(
    pool: WorkerPool,
    kind: str,
    chunks: Sequence[Tuple[int, int]],
    arena_descriptor: dict,
    params: dict,
    phase: str = "?",
) -> List[Tuple[Tuple[int, int], Any]]:
    """Fan ``chunks`` of rows out over the pool; gather replies in order.

    Chunks are assigned round-robin; each worker processes its queue in
    FIFO order, so replies can be collected deterministically.  Returns
    ``[((lo, hi), reply_data), ...]`` in chunk order.  ``phase`` labels
    the chunks' span envelopes with the Algorithm-1 phase letter.
    """
    assignments: List[int] = []
    for k, (lo, hi) in enumerate(chunks):
        worker = k % pool.n_workers
        pool.submit(
            worker,
            {
                "kind": kind,
                "arena": arena_descriptor,
                "params": params,
                "lo": int(lo),
                "hi": int(hi),
                "phase": phase,
            },
        )
        assignments.append(worker)
    return [
        (chunk, pool.recv(worker))
        for chunk, worker in zip(chunks, assignments)
    ]
