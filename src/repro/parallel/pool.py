"""Persistent process pool with shared-memory task fan-out.

One long-lived worker process per slot, each holding a duplex pipe to the
parent.  A task is a small picklable dict — kind, arena descriptor, row
range, scalar parameters — and all bulk data travels through the
:class:`~repro.parallel.shm.ShmArena`.  Workers execute the kind's
handler from :data:`TASK_HANDLERS`, write bulk results into arena output
fields at their disjoint row slice, and reply with scalars only.

``parallel_map`` is the one fan-out primitive: split the query rows into
chunks (pair-balanced when CSR offsets are given), round-robin the chunks
over the workers, then gather replies in submission order.
"""

from __future__ import annotations

import atexit
import multiprocessing
import traceback
from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np

from .shm import ArenaView

__all__ = ["WorkerPool", "parallel_map", "row_chunks"]

#: kind -> handler(views: ArenaView, params: dict, lo: int, hi: int) -> dict
TASK_HANDLERS: Dict[str, Callable[..., dict]] = {}


def register_task(kind: str):
    """Decorator adding a worker-side task handler under ``kind``."""

    def _register(fn):
        TASK_HANDLERS[kind] = fn
        return fn

    return _register


def _worker_main(conn) -> None:
    """Worker loop: recv task, execute handler, reply; ``None`` stops."""
    # Handlers live in repro.parallel.executor; import inside the worker so
    # spawn-start contexts (no inherited module state) also find them.
    from . import executor  # noqa: F401  (populates TASK_HANDLERS)

    views = ArenaView()
    while True:
        try:
            task = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        if task is None:
            break
        try:
            views.refresh(task["arena"])
            handler = TASK_HANDLERS[task["kind"]]
            data = handler(views, task["params"], task["lo"], task["hi"])
            conn.send({"ok": True, "data": data})
        except Exception:
            conn.send({"ok": False, "error": traceback.format_exc()})
    views.close()
    conn.close()


class WorkerPool:
    """Fixed set of persistent worker processes fed over pipes."""

    def __init__(self, n_workers: int, start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        self.n_workers = n_workers
        self._conns = []
        self._procs = []
        for _ in range(n_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def submit(self, worker: int, task: dict) -> None:
        self._conns[worker].send(task)

    def recv(self, worker: int) -> dict:
        reply = self._conns[worker].recv()
        if not reply["ok"]:
            raise RuntimeError(
                f"pool worker {worker} failed:\n{reply['error']}"
            )
        return reply["data"]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def row_chunks(
    n_rows: int,
    n_chunks: int,
    offsets: np.ndarray | None = None,
) -> List[Tuple[int, int]]:
    """Contiguous row ranges covering ``[0, n_rows)``.

    With CSR ``offsets`` the cuts fall on ~equal *pair* counts (the unit
    of SPH work); otherwise rows are split evenly.
    """
    n_chunks = max(1, min(n_chunks, n_rows)) if n_rows else 1
    if n_rows == 0:
        return []
    if offsets is not None:
        from ..tree.neighborlist import balanced_row_slices

        return balanced_row_slices(offsets, n_chunks)
    bounds = np.linspace(0, n_rows, n_chunks + 1).astype(np.int64)
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


def parallel_map(
    pool: WorkerPool,
    kind: str,
    chunks: Sequence[Tuple[int, int]],
    arena_descriptor: dict,
    params: dict,
) -> List[Tuple[Tuple[int, int], Any]]:
    """Fan ``chunks`` of rows out over the pool; gather replies in order.

    Chunks are assigned round-robin; each worker processes its queue in
    FIFO order, so replies can be collected deterministically.  Returns
    ``[((lo, hi), reply_data), ...]`` in chunk order.
    """
    assignments: List[int] = []
    for k, (lo, hi) in enumerate(chunks):
        worker = k % pool.n_workers
        pool.submit(
            worker,
            {
                "kind": kind,
                "arena": arena_descriptor,
                "params": params,
                "lo": int(lo),
                "hi": int(hi),
            },
        )
        assignments.append(worker)
    return [
        (chunk, pool.recv(worker))
        for chunk, worker in zip(chunks, assignments)
    ]
