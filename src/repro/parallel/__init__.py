"""Shared-memory parallel execution layer (node-level, process-based).

The paper's mini-app targets hybrid MPI+X execution; this package supplies
the intra-node "X": a persistent process pool fed through a
``multiprocessing.shared_memory`` arena, evaluating the expensive
Algorithm-1 phases (density, IAD, momentum/energy, gravity) over
pair-balanced slices of the CSR neighbour list.  The slice decomposition
preserves per-particle reduction order, so pool results match the serial
path bit-for-bit — which the parity tests pin down to rtol = 1e-12.

Fault tolerance (:mod:`repro.parallel.supervisor`): the pool runs under a
supervisor by default — crashed workers are respawned, hung ones deadline
out and their chunks re-issue, late replies are discarded by stamp, and
when everything else fails the phase completes serially in the parent.
"""

from .executor import ExecConfig, ParallelEngine
from .pool import WorkerPool, parallel_map, row_chunks
from .shm import ArenaView, ShmArena
from .supervisor import (
    RecoveryEvent,
    SupervisedPool,
    SupervisorConfig,
    SupervisorStats,
)

__all__ = [
    "ExecConfig",
    "ParallelEngine",
    "WorkerPool",
    "parallel_map",
    "row_chunks",
    "ArenaView",
    "ShmArena",
    "SupervisedPool",
    "SupervisorConfig",
    "SupervisorStats",
    "RecoveryEvent",
]
