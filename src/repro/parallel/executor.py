"""Shared-memory parallel execution of Algorithm-1 phases E-I.

Parent side, :class:`ParallelEngine` mirrors the serial kernel entry
points (density, IAD moments, forces, gravity) but fans each one out over
a :class:`~repro.parallel.pool.WorkerPool`: inputs are published into the
:class:`~repro.parallel.shm.ShmArena`, query rows are split at equal-pair
CSR boundaries, and each worker evaluates its row slice with the *same*
kernel code the serial path runs (``rows=(lo, hi)`` mode), writing
results into arena output fields at disjoint slices.  Parity with the
serial path is therefore structural: both paths execute identical
per-pair arithmetic and identical per-particle reduction orders.

Worker side, the ``@register_task`` handlers reconstruct lightweight
views of the particle SoA and the CSR neighbour list straight from shared
memory (zero copies) and call the slice-mode kernels.

Tracing: every engine call records one ``FAN_OUT`` interval (publish +
dispatch) and one ``REDUCE`` interval (await workers + merge) under the
calling phase's letter, so Figure-4 style timelines show where pool
orchestration time goes.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..backend import BACKEND_CHOICES, select_backend
from ..core.particles import ParticleSystem
from ..gradients.iad import compute_iad_matrices
from ..gravity.barnes_hut import GravityResult, barnes_hut_gravity
from ..gravity.multipole import NodeMoments, compute_node_moments
from ..profiling.trace import State, Tracer
from ..sph.density import compute_density, grad_h_terms
from ..sph.forces import ForceResult, compute_forces, velocity_divergence_curl
from ..sph.pair_engine import PairContext, PairEngineStats
from ..sph.viscosity import ViscosityParams, balsara_switch
from ..tree.neighborlist import NeighborList
from ..tree.octree import Octree
from .pool import WorkerPool, parallel_map, register_task, row_chunks
from .shm import ShmArena
from .supervisor import SupervisedPool, SupervisorConfig, SupervisorStats

__all__ = ["ExecConfig", "ParallelEngine"]


@dataclass(frozen=True)
class ExecConfig:
    """Execution-layer knobs (orthogonal to the physics configuration).

    Parameters
    ----------
    workers:
        ``0`` (default) keeps every phase serial; ``>= 1`` runs phases
        E-I on a process pool of that many workers.  ``workers=1`` still
        exercises the full fan-out/reduce machinery (useful for parity
        testing); speedup requires multiple cores.
    chunks_per_worker:
        Row chunks submitted per worker per phase (more chunks smooth
        load imbalance at slightly higher dispatch cost).
    neighbor_cache:
        Enable the Verlet-skin neighbour-list cache: lists are built with
        padded support ``(1 + skin) * 2 h`` and phases B-D are skipped
        while no particle has drifted more than ``skin * h``.
    cache_skin:
        Skin fraction of ``h`` (in (0, 1)).
    start_method:
        multiprocessing start method; default picks ``fork`` when
        available, else ``spawn``.
    arena_capacity:
        Initial shared-memory arena size in bytes (grows on demand).
    supervise:
        Run the pool under the fault-tolerant
        :class:`~repro.parallel.supervisor.SupervisedPool` (crash/hang
        detection, chunk re-issue, serial degradation).  On by default —
        the overhead on a healthy pool is one ``connection.wait`` per
        reply.  ``False`` keeps PR-1's bare ``parallel_map``.
    supervisor:
        Deadline/retry policy; ``None`` uses
        :class:`~repro.parallel.supervisor.SupervisorConfig` defaults.
    verify_outputs:
        Opt-in per-phase SDC pass: parent re-checksums every row-sliced
        phase output against the worker's CRC and range-scans it, then
        recomputes corrupted chunks serially (requires ``supervise``).
    chaos:
        Deterministic fault-injection policy
        (:class:`~repro.resilience.chaos.ChaosPolicy`) consulted at task
        submission; ``None`` (default) injects nothing.
    pair_engine:
        Enable the per-step pair-geometry cache and scratch-buffer arena
        (:mod:`repro.sph.pair_engine`) in the driver and — when the pool
        is on — in every worker (one persistent context per row slice,
        keyed by parent-minted epoch tokens).  On by default; ``False``
        makes every phase rebuild its pair data from scratch (the
        pre-engine behaviour, bitwise-identical results).
    backend:
        Execution backend for the SPH pair loops: ``"numpy"`` (default,
        the vectorized reference), ``"numba"`` / ``"cffi"`` (compiled
        fused kernels from :mod:`repro.backend`) or ``"auto"`` (best
        available).  A named compiled backend that is unavailable on
        this host degrades to numpy with a single ``RuntimeWarning``.
        Workers resolve the same name in their own process.
    """

    workers: int = 0
    chunks_per_worker: int = 1
    neighbor_cache: bool = False
    cache_skin: float = 0.3
    start_method: Optional[str] = None
    arena_capacity: int = 1 << 24
    supervise: bool = True
    supervisor: Optional[SupervisorConfig] = None
    verify_outputs: bool = False
    chaos: Optional[Any] = None
    pair_engine: bool = True
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"backend must be one of {', '.join(BACKEND_CHOICES)}, "
                f"got {self.backend!r}"
            )
        if self.chunks_per_worker < 1:
            raise ValueError(
                f"chunks_per_worker must be >= 1, got {self.chunks_per_worker}"
            )
        if not 0.0 < self.cache_skin < 1.0:
            raise ValueError(f"cache_skin must be in (0, 1), got {self.cache_skin}")
        if (self.verify_outputs or self.chaos is not None) and not self.supervise:
            raise ValueError(
                "verify_outputs / chaos require supervise=True"
            )

    @property
    def parallel_enabled(self) -> bool:
        return self.workers >= 1


# ======================================================================
# Worker-side task handlers
# ======================================================================
_STATE_FIELDS = ("x", "v", "m", "h", "rho", "p", "cs")


def _particles_from(views, rho_field: str = "rho") -> ParticleSystem:
    return ParticleSystem(
        x=views.view("x"),
        v=views.view("v"),
        m=views.view("m"),
        h=views.view("h"),
        rho=views.view(rho_field),
        p=views.view("p"),
        cs=views.view("cs"),
    )


def _nlist_from(views) -> NeighborList:
    return NeighborList(
        offsets=views.view("nl_offsets"), indices=views.view("nl_indices")
    )


#: Per-process pair contexts for the row-sliced worker path, keyed by the
#: task's row range.  Chunk boundaries are stable across the phases of a
#: step (same CSR offsets), so one context serves a slice for the whole
#: step; parent-minted tokens shipped in ``params["pair_tokens"]`` drive
#: invalidation.  Contexts are trusted (``trust_tokens=True``) because
#: shared-memory neighbour-list views are rebuilt per task.
_WORKER_CTXS: dict = {}
_WORKER_CTX_CAP = 64


def _worker_pair_ctx(params, lo, hi):
    """Fetch/create this slice's persistent context (None = engine off)."""
    tokens = params.get("pair_tokens")
    if tokens is None:
        return None
    key = (lo, hi)
    ctx = _WORKER_CTXS.get(key)
    if ctx is None:
        if len(_WORKER_CTXS) >= _WORKER_CTX_CAP:
            # Chunk boundaries changed wholesale (e.g. a resized run in
            # the same pool) — drop everything rather than leak arenas.
            _WORKER_CTXS.clear()
        ctx = PairContext(trust_tokens=True)
        _WORKER_CTXS[key] = ctx
    ctx.set_tokens(*tokens)
    return ctx


def _pair_reply(ctx, snap, data):
    if ctx is not None:
        data["pair"] = ctx.stats.delta(snap)
    return data


def _worker_backend(params):
    """Resolve this process's backend from the shipped name (None = numpy).

    The parent only ships a name when its own resolution produced a
    compiled backend, so a worker that cannot build the same toolchain
    falls back to numpy via the usual warn-once path — results are
    still correct, just slower on that worker.
    """
    name = params.get("backend")
    if name is None:
        return None
    return select_backend(name)


@register_task("density")
def _task_density(views, params, lo, hi):
    ctx = _worker_pair_ctx(params, lo, hi)
    snap = ctx.stats.snapshot() if ctx is not None else None
    particles = _particles_from(views, rho_field=params.get("rho_field", "rho"))
    rho = compute_density(
        particles,
        _nlist_from(views),
        params["kernel"],
        params["box"],
        volume_elements=params["volume_elements"],
        xmass_exponent=params["xmass_exponent"],
        rows=(lo, hi),
        ctx=ctx,
        backend=_worker_backend(params),
    )
    views.view(params["out"])[lo:hi] = rho
    return _pair_reply(ctx, snap, {})


@register_task("iad")
def _task_iad(views, params, lo, hi):
    ctx = _worker_pair_ctx(params, lo, hi)
    snap = ctx.stats.snapshot() if ctx is not None else None
    c = compute_iad_matrices(
        _particles_from(views),
        _nlist_from(views),
        params["kernel"],
        params["box"],
        rows=(lo, hi),
        ctx=ctx,
        backend=_worker_backend(params),
    )
    views.view("out_c")[lo:hi] = c
    return _pair_reply(ctx, snap, {})


@register_task("gradh")
def _task_gradh(views, params, lo, hi):
    ctx = _worker_pair_ctx(params, lo, hi)
    snap = ctx.stats.snapshot() if ctx is not None else None
    omega = grad_h_terms(
        _particles_from(views),
        _nlist_from(views),
        params["kernel"],
        params["box"],
        rows=(lo, hi),
        ctx=ctx,
        backend=_worker_backend(params),
    )
    views.view("out_omega")[lo:hi] = omega
    return _pair_reply(ctx, snap, {})


@register_task("divcurl")
def _task_divcurl(views, params, lo, hi):
    ctx = _worker_pair_ctx(params, lo, hi)
    snap = ctx.stats.snapshot() if ctx is not None else None
    div, curl = velocity_divergence_curl(
        _particles_from(views),
        _nlist_from(views),
        params["kernel"],
        params["box"],
        rows=(lo, hi),
        ctx=ctx,
        backend=_worker_backend(params),
    )
    views.view("out_div")[lo:hi] = div
    views.view("out_curl")[lo:hi] = curl
    return _pair_reply(ctx, snap, {})


@register_task("forces")
def _task_forces(views, params, lo, hi):
    ctx = _worker_pair_ctx(params, lo, hi)
    snap = ctx.stats.snapshot() if ctx is not None else None
    omega = views.view("out_omega") if params["grad_h"] else None
    balsara_f = views.view("balsara_f") if params["use_balsara"] else None
    c_matrices = views.view("c_matrices") if params["iad"] else None
    result = compute_forces(
        _particles_from(views),
        _nlist_from(views),
        params["kernel"],
        params["box"],
        gradients="iad" if params["iad"] else "standard",
        viscosity=params["viscosity"],
        grad_h=params["grad_h"],
        c_matrices=c_matrices,
        rows=(lo, hi),
        omega=omega,
        balsara_f=balsara_f,
        ctx=ctx,
        backend=_worker_backend(params),
    )
    views.view("out_a")[lo:hi] = result.a
    views.view("out_du")[lo:hi] = result.du
    return _pair_reply(ctx, snap, {"max_mu": result.max_mu})


_TREE_FIELDS = (
    "center",
    "half",
    "level",
    "child_start",
    "child_count",
    "pstart",
    "pend",
    "order",
)


@register_task("gravity")
def _task_gravity(views, params, lo, hi):
    leaves = views.view("leaves")[lo:hi]
    if leaves.size == 0:
        return {"n_p2p": 0, "n_m2p": 0}
    tree = Octree(
        box=params["box"],
        **{name: views.view(f"tree_{name}") for name in _TREE_FIELDS},
    )
    moments = NodeMoments(
        order=params["order"],
        mass=views.view("mom_mass"),
        com=views.view("mom_com"),
        m2=views.view("mom_m2") if params["has_m2"] else None,
        m3=views.view("mom_m3") if params["has_m3"] else None,
        m4=views.view("mom_m4") if params["has_m4"] else None,
    )
    x = views.view("x")
    m = views.view("m")
    result = barnes_hut_gravity(
        x,
        m,
        g_const=params["g_const"],
        softening=params["softening"],
        theta=params["theta"],
        order=params["order"],
        tree=tree,
        moments=moments,
        target_leaves=leaves,
    )
    # Targets of disjoint leaves are disjoint particle index sets, so the
    # scatter below never races with other workers.
    flat = np.concatenate(
        [
            np.arange(s, e, dtype=np.int64)
            for s, e in zip(tree.pstart[leaves], tree.pend[leaves])
        ]
    )
    tidx = tree.order[flat]
    views.view("out_acc")[tidx] = result.acc[tidx]
    views.view("out_phi")[tidx] = result.phi[tidx]
    return {"n_p2p": result.n_p2p, "n_m2p": result.n_m2p}


@register_task("probe")
def _task_probe(views, params, lo, hi):
    """Physics-free diagnostic task for supervisor/chaos tests.

    Writes ``scale * row_index`` into rows ``[lo, hi)`` of ``params['out']``
    (when given) after an optional sleep, and replies with the row count.
    """
    if params.get("sleep"):
        time.sleep(float(params["sleep"]))
    out = params.get("out")
    if out is not None:
        views.view(out)[lo:hi] = (
            np.arange(lo, hi, dtype=np.float64) * float(params.get("scale", 1.0))
        )
    return {"rows": hi - lo}


# ======================================================================
# Parent-side engine
# ======================================================================
def _field_bytes(shape, dtype) -> int:
    nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
    return (nbytes + 63) // 64 * 64


class ParallelEngine:
    """Pool-backed evaluation of density / IAD / forces / gravity.

    Owns a :class:`WorkerPool` and a :class:`ShmArena` (both created
    lazily on first use) and is safe to share across the phases of one
    :class:`~repro.core.simulation.Simulation`.  Results are written into
    the same particle arrays the serial path writes, so the two paths are
    drop-in interchangeable.
    """

    def __init__(
        self,
        config: ExecConfig,
        tracer: Optional[Tracer] = None,
        rank: int = 0,
        worker_spans: bool = True,
    ) -> None:
        if not config.parallel_enabled:
            raise ValueError("ParallelEngine needs ExecConfig(workers >= 1)")
        self.config = config
        self.tracer = tracer
        self.rank = rank
        self.worker_spans = worker_spans
        self._pool: Optional[Union[WorkerPool, SupervisedPool]] = None
        self._arena: Optional[ShmArena] = None
        self._step = 0
        #: Aggregated pair-engine counters folded in from worker replies.
        self.pair_stats = PairEngineStats()

    def _merge_pair_stats(self, replies) -> None:
        for _, data in replies:
            if isinstance(data, dict):
                self.pair_stats.merge(data.get("pair"))

    # ------------------------------------------------------------------
    def _ensure(self) -> Tuple[Union[WorkerPool, SupervisedPool], ShmArena]:
        if self._pool is None:
            if self.config.supervise:
                self._pool = SupervisedPool(
                    self.config.workers,
                    start_method=self.config.start_method,
                    config=self.config.supervisor,
                    chaos=self.config.chaos,
                    tracer=self.tracer,
                    rank=self.rank,
                )
                self._pool.step_index = self._step
            else:
                self._pool = WorkerPool(
                    self.config.workers, start_method=self.config.start_method
                )
            self._install_span_sink(self._pool)
            self._arena = ShmArena(self.config.arena_capacity)
        return self._pool, self._arena

    def _install_span_sink(self, pool) -> None:
        """Merge worker span envelopes into the driver's tracer.

        Workers time their handler with ``perf_counter`` (system-wide
        monotonic), so the parent only needs to attribute the interval to
        row ``thread = slot + 1`` of its own rank and the current step.
        Supervised pools forward spans solely for applied replies, which
        keeps the merged timeline coherent across crashes and respawns.
        """
        tr = self.tracer
        if (
            not self.worker_spans
            or tr is None
            or not getattr(tr, "enabled", False)
        ):
            return
        record = getattr(tr, "record_span", None)
        if record is None:
            return
        engine = self

        def sink(worker: int, span: dict) -> None:
            record(
                span.get("phase", "?"),
                State.USEFUL,
                span["t0"],
                span["dur"],
                rank=engine.rank,
                thread=worker + 1,
                step=engine._step,
                label=(
                    f"{span.get('kind', '?')}"
                    f"[{span.get('lo', 0)}:{span.get('hi', 0)})"
                ),
            )

        pool.span_sink = sink

    def _map(
        self,
        kind: str,
        chunks: Sequence[Tuple[int, int]],
        params: dict,
        *,
        phase: str,
        verify: Sequence[Tuple[str, bool]] = (),
    ) -> List[Tuple[Tuple[int, int], Any]]:
        """Fan out one task kind — supervised or bare, per the config."""
        pool, arena = self._ensure()
        if isinstance(pool, SupervisedPool):
            return pool.map(
                kind,
                chunks,
                arena.descriptor(),
                params,
                phase=phase,
                verify=verify if self.config.verify_outputs else (),
            )
        return parallel_map(
            pool, kind, chunks, arena.descriptor(), params, phase=phase
        )

    def set_step(self, step: int) -> None:
        """Tell the supervisor the driver's step index (chaos matching)."""
        if isinstance(self._pool, SupervisedPool):
            self._pool.step_index = step
        self._step = step

    @property
    def supervisor_stats(self) -> Optional[SupervisorStats]:
        """Recovery counters/events, or ``None`` when unsupervised."""
        if isinstance(self._pool, SupervisedPool):
            return self._pool.stats
        return None

    def _phase(self, letter: str, state: State):
        if self.tracer is None:
            return nullcontext()
        return self.tracer.phase(letter, state, self.rank)

    @property
    def n_chunks(self) -> int:
        return self.config.workers * self.config.chunks_per_worker

    def close(self) -> None:
        """Shut down workers and release the shared-memory arena."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _begin_cycle(
        self, arena: ShmArena, particles: ParticleSystem, nlist: NeighborList, extra: int
    ) -> None:
        """Reset the arena and size it for state + CSR + ``extra`` bytes."""
        arena.reset()
        total = extra
        for name in _STATE_FIELDS:
            total += _field_bytes(getattr(particles, name).shape, np.float64)
        total += _field_bytes(nlist.offsets.shape, np.int64)
        total += _field_bytes(nlist.indices.shape, np.int64)
        arena.require(total)
        for name in _STATE_FIELDS:
            arena.publish(name, getattr(particles, name))
        arena.publish("nl_offsets", nlist.offsets)
        arena.publish("nl_indices", nlist.indices)

    # ------------------------------------------------------------------
    def density(
        self,
        particles: ParticleSystem,
        nlist: NeighborList,
        kernel,
        box,
        *,
        volume_elements: str = "standard",
        xmass_exponent: float = 0.7,
        phase: str = "E",
        pair_tokens: Optional[Tuple] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Pool-parallel :func:`repro.sph.density.compute_density`."""
        pool, arena = self._ensure()
        kernel.sigma(particles.dim)  # warm the cache shipped with the pickle
        n = particles.n
        bootstrap = volume_elements == "generalized" and bool(
            np.any(particles.rho <= 0.0)
        )
        with self._phase(phase, State.FAN_OUT):
            extra = 2 * _field_bytes((n,), np.float64)
            self._begin_cycle(arena, particles, nlist, extra)
            out = arena.alloc("out_rho", (n,), np.float64)
            chunks = row_chunks(n, self.n_chunks, offsets=nlist.offsets)
            params = {
                "kernel": kernel,
                "box": box,
                "volume_elements": volume_elements,
                "xmass_exponent": xmass_exponent,
                "out": "out_rho",
                "pair_tokens": pair_tokens,
                "backend": backend,
            }
            if bootstrap:
                # Pass 1 fills a standard summation the generalized
                # estimator then reads as rho_prev (exactly the serial
                # bootstrap, fanned out).
                arena.alloc("rho_boot", (n,), np.float64)
                boot_params = dict(
                    params, volume_elements="standard", out="rho_boot"
                )
                self._merge_pair_stats(
                    self._map(
                        "density", chunks, boot_params,
                        phase=phase, verify=(("rho_boot", True),),
                    )
                )
                params["rho_field"] = "rho_boot"
            replies = self._map(
                "density", chunks, params,
                phase=phase, verify=(("out_rho", True),),
            )
        with self._phase(phase, State.REDUCE):
            self._merge_pair_stats(replies)
            particles.rho[:] = out
        return particles.rho

    # ------------------------------------------------------------------
    def iad_matrices(
        self,
        particles: ParticleSystem,
        nlist: NeighborList,
        kernel,
        box,
        *,
        phase: str = "D",
        pair_tokens: Optional[Tuple] = None,
        backend: Optional[str] = None,
    ) -> np.ndarray:
        """Pool-parallel :func:`repro.gradients.iad.compute_iad_matrices`."""
        pool, arena = self._ensure()
        kernel.sigma(particles.dim)
        n, dim = particles.n, particles.dim
        with self._phase(phase, State.FAN_OUT):
            extra = _field_bytes((n, dim, dim), np.float64)
            self._begin_cycle(arena, particles, nlist, extra)
            out = arena.alloc("out_c", (n, dim, dim), np.float64)
            chunks = row_chunks(n, self.n_chunks, offsets=nlist.offsets)
            params = {
                "kernel": kernel, "box": box,
                "pair_tokens": pair_tokens, "backend": backend,
            }
            self._merge_pair_stats(
                self._map(
                    "iad", chunks, params, phase=phase, verify=(("out_c", False),)
                )
            )
        with self._phase(phase, State.REDUCE):
            c = np.array(out, copy=True)
        return c

    # ------------------------------------------------------------------
    def forces(
        self,
        particles: ParticleSystem,
        nlist: NeighborList,
        kernel,
        box,
        *,
        gradients: str = "standard",
        viscosity: ViscosityParams = ViscosityParams(),
        grad_h: bool = False,
        c_matrices: Optional[np.ndarray] = None,
        phase: str = "G",
        pair_tokens: Optional[Tuple] = None,
        backend: Optional[str] = None,
    ) -> ForceResult:
        """Pool-parallel :func:`repro.sph.forces.compute_forces`.

        Runs up to three fan-outs in one arena cycle: grad-h factors
        (when enabled), divergence/curl for the Balsara switch (when
        enabled) and the fused momentum/energy pair loop.
        """
        pool, arena = self._ensure()
        kernel.sigma(particles.dim)
        n, dim = particles.n, particles.dim
        use_iad = gradients == "iad"
        if use_iad and c_matrices is None:
            c_matrices = self.iad_matrices(
                particles, nlist, kernel, box,
                phase=phase, pair_tokens=pair_tokens, backend=backend,
            )
        with self._phase(phase, State.FAN_OUT):
            extra = _field_bytes((n, dim), np.float64) + _field_bytes((n,), np.float64)
            extra += 4 * _field_bytes((n,), np.float64)  # omega/div/curl/balsara
            if use_iad:
                extra += _field_bytes((n, dim, dim), np.float64)
            self._begin_cycle(arena, particles, nlist, extra)
            if use_iad:
                arena.publish("c_matrices", c_matrices)
            chunks = row_chunks(n, self.n_chunks, offsets=nlist.offsets)
            base = {
                "kernel": kernel, "box": box,
                "pair_tokens": pair_tokens, "backend": backend,
            }
            if grad_h:
                arena.alloc("out_omega", (n,), np.float64)
                self._merge_pair_stats(
                    self._map(
                        "gradh", chunks, base,
                        phase=phase, verify=(("out_omega", True),),
                    )
                )
            if viscosity.use_balsara:
                div = arena.alloc("out_div", (n,), np.float64)
                curl = arena.alloc("out_curl", (n,), np.float64)
                self._merge_pair_stats(
                    self._map(
                        "divcurl", chunks, base,
                        phase=phase,
                        verify=(("out_div", False), ("out_curl", False)),
                    )
                )
                f = balsara_switch(div, curl, particles.cs, particles.h)
                arena.publish("balsara_f", f)
            out_a = arena.alloc("out_a", (n, dim), np.float64)
            out_du = arena.alloc("out_du", (n,), np.float64)
            params = dict(
                base,
                iad=use_iad,
                viscosity=viscosity,
                grad_h=grad_h,
                use_balsara=viscosity.use_balsara,
            )
            replies = self._map(
                "forces", chunks, params,
                phase=phase,
                verify=(("out_a", False), ("out_du", False)),
            )
        with self._phase(phase, State.REDUCE):
            self._merge_pair_stats(replies)
            max_mu = max((data["max_mu"] for _, data in replies), default=0.0)
            particles.a[:] = out_a
            particles.du[:] = out_du
        return ForceResult(a=particles.a, du=particles.du, max_mu=max_mu)

    # ------------------------------------------------------------------
    def gravity(
        self,
        x: np.ndarray,
        m: np.ndarray,
        *,
        g_const: float = 1.0,
        softening: float = 0.0,
        theta: float = 0.5,
        order: int = 2,
        tree: Optional[Octree] = None,
        phase: str = "I",
    ) -> GravityResult:
        """Pool-parallel Barnes-Hut gravity.

        The parent builds/reuses the tree and the node moments (cheap
        prefix-sum passes), then partitions the populated target leaves
        over the workers at ~equal particle counts; each worker runs the
        frontier walk for its leaves only.
        """
        pool, arena = self._ensure()
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        m = np.asarray(m, dtype=np.float64)
        n, dim = x.shape
        if tree is None:
            tree = Octree.build(x, leaf_size=64)
        moments = compute_node_moments(tree, x, m, order=order)
        leaves = np.nonzero(tree.is_leaf() & (tree.node_counts() > 0))[0]
        with self._phase(phase, State.FAN_OUT):
            arena.reset()
            total = 2 * _field_bytes((n, dim), np.float64)  # x + out_acc
            total += 3 * _field_bytes((n,), np.float64)  # m, out_phi, slack
            total += _field_bytes(leaves.shape, np.int64)
            for name in _TREE_FIELDS:
                arr = getattr(tree, name)
                total += _field_bytes(arr.shape, arr.dtype)
            for name in ("mass", "com", "m2", "m3", "m4"):
                arr = getattr(moments, name)
                if arr is not None:
                    total += _field_bytes(arr.shape, arr.dtype)
            arena.require(total)
            arena.publish("x", x)
            arena.publish("m", m)
            arena.publish("leaves", leaves)
            for name in _TREE_FIELDS:
                arena.publish(f"tree_{name}", getattr(tree, name))
            arena.publish("mom_mass", moments.mass)
            arena.publish("mom_com", moments.com)
            for name in ("m2", "m3", "m4"):
                arr = getattr(moments, name)
                if arr is not None:
                    arena.publish(f"mom_{name}", arr)
            out_acc = arena.alloc("out_acc", (n, dim), np.float64)
            out_phi = arena.alloc("out_phi", (n,), np.float64)
            out_acc[...] = 0.0
            out_phi[...] = 0.0
            # Split leaves at ~equal particle counts (their P2P/M2P work).
            leaf_counts = tree.pend[leaves] - tree.pstart[leaves]
            leaf_offsets = np.concatenate(
                [[0], np.cumsum(leaf_counts, dtype=np.int64)]
            )
            chunks = row_chunks(leaves.size, self.n_chunks, offsets=leaf_offsets)
            params = {
                "box": tree.box,
                "g_const": g_const,
                "softening": softening,
                "theta": theta,
                "order": order,
                "has_m2": moments.m2 is not None,
                "has_m3": moments.m3 is not None,
                "has_m4": moments.m4 is not None,
            }
            # Gravity chunks index *leaves* and workers scatter-write
            # particle rows, so slice CRCs don't apply — no verify pass.
            replies = self._map("gravity", chunks, params, phase=phase)
        with self._phase(phase, State.REDUCE):
            acc = np.array(out_acc, copy=True)
            phi = np.array(out_phi, copy=True)
            n_p2p = sum(data["n_p2p"] for _, data in replies)
            n_m2p = sum(data["n_m2p"] for _, data in replies)
        return GravityResult(acc=acc, phi=phi, n_p2p=n_p2p, n_m2p=n_m2p)
