"""Shared-memory arena for zero-copy SoA views across the process pool.

The pool's workers never receive particle arrays through pickles: the
parent publishes every input field (and allocates every output field)
inside one ``multiprocessing.shared_memory`` block, and ships only a tiny
*descriptor* — ``{field name: (offset, shape, dtype)}`` plus the block
name — with each task.  Workers attach the block once per generation and
map numpy views straight onto it, so fan-out cost is one memcpy on the
parent side regardless of worker count.

The arena is a bump allocator that is reset at the start of every
parallel phase: inputs are published (copied in), outputs are allocated
(views handed to the parent, written by the workers at disjoint row
slices), and the next phase starts over.  When capacity runs out a new,
larger block is created under a fresh name; workers notice the name
change in the descriptor and re-attach.
"""

from __future__ import annotations

import atexit
import weakref
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

__all__ = ["ShmArena", "ArenaView", "attach_shared_memory"]

#: Parent-side arenas not yet closed; swept at interpreter exit so an
#: abandoned arena never leaks its /dev/shm segment past the process.
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


@atexit.register
def _sweep_leaked_arenas() -> None:  # pragma: no cover - exit-time safety net
    for arena in list(_LIVE_ARENAS):
        try:
            arena.close()
        except Exception:
            pass

#: descriptor entry: (byte offset, shape, dtype string)
FieldSpec = Tuple[int, Tuple[int, ...], str]


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker interference.

    On Python < 3.13 merely *attaching* registers the segment with the
    resource tracker, which then unlinks it when any worker exits — while
    the parent still owns it.  There ``register`` is suppressed during the
    attach (sending an *unregister* instead would erase the parent's own
    registration in the shared tracker process).
    """
    try:
        return shared_memory.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=False)
        finally:
            resource_tracker.register = original


def _aligned(nbytes: int, alignment: int = 64) -> int:
    return (nbytes + alignment - 1) // alignment * alignment


class ShmArena:
    """Parent-side bump allocator inside one shared-memory block."""

    def __init__(self, capacity: int = 1 << 24) -> None:
        self.shm = shared_memory.SharedMemory(create=True, size=int(capacity))
        self.fields: Dict[str, FieldSpec] = {}
        self._cursor = 0
        self.generation = 0
        self._closed = False
        _LIVE_ARENAS.add(self)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.shm.size

    def reset(self) -> None:
        """Start a new publish/alloc cycle (previous fields are dropped)."""
        self.fields = {}
        self._cursor = 0
        self.generation += 1

    def require(self, nbytes: int) -> None:
        """Ensure capacity for the coming cycle, *before* any placement.

        Growing reallocates under a fresh block name, so it must happen
        while no field views are outstanding; :meth:`alloc` therefore
        never grows and raises on overflow instead (callers size their
        cycle up front — each field costs its byte size rounded up to the
        64-byte alignment).
        """
        if self._cursor:
            raise RuntimeError("require() must run right after reset()")
        if nbytes <= self.capacity:
            return
        old = self.shm
        self.shm = shared_memory.SharedMemory(
            create=True, size=int(_aligned(nbytes) * 2)
        )
        try:
            old.close()
        except BufferError:  # a stale numpy view keeps the mapping alive
            pass
        old.unlink()

    def alloc(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """Reserve an output field; returns the parent-side view."""
        if name in self.fields:
            raise ValueError(f"field {name!r} already placed this cycle")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if self._cursor + nbytes > self.capacity:
            raise RuntimeError(
                f"arena overflow placing {name!r} "
                f"({self._cursor + nbytes} > {self.capacity}); "
                "size the cycle with require() first"
            )
        offset = self._cursor
        self._cursor += _aligned(nbytes)
        self.fields[name] = (offset, tuple(int(s) for s in shape), dtype.str)
        return np.ndarray(shape, dtype=dtype, buffer=self.shm.buf, offset=offset)

    def publish(self, name: str, array: np.ndarray) -> np.ndarray:
        """Copy an input array into the arena; returns the arena view."""
        array = np.ascontiguousarray(array)
        view = self.alloc(name, array.shape, array.dtype)
        view[...] = array
        return view

    def view(self, name: str) -> np.ndarray:
        """Parent-side view of a previously placed field."""
        offset, shape, dtype = self.fields[name]
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self.shm.buf, offset=offset)

    def descriptor(self) -> dict:
        """Picklable layout shipped to workers with each task."""
        return {
            "shm_name": self.shm.name,
            "generation": self.generation,
            "fields": dict(self.fields),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _LIVE_ARENAS.discard(self)
        try:
            self.shm.close()
        except BufferError:  # outstanding numpy views; mapping dies with us
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # already unlinked
            pass


class ArenaView:
    """Worker-side window onto the parent's arena.

    Caches the attachment per block name; ``refresh`` swaps to a new block
    when the parent grew the arena.
    """

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self._name: str | None = None
        self._fields: Dict[str, FieldSpec] = {}

    def refresh(self, descriptor: dict) -> None:
        name = descriptor["shm_name"]
        if name != self._name:
            if self._shm is not None:
                self._shm.close()
            self._shm = attach_shared_memory(name)
            self._name = name
        self._fields = descriptor["fields"]

    def view(self, name: str) -> np.ndarray:
        if self._shm is None:
            raise RuntimeError("ArenaView.refresh must run before view()")
        offset, shape, dtype = self._fields[name]
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset)

    def close(self) -> None:
        if self._shm is not None:
            self._shm.close()
            self._shm = None
            self._name = None
