"""Supervised worker pool: liveness monitoring and crash/hang recovery.

Section 4 of the paper: "faults, errors and failures have become the norm
rather than the exception in large-scale systems".  The plain
:class:`~repro.parallel.pool.WorkerPool` assumes fault-free workers — a
crashed child aborts the run and a hung one deadlocks it.  This module
wraps the pool in a supervisor that turns both into recoverable events:

* **Crash detection** — the parent multiplexes every worker pipe together
  with every ``Process.sentinel`` through ``multiprocessing.connection
  .wait``; a worker death is observed the moment the OS reaps it, not
  when a ``recv`` happens to block on its pipe.
* **Hang detection** — each worker carries a deadline for the task at the
  head of its FIFO queue, derived from an EWMA of observed per-kind task
  latencies (``max(min_deadline, deadline_factor × EWMA)``, with a
  generous ``initial_deadline`` before anything has been observed).
* **Recovery** — lost chunks (and only those) are re-issued to healthy
  workers; dead slots are respawned against the current arena generation
  with exponential backoff and a bounded budget; a chunk that keeps
  failing falls back to *serial in-parent* execution, and when no worker
  survives the whole pool degrades to serial for the remainder of the
  run.  The answer is never wrong and the run never hangs.
* **Idempotence** — every task carries a unique ``stamp`` echoed in its
  reply.  When a deadline fires, the worker's outstanding stamps are
  *abandoned* and the chunks re-issued elsewhere; a late reply matching
  an abandoned stamp is drained and discarded instead of double-applied.
  Within one arena cycle a late slice write is bitwise identical to the
  re-issued one (same inputs, same kernel), and cross-cycle writes are
  impossible because a worker still holding abandoned stamps at the end
  of the fan-out is terminated and respawned.

Because chunks write disjoint row slices and the parent merges reply
scalars in submission order, recovery preserves the bitwise serial parity
established in the PR-1 tests — re-execution is invisible in the results.

An opt-in verification pass (``verify=...``) re-checksums each output
slice in the parent against a CRC the worker took right after computing
(reusing the :mod:`repro.resilience.sdc` detector style on real phase
outputs) plus a finite/positivity scan; a corrupted chunk is recomputed
serially from the pristine arena inputs.

Deterministic fault injection for all of the above lives in
:mod:`repro.resilience.chaos`; the supervisor consults an optional
:class:`~repro.resilience.chaos.ChaosPolicy` at submission time and ships
matching directives (kill / delay / flip) inside the task dict.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mpconnection
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple
import zlib

import numpy as np

from ..profiling.trace import State, Tracer
from .pool import TASK_HANDLERS, WorkerPool
from .shm import ArenaView

__all__ = [
    "SupervisorConfig",
    "RecoveryEvent",
    "SupervisorStats",
    "SupervisedPool",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Liveness/recovery knobs for :class:`SupervisedPool`.

    Parameters
    ----------
    deadline_factor:
        Multiple of the per-kind EWMA latency a head-of-queue task may
        take before it is presumed hung.
    min_deadline:
        Deadline floor in seconds — EWMA latencies are milliseconds on
        small problems and a GC pause must not look like a hang.
    initial_deadline:
        Deadline used before any latency has been observed for a kind.
    ewma_alpha:
        Smoothing factor of the latency average.
    max_respawns:
        Total worker respawns allowed over the pool's lifetime; once
        spent, further failures retire the slot instead (and the pool
        degrades to serial when no slot survives).
    max_task_retries:
        Re-issues of one chunk before it runs serially in the parent.
    backoff_base, backoff_factor:
        Exponential backoff (seconds) between respawn attempts.
    drain_timeout:
        How long to wait, after the fan-out completes, for a late reply
        from a presumed-hung worker before terminating it.
    """

    deadline_factor: float = 16.0
    min_deadline: float = 2.0
    initial_deadline: float = 60.0
    ewma_alpha: float = 0.3
    max_respawns: int = 8
    max_task_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    drain_timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.deadline_factor <= 1.0:
            raise ValueError("deadline_factor must exceed 1")
        if min(self.min_deadline, self.initial_deadline, self.drain_timeout) <= 0.0:
            raise ValueError("deadlines/timeouts must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.max_respawns < 0 or self.max_task_retries < 0:
            raise ValueError("retry budgets must be non-negative")


@dataclass(frozen=True)
class RecoveryEvent:
    """One observed fault or recovery action."""

    kind: str  # crash | hang | respawn | reissue | late-reply | retire | degrade | sdc
    worker: int
    phase: str
    step: int
    detail: str = ""


@dataclass
class SupervisorStats:
    """Counters + event log of one :class:`SupervisedPool` lifetime."""

    crashes: int = 0
    hangs: int = 0
    respawns: int = 0
    reissues: int = 0
    late_replies_discarded: int = 0
    serial_fallbacks: int = 0
    sdc_detected: int = 0
    degraded: bool = False
    events: List[RecoveryEvent] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"crashes={self.crashes} hangs={self.hangs} "
            f"respawns={self.respawns} reissues={self.reissues} "
            f"late_discarded={self.late_replies_discarded} "
            f"serial_fallbacks={self.serial_fallbacks} "
            f"sdc={self.sdc_detected} degraded={self.degraded}"
        )


class _TaskRec:
    """Parent-side record of one in-flight task."""

    __slots__ = ("k", "stamp", "retries", "abandoned")

    def __init__(self, k: int, stamp: int, retries: int) -> None:
        self.k = k
        self.stamp = stamp
        self.retries = retries
        self.abandoned = False


class SupervisedPool:
    """Self-healing drop-in for ``parallel_map`` over a :class:`WorkerPool`.

    :meth:`map` has the exact contract of
    :func:`repro.parallel.pool.parallel_map` — same chunk order, same
    reply merge order — but survives worker crashes and hangs.
    """

    def __init__(
        self,
        n_workers: int,
        start_method: Optional[str] = None,
        config: Optional[SupervisorConfig] = None,
        chaos=None,
        tracer: Optional[Tracer] = None,
        rank: int = 0,
    ) -> None:
        self.config = config or SupervisorConfig()
        self.pool = WorkerPool(n_workers, start_method=start_method)
        self.chaos = chaos
        self.tracer = tracer
        self.rank = rank
        self.stats = SupervisorStats()
        self.step_index = 0
        #: optional ``(worker_slot, span_dict) -> None``; only spans from
        #: replies that were actually applied are forwarded, so abandoned
        #: and duplicate replies never pollute the merged timeline.
        self.span_sink = None
        self._ewma: Dict[str, float] = {}
        self._seq = 0
        self._respawns_left = self.config.max_respawns
        self._alive = [True] * n_workers
        self._parent_views = ArenaView()

    # ------------------------------------------------------------------
    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    @property
    def degraded(self) -> bool:
        return self.stats.degraded

    def close(self) -> None:
        self._parent_views.close()
        self.pool.close()

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _event(self, kind: str, worker: int, phase: str, detail: str = "") -> None:
        self.stats.events.append(
            RecoveryEvent(kind, worker, phase, self.step_index, detail)
        )

    def _allowance(self, kind: str) -> float:
        ewma = self._ewma.get(kind)
        if ewma is None:
            return self.config.initial_deadline
        return max(self.config.min_deadline, self.config.deadline_factor * ewma)

    def _observe_latency(self, kind: str, latency: float) -> None:
        a = self.config.ewma_alpha
        prev = self._ewma.get(kind)
        self._ewma[kind] = latency if prev is None else (1.0 - a) * prev + a * latency

    def run_serial(
        self,
        kind: str,
        descriptor: dict,
        params: dict,
        lo: int,
        hi: int,
        phase: Optional[str] = None,
    ):
        """Execute one chunk in the parent (degradation / recompute path)."""
        self.stats.serial_fallbacks += 1
        self._parent_views.refresh(descriptor)
        ctx = (
            self.tracer.phase(phase, State.USEFUL, self.rank)
            if self.tracer is not None and phase is not None
            else _null()
        )
        with ctx:
            return TASK_HANDLERS[kind](self._parent_views, params, lo, hi)

    # ------------------------------------------------------------------
    def map(
        self,
        kind: str,
        chunks: Sequence[Tuple[int, int]],
        descriptor: dict,
        params: dict,
        *,
        phase: str = "?",
        verify: Sequence[Tuple[str, bool]] = (),
    ) -> List[Tuple[Tuple[int, int], Any]]:
        """Fan chunks out with supervision; gather replies in chunk order."""
        chunks = [(int(lo), int(hi)) for lo, hi in chunks]
        results: List[Any] = [None] * len(chunks)
        crcs: Dict[int, Dict[str, int]] = {}
        verify_fields = tuple(name for name, _ in verify)
        if self.stats.degraded or not any(self._alive):
            for k, (lo, hi) in enumerate(chunks):
                results[k] = self.run_serial(
                    kind, descriptor, params, lo, hi, phase=phase
                )
        else:
            self._map_supervised(
                kind, chunks, descriptor, params, phase, verify_fields, results, crcs
            )
        if verify:
            self._verify(kind, chunks, descriptor, params, phase, verify, crcs)
        return list(zip(chunks, results))

    # ------------------------------------------------------------------
    def _map_supervised(
        self,
        kind: str,
        chunks: List[Tuple[int, int]],
        descriptor: dict,
        params: dict,
        phase: str,
        verify_fields: Tuple[str, ...],
        results: List[Any],
        crcs: Dict[int, Dict[str, int]],
    ) -> None:
        cfg = self.config
        n_w = self.pool.n_workers
        outstanding: List[Deque[_TaskRec]] = [deque() for _ in range(n_w)]
        deadlines: List[Optional[float]] = [None] * n_w
        head_start: List[float] = [0.0] * n_w
        tainted = [False] * n_w
        done = [False] * len(chunks)
        serial_queue: List[int] = []

        def submit(k: int, retries: int, worker: int) -> bool:
            lo, hi = chunks[k]
            task = {
                "kind": kind,
                "arena": descriptor,
                "params": params,
                "lo": lo,
                "hi": hi,
                "stamp": self._seq,
                "phase": phase,
            }
            if verify_fields:
                task["verify"] = verify_fields
            if self.chaos is not None:
                directives = self.chaos.directives(
                    step=self.step_index, phase=phase, worker=worker, chunk=k
                )
                if directives:
                    task["chaos"] = directives
            try:
                self.pool.submit(worker, task)
            except (BrokenPipeError, OSError):
                return False
            rec = _TaskRec(k, self._seq, retries)
            self._seq += 1
            outstanding[worker].append(rec)
            if len(outstanding[worker]) == 1:
                head_start[worker] = time.monotonic()
                deadlines[worker] = head_start[worker] + self._allowance(kind)
            return True

        def reissue(k: int, retries: int, exclude: int) -> None:
            """Route a lost chunk to the healthiest worker, else serial."""
            if retries > cfg.max_task_retries:
                serial_queue.append(k)
                return
            candidates = [
                w
                for w in range(n_w)
                if self._alive[w] and not tainted[w] and w != exclude
            ]
            candidates.sort(key=lambda w: len(outstanding[w]))
            for w in candidates:
                if submit(k, retries, w):
                    self.stats.reissues += 1
                    self._event("reissue", w, phase, f"chunk {k} retry {retries}")
                    return
                self._handle_dead(w, phase, reissue_lost=False)
            serial_queue.append(k)

        lost_on_death: List[Tuple[int, int]] = []

        def collect_lost(worker: int) -> None:
            for rec in outstanding[worker]:
                if not rec.abandoned and not done[rec.k]:
                    lost_on_death.append((rec.k, rec.retries + 1))
            outstanding[worker].clear()
            deadlines[worker] = None
            tainted[worker] = False

        def respawn_or_retire(worker: int, phase: str) -> None:
            if self._respawns_left > 0:
                attempt = self.config.max_respawns - self._respawns_left
                self._respawns_left -= 1
                delay = cfg.backoff_base * cfg.backoff_factor ** attempt
                ctx = (
                    self.tracer.phase(phase, State.RECOVERY, self.rank)
                    if self.tracer is not None
                    else _null()
                )
                with ctx:
                    time.sleep(delay)
                    self.pool.respawn(worker)
                self.stats.respawns += 1
                self._event("respawn", worker, phase, f"backoff {delay:.3f}s")
            else:
                self.pool.terminate_worker(worker)
                self._alive[worker] = False
                self._event("retire", worker, phase, "respawn budget exhausted")
                if not any(self._alive):
                    self.stats.degraded = True
                    self._event("degrade", worker, phase, "no workers left")

        def handle_dead(worker: int, phase: str, reissue_lost: bool = True) -> None:
            self.stats.crashes += 1
            self._event("crash", worker, phase)
            collect_lost(worker)
            respawn_or_retire(worker, phase)
            if reissue_lost:
                while lost_on_death:
                    k, retries = lost_on_death.pop()
                    reissue(k, retries, exclude=-1)

        self._handle_dead = handle_dead  # reachable from submit failures

        # Initial round-robin dispatch over live workers (same layout the
        # unsupervised parallel_map uses).
        live = [w for w in range(n_w) if self._alive[w]]
        for k in range(len(chunks)):
            w = live[k % len(live)]
            if not submit(k, 0, w):
                handle_dead(w, phase)
                reissue(k, 1, exclude=w)
                live = [w for w in range(n_w) if self._alive[w]]
                if not live:
                    serial_queue.extend(
                        kk for kk in range(k + 1, len(chunks))
                    )
                    break

        # Event loop: multiplex replies, sentinels and deadlines until all
        # chunks are done AND no stamp is outstanding (late repliers are
        # drained or their workers retired — nothing can write into the
        # next arena cycle).
        while True:
            while serial_queue:
                k = serial_queue.pop()
                if not done[k]:
                    results[k] = self.run_serial(
                        kind, descriptor, params, *chunks[k], phase=phase
                    )
                    done[k] = True
            busy = [w for w in range(n_w) if outstanding[w]]
            if all(done) and not busy:
                break
            if not busy:
                # Chunks missing but nothing in flight: degraded mid-loop.
                serial_queue.extend(k for k in range(len(chunks)) if not done[k])
                continue

            now = time.monotonic()
            next_deadline = min(deadlines[w] for w in busy if deadlines[w] is not None)
            timeout = max(0.0, next_deadline - now)
            waitables: Dict[object, Tuple[str, int]] = {}
            for w in busy:
                waitables[self.pool.connection(w)] = ("conn", w)
                waitables[self.pool.sentinel(w)] = ("sentinel", w)
            ready = mpconnection.wait(list(waitables), timeout=timeout)

            crashed: List[int] = []
            for obj in ready:
                what, w = waitables[obj]
                if what == "sentinel":
                    # The pipe EOF may land in the same batch — dedupe, or
                    # the second handle_dead would tear down the healthy
                    # replacement worker.
                    if w not in crashed:
                        crashed.append(w)
                    continue
                # Drain every buffered reply on this pipe.
                try:
                    while obj.poll():
                        reply = obj.recv()
                        self._consume(
                            reply, w, kind, phase, outstanding, deadlines,
                            head_start, tainted, done, results, crcs,
                        )
                except (EOFError, OSError):
                    if w not in crashed:
                        crashed.append(w)
            for w in crashed:
                if outstanding[w] or self._alive[w]:
                    handle_dead(w, phase)

            # Deadline sweep (also covers the no-ready timeout case).
            now = time.monotonic()
            for w in range(n_w):
                if not outstanding[w] or deadlines[w] is None or now < deadlines[w]:
                    continue
                if not tainted[w]:
                    # Presumed hung: abandon everything queued on this
                    # worker and re-issue elsewhere; keep draining its
                    # pipe so the late replies are discarded, not applied.
                    self.stats.hangs += 1
                    self._event(
                        "hang", w, phase,
                        f"deadline {self._allowance(kind):.3f}s exceeded",
                    )
                    tainted[w] = True
                    deadlines[w] = now + cfg.drain_timeout
                    for rec in outstanding[w]:
                        rec.abandoned = True
                        if not done[rec.k]:
                            reissue(rec.k, rec.retries + 1, exclude=w)
                else:
                    # Drain window expired too: treat as dead.
                    handle_dead(w, phase)

    # ------------------------------------------------------------------
    def _consume(
        self, reply, w, kind, phase, outstanding, deadlines, head_start,
        tainted, done, results, crcs,
    ) -> None:
        if not outstanding[w]:  # pragma: no cover - protocol violation
            raise RuntimeError(f"unexpected reply from worker {w}")
        rec = outstanding[w].popleft()
        stamp = reply.get("stamp")
        if stamp is not None and stamp != rec.stamp:  # pragma: no cover
            raise RuntimeError(
                f"worker {w} reply stamp {stamp} != expected {rec.stamp}"
            )
        now = time.monotonic()
        if rec.abandoned:
            self.stats.late_replies_discarded += 1
            self._event("late-reply", w, phase, f"chunk {rec.k} discarded")
        else:
            if not reply["ok"]:
                raise RuntimeError(
                    f"pool worker {w} failed:\n{reply['error']}"
                )
            self._observe_latency(kind, now - head_start[w])
            if not done[rec.k]:
                results[rec.k] = reply["data"]
                done[rec.k] = True
                if "crc" in reply:
                    crcs[rec.k] = reply["crc"]
                if self.span_sink is not None and "span" in reply:
                    self.span_sink(w, reply["span"])
        if outstanding[w]:
            head_start[w] = now
            if not tainted[w]:
                deadlines[w] = now + self._allowance(kind)
        else:
            deadlines[w] = None
            tainted[w] = False  # clean protocol state again

    # ------------------------------------------------------------------
    def _verify(
        self,
        kind: str,
        chunks: List[Tuple[int, int]],
        descriptor: dict,
        params: dict,
        phase: str,
        verify: Sequence[Tuple[str, bool]],
        crcs: Dict[int, Dict[str, int]],
    ) -> None:
        """Per-phase SDC pass: CRC + plausibility scan of output slices.

        A chunk whose shared-memory output fails either check is
        recomputed serially from the (pristine) arena inputs — detection
        plus recovery, not just detection.
        """
        from ..resilience.sdc import scan_phase_output

        self._parent_views.refresh(descriptor)

        def scan(k: int, with_crc: bool) -> List[str]:
            lo, hi = chunks[k]
            findings: List[str] = []
            for name, positive in verify:
                arr = self._parent_views.view(name)[lo:hi]
                findings += scan_phase_output(name, arr, positive=positive)
                if with_crc and k in crcs and name in crcs[k]:
                    here = zlib.crc32(np.ascontiguousarray(arr).tobytes())
                    if here != crcs[k][name]:
                        findings.append(
                            f"checksum mismatch on phase output {name!r}"
                        )
            return findings

        for k in range(len(chunks)):
            findings = scan(k, with_crc=True)
            if not findings:
                continue
            self.stats.sdc_detected += 1
            self._event("sdc", -1, phase, "; ".join(findings))
            lo, hi = chunks[k]
            self.run_serial(kind, descriptor, params, lo, hi, phase=phase)
            if scan(k, with_crc=False):
                raise RuntimeError(
                    f"phase {phase} chunk {k} still corrupt after serial "
                    f"recompute: {findings}"
                )


class _null:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False
