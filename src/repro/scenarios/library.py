"""The scenario library: eight validated workloads.

The paper's two test simulations (square patch, Evrard collapse) plus
six standard hydrodynamics workloads, each registered with the IC
parameters of its default and CI-sized runs, the solver configuration it
needs, conserved-quantity drift tolerances, and — for Sedov–Taylor, Sod,
Noh and Gresho — an analytic L1-error gate against the exact solution.

L1-error convention: for a field ``q`` over a sampling window ``W``,

    L1(q) = sum_{i in W} |q_i - q_exact(x_i, t)| / sum_{i in W} |q_exact|

(relative, particle-sampled).  Windows exclude regions where the
periodic wrap of the finite domain departs from the infinite-domain
exact solution (documented per gate below); the gate times are chosen so
no seam disturbance can have reached the window.

Tolerances are calibrated ceilings at the gate's resolution — measured
error plus ~40% headroom for platform variation — so a regression that
degrades shock capturing or vortex preservation trips them, while
BLAS/ordering noise does not.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.config import SimulationConfig
from ..core.particles import ParticleSystem
from ..sph.eos import EquationOfState
from ..sph.viscosity import ViscosityParams
from ..timestepping.criteria import TimestepParams
from ..ics.evrard import EvrardConfig, make_evrard
from ..ics.gresho import GreshoConfig, gresho_velocity_profile, make_gresho
from ..ics.kelvin_helmholtz import KelvinHelmholtzConfig, make_kelvin_helmholtz
from ..ics.noh import NohConfig, make_noh
from ..ics.sedov import SedovConfig, make_sedov
from ..ics.sod import SodConfig, make_sod
from ..ics.square_patch import SquarePatchConfig, make_square_patch
from ..ics.wind_cloud import WindCloudConfig, make_wind_cloud
from .analytic import NohSolution, SedovSolution, solve_riemann
from .registry import AnalyticGate, Scenario, register

__all__ = ["register_builtin_scenarios"]

_CFL_ONLY = TimestepParams(use_energy_criterion=False)


def _l1(actual: np.ndarray, exact: np.ndarray) -> float:
    """Relative L1 error; denominator floored to dodge 0/0 on cold fields."""
    denom = float(np.abs(exact).sum())
    return float(np.abs(actual - exact).sum()) / max(denom, 1e-300)


# --- analytic gate evaluators -------------------------------------------


def _sedov_errors(
    particles: ParticleSystem, eos: EquationOfState, time: float
) -> Dict[str, float]:
    """Density/pressure L1 vs the Sedov–Taylor similarity solution.

    Window: r < 2 r_shock(t) — the ambient far field matches trivially
    and would dilute the error.  The default box (edge 1) keeps the
    shock well inside the periodic images at gate time.
    """
    sol = SedovSolution(gamma=5.0 / 3.0, j=3)
    r = np.sqrt(np.einsum("ij,ij->i", particles.x, particles.x))
    window = r < 2.0 * sol.shock_radius(time)
    exact = sol.sample(r[window], time)
    p_num = eos.pressure(particles.rho[window], particles.u[window])
    return {
        "rho": _l1(particles.rho[window], exact["rho"]),
        "p": _l1(p_num, exact["p"]),
    }


def _sod_errors(
    particles: ParticleSystem, eos: EquationOfState, time: float
) -> Dict[str, float]:
    """Density/velocity/pressure L1 vs the exact Riemann solution.

    Window: |x - 0.5| < 0.35.  The periodic seam at x = -0.5 (≡ 1.5)
    carries the mirror discontinuity; its fastest disturbance moves at
    |v| + c ≲ 1.8, so for t ≲ 0.35 the window is causally clean.
    """
    sol = solve_riemann(1.0, 0.0, 1.0, 0.125, 0.0, 0.1, gamma=1.4)
    x = particles.x[:, 0]
    window = np.abs(x - 0.5) < 0.35
    exact = sol.sample((x[window] - 0.5) / time)
    p_num = eos.pressure(particles.rho[window], particles.u[window])
    return {
        "rho": _l1(particles.rho[window], exact["rho"]),
        "v": _l1(particles.v[window, 0], exact["v"]),
        "p": _l1(p_num, exact["p"]),
    }


def _noh_errors(
    particles: ParticleSystem, eos: EquationOfState, time: float
) -> Dict[str, float]:
    """Density/pressure L1 vs the exact planar Noh solution.

    Window: |x| < 0.25.  The seam at |x| = 1 opens a vacuum gap whose
    edges free-stream inward at v0 = 1, reaching |x| = 0.25 only at
    t = 0.75 — far beyond the gate time.
    """
    sol = NohSolution(gamma=5.0 / 3.0, j=1)
    x = particles.x[:, 0]
    window = np.abs(x) < 0.25
    exact = sol.sample(np.abs(x[window]), time)
    p_num = eos.pressure(particles.rho[window], particles.u[window])
    return {
        "rho": _l1(particles.rho[window], exact["rho"]),
        "p": _l1(p_num, exact["p"]),
    }


def _gresho_errors(
    particles: ParticleSystem, eos: EquationOfState, time: float
) -> Dict[str, float]:
    """Azimuthal-velocity L1 vs the steady vortex profile.

    The Gresho vortex is a steady state: the exact solution at any time
    is the initial condition, so the error measures angular-momentum
    diffusion by the scheme (mostly artificial viscosity).  Window:
    r < 0.45 (vortex plus rim; the quiescent corners match trivially).
    """
    x = particles.x
    r = np.sqrt(np.einsum("ij,ij->i", x, x))
    window = r < 0.45
    rw = np.maximum(r[window], 1e-300)
    v_phi = (
        x[window, 0] * particles.v[window, 1]
        - x[window, 1] * particles.v[window, 0]
    ) / rw
    return {"v_phi": _l1(v_phi, gresho_velocity_profile(r[window]))}


# --- the eight entries ---------------------------------------------------


def register_builtin_scenarios() -> None:
    """Populate the registry (idempotent only via the package import)."""
    register(
        Scenario(
            name="square-patch",
            description="Rotating square patch (paper Table 5, Colagrossi 2005)",
            builder=make_square_patch,
            config_type=SquarePatchConfig,
            params={"side": 12, "layers": 6},
            test_params={"side": 10, "layers": 6},
            sim_config=SimulationConfig(
                n_neighbors=30, timestep_params=_CFL_ONLY
            ),
            # Energy budget is wider than the rest: the mass-perturbation
            # pressure init relaxes over the first few steps.
            invariants={"mass": 1e-13, "momentum": 1e-9, "energy": 5e-2},
        )
    )
    register(
        Scenario(
            name="evrard",
            size_param="n_target",
            description="Evrard adiabatic collapse (paper Table 5, Evrard 1988)",
            builder=make_evrard,
            config_type=EvrardConfig,
            params={"n_target": 2000},
            test_params={"n_target": 500},
            sim_config=SimulationConfig(n_neighbors=40, gravity="monopole"),
            invariants={"mass": 1e-13, "momentum": 1e-9, "energy": 5e-2},
        )
    )
    register(
        Scenario(
            name="sedov",
            size_param="nx",
            description="Sedov-Taylor point blast, 3-D (exact similarity gate)",
            builder=make_sedov,
            config_type=SedovConfig,
            params={"nx": 10},
            test_params={"nx": 8},
            sim_config=SimulationConfig(
                n_neighbors=50, timestep_params=_CFL_ONLY
            ),
            invariants={"mass": 1e-13, "momentum": 1e-9, "energy": 2e-2},
            analytic=AnalyticGate(
                evaluate=_sedov_errors,
                tolerances={"rho": 0.25, "p": 1.1},
                n_steps=15,
                params={"nx": 8},
                description="rho/p vs similarity solution, r < 2 r_shock "
                "(p budget is wide: the kernel-smoothed injection only "
                "approaches the point-blast similarity profile late)",
            ),
        )
    )
    register(
        Scenario(
            name="sod",
            size_param="n_target",
            description="Sod shock tube, 1-D (exact Riemann gate)",
            builder=make_sod,
            config_type=SodConfig,
            params={"n_target": 450},
            test_params={"n_target": 200},
            sim_config=SimulationConfig(n_neighbors=9),
            invariants={"mass": 1e-13, "momentum": 1e-6, "energy": 2e-2},
            analytic=AnalyticGate(
                evaluate=_sod_errors,
                tolerances={"rho": 0.02, "v": 0.12, "p": 0.025},
                n_steps=250,
                description="rho/v/p vs exact Riemann solution, central window",
            ),
        )
    )
    register(
        Scenario(
            name="noh",
            size_param="n_target",
            description="Noh implosion, planar 1-D (exact shock gate)",
            builder=make_noh,
            config_type=NohConfig,
            params={"n_target": 400},
            test_params={"n_target": 200},
            sim_config=SimulationConfig(
                n_neighbors=9, timestep_params=_CFL_ONLY
            ),
            invariants={"mass": 1e-13, "momentum": 1e-6, "energy": 2e-2},
            analytic=AnalyticGate(
                evaluate=_noh_errors,
                tolerances={"rho": 0.16, "p": 0.2},
                n_steps=350,
                description="rho/p vs exact Noh solution, |x| < 0.25",
            ),
        )
    )
    register(
        Scenario(
            name="gresho",
            size_param="nx",
            description="Gresho-Chan vortex, 2-D (steady-state preservation gate)",
            builder=make_gresho,
            config_type=GreshoConfig,
            params={"nx": 32},
            test_params={"nx": 16},
            sim_config=SimulationConfig(
                n_neighbors=24,
                viscosity=ViscosityParams(use_balsara=True),
            ),
            invariants={"mass": 1e-13, "momentum": 1e-9, "energy": 2e-2},
            analytic=AnalyticGate(
                evaluate=_gresho_errors,
                tolerances={"v_phi": 0.05},
                n_steps=30,
                description="v_phi vs triangular vortex profile, r < 0.45",
            ),
        )
    )
    register(
        Scenario(
            name="kelvin-helmholtz",
            size_param="nx",
            description="Kelvin-Helmholtz shear layer, 2-D (McNally-style trigger)",
            builder=make_kelvin_helmholtz,
            config_type=KelvinHelmholtzConfig,
            params={"nx": 32},
            test_params={"nx": 16},
            sim_config=SimulationConfig(
                n_neighbors=24,
                viscosity=ViscosityParams(use_balsara=True),
            ),
            invariants={"mass": 1e-13, "momentum": 1e-9, "energy": 2e-2},
        )
    )
    register(
        Scenario(
            name="wind-cloud",
            size_param="nx",
            description="Wind-cloud (blob) interaction, 3-D, density contrast 5",
            builder=make_wind_cloud,
            config_type=WindCloudConfig,
            params={"nx": 14},
            test_params={"nx": 10},
            sim_config=SimulationConfig(
                n_neighbors=50, timestep_params=_CFL_ONLY
            ),
            invariants={"mass": 1e-13, "momentum": 1e-9, "energy": 2e-2},
        )
    )
