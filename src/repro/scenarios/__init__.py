"""Scenario library and registry — validated workloads as data.

Importing this package registers the eight built-in scenarios (the
paper's square patch and Evrard collapse plus Sedov–Taylor, Sod, Noh,
Gresho, Kelvin–Helmholtz and wind–cloud).  Each entry bundles its IC
builder, solver configuration, conserved-quantity tolerances, committed
golden master and — where an exact solution exists — an analytic
L1-error gate (:mod:`repro.scenarios.analytic`).

    from repro.scenarios import get_scenario
    sim = get_scenario("sedov").make_simulation()
    sim.run(n_steps=10)
"""

from .analytic import (
    NohSolution,
    RiemannSolution,
    SedovSolution,
    solve_riemann,
)
from .golden import (
    GOLDEN_ATOL,
    GOLDEN_RTOL,
    compare_records,
    golden_path,
    load_golden,
    record_run,
    run_scenario_record,
    write_golden,
)
from .library import register_builtin_scenarios
from .registry import (
    AnalyticGate,
    Scenario,
    UnknownScenarioError,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
)

register_builtin_scenarios()

__all__ = [
    "AnalyticGate",
    "Scenario",
    "UnknownScenarioError",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "register_builtin_scenarios",
    "RiemannSolution",
    "solve_riemann",
    "SedovSolution",
    "NohSolution",
    "GOLDEN_RTOL",
    "GOLDEN_ATOL",
    "golden_path",
    "run_scenario_record",
    "record_run",
    "compare_records",
    "write_golden",
    "load_golden",
]
