"""Golden-master helpers shared by the conformance tests and the tools.

A golden record pins a short deterministic run of a scenario: per-step
conservation totals plus final-state checksums (sum and L2 norm per
particle field).  Comparison is field-by-field with a tight relative
tolerance that absorbs pair-ordering roundoff and BLAS/platform
variation but nothing physical.

One implementation serves three consumers: the parametrized conformance
suite (``tests/test_scenarios_conformance.py``), the regeneration tool
(``tools/regen_goldens.py``) and ad-hoc debugging — so a record written
by one is bitwise-compatible with what the others expect.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..core.simulation import Simulation
from .registry import Scenario

__all__ = [
    "GOLDEN_RTOL",
    "GOLDEN_ATOL",
    "golden_path",
    "run_scenario_record",
    "record_run",
    "compare_records",
    "write_golden",
    "load_golden",
]

GOLDEN_RTOL = 1e-9  # absorbs pair-ordering roundoff and platform variation
GOLDEN_ATOL = 1e-14

CHECKSUM_FIELDS = ("x", "v", "rho", "u", "h", "du")


def golden_path(name: str, root: Optional[Path] = None) -> Path:
    """Canonical location of a scenario's golden file.

    Default root is ``tests/golden/`` next to the repository's test
    suite (resolved relative to this file's package).
    """
    if root is None:
        root = Path(__file__).resolve().parents[3] / "tests" / "golden"
    return root / f"scenario_{name.replace('-', '_')}.json"


def _checksums(sim: Simulation) -> Dict[str, float]:
    p = sim.particles
    arrays = {name: getattr(p, name) for name in CHECKSUM_FIELDS}
    sums: Dict[str, float] = {}
    for name, arr in arrays.items():
        sums[f"{name}_sum"] = float(arr.sum())
        sums[f"{name}_l2"] = float(np.sqrt((arr.astype(np.float64) ** 2).sum()))
    return sums


def record_run(sim: Simulation, case: str) -> dict:
    """Snapshot a finished run into a golden-comparable record."""
    steps = []
    for s in sim.history:
        c = s.conservation
        steps.append(
            {
                "dt": s.dt,
                "total_mass": c.total_mass,
                "momentum_norm": float(np.linalg.norm(c.momentum)),
                "kinetic_energy": c.kinetic_energy,
                "internal_energy": c.internal_energy,
                "total_energy": c.total_energy,
            }
        )
    return {
        "case": case,
        "n_particles": sim.particles.n,
        "n_steps": len(steps),
        "final_time": sim.time,
        "steps": steps,
        "checksums": _checksums(sim),
    }


def run_scenario_record(scenario: Scenario, run_config=None) -> dict:
    """Run a scenario's golden configuration and return its record."""
    sim = scenario.make_simulation(test=True, run_config=run_config)
    try:
        sim.run(n_steps=scenario.golden_steps)
        return record_run(sim, case=f"scenario:{scenario.name}")
    finally:
        sim.close()


def compare_records(
    actual: dict,
    golden: dict,
    rtol: float = GOLDEN_RTOL,
    atol: float = GOLDEN_ATOL,
) -> List[str]:
    """Field-by-field comparison; returns human-readable failure strings."""
    failures: List[str] = []

    def check(path: str, a, g):
        if isinstance(g, dict):
            for key in g:
                if key not in a:
                    failures.append(f"{path}.{key}: missing from actual record")
                    continue
                check(f"{path}.{key}" if path else key, a[key], g[key])
        elif isinstance(g, list):
            for k, (ai, gi) in enumerate(zip(a, g)):
                check(f"{path}[{k}]", ai, gi)
            if len(a) != len(g):
                failures.append(f"{path}: length {len(a)} != {len(g)}")
        elif isinstance(g, float):
            if not np.isclose(a, g, rtol=rtol, atol=atol):
                failures.append(f"{path}: {a!r} != golden {g!r} (rtol={rtol})")
        elif a != g:
            failures.append(f"{path}: {a!r} != golden {g!r}")

    check("", actual, golden)
    return failures


def write_golden(record: dict, path: Path) -> None:
    """Write a record as a committed golden file (stable JSON layout)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2) + "\n")


def load_golden(path: Path) -> dict:
    """Read a committed golden file."""
    return json.loads(path.read_text())
