"""Scenario registry: validated workloads as first-class objects.

A :class:`Scenario` bundles everything needed to run *and judge* one
workload: the IC builder with its parameters (full-size and a small
``test_params`` variant for CI), the :class:`~repro.core.config.SimulationConfig`
the workload needs, the conserved-quantity drift tolerances it promises
to hold, and — where an exact solution exists — an
:class:`AnalyticGate` that turns the run into a convergence test with a
hard L1-error bound.

The registry is the single source of truth consumed by the CLI
(``python -m repro run <scenario>`` / ``python -m repro scenarios``),
the conformance test suite, the golden-master tooling
(``tools/regen_goldens.py``) and the benchmarks: adding an entry in
:mod:`repro.scenarios.library` automatically enrolls it everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.config import RunConfig, SimulationConfig
from ..core.particles import ParticleSystem
from ..core.simulation import Simulation
from ..sph.eos import EquationOfState
from ..tree.box import Box

__all__ = [
    "AnalyticGate",
    "Scenario",
    "UnknownScenarioError",
    "register",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]

BuildResult = Tuple[ParticleSystem, Box, EquationOfState]


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not in the registry."""

    def __init__(self, name: str, known: List[str]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown scenario {name!r}; known scenarios: {', '.join(known)}"
        )


@dataclass(frozen=True)
class AnalyticGate:
    """An exact solution and the L1-error budget a run must meet.

    ``evaluate(particles, eos, time)`` returns per-field L1 errors
    (relative, field-dependent — each library entry documents its
    definition and sampling window).  ``n_steps`` is the length of the
    gate run; ``tolerances`` maps field name to the maximum admissible
    error at the gate's resolution.  Gates are *asserted* in tier-1 CI:
    the tolerances are calibrated ceilings, not aspirations.
    """

    evaluate: Callable[[ParticleSystem, EquationOfState, float], Dict[str, float]]
    tolerances: Mapping[str, float]
    n_steps: int
    description: str = ""
    #: IC-builder overrides for the gate run (on top of the scenario's
    #: default params) — lets the gate pick its own resolution.
    params: Mapping[str, Any] = field(default_factory=dict)

    def check(
        self, particles: ParticleSystem, eos: EquationOfState, time: float
    ) -> Dict[str, float]:
        """Evaluate the errors and raise if any exceeds its tolerance."""
        errors = self.evaluate(particles, eos, time)
        over = {
            name: (err, self.tolerances[name])
            for name, err in errors.items()
            if name in self.tolerances and err > self.tolerances[name]
        }
        if over:
            detail = ", ".join(
                f"{k}: L1={e:.3e} > tol={t:.3e}" for k, (e, t) in over.items()
            )
            raise AssertionError(f"analytic gate failed: {detail}")
        return errors


@dataclass(frozen=True)
class Scenario:
    """One registered workload: builder + config + correctness contract.

    ``params`` are the IC-builder keyword arguments of the default
    (CLI-sized) run; ``test_params`` the small-N variant used by the
    conformance suite and the committed golden master.  ``invariants``
    maps :meth:`Simulation.conservation_drift` keys (``mass``,
    ``momentum``, ``energy``) to the maximum relative drift the scenario
    promises over ``golden_steps`` steps.
    """

    name: str
    description: str
    builder: Callable[..., BuildResult]
    config_type: type
    params: Mapping[str, Any] = field(default_factory=dict)
    test_params: Mapping[str, Any] = field(default_factory=dict)
    sim_config: SimulationConfig = field(default_factory=SimulationConfig)
    invariants: Mapping[str, float] = field(
        default_factory=lambda: {"mass": 1e-13, "momentum": 1e-10, "energy": 2e-2}
    )
    analytic: Optional[AnalyticGate] = None
    golden_steps: int = 3
    default_steps: int = 10
    g_const: float = 1.0
    #: IC-config field the CLI's ``--n`` maps onto (``n_target`` counts
    #: particles, ``nx`` counts lattice cells per axis); ``None`` when the
    #: scenario is sized by other flags (square patch: --side/--layers).
    size_param: Optional[str] = None

    def build(self, *, test: bool = False, **overrides: Any) -> BuildResult:
        """Instantiate the IC config (params/test_params + overrides) and build."""
        kwargs = dict(self.test_params if test else self.params)
        kwargs.update(overrides)
        return self.builder(self.config_type(**kwargs))

    def make_simulation(
        self,
        *,
        test: bool = False,
        run_config: Optional[RunConfig] = None,
        sim_config: Optional[SimulationConfig] = None,
        **overrides: Any,
    ) -> Simulation:
        """Build the ICs and wrap them in a ready-to-run :class:`Simulation`."""
        particles, box, eos = self.build(test=test, **overrides)
        return Simulation(
            particles,
            box,
            eos,
            config=sim_config if sim_config is not None else self.sim_config,
            g_const=self.g_const,
            run_config=run_config,
            scenario=self.name,
        )

    def run_gate(self) -> Dict[str, float]:
        """Run the analytic gate and assert its L1 budget; returns the errors.

        Raises :class:`ValueError` when the scenario has no gate and
        :class:`AssertionError` when any field exceeds its tolerance.
        """
        if self.analytic is None:
            raise ValueError(f"scenario {self.name!r} has no analytic gate")
        sim = self.make_simulation(**self.analytic.params)
        try:
            sim.run(n_steps=self.analytic.n_steps)
            return self.analytic.check(sim.particles, sim.eos, sim.time)
        finally:
            sim.close()


_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (name must be unused)."""
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name; raise :class:`UnknownScenarioError` if absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, scenario_names()) from None


def scenario_names() -> List[str]:
    """Registered names, in registration order."""
    return list(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, in registration order."""
    return list(_REGISTRY.values())
