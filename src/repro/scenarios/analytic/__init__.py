"""Exact reference solutions for the validated scenarios.

Each module solves one classic hydrodynamics problem in closed (or
quadrature-exact) form:

* :mod:`~repro.scenarios.analytic.riemann` — the exact Riemann solver for
  the Sod shock tube (Toro 1997 iteration on the star pressure).
* :mod:`~repro.scenarios.analytic.sedov` — the Sedov–Taylor point-blast
  similarity solution (self-similar ODEs integrated from the strong-shock
  jump conditions inward).
* :mod:`~repro.scenarios.analytic.noh` — the Noh implosion (closed-form
  shock reflection of a cold uniform inflow).

These are the first correctness oracles in the repository that are
independent of the code's own history: the L1-error gates in
``tests/test_scenarios_analytic.py`` compare SPH output against them
rather than against stored previous output.
"""

from .noh import NohSolution
from .riemann import RiemannSolution, solve_riemann
from .sedov import SedovSolution

__all__ = [
    "RiemannSolution",
    "solve_riemann",
    "SedovSolution",
    "NohSolution",
]
