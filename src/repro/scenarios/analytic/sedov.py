"""Sedov–Taylor point-blast similarity solution.

A point energy ``E`` released at ``t = 0`` into a cold uniform medium of
density ``rho0`` drives a self-similar strong shock at

    R(t) = (E t^2 / (alpha rho0))^(1/(j+2))

with ``j`` the geometry index (1 planar, 2 cylindrical, 3 spherical) and
``alpha`` a dimensionless constant fixed by the total-energy integral.

The interior profile follows from the similarity ansatz (Sedov 1959;
Landau & Lifshitz §106).  With ``k = 2/(j+2)``, ``xi = r/R(t)`` and

    v   = k (r/t) U(xi)
    rho = rho0 Om(xi)
    c^2 = k^2 (r/t)^2 C(xi),     p = rho c^2 / gamma

the Euler equations reduce to three coupled ODEs in ``s = ln xi``
(derived by substituting the ansatz into continuity, momentum and the
entropy advection equation; ``' = d/ds``, ``L = (ln Om)'``):

    U' + (U - 1) L                           = -j U
    (U-1) U' + (C/gamma) L + C'/gamma        = U/k - U^2 - 2C/gamma
    (1-gamma)(U-1) L + (U-1) C'/C            = (2/k)(1 - kU)

integrated inward from the strong-shock jump conditions at ``xi = 1``:

    U(1) = 2/(gamma+1),  Om(1) = (gamma+1)/(gamma-1),
    C(1) = 2 gamma (gamma-1) / (gamma+1)^2.

Two independent checks pin the implementation down: the adiabatic
integral ``C = gamma (gamma-1) (1-U) U^2 / (2 (gamma U - 1))`` holds
along the trajectory to integration tolerance, and for ``gamma = 1.4``,
``j = 3`` the energy constant reproduces the literature value
``alpha = 0.851072`` (Kamm & Timmes 2007).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.integrate import solve_ivp

__all__ = ["SedovSolution"]

#: Inner cutoff of the similarity integration; density vanishes toward the
#: center like a power law, so the profile below is physically ~vacuum.
_XI_MIN = 1e-4


def _shock_state(gamma: float) -> tuple[float, float, float]:
    """Strong-shock values ``(U, Om, C)`` at ``xi = 1``."""
    u1 = 2.0 / (gamma + 1.0)
    om1 = (gamma + 1.0) / (gamma - 1.0)
    c1 = 2.0 * gamma * (gamma - 1.0) / (gamma + 1.0) ** 2
    return u1, om1, c1


def _rhs(s: float, y: np.ndarray, gamma: float, j: int) -> np.ndarray:
    """Similarity ODE right-hand side; solves the 3x3 linear system."""
    u, ln_om, c = y
    k = 2.0 / (j + 2.0)
    a = np.array(
        [
            [1.0, u - 1.0, 0.0],
            [u - 1.0, c / gamma, 1.0 / gamma],
            [0.0, (1.0 - gamma) * (u - 1.0), (u - 1.0) / c],
        ]
    )
    b = np.array(
        [
            -j * u,
            u / k - u * u - 2.0 * c / gamma,
            (2.0 / k) * (1.0 - k * u),
        ]
    )
    du, dl, dc = np.linalg.solve(a, b)
    return np.array([du, dl, dc])


@dataclass
class SedovSolution:
    """Exact Sedov–Taylor blast profile for one ``(gamma, j)``.

    Parameters
    ----------
    e0, rho0:
        Released energy and ambient density.
    gamma:
        Adiabatic index of the ideal gas.
    j:
        Geometry index: 1 planar, 2 cylindrical, 3 spherical.
    p0, u0, v0:
        Ambient (pre-shock) pressure, specific internal energy and
        velocity used outside the shock (the similarity solution assumes
        they are negligible).
    """

    e0: float = 1.0
    rho0: float = 1.0
    gamma: float = 5.0 / 3.0
    j: int = 3
    p0: float = 0.0
    u0: float = 0.0
    v0: float = 0.0
    alpha: float = field(init=False)

    def __post_init__(self) -> None:
        if self.j not in (1, 2, 3):
            raise ValueError(f"geometry index j must be 1, 2 or 3, got {self.j}")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")
        if self.e0 <= 0.0 or self.rho0 <= 0.0:
            raise ValueError("e0 and rho0 must be positive")
        self._integrate_profile()

    # ------------------------------------------------------------------
    def _integrate_profile(self) -> None:
        gamma, j = self.gamma, self.j
        y0 = np.array(_shock_state(gamma))
        y0[1] = np.log(y0[1])  # integrate ln(Om) for positivity
        sol = solve_ivp(
            _rhs,
            (0.0, np.log(_XI_MIN)),
            y0,
            args=(gamma, j),
            method="Radau",
            dense_output=False,
            rtol=1e-10,
            atol=1e-12,
            max_step=0.05,
        )
        if not sol.success:  # pragma: no cover - defensive
            raise RuntimeError(f"Sedov similarity integration failed: {sol.message}")
        # Store on an ascending-xi grid for interpolation.
        self._xi = np.exp(sol.t[::-1])
        self._U = sol.y[0, ::-1]
        self._Om = np.exp(sol.y[1, ::-1])
        self._C = sol.y[2, ::-1]

        # Energy integral -> alpha: E = S_j k^2 (R^{j+2}/t^2) rho0 I with
        # I = int_0^1 Om (U^2/2 + C/(gamma(gamma-1))) xi^{j+1} dxi.
        s_geom = {1: 2.0, 2: 2.0 * np.pi, 3: 4.0 * np.pi}[j]
        k = 2.0 / (j + 2.0)
        integrand = (
            self._Om
            * (0.5 * self._U**2 + self._C / (gamma * (gamma - 1.0)))
            * self._xi ** (j + 1)
        )
        self.alpha = float(s_geom * k * k * np.trapezoid(integrand, self._xi))

    # ------------------------------------------------------------------
    def adiabatic_residual(self, xi_min: float = 0.3) -> float:
        """Max relative deviation from the exact integral ``C(U)``.

        The integral states ``2 C (gamma U - 1) = gamma (gamma-1) (1-U)
        U^2``.  It is checked in product form over ``xi >= xi_min``: the
        relation has a pole at the center (``U -> 1/gamma``, reached to
        machine precision already around ``xi ~ 0.1``) where any residual
        formulation degenerates to amplified roundoff — and where the
        density is orders of magnitude below ambient anyway.
        """
        keep = self._xi >= xi_min
        u, c = self._U[keep], self._C[keep]
        lhs = 2.0 * c * (self.gamma * u - 1.0)
        rhs = self.gamma * (self.gamma - 1.0) * (1.0 - u) * u**2
        scale = np.maximum(np.abs(lhs), np.abs(rhs))
        return float(np.max(np.abs(lhs - rhs) / np.maximum(scale, 1e-300)))

    def shock_radius(self, t: float) -> float:
        """Shock position ``R(t)``."""
        if t <= 0.0:
            return 0.0
        return float(
            (self.e0 * t * t / (self.alpha * self.rho0)) ** (1.0 / (self.j + 2.0))
        )

    def shock_speed(self, t: float) -> float:
        """Shock velocity ``dR/dt = 2 R / ((j+2) t)``."""
        return 2.0 * self.shock_radius(t) / ((self.j + 2.0) * t)

    # ------------------------------------------------------------------
    def sample(self, r: np.ndarray, t: float) -> dict[str, np.ndarray]:
        """Exact ``{"rho", "p", "u", "v"}`` at radii ``r`` and time ``t``.

        ``v`` is the (signed) radial velocity.  Outside the shock the
        ambient state is returned; inside ``xi < 1e-4`` the near-vacuum
        center continues the innermost integrated values (density there
        is already orders of magnitude below ambient).
        """
        r = np.asarray(r, dtype=np.float64)
        big_r = self.shock_radius(t)
        xi = r / big_r
        inside = xi < 1.0
        xi_c = np.clip(xi, self._xi[0], 1.0)
        u_s = np.interp(xi_c, self._xi, self._U)
        om = np.interp(xi_c, self._xi, self._Om)
        c_s = np.interp(xi_c, self._xi, self._C)

        k = 2.0 / (self.j + 2.0)
        rho = np.where(inside, self.rho0 * om, self.rho0)
        v = np.where(inside, k * (r / t) * u_s, self.v0)
        p_in = self.rho0 * om * (k * r / t) ** 2 * c_s / self.gamma
        p = np.where(inside, p_in, self.p0)
        with np.errstate(divide="ignore", invalid="ignore"):
            u_int = np.where(
                inside, p_in / ((self.gamma - 1.0) * self.rho0 * om), self.u0
            )
        return {"rho": rho, "p": p, "u": u_int, "v": v}
