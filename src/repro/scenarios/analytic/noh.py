"""Noh implosion — exact solution (Noh 1987).

Cold gas (``p ~ 0``) streams uniformly toward the origin with speed
``v0``; an infinite-strength shock reflects from the center and moves
outward at constant speed

    v_s = (gamma - 1) v0 / 2.

Behind the shock the gas is at rest with all kinetic energy converted to
internal energy; ahead of it the gas free-streams, geometrically
compressing in cylindrical/spherical geometry.  With ``b = (gamma+1) /
(gamma-1)`` and geometry index ``j``:

    r < v_s t:   rho = rho0 b^j,  v = 0,     u = v0^2/2,  p = (gamma-1) rho u
    r > v_s t:   rho = rho0 (1 + v0 t / r)^(j-1),  v = -v0,  u = u0,  p = p0

The standard test (``gamma = 5/3``, ``v0 = 1``, ``rho0 = 1``) gives the
well-known values: shock speed 1/3, post-shock density 4 (planar) or 64
(spherical) and post-shock pressure 4/3 (planar) or 64/3 (spherical).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NohSolution"]


@dataclass(frozen=True)
class NohSolution:
    """Exact Noh solution for one ``(gamma, j)`` configuration."""

    gamma: float = 5.0 / 3.0
    j: int = 1
    rho0: float = 1.0
    v0: float = 1.0
    p0: float = 0.0
    u0: float = 0.0

    def __post_init__(self) -> None:
        if self.j not in (1, 2, 3):
            raise ValueError(f"geometry index j must be 1, 2 or 3, got {self.j}")
        if self.gamma <= 1.0:
            raise ValueError(f"gamma must exceed 1, got {self.gamma}")
        if self.rho0 <= 0.0 or self.v0 <= 0.0:
            raise ValueError("rho0 and v0 must be positive")

    @property
    def shock_speed(self) -> float:
        return 0.5 * (self.gamma - 1.0) * self.v0

    @property
    def rho_post(self) -> float:
        b = (self.gamma + 1.0) / (self.gamma - 1.0)
        return self.rho0 * b**self.j

    @property
    def u_post(self) -> float:
        return 0.5 * self.v0**2

    @property
    def p_post(self) -> float:
        return (self.gamma - 1.0) * self.rho_post * self.u_post

    def sample(self, r: np.ndarray, t: float) -> dict[str, np.ndarray]:
        """Exact ``{"rho", "p", "u", "v"}`` at radii ``r >= 0``, time ``t``.

        ``v`` is the signed radial velocity (negative = inflow).
        """
        r = np.asarray(r, dtype=np.float64)
        shocked = r < self.shock_speed * t
        with np.errstate(divide="ignore", invalid="ignore"):
            rho_pre = self.rho0 * np.where(
                r > 0.0, 1.0 + self.v0 * t / np.maximum(r, 1e-300), 1.0
            ) ** (self.j - 1)
        rho = np.where(shocked, self.rho_post, rho_pre)
        v = np.where(shocked, 0.0, -self.v0)
        u = np.where(shocked, self.u_post, self.u0)
        p = np.where(shocked, self.p_post, self.p0)
        return {"rho": rho, "p": p, "u": u, "v": v}
