"""Exact Riemann solver for the 1-D Euler equations (ideal gas).

The classic two-state Riemann problem — the Sod shock tube is the
instance with ``(rho, v, p)_L = (1, 0, 1)`` and ``(rho, v, p)_R =
(0.125, 0, 0.1)`` at ``gamma = 1.4`` — admits an exact solution built
from at most four constant/self-similar regions separated by a left
wave (shock or rarefaction), a contact discontinuity and a right wave.

The star-region pressure solves ``f_L(p*) + f_R(p*) + (v_R - v_L) = 0``
where each ``f`` is the Rankine–Hugoniot (shock) or isentropic
(rarefaction) relation of its side (Toro, *Riemann Solvers and Numerical
Methods for Fluid Dynamics*, ch. 4).  The root is bracketed and found
with Brent's method, so the solution is exact to solver tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

__all__ = ["RiemannSolution", "solve_riemann"]


def _f_side(p: float, rho_k: float, p_k: float, gamma: float) -> tuple[float, float]:
    """Toro's ``f_K(p)`` and its contribution type for one side.

    Returns ``(f, a_k)`` with ``a_k`` the sound speed of that side.
    """
    a_k = np.sqrt(gamma * p_k / rho_k)
    if p > p_k:  # shock
        big_a = 2.0 / ((gamma + 1.0) * rho_k)
        big_b = (gamma - 1.0) / (gamma + 1.0) * p_k
        return (p - p_k) * np.sqrt(big_a / (p + big_b)), a_k
    # rarefaction
    return (
        2.0 * a_k / (gamma - 1.0) * ((p / p_k) ** ((gamma - 1.0) / (2.0 * gamma)) - 1.0),
        a_k,
    )


@dataclass(frozen=True)
class RiemannSolution:
    """Exact solution of one Riemann problem, sampled via :meth:`sample`."""

    rho_l: float
    v_l: float
    p_l: float
    rho_r: float
    v_r: float
    p_r: float
    gamma: float
    p_star: float
    v_star: float

    @property
    def rho_star_l(self) -> float:
        """Density left of the contact."""
        if self.p_star > self.p_l:  # left shock
            r = self.p_star / self.p_l
            g = (self.gamma - 1.0) / (self.gamma + 1.0)
            return self.rho_l * (r + g) / (g * r + 1.0)
        return self.rho_l * (self.p_star / self.p_l) ** (1.0 / self.gamma)

    @property
    def rho_star_r(self) -> float:
        """Density right of the contact."""
        if self.p_star > self.p_r:  # right shock
            r = self.p_star / self.p_r
            g = (self.gamma - 1.0) / (self.gamma + 1.0)
            return self.rho_r * (r + g) / (g * r + 1.0)
        return self.rho_r * (self.p_star / self.p_r) ** (1.0 / self.gamma)

    def sample(self, xi: np.ndarray) -> dict[str, np.ndarray]:
        """Solution at similarity coordinates ``xi = (x - x0) / t``.

        Returns ``{"rho", "v", "p", "u"}`` arrays (``u`` the specific
        internal energy ``p / ((gamma - 1) rho)``).
        """
        xi = np.asarray(xi, dtype=np.float64)
        g = self.gamma
        a_l = np.sqrt(g * self.p_l / self.rho_l)
        a_r = np.sqrt(g * self.p_r / self.rho_r)
        rho = np.empty_like(xi)
        v = np.empty_like(xi)
        p = np.empty_like(xi)

        # ---- left side of the contact -------------------------------
        if self.p_star > self.p_l:  # left shock
            s_l = self.v_l - a_l * np.sqrt(
                (g + 1.0) / (2.0 * g) * self.p_star / self.p_l
                + (g - 1.0) / (2.0 * g)
            )
            left_undisturbed = xi < s_l
            left_star = (xi >= s_l) & (xi < self.v_star)
            for mask, (rk, vk, pk) in (
                (left_undisturbed, (self.rho_l, self.v_l, self.p_l)),
                (left_star, (self.rho_star_l, self.v_star, self.p_star)),
            ):
                rho[mask], v[mask], p[mask] = rk, vk, pk
        else:  # left rarefaction
            a_star_l = a_l * (self.p_star / self.p_l) ** ((g - 1.0) / (2.0 * g))
            head = self.v_l - a_l
            tail = self.v_star - a_star_l
            m_undist = xi < head
            m_fan = (xi >= head) & (xi < tail)
            m_star = (xi >= tail) & (xi < self.v_star)
            rho[m_undist], v[m_undist], p[m_undist] = self.rho_l, self.v_l, self.p_l
            fan = xi[m_fan]
            vf = 2.0 / (g + 1.0) * (a_l + (g - 1.0) / 2.0 * self.v_l + fan)
            af = a_l - (g - 1.0) / 2.0 * (vf - self.v_l)
            rho[m_fan] = self.rho_l * (af / a_l) ** (2.0 / (g - 1.0))
            v[m_fan] = vf
            p[m_fan] = self.p_l * (af / a_l) ** (2.0 * g / (g - 1.0))
            rho[m_star], v[m_star], p[m_star] = (
                self.rho_star_l,
                self.v_star,
                self.p_star,
            )

        # ---- right side of the contact ------------------------------
        if self.p_star > self.p_r:  # right shock
            s_r = self.v_r + a_r * np.sqrt(
                (g + 1.0) / (2.0 * g) * self.p_star / self.p_r
                + (g - 1.0) / (2.0 * g)
            )
            m_star = (xi >= self.v_star) & (xi < s_r)
            m_undist = xi >= s_r
            rho[m_star], v[m_star], p[m_star] = (
                self.rho_star_r,
                self.v_star,
                self.p_star,
            )
            rho[m_undist], v[m_undist], p[m_undist] = self.rho_r, self.v_r, self.p_r
        else:  # right rarefaction
            a_star_r = a_r * (self.p_star / self.p_r) ** ((g - 1.0) / (2.0 * g))
            tail = self.v_star + a_star_r
            head = self.v_r + a_r
            m_star = (xi >= self.v_star) & (xi < tail)
            m_fan = (xi >= tail) & (xi < head)
            m_undist = xi >= head
            rho[m_star], v[m_star], p[m_star] = (
                self.rho_star_r,
                self.v_star,
                self.p_star,
            )
            fan = xi[m_fan]
            vf = 2.0 / (g + 1.0) * (-a_r + (g - 1.0) / 2.0 * self.v_r + fan)
            af = a_r + (g - 1.0) / 2.0 * (vf - self.v_r)
            rho[m_fan] = self.rho_r * (af / a_r) ** (2.0 / (g - 1.0))
            v[m_fan] = vf
            p[m_fan] = self.p_r * (af / a_r) ** (2.0 * g / (g - 1.0))
            rho[m_undist], v[m_undist], p[m_undist] = self.rho_r, self.v_r, self.p_r

        u = p / ((g - 1.0) * rho)
        return {"rho": rho, "v": v, "p": p, "u": u}


def solve_riemann(
    rho_l: float,
    v_l: float,
    p_l: float,
    rho_r: float,
    v_r: float,
    p_r: float,
    gamma: float = 1.4,
) -> RiemannSolution:
    """Solve one Riemann problem exactly (star pressure via Brent)."""
    if min(rho_l, rho_r, p_l, p_r) <= 0.0:
        raise ValueError("densities and pressures must be positive")

    def pressure_function(p: float) -> float:
        f_l, a_l = _f_side(p, rho_l, p_l, gamma)
        f_r, a_r = _f_side(p, rho_r, p_r, gamma)
        return f_l + f_r + (v_r - v_l)

    # Bracket: pressure_function is monotone increasing in p.
    p_lo, p_hi = 1e-12 * min(p_l, p_r), 10.0 * max(p_l, p_r)
    while pressure_function(p_hi) < 0.0:
        p_hi *= 10.0
        if p_hi > 1e12 * max(p_l, p_r):  # pragma: no cover - defensive
            raise RuntimeError("failed to bracket the star pressure")
    p_star = brentq(pressure_function, p_lo, p_hi, xtol=1e-15, rtol=1e-14)
    f_l, _ = _f_side(p_star, rho_l, p_l, gamma)
    f_r, _ = _f_side(p_star, rho_r, p_r, gamma)
    v_star = 0.5 * (v_l + v_r) + 0.5 * (f_r - f_l)
    return RiemannSolution(
        rho_l=rho_l,
        v_l=v_l,
        p_l=p_l,
        rho_r=rho_r,
        v_r=v_r,
        p_r=p_r,
        gamma=gamma,
        p_star=float(p_star),
        v_star=float(v_star),
    )
