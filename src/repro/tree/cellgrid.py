"""Uniform cell-grid (cell-linked-list) neighbour search.

The paper's codes discover neighbours with a tree walk (Table 1); this
module provides the library's vectorized *fast path* — a classic cell grid
that bins particles into cells at least as wide as the largest search
radius, so candidates always live in the 3^dim adjacent cells.  The octree
walk in :mod:`repro.tree.octree` is the paper-faithful path and is tested
for exact agreement with this one.

The search is fully vectorized: particles are sorted by flat cell id once,
candidate ranges are found with ``searchsorted`` for all (query, cell)
pairs at once, and flat candidate lists are materialized with the
repeat/cumsum range-expansion idiom.  Queries are processed in chunks to
bound peak memory.
"""

from __future__ import annotations

import numpy as np

from .box import Box
from .neighborlist import NeighborList

__all__ = ["CellGrid", "cell_grid_search"]


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k]+counts[k])`` for all k."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep_starts = np.repeat(starts, counts)
    rep_base = np.repeat(np.cumsum(counts) - counts, counts)
    return rep_starts + (np.arange(total, dtype=np.int64) - rep_base)


class CellGrid:
    """Particles binned into a uniform grid over a :class:`Box`."""

    def __init__(self, x: np.ndarray, box: Box, cell_width: float) -> None:
        if cell_width <= 0.0:
            raise ValueError(f"cell width must be positive, got {cell_width}")
        self.box = box
        self.x = box.wrap(np.atleast_2d(np.asarray(x, dtype=np.float64)))
        if not np.all(box.contains(self.x)):
            raise ValueError("particles outside the box along non-periodic axes")
        span = box.span
        self.ncells = np.maximum((span / cell_width).astype(np.int64), 1)
        self.width = span / self.ncells
        coords = ((self.x - box.lo) / self.width).astype(np.int64)
        self.coords = np.minimum(coords, self.ncells - 1)
        self.flat = self._flatten(self.coords)
        self.order = np.argsort(self.flat, kind="stable")
        self.flat_sorted = self.flat[self.order]

    def _flatten(self, coords: np.ndarray) -> np.ndarray:
        """Row-major flat cell id; works on any (..., dim) coordinate array."""
        flat = coords[..., 0].astype(np.int64)
        for axis in range(1, self.box.dim):
            flat = flat * self.ncells[axis] + coords[..., axis]
        return flat

    def _neighbor_cells(self, coords: np.ndarray) -> np.ndarray:
        """Flat ids of the 3^dim cells around each coordinate row.

        Returns ``(n, 3^dim)`` with ``-1`` marking cells that fall outside a
        non-periodic axis.  Duplicate cells (possible when a periodic axis
        has fewer than 3 cells) are de-duplicated to ``-1`` so no candidate
        is produced twice.
        """
        dim = self.box.dim
        offsets = np.stack(
            np.meshgrid(*([np.array([-1, 0, 1])] * dim), indexing="ij"), axis=-1
        ).reshape(-1, dim)
        neigh = coords[:, None, :] + offsets[None, :, :]
        valid = np.ones(neigh.shape[:2], dtype=bool)
        for axis in range(dim):
            n_axis = self.ncells[axis]
            if self.box.periodic[axis]:
                neigh[..., axis] = np.mod(neigh[..., axis], n_axis)
            else:
                ok = (neigh[..., axis] >= 0) & (neigh[..., axis] < n_axis)
                valid &= ok
                neigh[..., axis] = np.clip(neigh[..., axis], 0, n_axis - 1)
        flat = self._flatten(neigh)
        flat[~valid] = -1
        # De-duplicate aliased cells within each row (periodic wrap with
        # fewer than 3 cells along an axis maps distinct offsets to the
        # same cell).
        flat.sort(axis=1)
        dup = np.zeros_like(flat, dtype=bool)
        dup[:, 1:] = flat[:, 1:] == flat[:, :-1]
        flat[dup] = -1
        return flat

    def candidate_ranges(self, coords: np.ndarray):
        """(starts, counts) into the sorted particle order per (query, cell)."""
        cells = self._neighbor_cells(coords)
        flat = cells.ravel()
        starts = np.searchsorted(self.flat_sorted, flat, side="left")
        ends = np.searchsorted(self.flat_sorted, flat, side="right")
        counts = ends - starts
        counts[flat < 0] = 0
        return starts, counts, cells.shape[1]


def cell_grid_search(
    x: np.ndarray,
    radii: np.ndarray,
    box: Box | None = None,
    *,
    mode: str = "gather",
    include_self: bool = True,
    chunk: int = 8192,
) -> NeighborList:
    """Find all neighbours within per-particle search radii.

    Parameters
    ----------
    x:
        Positions, shape ``(n, dim)``.
    radii:
        Search radius per particle (scalar broadcasts).  For SPH this is the
        kernel support ``2 h_i``.
    box:
        Domain box; defaults to the open bounding box of ``x``.
    mode:
        ``"gather"`` keeps pairs with ``r <= radii[i]`` (density loops);
        ``"symmetric"`` keeps pairs with ``r <= max(radii[i], radii[j])``
        (momentum/energy loops, guaranteeing i-j symmetry).
    include_self:
        Whether particle ``i`` appears in its own list (SPH density needs
        the self-contribution; pair forces do not, but the kernel gradient
        vanishes at r=0 so keeping it is harmless).
    chunk:
        Queries processed per batch to bound peak memory.
    """
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    n, dim = x.shape
    radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
    if n == 0:
        return NeighborList(offsets=np.zeros(1, dtype=np.int64), indices=np.empty(0, dtype=np.int64))
    if np.any(radii <= 0.0):
        raise ValueError("search radii must be positive")
    if mode not in ("gather", "symmetric"):
        raise ValueError(f"mode must be 'gather' or 'symmetric', got {mode!r}")
    if box is None:
        box = Box.bounding(x)
    rmax = float(radii.max())
    grid = CellGrid(x, box, cell_width=rmax)
    xw = grid.x

    per_query: list[np.ndarray] = []
    counts_out = np.zeros(n, dtype=np.int64)
    for lo_q in range(0, n, chunk):
        hi_q = min(lo_q + chunk, n)
        q_idx = np.arange(lo_q, hi_q, dtype=np.int64)
        starts, counts, ncell = grid.candidate_ranges(grid.coords[lo_q:hi_q])
        flat_pos = _expand_ranges(starts, counts)  # positions in sorted order
        cand = grid.order[flat_pos]
        per_cell_query = np.repeat(q_idx, ncell)
        qi = np.repeat(per_cell_query, counts)
        dx = xw[qi] - xw[cand]
        dx = box.min_image(dx)
        r2 = np.einsum("ij,ij->i", dx, dx)
        if mode == "gather":
            cutoff = radii[qi]
        else:
            cutoff = np.maximum(radii[qi], radii[cand])
        keep = r2 <= cutoff * cutoff
        if not include_self:
            keep &= qi != cand
        qi = qi[keep]
        cand = cand[keep]
        # Sort pairs by query index for CSR assembly (stable keeps cell order).
        order = np.argsort(qi, kind="stable")
        qi = qi[order]
        cand = cand[order]
        counts_out[lo_q:hi_q] = np.bincount(qi - lo_q, minlength=hi_q - lo_q)
        per_query.append(cand)

    indices = (
        np.concatenate(per_query) if per_query else np.empty(0, dtype=np.int64)
    )
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts_out, out=offsets[1:])
    return NeighborList(offsets=offsets, indices=indices)
