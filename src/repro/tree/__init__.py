"""Tree and neighbour-search substrate (Algorithm 1, steps 1-2).

Morton/Hilbert space-filling-curve keys, a linear Barnes-Hut octree with a
vectorized tree-walk neighbour search (the paper-faithful path, Table 1
"Tree Walk"), a uniform cell-grid fast path, and the CSR neighbour-list
container every SPH kernel consumes.
"""

from .box import Box
from .cellgrid import CellGrid, cell_grid_search
from .morton import (
    hilbert_encode,
    hilbert_keys,
    morton_decode,
    morton_encode,
    morton_keys,
)
from .neighborlist import NeighborList
from .octree import Octree

__all__ = [
    "Box",
    "CellGrid",
    "cell_grid_search",
    "NeighborList",
    "Octree",
    "morton_encode",
    "morton_decode",
    "morton_keys",
    "hilbert_encode",
    "hilbert_keys",
]
