"""Linear Barnes-Hut octree (Algorithm 1, step 1).

The tree is built top-down from Morton-sorted particle keys, breadth-first,
one vectorized ``searchsorted`` pass per level — the linear-octree
construction used by modern SPH/gravity codes.  Nodes are stored in flat
arrays (SoA); each node records its particle range ``[pstart, pend)`` in
Morton order, so any per-node aggregate (mass moments, max smoothing
length) is a difference of prefix sums.

Two traversals are provided:

* :meth:`Octree.walk_neighbors` — the paper-faithful neighbour discovery
  (Table 1 "Tree Walk"), a vectorized frontier expansion over
  (query, node) pairs with periodic-aware AABB distance tests.
* :func:`repro.gravity.barnes_hut` builds on the same structure for the
  multipole force walk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .box import Box
from .morton import MAX_BITS_2D, MAX_BITS_3D, morton_decode, morton_keys
from .neighborlist import NeighborList

__all__ = ["Octree"]


@dataclass
class Octree:
    """Flat-array linear octree over a particle set.

    Attributes
    ----------
    box:
        Domain box the tree covers (bounds + periodicity).
    order:
        Permutation sorting particles by Morton key.
    center, half:
        Geometric node centers ``(m, dim)`` and per-axis half-widths.
    level:
        Refinement level per node (root is 0).
    child_start, child_count:
        Children of node k are ``child_start[k] : child_start[k] +
        child_count[k]`` (contiguous); leaves have ``child_count == 0``.
    pstart, pend:
        Particle range of node k in Morton order.
    """

    box: Box
    order: np.ndarray
    center: np.ndarray
    half: np.ndarray
    level: np.ndarray
    child_start: np.ndarray
    child_count: np.ndarray
    pstart: np.ndarray
    pend: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        x: np.ndarray,
        box: Box | None = None,
        leaf_size: int = 32,
        max_level: int | None = None,
    ) -> "Octree":
        """Build the tree over positions ``x``.

        ``leaf_size`` is the bucket size below which nodes stop splitting;
        the parent codes use O(10)-O(100) buckets so tree depth stays
        logarithmic while vector lengths stay long.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n, dim = x.shape
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        if box is None:
            box = Box.bounding(x)
        bits = MAX_BITS_3D if dim == 3 else (MAX_BITS_2D if dim == 2 else 62)
        if max_level is None:
            max_level = bits
        max_level = min(max_level, bits)
        keys = morton_keys(box.wrap(x), box.lo, box.hi, bits=bits)
        order = np.argsort(keys, kind="stable")
        keys_sorted = keys[order]

        nchild = 1 << dim
        # Per-level node lists, assembled breadth-first.
        curve = [np.zeros(1, dtype=np.uint64)]  # curve coordinate per node
        levels = [np.zeros(1, dtype=np.int64)]
        pstarts = [np.zeros(1, dtype=np.int64)]
        pends = [np.full(1, n, dtype=np.int64)]
        childstart = [np.full(1, -1, dtype=np.int64)]
        childcount = [np.zeros(1, dtype=np.int64)]

        total_nodes = 1
        cur_curve = curve[0]
        cur_start = pstarts[0]
        cur_end = pends[0]
        cur_level = 0

        while cur_curve.size and cur_level < max_level:
            counts = cur_end - cur_start
            split = counts > leaf_size
            if not np.any(split):
                break
            parents = np.nonzero(split)[0]
            nsplit = parents.size
            child_level = cur_level + 1
            shift = np.uint64(dim * (bits - child_level))
            # Child curve coordinates and their key boundaries.
            base = (cur_curve[parents].astype(np.uint64) << np.uint64(dim))[:, None]
            kids = base + np.arange(nchild, dtype=np.uint64)[None, :]
            bounds = (
                np.concatenate([kids, kids[:, -1:] + np.uint64(1)], axis=1) << shift
            )
            # Particle ranges: searchsorted within each parent's range.
            edges = np.searchsorted(keys_sorted, bounds.ravel()).reshape(
                nsplit, nchild + 1
            )
            edges[:, 0] = cur_start[parents]
            edges[:, -1] = cur_end[parents]
            kid_start = edges[:, :-1]
            kid_end = edges[:, 1:]
            kid_counts = kid_end - kid_start
            keep = kid_counts > 0
            kept_per_parent = keep.sum(axis=1)

            # Wire parents to their surviving children (contiguous block).
            first_child_global = total_nodes + np.concatenate(
                [[0], np.cumsum(kept_per_parent)[:-1]]
            )
            childstart[-1][parents] = first_child_global
            childcount[-1][parents] = kept_per_parent

            new_curve = kids[keep]
            new_start = kid_start[keep]
            new_end = kid_end[keep]
            nnew = new_curve.size
            curve.append(new_curve)
            levels.append(np.full(nnew, child_level, dtype=np.int64))
            pstarts.append(new_start.astype(np.int64))
            pends.append(new_end.astype(np.int64))
            childstart.append(np.full(nnew, -1, dtype=np.int64))
            childcount.append(np.zeros(nnew, dtype=np.int64))
            total_nodes += nnew
            cur_curve = new_curve
            cur_start = new_start.astype(np.int64)
            cur_end = new_end.astype(np.int64)
            cur_level = child_level

        all_curve = np.concatenate(curve)
        all_level = np.concatenate(levels)
        all_start = np.concatenate(pstarts)
        all_end = np.concatenate(pends)
        all_cs = np.concatenate(childstart)
        all_cc = np.concatenate(childcount)

        # Geometric centers from curve coordinates: decode the grid cell at
        # each node's level and scale to physical space.
        span = box.span
        grid = morton_decode(all_curve, dim).astype(np.float64)
        cell = span[None, :] / (1 << all_level).astype(np.float64)[:, None]
        center = box.lo[None, :] + (grid + 0.5) * cell
        half = 0.5 * cell

        return cls(
            box=box,
            order=order,
            center=center,
            half=half,
            level=all_level,
            child_start=all_cs,
            child_count=all_cc,
            pstart=all_start,
            pend=all_end,
        )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.center.shape[0]

    @property
    def n_particles(self) -> int:
        return self.order.shape[0]

    @property
    def dim(self) -> int:
        return self.center.shape[1]

    def is_leaf(self) -> np.ndarray:
        return self.child_count == 0

    def node_counts(self) -> np.ndarray:
        return self.pend - self.pstart

    def depth(self) -> int:
        return int(self.level.max())

    def node_aggregate(self, values: np.ndarray) -> np.ndarray:
        """Sum a per-particle quantity over each node via prefix sums.

        ``values`` may be ``(n,)`` or ``(n, k)``; the reduction runs along
        the particle axis, so k columns (e.g. multipole moment components)
        aggregate in one pass.
        """
        values = np.asarray(values, dtype=np.float64)
        sorted_vals = values[self.order]
        pad_shape = (1,) + sorted_vals.shape[1:]
        prefix = np.concatenate(
            [np.zeros(pad_shape), np.cumsum(sorted_vals, axis=0)], axis=0
        )
        return prefix[self.pend] - prefix[self.pstart]

    def node_max(self, values: np.ndarray) -> np.ndarray:
        """Maximum of a per-particle quantity over each node's particles.

        Node ranges are nested, so a single ``reduceat`` cannot serve them
        all; instead leaf maxima are taken over the leaf tiling of the
        particle range and propagated bottom-up, level by level (children
        of each parent are contiguous, so each level is one segmented
        ``maximum.reduceat``).
        """
        values = np.asarray(values, dtype=np.float64)[self.order]
        out = np.full(self.n_nodes, -np.inf)
        if values.size == 0:
            return out
        # Leaves partition [0, n): reduceat over their sorted starts.
        leaves = np.nonzero(self.child_count == 0)[0]
        leaves = leaves[np.argsort(self.pstart[leaves], kind="stable")]
        out[leaves] = np.maximum.reduceat(values, self.pstart[leaves])
        # Propagate to internal nodes, deepest level first.
        for lev in range(int(self.level.max()) - 1, -1, -1):
            ids = np.nonzero((self.level == lev) & (self.child_count > 0))[0]
            if ids.size == 0:
                continue
            flat_children = _expand_ranges(self.child_start[ids], self.child_count[ids])
            vals = out[flat_children]
            starts = np.cumsum(self.child_count[ids]) - self.child_count[ids]
            out[ids] = np.maximum.reduceat(vals, starts)
        return out

    # ------------------------------------------------------------------
    def _aabb_dist2(self, xq: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Squared distance from points to node boxes (periodic-aware)."""
        dxc = xq - self.center[nodes]
        dxc = self.box.min_image(dxc)
        excess = np.maximum(np.abs(dxc) - self.half[nodes], 0.0)
        return np.einsum("ij,ij->i", excess, excess)

    def walk_neighbors(
        self,
        x: np.ndarray,
        radii: np.ndarray,
        *,
        mode: str = "gather",
        include_self: bool = True,
        node_rmax: np.ndarray | None = None,
        chunk: int = 4096,
    ) -> NeighborList:
        """Neighbour discovery by tree walk (Table 1 "Tree Walk").

        Same contract as :func:`repro.tree.cellgrid.cell_grid_search`.  For
        ``mode="symmetric"`` the walk opens nodes against ``max(r_i,
        node_rmax)`` where ``node_rmax`` is the per-node maximum search
        radius (computed here if not supplied), guaranteeing no j with
        ``r <= radii[j]`` is missed.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        n = x.shape[0]
        radii = np.broadcast_to(np.asarray(radii, dtype=np.float64), (n,))
        if mode not in ("gather", "symmetric"):
            raise ValueError(f"mode must be 'gather' or 'symmetric', got {mode!r}")
        if mode == "symmetric" and node_rmax is None:
            node_rmax = self.node_max(radii)
        xw = self.box.wrap(x)

        indices_parts: list[np.ndarray] = []
        counts_out = np.zeros(n, dtype=np.int64)
        for lo_q in range(0, n, chunk):
            hi_q = min(lo_q + chunk, n)
            q = np.arange(lo_q, hi_q, dtype=np.int64)
            pairs_q = q.copy()
            pairs_n = np.zeros(q.size, dtype=np.int64)  # start at root
            cand_q: list[np.ndarray] = []
            cand_j: list[np.ndarray] = []
            while pairs_q.size:
                dist2 = self._aabb_dist2(xw[pairs_q], pairs_n)
                if mode == "gather":
                    cutoff = radii[pairs_q]
                else:
                    cutoff = np.maximum(radii[pairs_q], node_rmax[pairs_n])
                alive = dist2 <= cutoff * cutoff
                pairs_q = pairs_q[alive]
                pairs_n = pairs_n[alive]
                if not pairs_q.size:
                    break
                leaf = self.child_count[pairs_n] == 0
                if np.any(leaf):
                    lq = pairs_q[leaf]
                    ln = pairs_n[leaf]
                    counts = self.pend[ln] - self.pstart[ln]
                    flat = _expand_ranges(self.pstart[ln], counts)
                    cand_j.append(self.order[flat])
                    cand_q.append(np.repeat(lq, counts))
                # Expand internal nodes to their children.
                iq = pairs_q[~leaf]
                inn = pairs_n[~leaf]
                ccount = self.child_count[inn]
                cstart = self.child_start[inn]
                pairs_n = _expand_ranges(cstart, ccount)
                pairs_q = np.repeat(iq, ccount)

            if cand_q:
                qi = np.concatenate(cand_q)
                cj = np.concatenate(cand_j)
            else:
                qi = np.empty(0, dtype=np.int64)
                cj = np.empty(0, dtype=np.int64)
            dx = self.box.min_image(xw[qi] - xw[cj])
            r2 = np.einsum("ij,ij->i", dx, dx)
            if mode == "gather":
                cutoff = radii[qi]
            else:
                cutoff = np.maximum(radii[qi], radii[cj])
            keep = r2 <= cutoff * cutoff
            if not include_self:
                keep &= qi != cj
            qi = qi[keep]
            cj = cj[keep]
            srt = np.argsort(qi, kind="stable")
            qi = qi[srt]
            cj = cj[srt]
            counts_out[lo_q:hi_q] = np.bincount(qi - lo_q, minlength=hi_q - lo_q)
            indices_parts.append(cj)

        indices = (
            np.concatenate(indices_parts)
            if indices_parts
            else np.empty(0, dtype=np.int64)
        )
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts_out, out=offsets[1:])
        return NeighborList(offsets=offsets, indices=indices)


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[k], starts[k]+counts[k])`` for all k."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    rep_starts = np.repeat(starts, counts)
    rep_base = np.repeat(np.cumsum(counts) - counts, counts)
    return rep_starts + (np.arange(total, dtype=np.int64) - rep_base)
