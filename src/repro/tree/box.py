"""Simulation bounding box with optional periodic axes.

The rotating-square-patch test (Section 5.1) applies periodic boundary
conditions along Z so that the 100-layer cube reproduces the original 2-D
test; the Evrard collapse is fully open.  The box therefore carries a
per-axis periodicity flag and implements the minimum-image convention for
separation vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """Axis-aligned box ``[lo, hi]`` with per-axis periodicity."""

    lo: np.ndarray
    hi: np.ndarray
    periodic: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        lo = np.atleast_1d(np.asarray(self.lo, dtype=np.float64))
        hi = np.atleast_1d(np.asarray(self.hi, dtype=np.float64))
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError(f"lo/hi must be matching 1-D arrays, got {lo}, {hi}")
        if np.any(hi <= lo):
            raise ValueError(f"box must have positive extent: lo={lo}, hi={hi}")
        periodic = self.periodic
        if periodic is None:
            periodic = np.zeros(lo.shape, dtype=bool)
        else:
            periodic = np.atleast_1d(np.asarray(periodic, dtype=bool))
            if periodic.shape != lo.shape:
                raise ValueError("periodic must have one flag per axis")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "periodic", periodic)

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def span(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        return float(np.prod(self.span))

    @property
    def center(self) -> np.ndarray:
        return 0.5 * (self.lo + self.hi)

    def contains(self, x: np.ndarray) -> np.ndarray:
        """Boolean mask of positions inside the closed box."""
        x = np.atleast_2d(x)
        return np.all((x >= self.lo) & (x <= self.hi), axis=1)

    # ------------------------------------------------------------------
    def wrap(self, x: np.ndarray) -> np.ndarray:
        """Fold positions back into the box along periodic axes."""
        x = np.array(x, dtype=np.float64, copy=True)
        span = self.span
        for axis in np.nonzero(self.periodic)[0]:
            x[:, axis] = (
                np.mod(x[:, axis] - self.lo[axis], span[axis]) + self.lo[axis]
            )
        return x

    def min_image(
        self, dx: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Minimum-image separation vectors for periodic axes.

        Without ``out`` the input is copied (in place safe); with
        ``out`` the correction is applied there — pass ``out=dx`` to fold
        a preallocated separation buffer without a fresh temporary.  The
        per-axis arithmetic is identical either way.
        """
        if out is None:
            out = np.array(dx, dtype=np.float64, copy=True)
        elif out is not dx:
            np.copyto(out, dx)
        span = self.span
        for axis in np.nonzero(self.periodic)[0]:
            out[..., axis] -= span[axis] * np.round(out[..., axis] / span[axis])
        return out

    # ------------------------------------------------------------------
    @classmethod
    def cube(
        cls, lo: float, hi: float, dim: int = 3, periodic: bool = False
    ) -> "Box":
        """Cubic box with identical bounds (and periodicity) on every axis."""
        return cls(
            lo=np.full(dim, float(lo)),
            hi=np.full(dim, float(hi)),
            periodic=np.full(dim, bool(periodic)),
        )

    @classmethod
    def bounding(cls, x: np.ndarray, pad: float = 1e-3) -> "Box":
        """Smallest box containing all positions, padded by ``pad`` fraction."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        lo = x.min(axis=0)
        hi = x.max(axis=0)
        span = np.maximum(hi - lo, 1e-300)
        margin = pad * np.maximum(span, 1.0e-12)
        return cls(lo=lo - margin, hi=hi + margin)
