"""Compressed (CSR) neighbour-list container.

SPH spends essentially all of its time looping over particle-neighbour
pairs (Algorithm 1, steps 2-3).  The library represents the interaction
lists in CSR form — one flat ``indices`` array plus per-particle
``offsets`` — so that every SPH kernel can be written as vectorized numpy
over the flat pair arrays followed by segmented reductions
(``np.add.reduceat`` / ``np.bincount``), with no per-particle Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .box import Box

__all__ = [
    "NeighborList",
    "reduce_pairs",
    "balanced_row_slices",
    "VerletCacheStats",
    "VerletNeighborCache",
]


def reduce_pairs(
    pair_i: np.ndarray,
    n_rows: int,
    values: np.ndarray,
    flat_index: np.ndarray | None = None,
) -> np.ndarray:
    """Sum per-pair ``values`` into ``n_rows`` per-particle bins.

    The 2-D/N-D case runs as a *single* flattened ``np.bincount`` over
    ``pair_i * k + column`` instead of one bincount per column: for every
    output bin the contributing pairs are visited in the same ascending
    pair order either way, so the accumulation order — and therefore the
    floating-point sum — is bitwise identical to the per-column loop.
    ``flat_index`` optionally supplies the precomputed flattened index
    (it depends only on ``pair_i`` and the column count, so callers that
    reduce repeatedly can cache it).
    """
    values = np.asarray(values)
    if values.ndim == 1:
        return np.bincount(pair_i, weights=values, minlength=n_rows)
    k = int(np.prod(values.shape[1:]))
    if flat_index is None:
        flat_index = (
            pair_i[:, None] * k + np.arange(k, dtype=np.int64)
        ).ravel()
    flat = np.bincount(
        flat_index, weights=values.reshape(-1), minlength=n_rows * k
    )
    return flat.reshape((n_rows,) + values.shape[1:])


@dataclass(frozen=True)
class NeighborList:
    """CSR neighbour lists for ``n`` query particles.

    ``indices[offsets[i]:offsets[i+1]]`` are the neighbours of particle
    ``i``.  ``pair_i()`` expands the implicit query index to one entry per
    pair for use in flat vectorized kernels.
    """

    offsets: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must start at 0 and be non-decreasing")
        if offsets[-1] != indices.size:
            raise ValueError(
                f"offsets[-1]={offsets[-1]} must equal len(indices)={indices.size}"
            )
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "indices", indices)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of query particles."""
        return self.offsets.size - 1

    @property
    def n_pairs(self) -> int:
        """Total number of (i, j) interaction pairs."""
        return self.indices.size

    def counts(self) -> np.ndarray:
        """Neighbour count per query particle."""
        return np.diff(self.offsets)

    def pair_i(self) -> np.ndarray:
        """Query index ``i`` for every pair (aligned with ``indices``).

        Computed once and memoized on the (frozen) instance: the CSR
        arrays are immutable, so the ``np.repeat`` expansion never
        changes and repeated callers share one array.  Treat the result
        as read-only.
        """
        cached = self.__dict__.get("_pair_i")
        if cached is None:
            cached = np.repeat(np.arange(self.n, dtype=np.int64), self.counts())
            object.__setattr__(self, "_pair_i", cached)
        return cached

    def pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(i, j)`` index arrays, one entry per interaction pair."""
        return self.pair_i(), self.indices

    def neighbors_of(self, i: int) -> np.ndarray:
        """Neighbour indices of a single particle (for tests/diagnostics)."""
        return self.indices[self.offsets[i] : self.offsets[i + 1]]

    def row_slice(self, lo: int, hi: int) -> "NeighborList":
        """Sub-list for query rows ``[lo, hi)``.

        ``pair_i()`` of the slice is *local* (0-based); ``indices`` still
        refer to the global particle set, so slice kernels index global
        state arrays with ``lo + pair_i()`` — the substrate of the
        process-pool fan-out in :mod:`repro.parallel`.
        """
        if not 0 <= lo <= hi <= self.n:
            raise ValueError(f"row slice [{lo}, {hi}) out of range for n={self.n}")
        offsets = self.offsets[lo : hi + 1] - self.offsets[lo]
        indices = self.indices[self.offsets[lo] : self.offsets[hi]]
        return NeighborList(offsets=offsets, indices=indices)

    # ------------------------------------------------------------------
    def pair_geometry(
        self, x: np.ndarray, box: Box | None = None, row_offset: int = 0
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Separation vectors and distances for every pair.

        Returns ``(dx, r)`` with ``dx[k] = x_i - x_j`` under the minimum
        image convention of ``box`` (if given) and ``r = |dx|``.  For a
        :meth:`row_slice` sub-list, pass the slice start as ``row_offset``
        so query indices address the global position array.
        """
        i, j = self.pairs()
        if row_offset:
            i = i + row_offset
        dx = x[i] - x[j]
        if box is not None:
            dx = box.min_image(dx)
        r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
        return dx, r

    def reduce(self, values: np.ndarray) -> np.ndarray:
        """Sum per-pair ``values`` into per-query-particle totals.

        Works for flat ``(n_pairs,)`` arrays and ``(n_pairs, k)`` stacks.
        Particles with zero neighbours contribute zeros.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_pairs:
            raise ValueError(
                f"values has leading size {values.shape[0]}, expected {self.n_pairs}"
            )
        return reduce_pairs(self.pair_i(), self.n, values)

    def reduce_into(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """:meth:`reduce` writing the result into a preallocated ``out``.

        ``np.bincount`` owns its accumulator, so the summation itself is
        identical to :meth:`reduce`; only the final per-particle result
        (small — one entry per query row, not per pair) is copied into
        ``out``, letting steady-state callers keep a stable output
        buffer.
        """
        result = self.reduce(values)
        if out.shape != result.shape:
            raise ValueError(
                f"out has shape {out.shape}, expected {result.shape}"
            )
        np.copyto(out, result)
        return out


def balanced_row_slices(offsets: np.ndarray, n_slices: int) -> list[Tuple[int, int]]:
    """Split query rows into ``n_slices`` contiguous ranges of ~equal pairs.

    Pair work, not row count, is what the SPH kernels cost, so the
    process-pool fan-out splits the CSR ``offsets`` at equal-pair
    boundaries.  Empty ranges are dropped; at most ``n_slices`` are
    returned.
    """
    offsets = np.asarray(offsets)
    n = offsets.size - 1
    if n_slices < 1:
        raise ValueError(f"n_slices must be >= 1, got {n_slices}")
    total = int(offsets[-1])
    targets = (np.arange(1, n_slices) * total) // n_slices
    cuts = np.searchsorted(offsets, targets, side="left")
    bounds = np.concatenate([[0], cuts, [n]])
    bounds = np.maximum.accumulate(np.clip(bounds, 0, n))
    return [
        (int(lo), int(hi))
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]


# ----------------------------------------------------------------------
# Verlet-skin neighbour-list cache
# ----------------------------------------------------------------------
@dataclass
class VerletCacheStats:
    """Counters of one run's cache behaviour (reported by profiling)."""

    builds: int = 0
    hits: int = 0
    misses_displacement: int = 0
    misses_h_change: int = 0
    misses_shape: int = 0

    @property
    def lookups(self) -> int:
        return (
            self.hits
            + self.misses_displacement
            + self.misses_h_change
            + self.misses_shape
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never asked)."""
        total = self.lookups
        return self.hits / total if total else 0.0


@dataclass
class VerletNeighborCache:
    """Verlet-skin neighbour-list cache (skip Algorithm-1 phases B-D).

    Lists are built once with padded support ``(1 + skin) * 2 h`` and
    reused while the state stays within the skin budget, split evenly
    between motion and smoothing-length growth:

    * displacement: ``|x - x_ref| <= skin/2 * h_ref`` per particle;
    * h growth: ``h <= (1 + skin/2) * h_ref`` per particle (shrinking is
      always safe).

    Under both bounds any pair within the true symmetric support
    ``2 max(h_i, h_j)`` had build-time separation at most ``2 max(h) +
    d_i + d_j <= (1 + skin) * 2 max(h_ref)`` — i.e. the pair is in the
    cached list, so neighbour *counts* filtered to ``r <= 2 h`` are exact
    and the h-adaptation iteration can run off the cached list without a
    fresh search.  Extra padded pairs are harmless because every SPH pair
    term carries a kernel factor that vanishes beyond ``2 h`` (the force
    loop masks its one non-kernel diagnostic, ``max |mu|``, to the true
    support), so cached and fresh evaluations agree to summation roundoff
    (bitwise when the pair ordering coincides).

    The cache invalidates itself whenever a smoothing length out-grows
    the budget, whenever the particle count changes, and whenever any
    displacement exceeds the skin allowance.
    """

    skin: float = 0.3
    stats: VerletCacheStats = field(default_factory=VerletCacheStats)
    _nlist: Optional[NeighborList] = None
    _x_ref: Optional[np.ndarray] = None
    _h_ref: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.skin < 1.0:
            raise ValueError(f"skin must be in (0, 1), got {self.skin}")

    @property
    def search_factor(self) -> float:
        """Search-radius multiplier of ``h`` for cache-compatible builds."""
        return (1.0 + self.skin) * 2.0

    @property
    def h_ref(self) -> Optional[np.ndarray]:
        """Smoothing lengths the cached list was built with."""
        return self._h_ref

    def covers(self, h: np.ndarray) -> bool:
        """True while ``h`` stays within the growth half of the skin."""
        if self._h_ref is None:
            return False
        return bool(np.all(h <= (1.0 + 0.5 * self.skin) * self._h_ref))

    def lookup(
        self, x: np.ndarray, h: np.ndarray, box: Box | None = None
    ) -> Optional[NeighborList]:
        """Return the cached list if still valid for state ``(x, h)``."""
        if self._nlist is None or self._x_ref is None:
            self.stats.misses_shape += 1
            return None
        if x.shape != self._x_ref.shape:
            self.stats.misses_shape += 1
            self.invalidate()
            return None
        if not self.covers(h):
            self.stats.misses_h_change += 1
            self.invalidate()
            return None
        dx = x - self._x_ref
        if box is not None:
            dx = box.min_image(dx)
        disp = np.sqrt(np.einsum("ij,ij->i", dx, dx))
        if np.any(disp > 0.5 * self.skin * self._h_ref):
            self.stats.misses_displacement += 1
            self.invalidate()
            return None
        self.stats.hits += 1
        return self._nlist

    def store(self, nlist: NeighborList, x: np.ndarray, h: np.ndarray) -> None:
        """Record a freshly built padded list and its reference state."""
        self._nlist = nlist
        self._x_ref = np.array(x, copy=True)
        self._h_ref = np.array(h, copy=True)
        self.stats.builds += 1

    def invalidate(self) -> None:
        """Drop the cached list (forces a rebuild on the next lookup)."""
        self._nlist = None
        self._x_ref = None
        self._h_ref = None
