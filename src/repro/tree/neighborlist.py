"""Compressed (CSR) neighbour-list container.

SPH spends essentially all of its time looping over particle-neighbour
pairs (Algorithm 1, steps 2-3).  The library represents the interaction
lists in CSR form — one flat ``indices`` array plus per-particle
``offsets`` — so that every SPH kernel can be written as vectorized numpy
over the flat pair arrays followed by segmented reductions
(``np.add.reduceat`` / ``np.bincount``), with no per-particle Python loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .box import Box

__all__ = ["NeighborList"]


@dataclass(frozen=True)
class NeighborList:
    """CSR neighbour lists for ``n`` query particles.

    ``indices[offsets[i]:offsets[i+1]]`` are the neighbours of particle
    ``i``.  ``pair_i()`` expands the implicit query index to one entry per
    pair for use in flat vectorized kernels.
    """

    offsets: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.ascontiguousarray(self.offsets, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size < 1:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must start at 0 and be non-decreasing")
        if offsets[-1] != indices.size:
            raise ValueError(
                f"offsets[-1]={offsets[-1]} must equal len(indices)={indices.size}"
            )
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "indices", indices)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of query particles."""
        return self.offsets.size - 1

    @property
    def n_pairs(self) -> int:
        """Total number of (i, j) interaction pairs."""
        return self.indices.size

    def counts(self) -> np.ndarray:
        """Neighbour count per query particle."""
        return np.diff(self.offsets)

    def pair_i(self) -> np.ndarray:
        """Query index ``i`` for every pair (aligned with ``indices``)."""
        return np.repeat(np.arange(self.n, dtype=np.int64), self.counts())

    def pairs(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(i, j)`` index arrays, one entry per interaction pair."""
        return self.pair_i(), self.indices

    def neighbors_of(self, i: int) -> np.ndarray:
        """Neighbour indices of a single particle (for tests/diagnostics)."""
        return self.indices[self.offsets[i] : self.offsets[i + 1]]

    # ------------------------------------------------------------------
    def pair_geometry(
        self, x: np.ndarray, box: Box | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Separation vectors and distances for every pair.

        Returns ``(dx, r)`` with ``dx[k] = x_i - x_j`` under the minimum
        image convention of ``box`` (if given) and ``r = |dx|``.
        """
        i, j = self.pairs()
        dx = x[i] - x[j]
        if box is not None:
            dx = box.min_image(dx)
        r = np.sqrt(np.einsum("ij,ij->i", dx, dx))
        return dx, r

    def reduce(self, values: np.ndarray) -> np.ndarray:
        """Sum per-pair ``values`` into per-query-particle totals.

        Works for flat ``(n_pairs,)`` arrays and ``(n_pairs, k)`` stacks.
        Particles with zero neighbours contribute zeros.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_pairs:
            raise ValueError(
                f"values has leading size {values.shape[0]}, expected {self.n_pairs}"
            )
        i = self.pair_i()
        if values.ndim == 1:
            return np.bincount(i, weights=values, minlength=self.n)
        out = np.empty((self.n,) + values.shape[1:], dtype=np.float64)
        for col in range(values.shape[1]):
            out[:, col] = np.bincount(i, weights=values[:, col], minlength=self.n)
        return out
