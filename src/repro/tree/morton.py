"""Space-filling-curve keys: Morton (Z-order) and Hilbert.

Both the Barnes-Hut octree (Algorithm 1, step 1) and the SFC domain
decomposition of ChaNGa (Table 3) are built on 64-bit particle keys.  Keys
use 21 bits per axis in 3-D (63 bits) and 31 bits per axis in 2-D, computed
with branch-free magic-number bit spreading so the whole particle set is
encoded in a handful of vectorized passes.

Hilbert keys are derived with Skilling's transpose algorithm ("Programming
the Hilbert curve", AIP 2004), vectorized across particles with a loop only
over the ~21 bit levels; unlike Morton order, consecutive Hilbert keys are
always spatially adjacent, which is why production codes prefer them for
domain decomposition locality.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_BITS_3D",
    "MAX_BITS_2D",
    "normalize_coords",
    "quantize",
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "morton_keys",
    "hilbert_keys",
]

MAX_BITS_3D = 21
MAX_BITS_2D = 31


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so they occupy every third bit."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x ^ (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of ``x`` so they occupy every other bit."""
    x = x.astype(np.uint64) & np.uint64(0x7FFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def _compact1by1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by1`."""
    x = x.astype(np.uint64) & np.uint64(0x5555555555555555)
    x = (x ^ (x >> np.uint64(1))) & np.uint64(0x3333333333333333)
    x = (x ^ (x >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x ^ (x >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x ^ (x >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x ^ (x >> np.uint64(16))) & np.uint64(0x7FFFFFFF)
    return x


def normalize_coords(
    x: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Map positions into the unit cube ``[0, 1)^dim`` of the box (lo, hi)."""
    x = np.asarray(x, dtype=np.float64)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    span = hi - lo
    if np.any(span <= 0.0):
        raise ValueError(f"degenerate bounding box: lo={lo}, hi={hi}")
    frac = (x - lo) / span
    # Clamp so particles sitting exactly on the upper face stay inside.
    return np.clip(frac, 0.0, np.nextafter(1.0, 0.0))


def quantize(frac: np.ndarray, bits: int) -> np.ndarray:
    """Quantize unit-cube fractions to ``bits``-bit unsigned grid coords."""
    scale = float(1 << bits)
    grid = np.floor(np.asarray(frac) * scale).astype(np.uint64)
    return np.minimum(grid, np.uint64((1 << bits) - 1))


def morton_encode(grid: np.ndarray) -> np.ndarray:
    """Interleave integer grid coordinates ``(n, dim)`` into Morton keys.

    Axis 0 occupies the most significant bit of each group, so keys sort
    identically to a top-down octree split on x, then y, then z.
    """
    grid = np.atleast_2d(np.asarray(grid, dtype=np.uint64))
    dim = grid.shape[1]
    if dim == 3:
        return (
            (_part1by2(grid[:, 0]) << np.uint64(2))
            | (_part1by2(grid[:, 1]) << np.uint64(1))
            | _part1by2(grid[:, 2])
        )
    if dim == 2:
        return (_part1by1(grid[:, 0]) << np.uint64(1)) | _part1by1(grid[:, 1])
    if dim == 1:
        return grid[:, 0].astype(np.uint64)
    raise ValueError(f"dim must be 1, 2 or 3, got {dim}")


def morton_decode(keys: np.ndarray, dim: int) -> np.ndarray:
    """Inverse of :func:`morton_encode`; returns grid coords ``(n, dim)``."""
    keys = np.asarray(keys, dtype=np.uint64)
    if dim == 3:
        return np.stack(
            [
                _compact1by2(keys >> np.uint64(2)),
                _compact1by2(keys >> np.uint64(1)),
                _compact1by2(keys),
            ],
            axis=1,
        )
    if dim == 2:
        return np.stack(
            [_compact1by1(keys >> np.uint64(1)), _compact1by1(keys)], axis=1
        )
    if dim == 1:
        return keys[:, None].copy()
    raise ValueError(f"dim must be 1, 2 or 3, got {dim}")


def _axes_to_transpose(grid: np.ndarray, bits: int) -> np.ndarray:
    """Skilling's AxesToTranspose, vectorized over points.

    Converts grid coordinates to the "transposed" Hilbert representation in
    place-order; interleaving the result yields the Hilbert index.
    """
    x = np.asarray(grid, dtype=np.uint64).copy()
    npts, ndim = x.shape
    m = np.uint64(1) << np.uint64(bits - 1)

    # Inverse undo excess work.
    q = m
    one = np.uint64(1)
    while q > one:
        p = q - one
        for i in range(ndim):
            flip = (x[:, i] & q) != 0
            # Invert the primary axis where the bit is set...
            x[flip, 0] ^= p
            # ...and exchange low bits with the primary axis elsewhere.
            t = (x[~flip, 0] ^ x[~flip, i]) & p
            x[~flip, 0] ^= t
            x[~flip, i] ^= t
        q >>= one

    # Gray encode.
    for i in range(1, ndim):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(npts, dtype=np.uint64)
    q = m
    while q > one:
        sel = (x[:, ndim - 1] & q) != 0
        t[sel] ^= q - one
        q >>= one
    for i in range(ndim):
        x[:, i] ^= t
    return x


def hilbert_encode(grid: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert keys for integer grid coordinates ``(n, dim)``."""
    grid = np.atleast_2d(np.asarray(grid, dtype=np.uint64))
    dim = grid.shape[1]
    if dim == 1:
        return grid[:, 0].astype(np.uint64)
    transposed = _axes_to_transpose(grid, bits)
    return morton_encode(transposed)


def morton_keys(
    x: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int | None = None
) -> np.ndarray:
    """Morton keys for positions ``x`` within the bounding box (lo, hi)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    dim = x.shape[1]
    if bits is None:
        bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    return morton_encode(quantize(normalize_coords(x, lo, hi), bits))


def hilbert_keys(
    x: np.ndarray, lo: np.ndarray, hi: np.ndarray, bits: int | None = None
) -> np.ndarray:
    """Hilbert keys for positions ``x`` within the bounding box (lo, hi)."""
    x = np.atleast_2d(np.asarray(x, dtype=np.float64))
    dim = x.shape[1]
    if bits is None:
        bits = MAX_BITS_3D if dim == 3 else MAX_BITS_2D
    return hilbert_encode(quantize(normalize_coords(x, lo, hi), bits), bits)
