"""Online autotuner: predict → execute → feedback inside ``Simulation.run``.

The tuner owns a bounded, deterministic exploration window at the start
of a run.  It measures the baseline configuration, then climbs a
one-knob-at-a-time ladder over the execution knobs (backend, pair
engine, Verlet cache, workers, ...): each rung applies one candidate via
:meth:`Simulation._rewire_exec`, measures ``steps_per_candidate`` whole
steps, keeps the candidate iff it beat the best time so far, and feeds
every measurement into the :class:`~repro.tuning.model.CostModel`.  When
the ladder (or the step budget) is exhausted, the best configuration is
applied and the rest of the run executes untouched.

Warm start: with a ledger configured, historical rows for the same
(scenario, host) seed the cost model, pick the ladder's starting
configuration, and let the tuner *prune* rungs whose predicted time —
with signature-level evidence — cannot plausibly beat the incumbent.
Every decision (measure / adopt / reject / prune / converge) lands in
the decision trail (``RunReport.tuning``) and as ``tuning`` spans on the
driver row, so a tuned run explains itself the same way everything else
in this codebase does.

Determinism: the rung order is a seeded shuffle (``TuningConfig.seed``),
so two tuners over the same knob space explore in the same order — the
property the reproducibility tests pin.
"""

from __future__ import annotations

import dataclasses
import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..observability.ledger import RunLedger, fingerprint_id
from ..profiling.trace import State
from .model import CostModel

__all__ = ["TuningConfig", "Autotuner", "SUPPORTED_KNOBS"]

#: Execution knobs the ladder knows how to vary, with their option
#: generators.  ``workers`` options depend on the host; ``backend`` on
#: the installed toolchains; the rest are fixed small sets.
SUPPORTED_KNOBS = (
    "backend",
    "pair_engine",
    "neighbor_cache",
    "workers",
    "chunks_per_worker",
    "cache_skin",
)


def _finite_or_none(value: float) -> Optional[float]:
    """Strict-JSON guard: infinite prediction bounds become ``None``."""
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class TuningConfig:
    """Autotuning policy for one run (``RunConfig.tuning``).

    Parameters
    ----------
    enabled:
        Master switch; ``False`` keeps the config inert (identical step
        loop to ``tuning=None``).
    seed:
        Seeds the deterministic exploration order.
    steps_per_candidate:
        Steps measured per ladder rung; the rung's score is the best of
        them (the min absorbs one-off warmup costs such as JIT
        compilation or pool spawn after a backend/worker switch).
    max_exploration_steps:
        Hard bound on steps spent exploring (baseline included).  When
        the budget runs out mid-ladder the incumbent wins immediately.
    knobs:
        Which knobs the ladder climbs, in nominal order (the seeded
        shuffle permutes it).  Must be drawn from
        :data:`SUPPORTED_KNOBS`.
    workers_options / backend_options:
        Override the host-derived option lists (tests pin these).
    ledger_path:
        Warm-start source.  ``None`` falls back to the run's
        ``observability.ledger_path``; exploring cold is fine.
    scenario:
        Ledger key for warm-start lookups (defaults to the simulation's
        scenario label).
    prune_margin:
        A rung is skipped without execution when the model predicts —
        from at-least-two same-signature observations — that even its
        optimistic bound is ``prune_margin`` times worse than the
        incumbent.
    """

    enabled: bool = True
    seed: int = 0
    steps_per_candidate: int = 2
    max_exploration_steps: int = 24
    knobs: Tuple[str, ...] = ("backend", "pair_engine", "neighbor_cache", "workers")
    workers_options: Optional[Tuple[int, ...]] = None
    backend_options: Optional[Tuple[str, ...]] = None
    ledger_path: Optional[str] = None
    scenario: Optional[str] = None
    prune_margin: float = 1.25

    def __post_init__(self) -> None:
        if self.steps_per_candidate < 1:
            raise ValueError(
                f"steps_per_candidate must be >= 1, got {self.steps_per_candidate}"
            )
        if self.max_exploration_steps < self.steps_per_candidate:
            raise ValueError(
                "max_exploration_steps must cover at least one candidate "
                f"({self.max_exploration_steps} < {self.steps_per_candidate})"
            )
        unknown = [k for k in self.knobs if k not in SUPPORTED_KNOBS]
        if unknown:
            raise ValueError(
                f"unknown tuning knobs {unknown}; supported: "
                f"{', '.join(SUPPORTED_KNOBS)}"
            )
        if self.prune_margin < 1.0:
            raise ValueError(f"prune_margin must be >= 1, got {self.prune_margin}")

    def with_(self, **kwargs) -> "TuningConfig":
        """Functional update (frozen dataclass convenience)."""
        return dataclasses.replace(self, **kwargs)


def knobs_of(exec_cfg) -> Dict[str, object]:
    """The ledger/model knob mapping of one ``ExecConfig``."""
    return {
        "workers": int(exec_cfg.workers),
        "chunks_per_worker": int(exec_cfg.chunks_per_worker),
        "neighbor_cache": bool(exec_cfg.neighbor_cache),
        "cache_skin": float(exec_cfg.cache_skin),
        "pair_engine": bool(exec_cfg.pair_engine),
        "backend": str(exec_cfg.backend),
    }


class Autotuner:
    """One run's tuning session; driven by ``Simulation.run``'s step loop.

    Protocol: ``before_step()`` immediately before each step while
    ``not done``; ``after_step(wall_seconds)`` immediately after.  The
    tuner rewires the simulation's execution config between steps, never
    during one.
    """

    def __init__(self, sim, config: TuningConfig):
        from ..parallel.executor import ExecConfig

        self.sim = sim
        self.config = config
        self.done = False
        self.converged_step: Optional[int] = None
        self.trail: List[Dict[str, object]] = []
        self.explored_steps = 0
        base = sim.run_config.exec if sim.run_config.exec is not None else ExecConfig()
        self._options = self._knob_options(base)
        self.model = CostModel(n0=int(sim.particles.n))
        self._warm = self._warm_start()
        if self._warm.get("baseline_knobs"):
            base = self._apply_knobs(base, self._warm["baseline_knobs"])
        self.baseline_exec = base
        self.best_exec = base
        self.best_score: Optional[float] = None
        self._plan = self._build_plan()
        self._trial: Optional[Tuple[str, object]] = None
        self._walls: List[float] = []
        self._step_indices: List[int] = []
        self._pending_exec = base  # applied at the next before_step
        self._measuring_baseline = True

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _knob_options(self, base) -> Dict[str, List[object]]:
        from ..backend import available_backends

        cfg = self.config
        options: Dict[str, List[object]] = {}
        if "backend" in cfg.knobs:
            if cfg.backend_options is not None:
                options["backend"] = list(cfg.backend_options)
            else:
                avail = available_backends()
                options["backend"] = [
                    n for n in ("numpy", "numba", "cffi") if avail.get(n)
                ]
        if "pair_engine" in cfg.knobs:
            options["pair_engine"] = [True, False]
        if "neighbor_cache" in cfg.knobs:
            options["neighbor_cache"] = [True, False]
        if "workers" in cfg.knobs:
            if cfg.workers_options is not None:
                options["workers"] = list(cfg.workers_options)
            else:
                cpu = os.cpu_count() or 1
                options["workers"] = (
                    [0] + sorted({2, cpu}) if cpu >= 2 else [0]
                )
        if "chunks_per_worker" in cfg.knobs:
            options["chunks_per_worker"] = [1, 2, 4]
        if "cache_skin" in cfg.knobs:
            options["cache_skin"] = [0.1, 0.3, 0.5]
        return options

    def _build_plan(self) -> List[Tuple[str, object]]:
        """The rung list: one (knob, value) trial per non-incumbent
        option, in seeded-shuffle order."""
        import random

        rng = random.Random(self.config.seed)
        knob_order = [k for k in self.config.knobs if k in self._options]
        rng.shuffle(knob_order)
        plan: List[Tuple[str, object]] = []
        base_knobs = knobs_of(self.baseline_exec)
        for knob in knob_order:
            values = list(self._options[knob])
            rng.shuffle(values)
            for value in values:
                if value != base_knobs.get(knob):
                    plan.append((knob, value))
        return plan

    @staticmethod
    def _apply_knobs(exec_cfg, knobs: Dict[str, object]):
        fields = {f.name for f in dataclasses.fields(exec_cfg)}
        usable = {k: v for k, v in knobs.items() if k in fields}
        return dataclasses.replace(exec_cfg, **usable)

    # ------------------------------------------------------------------
    # Warm start
    # ------------------------------------------------------------------
    def _warm_start(self) -> Dict[str, object]:
        """Seed the model and the starting config from the ledger."""
        path = self.config.ledger_path
        if path is None:
            obs = self.sim.run_config.observability
            path = getattr(obs, "ledger_path", None)
        out: Dict[str, object] = {"source": path, "rows": 0}
        if not path or not os.path.exists(path):
            return out
        scenario = (
            self.config.scenario
            or self.sim.scenario
            or self.sim.config.label
        )
        n = int(self.sim.particles.n)
        try:
            with RunLedger(path) as ledger:
                rows = ledger.runs(
                    scenario=scenario, host_id=fingerprint_id(), limit=64
                )
        except Exception:  # a broken ledger never blocks a run
            return out
        usable = [
            r
            for r in rows
            if r.step_p50() is not None
            and r.n_particles > 0
            and 0.5 <= r.n_particles / n <= 2.0
        ]
        if not usable:
            return out
        out["rows"] = self.model.absorb_ledger_rows(usable)
        best = min(usable, key=lambda r: r.step_p50() / r.n_particles)
        knobs = dict(best.knobs)
        knobs.pop("checkpoint_every", None)
        # Never warm-start onto an option this host can't run (e.g. a
        # numba row read on a numba-free host).
        backends = self._options.get("backend")
        if backends is not None and knobs.get("backend") not in backends:
            knobs.pop("backend", None)
        out["baseline_knobs"] = knobs
        out["baseline_run_id"] = best.run_id
        return out

    # ------------------------------------------------------------------
    # The step-loop protocol
    # ------------------------------------------------------------------
    def before_step(self) -> None:
        """Apply the pending candidate (if any) before the next step."""
        if self.done:
            return
        if self.explored_steps >= self.config.max_exploration_steps:
            self._finish(budget_exhausted=True)
            return
        if self._pending_exec is not None:
            self._switch_to(self._pending_exec)
            self._pending_exec = None
            self._walls = []
            self._step_indices = []

    def after_step(self, wall_seconds: float) -> None:
        """Feed one measured step back; advance the ladder when the
        current candidate has its quota."""
        if self.done:
            return
        self.explored_steps += 1
        self._walls.append(float(wall_seconds))
        self._step_indices.append(self.sim.step_index - 1)
        if len(self._walls) < self.config.steps_per_candidate:
            return
        score = min(self._walls)
        knobs = knobs_of(self._current_exec())
        self.model.observe_step(int(self.sim.particles.n), knobs, score)
        self._observe_phases(knobs)
        if self._measuring_baseline:
            self._measuring_baseline = False
            self.best_score = score
            self.trail.append(
                {
                    "step": self._step_indices[0],
                    "event": "baseline",
                    "knobs": knobs,
                    "t_step_s": score,
                }
            )
        else:
            knob, value = self._trial
            entry = {
                "step": self._step_indices[0],
                "event": "reject",
                "knob": knob,
                "value": value,
                "t_step_s": score,
                "incumbent_s": self.best_score,
            }
            if score < self.best_score:
                entry["event"] = "adopt"
                self.best_score = score
                self.best_exec = self._current_exec()
            self.trail.append(entry)
        self._advance()

    def _advance(self) -> None:
        """Queue the next unpruned rung, or converge."""
        while self._plan:
            knob, value = self._plan.pop(0)
            candidate = dataclasses.replace(self.best_exec, **{knob: value})
            pred = self.model.predict(
                knobs_of(candidate), int(self.sim.particles.n)
            )
            if (
                self.best_score is not None
                and pred.source == "signature"
                and pred.n_observations >= 2
                and pred.lo_seconds > self.best_score * self.config.prune_margin
            ):
                self.trail.append(
                    {
                        "step": self.sim.step_index,
                        "event": "prune",
                        "knob": knob,
                        "value": value,
                        "predicted_s": pred.t_seconds,
                        "predicted_lo_s": _finite_or_none(pred.lo_seconds),
                        "incumbent_s": self.best_score,
                    }
                )
                continue
            self._trial = (knob, value)
            self._pending_exec = candidate
            if pred.n_observations:
                self.trail.append(
                    {
                        "step": self.sim.step_index,
                        "event": "predict",
                        "knob": knob,
                        "value": value,
                        "predicted_s": pred.t_seconds,
                        "predicted_lo_s": _finite_or_none(pred.lo_seconds),
                        "predicted_hi_s": _finite_or_none(pred.hi_seconds),
                        "source": pred.source,
                    }
                )
            return
        self._finish(budget_exhausted=False)

    def _finish(self, *, budget_exhausted: bool) -> None:
        """Apply the winner and close the session."""
        if self._current_exec() is not self.best_exec:
            self._switch_to(self.best_exec)
        self.model.fit()
        self.done = True
        self.converged_step = self.sim.step_index
        self.trail.append(
            {
                "step": self.sim.step_index,
                "event": "converged",
                "budget_exhausted": budget_exhausted,
                "knobs": knobs_of(self.best_exec),
                "t_step_s": self.best_score,
                "explored_steps": self.explored_steps,
            }
        )

    # ------------------------------------------------------------------
    # Simulation plumbing
    # ------------------------------------------------------------------
    def _current_exec(self):
        from ..parallel.executor import ExecConfig

        ex = self.sim.run_config.exec
        return ex if ex is not None else ExecConfig()

    def _switch_to(self, exec_cfg) -> None:
        with self.sim.tracer.phase("tuning", State.SYNC, self.sim.rank):
            self.sim._rewire_exec(exec_cfg)

    def _observe_phases(self, knobs: Dict[str, object]) -> None:
        """Per-phase feedback: USEFUL driver spans of this candidate's steps."""
        tracer = self.sim.tracer
        if not getattr(tracer, "enabled", False):
            return
        steps = set(self._step_indices)
        totals: Dict[str, float] = {}
        for e in tracer.events:
            if e.step in steps and e.state is State.USEFUL and e.thread == 0:
                totals[e.phase] = totals.get(e.phase, 0.0) + e.duration
        if totals:
            n_steps = max(1, len(steps))
            self.model.observe_phases(
                int(self.sim.particles.n),
                knobs,
                {k: v / n_steps for k, v in totals.items()},
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def recommended_exec(self):
        return self.best_exec

    def report_dict(self) -> Dict[str, object]:
        """The ``RunReport.tuning`` section: decision trail + model fit."""
        return {
            "enabled": True,
            "done": self.done,
            "seed": self.config.seed,
            "explored_steps": self.explored_steps,
            "converged_step": self.converged_step,
            "baseline": knobs_of(self.baseline_exec),
            "recommendation": knobs_of(self.best_exec),
            "best_step_s": self.best_score,
            "warm_start": {
                "source": self._warm.get("source"),
                "rows": self._warm.get("rows", 0),
                "baseline_run_id": self._warm.get("baseline_run_id"),
            },
            "trail": list(self.trail),
            "model": self.model.as_dict(),
        }
