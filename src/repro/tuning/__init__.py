"""Online cost modeling + autotuning: the loop-closing half of observability.

The runtime exposes many hand-set knobs (workers, chunk sizes, Verlet
skin, pair engine, checkpoint interval, execution backend) and measures
everything (spans, POP metrics, recovery counters) — this package feeds
the measurements back into the knobs, in the ARBO predict → execute →
feedback style:

* :class:`AmdahlCostModel` / :class:`CostModel` — per-phase and
  whole-step cost models of the form ``t(N, workers, knobs) = serial +
  parallel / workers + overhead(knobs)``, least-squares fit from ledger
  rows and in-run spans, with prediction intervals.
* :class:`TuningConfig` / :class:`Autotuner` — bounded deterministic
  knob exploration across the early steps of a run, warm-started from
  the :class:`~repro.observability.ledger.RunLedger`, converging to a
  recommended configuration that the rest of the run executes.

Off by default: a :class:`~repro.core.config.RunConfig` without a
``tuning`` section runs exactly the pre-tuning step loop (bitwise
identical, golden masters untouched).
"""

from .autotuner import Autotuner, TuningConfig
from .model import AmdahlCostModel, CostModel, Observation, Prediction

__all__ = [
    "AmdahlCostModel",
    "CostModel",
    "Observation",
    "Prediction",
    "TuningConfig",
    "Autotuner",
]
