"""Amdahl-form cost models fit from observed run telemetry.

The model family is the one the scaling analysis of the source paper
(and the ARBO estimator it inspired) is built on::

    t(N, w, knobs) = (serial + parallel / max(w, 1)) * (N / N0) + overhead(knobs)

``serial`` and ``parallel`` are per-``N0``-particles seconds (pair work
at fixed neighbour count is linear in N, so normalizing by a reference
size ``N0`` keeps the coefficients in human range); ``w`` is the
effective worker count (``workers=0`` — the serial path — executes on
one lane); ``overhead(knobs)`` is a learned additive offset per knob
signature (backend, pair engine, cache, ...), measured as the mean
residual of that signature's observations against the Amdahl base fit.

The fit is plain least squares on the design matrix ``[N', N'/w, 1]``
with non-negativity enforced by column dropping (a negative parallel
coefficient re-fits serial-only and vice versa), which keeps the model
well-behaved on the tiny sample counts an in-run tuner works with.
Prediction intervals come from the residual spread: ``±z * sigma`` with
signature-local sigma when that signature has ≥ 2 observations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Observation", "Prediction", "AmdahlCostModel", "CostModel"]

#: ~95% two-sided normal interval.
_Z = 1.96


@dataclass(frozen=True)
class Observation:
    """One measured cost point: a (size, parallelism, knobs) -> seconds fact."""

    n_particles: int
    workers: int
    t_seconds: float
    #: Hashable digest of the non-worker knobs (backend, pair engine,
    #: cache, ...) — the ``overhead(knobs)`` lookup key.
    signature: Tuple = ()

    @property
    def lanes(self) -> int:
        """Effective parallel lanes: the serial path still runs on one."""
        return max(1, int(self.workers))


@dataclass(frozen=True)
class Prediction:
    """A model answer with its uncertainty band."""

    t_seconds: float
    lo_seconds: float
    hi_seconds: float
    sigma_seconds: float
    n_observations: int
    #: ``"amdahl"`` (global fit), ``"signature"`` (fit + knob offset) or
    #: ``"prior"`` (no data — the caller-provided fallback).
    source: str = "amdahl"

    def __contains__(self, t: float) -> bool:
        return self.lo_seconds <= float(t) <= self.hi_seconds


@dataclass
class AmdahlCostModel:
    """``t(N, w) = (serial + parallel / w) * N/N0 + overhead(knobs)``.

    Parameters
    ----------
    n0:
        Reference particle count the coefficients are normalized to.
        Defaults to the first observation's size, so a fixed-N in-run
        fit reads directly in seconds.
    """

    n0: Optional[int] = None
    observations: List[Observation] = field(default_factory=list)
    serial_s: float = 0.0
    parallel_s: float = 0.0
    constant_s: float = 0.0
    sigma_s: float = math.inf
    _offsets: Dict[Tuple, Tuple[float, float, int]] = field(default_factory=dict)
    _fitted: bool = False

    # ------------------------------------------------------------------
    def observe(
        self,
        n_particles: int,
        workers: int,
        t_seconds: float,
        signature: Tuple = (),
    ) -> None:
        if not (t_seconds >= 0.0 and math.isfinite(t_seconds)):
            raise ValueError(f"bad observation time: {t_seconds}")
        self.observations.append(
            Observation(int(n_particles), int(workers), float(t_seconds),
                        tuple(signature))
        )
        self._fitted = False

    def extend(self, observations: Sequence[Observation]) -> None:
        for o in observations:
            self.observations.append(o)
        self._fitted = False

    @property
    def n_observations(self) -> int:
        return len(self.observations)

    # ------------------------------------------------------------------
    def fit(self) -> "AmdahlCostModel":
        """Least-squares fit; degrades gracefully on tiny samples.

        * 0 observations — stays at the zero model (predict returns the
          prior path).
        * 1-2 observations — mean model (``constant = mean t``).
        * ≥ 3 — full ``[N', N'/w, 1]`` fit with non-negativity by
          column dropping.
        """
        obs = self.observations
        if not obs:
            self._fitted = True
            return self
        if self.n0 is None:
            self.n0 = obs[0].n_particles
        t = np.array([o.t_seconds for o in obs])
        if len(obs) < 3:
            self.serial_s = self.parallel_s = 0.0
            self.constant_s = float(t.mean())
            self.sigma_s = float(t.std()) if len(obs) > 1 else math.inf
        else:
            nn = np.array([o.n_particles / self.n0 for o in obs])
            w = np.array([o.lanes for o in obs], dtype=float)
            coeffs = self._nonneg_lstsq(nn, nn / w, t)
            self.serial_s, self.parallel_s, self.constant_s = coeffs
            pred = self.serial_s * nn + self.parallel_s * nn / w + self.constant_s
            resid = t - pred
            dof = max(1, len(obs) - 3)
            self.sigma_s = float(np.sqrt(np.sum(resid**2) / dof))
        self._fit_offsets()
        self._fitted = True
        return self

    @staticmethod
    def _nonneg_lstsq(
        c_serial: np.ndarray, c_parallel: np.ndarray, t: np.ndarray
    ) -> Tuple[float, float, float]:
        """lstsq over ``[serial, parallel, const]`` with coefficients
        clamped non-negative by dropping offending columns and refitting."""
        columns = {"serial": c_serial, "parallel": c_parallel,
                   "const": np.ones_like(t)}
        active = list(columns)
        while active:
            design = np.stack([columns[k] for k in active], axis=1)
            sol, *_ = np.linalg.lstsq(design, t, rcond=None)
            worst = None
            for k, v in zip(active, sol):
                if v < 0.0 and (worst is None or v < worst[1]):
                    worst = (k, v)
            if worst is None:
                out = dict(zip(active, sol))
                return (
                    float(out.get("serial", 0.0)),
                    float(out.get("parallel", 0.0)),
                    float(out.get("const", 0.0)),
                )
            active.remove(worst[0])
        return (0.0, 0.0, float(t.mean()))

    def _base(self, n_particles: int, workers: int) -> float:
        n0 = self.n0 or n_particles or 1
        nn = n_particles / n0
        lanes = max(1, int(workers))
        return self.serial_s * nn + self.parallel_s * nn / lanes + self.constant_s

    def _fit_offsets(self) -> None:
        """Per-signature additive overhead = mean residual vs the base fit."""
        groups: Dict[Tuple, List[float]] = {}
        for o in self.observations:
            resid = o.t_seconds - self._base(o.n_particles, o.workers)
            groups.setdefault(o.signature, []).append(resid)
        self._offsets = {}
        for sig, resids in groups.items():
            arr = np.array(resids)
            self._offsets[sig] = (
                float(arr.mean()),
                float(arr.std()) if len(arr) > 1 else math.nan,
                len(arr),
            )

    # ------------------------------------------------------------------
    def predict(
        self,
        n_particles: int,
        workers: int = 0,
        signature: Optional[Tuple] = None,
        prior_s: Optional[float] = None,
    ) -> Prediction:
        """Predicted step/phase seconds with a ~95% interval.

        ``prior_s`` is returned (with an infinite band) when the model
        has no observations at all — callers never have to special-case
        the cold start.
        """
        if not self._fitted:
            self.fit()
        if not self.observations:
            t = float(prior_s) if prior_s is not None else math.nan
            return Prediction(t, -math.inf, math.inf, math.inf, 0, "prior")
        t = self._base(n_particles, workers)
        sigma = self.sigma_s
        source = "amdahl"
        n_obs = len(self.observations)
        if signature is not None and tuple(signature) in self._offsets:
            mean, sig_sigma, count = self._offsets[tuple(signature)]
            t += mean
            source = "signature"
            n_obs = count
            if count >= 2 and math.isfinite(sig_sigma):
                sigma = sig_sigma
        if not math.isfinite(sigma):
            return Prediction(t, -math.inf, math.inf, sigma, n_obs, source)
        band = _Z * sigma
        return Prediction(t, t - band, t + band, sigma, n_obs, source)

    def serial_fraction(self, n_particles: int) -> float:
        """Amdahl serial fraction f = serial / (serial + parallel) at N."""
        tot = self.serial_s + self.parallel_s
        if tot <= 0.0:
            return math.nan
        return self.serial_s / tot

    def as_dict(self) -> Dict[str, object]:
        return {
            "n0": self.n0,
            "serial_s": self.serial_s,
            "parallel_s": self.parallel_s,
            "constant_s": self.constant_s,
            "sigma_s": None if not math.isfinite(self.sigma_s) else self.sigma_s,
            "n_observations": len(self.observations),
            "serial_fraction": (
                None
                if not math.isfinite(f := self.serial_fraction(self.n0 or 1))
                else f
            ),
        }


class CostModel:
    """Whole-step + per-phase Amdahl models behind one façade.

    The autotuner feeds it in-run step timings (:meth:`observe_step`) and
    phase spans (:meth:`observe_phases`); the ledger warm start feeds it
    historical rows (:meth:`absorb_ledger_rows`).  :meth:`predict` is the
    ``predict(config)`` API of the tuning layer: a knob mapping in,
    a :class:`Prediction` out.
    """

    def __init__(self, n0: Optional[int] = None):
        self.step_model = AmdahlCostModel(n0=n0)
        self.phase_models: Dict[str, AmdahlCostModel] = {}
        self._n0 = n0

    # -- feeding -------------------------------------------------------
    @staticmethod
    def signature_of(knobs: Dict[str, object]) -> Tuple:
        """Hashable digest of the non-worker knobs (sorted, workers
        excluded — workers is the model's explicit axis)."""
        return tuple(
            (k, knobs[k]) for k in sorted(knobs) if k not in ("workers",)
        )

    def observe_step(
        self, n_particles: int, knobs: Dict[str, object], t_seconds: float
    ) -> None:
        self.step_model.observe(
            n_particles, int(knobs.get("workers", 0) or 0), t_seconds,
            self.signature_of(knobs),
        )

    def observe_phases(
        self,
        n_particles: int,
        knobs: Dict[str, object],
        phase_seconds: Dict[str, float],
    ) -> None:
        sig = self.signature_of(knobs)
        workers = int(knobs.get("workers", 0) or 0)
        for phase, t in phase_seconds.items():
            model = self.phase_models.setdefault(
                phase, AmdahlCostModel(n0=self._n0)
            )
            model.observe(n_particles, workers, t, sig)

    def absorb_ledger_rows(self, rows) -> int:
        """Seed from :class:`~repro.observability.ledger.RunRecord` rows;
        returns how many usable rows were absorbed."""
        used = 0
        for row in rows:
            p50 = row.step_p50()
            if p50 is None:
                continue
            self.observe_step(row.n_particles, dict(row.knobs), p50)
            n_steps = max(1, row.n_steps)
            per_step = {
                phase: agg["total_s"] / n_steps
                for phase, agg in row.phases.items()
                if agg.get("total_s") is not None
            }
            if per_step:
                self.observe_phases(row.n_particles, dict(row.knobs), per_step)
            used += 1
        return used

    # -- asking --------------------------------------------------------
    def predict(
        self,
        config: Dict[str, object],
        n_particles: Optional[int] = None,
        prior_s: Optional[float] = None,
    ) -> Prediction:
        """Predicted whole-step seconds for a knob mapping."""
        n = int(n_particles if n_particles is not None
                else (self.step_model.n0 or 1))
        return self.step_model.predict(
            n,
            int(config.get("workers", 0) or 0),
            self.signature_of(config),
            prior_s=prior_s,
        )

    def phase_breakdown(
        self, n_particles: int, workers: int = 0
    ) -> Dict[str, Prediction]:
        """Per-phase predicted seconds at (N, workers)."""
        return {
            phase: model.predict(n_particles, workers)
            for phase, model in sorted(self.phase_models.items())
        }

    def fit(self) -> "CostModel":
        self.step_model.fit()
        for model in self.phase_models.values():
            model.fit()
        return self

    def as_dict(self) -> Dict[str, object]:
        return {
            "step": self.step_model.as_dict(),
            "phases": {k: m.as_dict() for k, m in sorted(self.phase_models.items())},
        }
