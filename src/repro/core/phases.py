"""Algorithm-1 phase labels A-J (Figure 4).

"Each letter can be related to the different phases of Algorithm 1.
Phase A is the building of the octree.  Phases B, C, and D concern the
finding of neighbors.  Phases E to H are the SPH-related calculations
(density, momentum, and energy, among other needed quantities).  Phase I
is the calculation of self-gravity.  Finally, phase J, is the computation
of the new time-step and the update of particle positions."
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Phase"]


class Phase(str, Enum):
    """Step phases; the value is the Figure-4 letter."""

    TREE_BUILD = "A"
    NEIGHBOR_SEARCH = "B"
    SMOOTHING_LENGTH = "C"
    NEIGHBOR_LISTS = "D"
    DENSITY = "E"
    EQUATION_OF_STATE = "F"
    MOMENTUM_ENERGY = "G"
    AUX_KERNELS = "H"
    GRAVITY = "I"
    TIMESTEP_UPDATE = "J"

    @property
    def letter(self) -> str:
        return self.value

    @property
    def description(self) -> str:
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    Phase.TREE_BUILD: "build the octree (Alg. 1 step 1)",
    Phase.NEIGHBOR_SEARCH: "tree walk / neighbour discovery (step 2)",
    Phase.SMOOTHING_LENGTH: "smoothing-length adaptation (step 2)",
    Phase.NEIGHBOR_LISTS: "pair-list assembly and IAD moments (step 2)",
    Phase.DENSITY: "density summation (step 3)",
    Phase.EQUATION_OF_STATE: "equation of state (step 3)",
    Phase.MOMENTUM_ENERGY: "momentum and energy equations (step 3)",
    Phase.AUX_KERNELS: "auxiliary SPH kernels: div/curl, diagnostics (step 3)",
    Phase.GRAVITY: "self-gravity tree walk (step 4)",
    Phase.TIMESTEP_UPDATE: "new time step and position/velocity update (steps 5-6)",
}
