"""Renderers for the paper's feature matrices (Tables 1-4).

These are not static strings: each row is generated from the preset
configurations and — where a feature names an algorithm — the renderer
*instantiates* it through the public API, so the table doubles as an
executable claim that the feature exists in this codebase.  The
``bench_table*`` benchmarks print these and assert the expected entries.
"""

from __future__ import annotations

from typing import List

from ..io.reporting import format_table
from ..kernels.registry import make_kernel
from .config import SimulationConfig
from .presets import CHANGA, SPH_EXA, SPHFLOW, SPHYNX

__all__ = [
    "table1_physics_features",
    "table2_miniapp_features",
    "table3_cs_features",
    "table4_miniapp_cs_features",
]

_PARENTS = (SPHYNX, CHANGA, SPHFLOW)

_GRAVITY_LABEL = {
    None: "No",
    "monopole": "Multipoles (2-pole)",
    "quadrupole": "Multipoles (4-pole)",
    "octupole": "Multipoles (8-pole)",
    "hexadecapole": "Multipoles (16-pole)",
}

_GRADIENT_LABEL = {"iad": "IAD", "standard": "Kernel derivatives"}
_VOLUME_LABEL = {"generalized": "Generalized", "standard": "Standard"}


def _kernel_label(cfg: SimulationConfig) -> str:
    kernel = make_kernel(cfg.kernel)  # instantiation = existence proof
    return kernel.name


def table1_physics_features() -> str:
    """Table 1: physics features of SPHYNX, ChaNGa and SPH-flow."""
    rows: List[List[str]] = []
    for cfg in _PARENTS:
        rows.append(
            [
                cfg.label,
                _kernel_label(cfg),
                _GRADIENT_LABEL[cfg.gradients],
                _VOLUME_LABEL[cfg.volume_elements],
                cfg.timestepping.capitalize(),
                "Tree Walk" if cfg.neighbor_search == "tree-walk" else "Cell Grid",
                _GRAVITY_LABEL[cfg.gravity],
            ]
        )
    return format_table(
        ["Code", "Kernel", "Gradients", "Volume Elements", "Time-Stepping",
         "Neighbour Discovery", "Self-Gravity"],
        rows,
        title="Table 1: differences and similarities between the parent SPH codes",
    )


def table2_miniapp_features() -> str:
    """Table 2: the mini-app's scientific feature outlook (the union)."""
    kernels = ", ".join(
        make_kernel(k).name for k in ("sinc-s5", "m4", "wendland-c2")
    )
    rows = [
        [
            SPH_EXA.label,
            kernels,
            "IAD, Kernel derivatives",
            "Generalized, Standard",
            "Global, Individual, Adaptive",
            "Tree Walk",
            _GRAVITY_LABEL["hexadecapole"],
        ]
    ]
    return format_table(
        ["Code", "Kernel", "Gradients", "Volume Elements", "Time-Stepping",
         "Neighbour Discovery", "Self-Gravity"],
        rows,
        title="Table 2: scientific characteristics of the SPH-EXA mini-app",
    )


_DECOMP_LABEL = {
    "uniform-slabs": "Straightforward",
    "orb": "Orthogonal Recursive Bisection",
    "sfc-morton": "Space Filling Curve",
    "sfc-hilbert": "Space Filling Curve (Hilbert)",
    "block-index": "Block Index",
}
_LB_LABEL = {
    "static": "None (static)",
    "dynamic": "Dynamic",
    "local-inner-outer": "Local-Inner-Outer",
}


def table3_cs_features() -> str:
    """Table 3: computer-science features of the parent codes."""
    rows: List[List[str]] = []
    for cfg in _PARENTS:
        rows.append(
            [
                cfg.label,
                _DECOMP_LABEL[cfg.domain_decomposition],
                _LB_LABEL[cfg.load_balancing],
                "Yes" if cfg.checkpoint_restart else "No",
                cfg.precision,
                cfg.language,
                cfg.parallelization,
                f"{cfg.reported_loc:,}" if cfg.reported_loc else "-",
            ]
        )
    return format_table(
        ["Code", "Domain Decomposition", "Load Balancing", "Checkpoint-Restart",
         "Precision", "Language", "Parallelization", "#LOC"],
        rows,
        title="Table 3: computer science-related aspects of the parent SPH codes",
    )


def table4_miniapp_cs_features() -> str:
    """Table 4: the mini-app's computer-science outlook."""
    rows = [
        [
            SPH_EXA.label,
            "Orthogonal Recursive Bisection, Space Filling Curves",
            "DLB with self-scheduling per X, Y, Z level",
            "Optimal interval, Multilevel",
            "Silent data corruption detectors",
            SPH_EXA.precision,
            SPH_EXA.language,
            SPH_EXA.parallelization,
        ]
    ]
    return format_table(
        ["Code", "Domain Decomposition", "Load Balancing", "Checkpoint-Restart",
         "Error Detection", "Precision", "Language", "Parallelization"],
        rows,
        title="Table 4: computer science features of the SPH-EXA mini-app",
    )
