"""Simulation configuration: the Table 1-4 feature axes as switches.

A :class:`SimulationConfig` selects one value per scientific axis of
Tables 1-2 (kernel, gradients, volume elements, time stepping, neighbour
discovery, self-gravity) and per computer-science axis of Tables 3-4
(domain decomposition, load balancing, checkpoint/restart, precision,
language/parallelization metadata).  The presets in
:mod:`repro.core.presets` instantiate the three parent codes' rows and the
mini-app outlook row.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from ..observability.config import ObservabilityConfig
from ..sph.viscosity import ViscosityParams
from ..timestepping.criteria import TimestepParams

if TYPE_CHECKING:  # avoid the core <-> parallel/resilience import cycles
    from ..parallel.executor import ExecConfig
    from ..resilience.chaos import NumericalChaosPolicy
    from ..resilience.checkpoint import ResilienceConfig
    from ..resilience.guard import GuardConfig
    from ..tuning.autotuner import TuningConfig

__all__ = [
    "KERNEL_CHOICES",
    "GRADIENT_CHOICES",
    "VOLUME_ELEMENT_CHOICES",
    "TIMESTEPPING_CHOICES",
    "NEIGHBOR_CHOICES",
    "GRAVITY_CHOICES",
    "DECOMPOSITION_CHOICES",
    "LOAD_BALANCING_CHOICES",
    "SimulationConfig",
    "RunConfig",
]

KERNEL_CHOICES = (
    "sinc-s3",
    "sinc-s5",
    "sinc-s6",
    "sinc-s7",
    "m4",
    "wendland-c2",
    "wendland-c4",
    "wendland-c6",
)
GRADIENT_CHOICES = ("standard", "iad")
VOLUME_ELEMENT_CHOICES = ("standard", "generalized")
TIMESTEPPING_CHOICES = ("global", "individual", "adaptive")
NEIGHBOR_CHOICES = ("tree-walk", "cell-grid")
#: None disables gravity; names map to multipole ranks (Table 1 wording).
GRAVITY_CHOICES = (None, "monopole", "quadrupole", "octupole", "hexadecapole")
DECOMPOSITION_CHOICES = (
    "uniform-slabs",  # SPHYNX "Straightforward"
    "orb",  # SPH-flow "Orthogonal Recursive Bisection"
    "sfc-morton",  # ChaNGa "Space Filling Curve"
    "sfc-hilbert",
    "block-index",  # no spatial locality at all (worst-case baseline)
)
LOAD_BALANCING_CHOICES = (
    "static",  # SPHYNX "None (static)"
    "dynamic",  # ChaNGa "Dynamic" (self-scheduling)
    "local-inner-outer",  # SPH-flow
)

_GRAVITY_ORDER = {"monopole": 0, "quadrupole": 2, "octupole": 3, "hexadecapole": 4}


@dataclass(frozen=True)
class SimulationConfig:
    """One column of Tables 1-4, expressed as runnable switches.

    Scientific axes (Tables 1-2) affect the numerics; computer-science
    axes (Tables 3-4) affect the simulated-cluster execution and the
    feature reports.  ``label`` and the metadata fields identify the
    configuration in benchmark output.
    """

    label: str = "sph-exa"
    # --- scientific axes (Tables 1-2) ---
    kernel: str = "sinc-s5"
    gradients: str = "iad"
    volume_elements: str = "generalized"
    xmass_exponent: float = 0.7
    timestepping: str = "global"
    neighbor_search: str = "cell-grid"
    gravity: Optional[str] = None
    gravity_theta: float = 0.5
    gravity_softening_factor: float = 0.05  # softening = factor * mean h
    n_neighbors: int = 100
    grad_h: bool = False
    viscosity: ViscosityParams = field(default_factory=ViscosityParams)
    timestep_params: TimestepParams = field(default_factory=TimestepParams)
    # --- computer-science axes (Tables 3-4) ---
    domain_decomposition: str = "sfc-hilbert"
    load_balancing: str = "dynamic"
    checkpoint_restart: bool = True
    error_detection: bool = False  # SDC detectors (Table 4)
    precision: str = "64-bit"
    # informational metadata for the feature tables
    language: str = "Python (reproduction)"
    parallelization: str = "simulated MPI+X"
    reported_loc: Optional[int] = None

    def __post_init__(self) -> None:
        checks = [
            ("kernel", self.kernel, KERNEL_CHOICES),
            ("gradients", self.gradients, GRADIENT_CHOICES),
            ("volume_elements", self.volume_elements, VOLUME_ELEMENT_CHOICES),
            ("timestepping", self.timestepping, TIMESTEPPING_CHOICES),
            ("neighbor_search", self.neighbor_search, NEIGHBOR_CHOICES),
            ("gravity", self.gravity, GRAVITY_CHOICES),
            (
                "domain_decomposition",
                self.domain_decomposition,
                DECOMPOSITION_CHOICES,
            ),
            ("load_balancing", self.load_balancing, LOAD_BALANCING_CHOICES),
        ]
        for name, value, choices in checks:
            if value not in choices:
                raise ValueError(
                    f"{name}={value!r} not in allowed choices {choices}"
                )
        if not 0.0 < self.gravity_theta <= 1.5:
            raise ValueError(f"gravity_theta out of range: {self.gravity_theta}")
        if self.n_neighbors < 4:
            raise ValueError(f"n_neighbors too small: {self.n_neighbors}")

    @property
    def gravity_order(self) -> Optional[int]:
        """Multipole rank for the tree code, or None when gravity is off."""
        return None if self.gravity is None else _GRAVITY_ORDER[self.gravity]

    def with_(self, **kwargs) -> "SimulationConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class RunConfig:
    """How one :class:`~repro.core.simulation.Simulation` executes.

    The execution-environment counterpart to :class:`SimulationConfig`'s
    physics axes, aggregating the three runtime subsystems that used to
    arrive as separate driver kwargs:

    exec:
        :class:`~repro.parallel.executor.ExecConfig` — process pool +
        Verlet cache + pair engine.  ``None`` keeps the serial path.
    resilience:
        :class:`~repro.resilience.checkpoint.ResilienceConfig` — rolling
        checkpoints and autoresume.  ``None`` disables checkpointing.
    observability:
        :class:`~repro.observability.config.ObservabilityConfig` — span
        tracing and exporters.  On by default; ``enabled=False`` swaps in
        the no-op tracer.
    guard:
        :class:`~repro.resilience.guard.GuardConfig` — the self-healing
        step guard (snapshot ring + health checks + degradation ladder).
        ``None`` disables guarding; ``run()`` then calls ``step()``
        directly as before.
    numerical_chaos:
        :class:`~repro.resilience.chaos.NumericalChaosPolicy` —
        deterministic numerical fault injection into the step loop
        (test/validation tool; ``None`` in production runs).
    tuning:
        :class:`~repro.tuning.autotuner.TuningConfig` — the online
        autotuner: bounded deterministic knob exploration across the
        early steps, warm-started from the run ledger, converging on a
        recommended execution config.  ``None`` (default) keeps the
        hand-set knobs and the exact pre-tuning step loop.
    """

    exec: Optional["ExecConfig"] = None
    resilience: Optional["ResilienceConfig"] = None
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    guard: Optional["GuardConfig"] = None
    numerical_chaos: Optional["NumericalChaosPolicy"] = None
    tuning: Optional["TuningConfig"] = None

    def with_(self, **kwargs) -> "RunConfig":
        """Functional update (frozen dataclass convenience)."""
        return replace(self, **kwargs)
