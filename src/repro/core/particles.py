"""Structure-of-arrays particle container.

The fundamental state of an SPH simulation is a set of particles with
positions, velocities, masses, smoothing lengths and thermodynamic fields.
Following the hpc-parallel idioms (and what an MPI+X mini-app would do in
C++), state lives in pre-allocated, C-contiguous float64 arrays — one array
per field, never an array of structs — so every kernel in the library can be
expressed as vectorized numpy over the whole set or an index subset.

Equal and variable particle masses (Tables 1-2 "Mass of Particles") are both
supported: ``m`` is always a per-particle array, and :meth:`has_equal_masses`
reports whether it is degenerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple

import numpy as np

__all__ = ["ParticleSystem"]

#: Fields carried per particle: (name, is_vector)
_SCALAR_FIELDS = ("m", "h", "rho", "u", "p", "cs", "du")
_VECTOR_FIELDS = ("x", "v", "a")


@dataclass
class ParticleSystem:
    """SPH particle set in ``dim`` dimensions (SoA layout).

    Attributes
    ----------
    x, v, a:
        Position, velocity, acceleration — shape ``(n, dim)``.
    m, h:
        Mass and smoothing length — shape ``(n,)``.
    rho, u, p, cs, du:
        Density, specific internal energy, pressure, sound speed and rate of
        change of internal energy — shape ``(n,)``.
    ids:
        Stable global particle identifiers (survive domain exchanges).
    """

    x: np.ndarray
    v: np.ndarray
    m: np.ndarray
    h: np.ndarray
    rho: np.ndarray = None  # type: ignore[assignment]
    u: np.ndarray = None  # type: ignore[assignment]
    p: np.ndarray = None  # type: ignore[assignment]
    cs: np.ndarray = None  # type: ignore[assignment]
    a: np.ndarray = None  # type: ignore[assignment]
    du: np.ndarray = None  # type: ignore[assignment]
    ids: np.ndarray = None  # type: ignore[assignment]
    extra: Dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x = np.ascontiguousarray(self.x, dtype=np.float64)
        if self.x.ndim != 2:
            raise ValueError(f"x must have shape (n, dim), got {self.x.shape}")
        n, dim = self.x.shape
        if dim not in (1, 2, 3):
            raise ValueError(f"dim must be 1, 2 or 3, got {dim}")
        self.v = np.ascontiguousarray(self.v, dtype=np.float64)
        if self.v.shape != (n, dim):
            raise ValueError(f"v must have shape {(n, dim)}, got {self.v.shape}")
        for name in ("m", "h"):
            raw = np.asarray(getattr(self, name), dtype=np.float64)
            if raw.ndim == 0:
                arr = np.full(n, float(raw))
            else:
                arr = np.ascontiguousarray(raw)
            if arr.shape != (n,):
                raise ValueError(f"{name} must have shape ({n},), got {arr.shape}")
            setattr(self, name, arr)
        if np.any(self.m <= 0.0):
            raise ValueError("particle masses must be positive")
        if np.any(self.h <= 0.0):
            raise ValueError("smoothing lengths must be positive")
        for name in ("rho", "u", "p", "cs", "du"):
            arr = getattr(self, name)
            if arr is None:
                arr = np.zeros(n)
            else:
                arr = np.ascontiguousarray(arr, dtype=np.float64)
                if arr.shape != (n,):
                    raise ValueError(f"{name} must have shape ({n},)")
            setattr(self, name, arr)
        if self.a is None:
            self.a = np.zeros((n, dim))
        else:
            self.a = np.ascontiguousarray(self.a, dtype=np.float64)
            if self.a.shape != (n, dim):
                raise ValueError(f"a must have shape {(n, dim)}")
        if self.ids is None:
            self.ids = np.arange(n, dtype=np.int64)
        else:
            self.ids = np.ascontiguousarray(self.ids, dtype=np.int64)
            if self.ids.shape != (n,):
                raise ValueError(f"ids must have shape ({n},)")
        self._epochs = {"x": 0, "v": 0, "h": 0}

    # ------------------------------------------------------------------
    # Mutation epochs (pair-engine invalidation)
    # ------------------------------------------------------------------
    def epoch(self, name: str) -> int:
        """Monotone counter of in-place mutations to field ``name``.

        Only ``"x"``, ``"v"`` and ``"h"`` are tracked — the fields whose
        values the :mod:`repro.sph.pair_engine` caches derive from.  Code
        that writes those arrays in place must call :meth:`bump_epoch`;
        the driver compares epochs to decide which cached pair products
        are still valid.
        """
        return self._epochs[name]

    def bump_epoch(self, *names: str) -> None:
        """Record an in-place mutation of the named tracked fields."""
        for name in names:
            self._epochs[name] += 1

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of particles."""
        return self.x.shape[0]

    def __len__(self) -> int:
        return self.n

    @property
    def dim(self) -> int:
        """Spatial dimensionality (1, 2 or 3)."""
        return self.x.shape[1]

    def has_equal_masses(self, rtol: float = 1e-12) -> bool:
        """True when all particle masses coincide (Table 1 "Equal")."""
        return bool(np.allclose(self.m, self.m[0], rtol=rtol, atol=0.0))

    # ------------------------------------------------------------------
    # Global diagnostics
    # ------------------------------------------------------------------
    @property
    def total_mass(self) -> float:
        return float(self.m.sum())

    def kinetic_energy(self) -> float:
        """Total kinetic energy ``sum_i 1/2 m_i v_i^2``."""
        return float(0.5 * np.sum(self.m * np.einsum("ij,ij->i", self.v, self.v)))

    def internal_energy(self) -> float:
        """Total internal energy ``sum_i m_i u_i``."""
        return float(np.sum(self.m * self.u))

    def linear_momentum(self) -> np.ndarray:
        """Total linear momentum vector."""
        return np.asarray(self.m @ self.v)

    def angular_momentum(self) -> np.ndarray:
        """Total angular momentum (scalar in 2-D, vector in 3-D)."""
        if self.dim == 3:
            return np.sum(self.m[:, None] * np.cross(self.x, self.v), axis=0)
        if self.dim == 2:
            lz = self.m * (self.x[:, 0] * self.v[:, 1] - self.x[:, 1] * self.v[:, 0])
            return np.array([lz.sum()])
        return np.zeros(1)

    def center_of_mass(self) -> np.ndarray:
        return np.asarray(self.m @ self.x) / self.total_mass

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, n: int, dim: int = 3) -> "ParticleSystem":
        """All-zero system with unit masses and unit smoothing lengths."""
        return cls(
            x=np.zeros((n, dim)),
            v=np.zeros((n, dim)),
            m=np.ones(n),
            h=np.ones(n),
        )

    def copy(self) -> "ParticleSystem":
        """Deep copy of all state arrays."""
        return ParticleSystem(
            x=self.x.copy(),
            v=self.v.copy(),
            m=self.m.copy(),
            h=self.h.copy(),
            rho=self.rho.copy(),
            u=self.u.copy(),
            p=self.p.copy(),
            cs=self.cs.copy(),
            a=self.a.copy(),
            du=self.du.copy(),
            ids=self.ids.copy(),
            extra={k: v.copy() for k, v in self.extra.items()},
        )

    def select(self, index: np.ndarray) -> "ParticleSystem":
        """New system holding the particles chosen by ``index`` (mask or ints)."""
        return ParticleSystem(
            x=self.x[index],
            v=self.v[index],
            m=self.m[index],
            h=self.h[index],
            rho=self.rho[index],
            u=self.u[index],
            p=self.p[index],
            cs=self.cs[index],
            a=self.a[index],
            du=self.du[index],
            ids=self.ids[index],
            extra={k: v[index] for k, v in self.extra.items()},
        )

    @staticmethod
    def concatenate(parts: "list[ParticleSystem]") -> "ParticleSystem":
        """Concatenate systems (used to merge domain-exchange buffers)."""
        if not parts:
            raise ValueError("cannot concatenate an empty list of systems")
        dims = {p.dim for p in parts}
        if len(dims) != 1:
            raise ValueError(f"mixed dimensionalities: {sorted(dims)}")
        keys = set(parts[0].extra)
        if any(set(p.extra) != keys for p in parts):
            raise ValueError("all parts must carry the same extra fields")
        cat = np.concatenate
        return ParticleSystem(
            x=cat([p.x for p in parts]),
            v=cat([p.v for p in parts]),
            m=cat([p.m for p in parts]),
            h=cat([p.h for p in parts]),
            rho=cat([p.rho for p in parts]),
            u=cat([p.u for p in parts]),
            p=cat([p.p for p in parts]),
            cs=cat([p.cs for p in parts]),
            a=cat([p.a for p in parts]),
            du=cat([p.du for p in parts]),
            ids=cat([p.ids for p in parts]),
            extra={k: cat([p.extra[k] for p in parts]) for k in keys},
        )

    # ------------------------------------------------------------------
    # Serialization (checkpoint substrate)
    # ------------------------------------------------------------------
    def state_arrays(self) -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(name, array)`` for every state field, extras included."""
        for name in _VECTOR_FIELDS + _SCALAR_FIELDS + ("ids",):
            yield name, getattr(self, name)
        for name in sorted(self.extra):
            yield f"extra:{name}", self.extra[name]

    def to_dict(self) -> Dict[str, np.ndarray]:
        """Field-name → array mapping (arrays are *not* copied)."""
        return dict(self.state_arrays())

    @classmethod
    def from_dict(cls, data: Dict[str, np.ndarray]) -> "ParticleSystem":
        """Inverse of :meth:`to_dict`."""
        extra = {
            k.split(":", 1)[1]: np.asarray(v)
            for k, v in data.items()
            if k.startswith("extra:")
        }
        kwargs = {
            k: np.asarray(v) for k, v in data.items() if not k.startswith("extra:")
        }
        return cls(extra=extra, **kwargs)
