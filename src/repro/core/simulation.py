"""The simulation driver — Algorithm 1 of the paper.

    while target simulated time is not reached do
        1. Build tree                       (phase A)
        2. Find neighbors and h             (phases B, C, D)
        3. Execute SPH kernels              (phases E, F, G, H)
        4. (Optional) compute self-gravity  (phase I)
        5. Compute new time-step            (phase J)
        6. Update velocity and position     (phase J)

Integration is kick-drift-kick leapfrog, so one :meth:`Simulation.step`
performs: half-kick with the current rates, drift, a full rate evaluation
(phases A-I), the closing half-kick, and the next-dt selection.  Every
phase is timed into an Extrae-like :class:`~repro.profiling.trace.Tracer`,
which is what the Figure-4 reproduction and the POP metrics read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from ..backend import select_backend
from ..gradients.iad import compute_iad_matrices
from ..gravity.barnes_hut import barnes_hut_gravity
from ..kernels.registry import make_kernel
from ..observability.tracer import make_tracer
from ..profiling.trace import State, Tracer
from ..sph.density import compute_density
from ..sph.eos import EquationOfState
from ..sph.forces import compute_forces
from ..sph.pair_engine import PairContext, PairEngineStats, new_pair_token
from ..sph.smoothing import (
    SmoothingConfig,
    adapt_from_cached_list,
    adapt_smoothing_lengths,
)
from ..timestepping.integrator import apply_energy_floor, drift, kick
from ..timestepping.steppers import (
    AdaptiveTimestep,
    GlobalTimestep,
    IndividualTimesteps,
)
from ..tree.box import Box
from ..tree.octree import Octree
from .config import RunConfig, SimulationConfig
from .conservation import ConservationState, measure_conservation
from .particles import ParticleSystem
from .phases import Phase

if TYPE_CHECKING:  # avoid the core <-> parallel import cycle at runtime
    from ..observability.report import RunReport
    from ..parallel.executor import ExecConfig
    from ..resilience.checkpoint import ResilienceConfig

__all__ = ["StepStats", "Simulation", "RunCancelled"]


class RunCancelled(RuntimeError):
    """Raised by :meth:`Simulation.run` at the cooperative cancellation
    point after :meth:`Simulation.request_cancel` was called.

    The driver state is left at the last *completed* step (nothing is
    rolled back), so a cancelled run can be reported, checkpointed or
    resumed like any other interrupted one.
    """

    def __init__(self, step_index: int):
        self.step_index = step_index
        super().__init__(f"run cancelled at step {step_index}")


@dataclass(frozen=True)
class StepStats:
    """Summary of one completed time step."""

    index: int
    time: float
    dt: float
    n_particles: int
    n_pairs: int
    n_p2p: int
    n_m2p: int
    mean_neighbors: float
    energy_floor_hits: int
    conservation: ConservationState
    # Pair-engine activity during this step (0 when the engine is off):
    pair_geometry_computes: int = 0
    pair_geometry_reuses: int = 0
    pair_bytes_allocated: int = 0
    pair_bytes_reused: int = 0


@dataclass
class Simulation:
    """Serial SPH simulation: one particle set, one Algorithm-1 loop.

    Parameters
    ----------
    particles, box, eos:
        State, domain (periodicity included) and equation of state — as
        produced by the :mod:`repro.ics` factories.
    config:
        Algorithm choices (a preset from :mod:`repro.core.presets` or a
        custom :class:`~repro.core.config.SimulationConfig`).
    g_const:
        Gravitational constant (1 in Evrard units); ignored when the
        config has gravity disabled.
    tracer:
        Optional shared tracer; by default a private one is created from
        ``run_config.observability`` (a recording
        :class:`~repro.observability.tracer.SpanTracer` when enabled, the
        no-op :class:`~repro.observability.tracer.NullTracer` otherwise).
    run_config:
        :class:`~repro.core.config.RunConfig` aggregating the execution
        environment: process pool (``exec``), checkpointing
        (``resilience``) and span tracing (``observability``).  ``None``
        means the all-defaults config — serial, checkpoint-free, tracing
        on.  Prefer :meth:`configure` over building one by hand.
    exec_config:
        Deprecated — pass ``run_config=RunConfig(exec=...)`` or call
        ``configure(exec=...)`` instead.
    resilience:
        Deprecated — pass ``run_config=RunConfig(resilience=...)`` or
        call ``configure(resilience=...)`` instead.
    """

    particles: ParticleSystem
    box: Box
    eos: EquationOfState
    config: SimulationConfig = field(default_factory=SimulationConfig)
    g_const: float = 1.0
    tracer: Optional[Tracer] = None
    rank: int = 0
    exec_config: Optional["ExecConfig"] = None
    resilience: Optional["ResilienceConfig"] = None
    run_config: Optional[RunConfig] = None
    #: Registry name of the workload this driver runs (ledger key; set
    #: by :meth:`repro.scenarios.registry.Scenario.make_simulation` and
    #: the CLI, ``None`` for hand-built runs).
    scenario: Optional[str] = None
    #: Stable identity of this execution.  Minted at construction (not at
    #: ledger-append time) so the service's result store and the run
    #: ledger file the same execution under the same key; pass one in to
    #: adopt an externally minted id (the job manager does).
    run_id: Optional[str] = None

    def __post_init__(self) -> None:
        # The deprecated PR-4 constructor kwargs (exec_config/resilience)
        # resolve in repro.compat — the one documented home of the old
        # surface — into a RunConfig, warning once per process.
        from ..compat import resolve_legacy_driver_kwargs

        resolve_legacy_driver_kwargs(self)
        if self.run_id is None:
            from ..observability.ledger import new_run_id

            self.run_id = new_run_id(self.scenario or self.config.label)
        self._owns_tracer = self.tracer is None
        self.kernel = make_kernel(self.config.kernel)
        self.time = 0.0
        self.step_index = 0
        self.potential_energy = 0.0
        self.history: List[StepStats] = []
        self._max_mu = 0.0
        self._rates_current = False
        self._nlist = None
        self._tree: Optional[Octree] = None
        self._smoothing = SmoothingConfig(n_target=self.config.n_neighbors)
        if self.config.timestepping == "global":
            self.stepper = GlobalTimestep(self.config.timestep_params)
        elif self.config.timestepping == "adaptive":
            self.stepper = AdaptiveTimestep(self.config.timestep_params)
        else:
            self.stepper = IndividualTimesteps(self.config.timestep_params)
        self._engine = None
        self._autotuner = None
        self._ledger_written = False
        #: Steps actually executed by *this* driver (unlike
        #: ``step_index``, a checkpoint restore does not advance it) —
        #: the ledger-append predicate, so a never-run or
        #: restored-but-idle driver writes no phantom history row.
        self._steps_executed = 0
        self._progress_hook = None
        self._cancel_requested = False
        self._apply_run_config()
        self.initial_conservation: Optional[ConservationState] = None
        # Table 4 "Error Detection": with error_detection enabled the
        # driver runs the SDC monitor and the ABFT force guard each step
        # and collects findings (production codes would abort/rollback).
        self.sdc_findings: List[str] = []
        self._sdc_monitor = None
        self._abft_guard = None
        if self.config.error_detection:
            from ..resilience.abft import AbftForceGuard
            from ..resilience.sdc import SdcMonitor

            self._sdc_monitor = SdcMonitor()
            self._abft_guard = AbftForceGuard()

    # ------------------------------------------------------------------
    # Execution-environment wiring (RunConfig -> subsystems)
    # ------------------------------------------------------------------
    def _apply_run_config(self) -> None:
        """(Re)wire tracer, pair engine, cache, pool and checkpointing.

        Idempotent against the current :attr:`run_config`; an existing
        pool is released before the replacement spins up.
        """
        run = self.run_config
        # Legacy mirrors: reading sim.exec_config / sim.resilience stays
        # valid (only passing them as constructor kwargs is deprecated).
        self.exec_config = run.exec
        self.resilience = run.resilience
        # Execution backend for the SPH hot path.  The request resolves
        # here (warn-once fallback to numpy when a named compiled
        # backend is unavailable); phases receive the resolved Backend,
        # pool workers re-resolve by name in their own process.
        requested = run.exec.backend if run.exec is not None else "numpy"
        self.backend_requested = requested
        self.backend = select_backend(requested)
        if self._owns_tracer:
            self.tracer = make_tracer(run.observability)
        # Pair engine: one persistent serial-path context plus the epoch
        # tokens shipped to pool workers.  ``exec.pair_engine=False``
        # turns it off; the SPH kernels then build ephemeral contexts per
        # call (the pre-engine cost model, bitwise-identical results).
        self._pair_ctx: Optional[PairContext] = None
        if run.exec is None or run.exec.pair_engine:
            self._pair_ctx = PairContext()
        self._pair_tokens: tuple = (None, None, None)
        self._pair_state_obj: Optional[ParticleSystem] = None
        self._pair_state_epochs: tuple = ()
        if self._engine is not None:
            self._engine.close()
        self._engine = None
        self._ncache = None
        if run.exec is not None:
            if run.exec.neighbor_cache:
                from ..tree.neighborlist import VerletNeighborCache

                self._ncache = VerletNeighborCache(skin=run.exec.cache_skin)
            if run.exec.parallel_enabled:
                from ..parallel.executor import ParallelEngine

                self._engine = ParallelEngine(
                    run.exec,
                    tracer=self.tracer,
                    rank=self.rank,
                    worker_spans=run.observability.worker_spans,
                )
        self.checkpoint_manager = None
        if run.resilience is not None:
            from ..resilience.checkpoint import CheckpointManager

            self.checkpoint_manager = CheckpointManager(run.resilience)
        # Self-healing step guard + driver-level numerical chaos.  With a
        # guard, ``run()`` routes every step through
        # ``StepGuard.guarded_step`` and the checkpoint hook moves behind
        # the health check (so disk checkpoints never capture a poisoned
        # state).
        self.numerical_chaos = run.numerical_chaos
        self.step_guard = None
        if run.guard is not None:
            from ..resilience.guard import StepGuard

            self.step_guard = StepGuard(run.guard)

    def configure(
        self,
        *,
        exec: Optional["ExecConfig"] = None,
        resilience: Optional["ResilienceConfig"] = None,
        observability=None,
        guard=None,
        numerical_chaos=None,
    ) -> "Simulation":
        """Swap parts of the execution environment before the first step.

        Each non-``None`` argument replaces that section of
        :attr:`run_config` and the affected subsystems are rewired;
        omitted sections keep their current setting.  Returns ``self``
        so construction chains::

            sim = Simulation(p, box, eos).configure(exec=ExecConfig(workers=4))
        """
        if self.step_index != 0 or self.history:
            raise RuntimeError(
                "configure() must run before the first step "
                f"(already at step {self.step_index})"
            )
        run = self.run_config
        if exec is not None:
            run = run.with_(exec=exec)
        if resilience is not None:
            run = run.with_(resilience=resilience)
        if observability is not None:
            run = run.with_(observability=observability)
        if guard is not None:
            run = run.with_(guard=guard)
        if numerical_chaos is not None:
            run = run.with_(numerical_chaos=numerical_chaos)
        self.run_config = run
        self._apply_run_config()
        return self

    def _rewire_exec(self, exec_cfg: Optional["ExecConfig"]) -> None:
        """Swap the execution layer mid-run (autotuner knob switches).

        Unlike :meth:`_apply_run_config` this touches only the subsystems
        an :class:`~repro.parallel.executor.ExecConfig` governs — backend,
        pair engine, Verlet cache, process pool — and leaves the tracer,
        checkpoint manager, step guard and chaos policy running, so span
        history and resilience state survive the switch.
        """
        run = self.run_config.with_(exec=exec_cfg)
        self.run_config = run
        self.exec_config = exec_cfg
        requested = exec_cfg.backend if exec_cfg is not None else "numpy"
        self.backend_requested = requested
        self.backend = select_backend(requested)
        self._pair_ctx = None
        if exec_cfg is None or exec_cfg.pair_engine:
            self._pair_ctx = PairContext()
        self._pair_tokens = (None, None, None)
        self._pair_state_obj = None
        self._pair_state_epochs = ()
        if self._engine is not None:
            self._engine.close()
        self._engine = None
        self._ncache = None
        if exec_cfg is not None:
            if exec_cfg.neighbor_cache:
                from ..tree.neighborlist import VerletNeighborCache

                self._ncache = VerletNeighborCache(skin=exec_cfg.cache_skin)
            if exec_cfg.parallel_enabled:
                from ..parallel.executor import ParallelEngine

                self._engine = ParallelEngine(
                    exec_cfg,
                    tracer=self.tracer,
                    rank=self.rank,
                    worker_spans=run.observability.worker_spans,
                )
                self._engine.set_step(self.step_index)

    # ------------------------------------------------------------------
    # Pair-engine token bookkeeping
    # ------------------------------------------------------------------
    def _refresh_pair_tokens(self) -> None:
        """Re-mint epoch tokens for every particle field that changed.

        Tokens are process-unique integers (see
        :func:`repro.sph.pair_engine.new_pair_token`); a stable token
        across calls asserts "this field's values are unchanged", which
        is what lets the geometry survive from the h-adaptation phase
        into density/forces and lets pool workers trust their slice
        caches across phases.  Swapping the particle object (restore,
        manual reassignment) re-mints everything.
        """
        if self._pair_ctx is None:
            return
        p = self.particles
        epochs = (p.epoch("x"), p.epoch("h"), p.epoch("v"))
        tg, th, tv = self._pair_tokens
        if self._pair_state_obj is not p:
            tg = th = tv = None
        else:
            prev = self._pair_state_epochs
            if prev[0] != epochs[0]:
                tg = None
            if prev[1] != epochs[1]:
                th = None
            if prev[2] != epochs[2]:
                tv = None
        if tg is None:
            tg = new_pair_token()
        if th is None:
            th = new_pair_token()
        if tv is None:
            tv = new_pair_token()
        self._pair_state_obj = p
        self._pair_state_epochs = epochs
        self._pair_tokens = (tg, th, tv)
        self._pair_ctx.set_tokens(tg, th, tv)

    def _pair_token_param(self):
        """Token tuple for pool workers (None = engine off)."""
        return self._pair_tokens if self._pair_ctx is not None else None

    def _backend_param(self) -> Optional[str]:
        """Backend name for pool workers (None = numpy reference)."""
        return self.backend.name if self.backend.ops is not None else None

    def _pair_stats_total(self) -> PairEngineStats:
        """Combined serial + worker pair-engine counters (zeros when off)."""
        total = PairEngineStats()
        if self._pair_ctx is not None:
            total.merge(self._pair_ctx.stats.as_dict())
        if self._engine is not None:
            total.merge(self._engine.pair_stats.as_dict())
        return total

    @property
    def pair_engine_stats(self) -> PairEngineStats:
        """Deprecated — use ``report().pair_engine`` (see :mod:`repro.compat`)."""
        from ..compat import legacy_pair_engine_stats

        return legacy_pair_engine_stats(self)

    # ------------------------------------------------------------------
    # Rate evaluation: Algorithm 1 steps 1-4 (phases A-I)
    # ------------------------------------------------------------------
    def compute_rates(self) -> None:
        """Rebuild tree/neighbours and evaluate all rates at current state."""
        p = self.particles
        cfg = self.config
        tr = self.tracer
        engine = self._engine
        self._refresh_pair_tokens()

        # Verlet-skin cache: reuse the padded neighbour list while every
        # particle sits within the skin budget (half for displacement,
        # half for h growth) since it was built.  On a hit, the neighbour
        # searches of phases B-C are skipped; the h iteration still runs,
        # counting off the cached list (exact counts under the budget),
        # and the padded pairs beyond kernel support contribute exact
        # zeros downstream.
        cached = None
        if self._ncache is not None:
            cached = self._ncache.lookup(p.x, p.h, self.box)

        needs_tree = cfg.neighbor_search == "tree-walk" or cfg.gravity is not None
        with tr.phase(Phase.TREE_BUILD.letter, State.USEFUL, self.rank):
            if needs_tree:
                # Gravity requires an open cube; neighbour walks honor the
                # periodic box.  With both, the periodic-Z square patch
                # never enables gravity, so the box choice is consistent.
                self._tree = Octree.build(p.x, self.box, leaf_size=48)
            else:
                self._tree = None

        with tr.phase(Phase.NEIGHBOR_SEARCH.letter, State.USEFUL, self.rank):
            if cfg.neighbor_search == "tree-walk":
                tree = self._tree

                def search(x, radii, box, mode):
                    return tree.walk_neighbors(x, radii, mode=mode)

            else:
                search = None  # default cell grid inside adapt

        with tr.phase(Phase.SMOOTHING_LENGTH.letter, State.USEFUL, self.rank):
            if cached is not None:
                cached = adapt_from_cached_list(
                    p, cached, self.box, self._smoothing, self._ncache,
                    ctx=self._pair_ctx, backend=self.backend,
                )
            if cached is not None:
                self._nlist = cached
            else:
                self._nlist = adapt_smoothing_lengths(
                    p, self.box, self._smoothing, search=search,
                    cache=self._ncache, ctx=self._pair_ctx,
                    backend=self.backend,
                )
        # The h iteration may have rewritten ``h`` — re-mint its token so
        # kernel-value caches key on the adapted values (the geometry
        # token is untouched: positions did not move, so the ``(i, j,
        # dx, r)`` block primed above carries straight into the phases
        # below).
        self._refresh_pair_tokens()
        pair_tokens = self._pair_token_param()

        c_matrices = None
        if cfg.gradients == "iad":
            # IAD moments need a density estimate; bootstrap on the first
            # call with a standard summation.
            if engine is not None:
                if np.all(p.rho <= 0.0):
                    engine.density(
                        p,
                        self._nlist,
                        self.kernel,
                        self.box,
                        phase=Phase.NEIGHBOR_LISTS.letter,
                        pair_tokens=pair_tokens,
                        backend=self._backend_param(),
                    )
                c_matrices = engine.iad_matrices(
                    p,
                    self._nlist,
                    self.kernel,
                    self.box,
                    phase=Phase.NEIGHBOR_LISTS.letter,
                    pair_tokens=pair_tokens,
                    backend=self._backend_param(),
                )
            else:
                with tr.phase(Phase.NEIGHBOR_LISTS.letter, State.USEFUL, self.rank):
                    if np.all(p.rho <= 0.0):
                        compute_density(
                            p, self._nlist, self.kernel, self.box,
                            ctx=self._pair_ctx, backend=self.backend,
                        )
                    c_matrices = compute_iad_matrices(
                        p, self._nlist, self.kernel, self.box,
                        ctx=self._pair_ctx, backend=self.backend,
                    )

        if engine is not None:
            engine.density(
                p,
                self._nlist,
                self.kernel,
                self.box,
                volume_elements=cfg.volume_elements,
                xmass_exponent=cfg.xmass_exponent,
                phase=Phase.DENSITY.letter,
                pair_tokens=pair_tokens,
                backend=self._backend_param(),
            )
        else:
            with tr.phase(Phase.DENSITY.letter, State.USEFUL, self.rank):
                compute_density(
                    p,
                    self._nlist,
                    self.kernel,
                    self.box,
                    volume_elements=cfg.volume_elements,
                    xmass_exponent=cfg.xmass_exponent,
                    ctx=self._pair_ctx,
                    backend=self.backend,
                )

        with tr.phase(Phase.EQUATION_OF_STATE.letter, State.USEFUL, self.rank):
            self.eos.apply(p)

        if engine is not None:
            result = engine.forces(
                p,
                self._nlist,
                self.kernel,
                self.box,
                gradients=cfg.gradients,
                viscosity=cfg.viscosity,
                grad_h=cfg.grad_h,
                c_matrices=c_matrices,
                phase=Phase.MOMENTUM_ENERGY.letter,
                pair_tokens=pair_tokens,
                backend=self._backend_param(),
            )
            self._max_mu = result.max_mu
        else:
            with tr.phase(Phase.MOMENTUM_ENERGY.letter, State.USEFUL, self.rank):
                result = compute_forces(
                    p,
                    self._nlist,
                    self.kernel,
                    self.box,
                    gradients=cfg.gradients,
                    viscosity=cfg.viscosity,
                    grad_h=cfg.grad_h,
                    c_matrices=c_matrices,
                    ctx=self._pair_ctx,
                    backend=self.backend,
                )
                self._max_mu = result.max_mu

        self._last_gravity_p2p = 0
        self._last_gravity_m2p = 0
        # Self-gravity only applies to open-boundary scenarios (the paper
        # runs the periodic-Z square patch without gravity on every code,
        # gravity-capable or not — Table 5).
        if cfg.gravity is not None and not bool(np.any(self.box.periodic)):
            softening = cfg.gravity_softening_factor * float(p.h.mean())
            if engine is not None:
                grav = engine.gravity(
                    p.x,
                    p.m,
                    g_const=self.g_const,
                    softening=softening,
                    theta=cfg.gravity_theta,
                    order=cfg.gravity_order,
                    tree=self._tree,
                    phase=Phase.GRAVITY.letter,
                )
            else:
                with tr.phase(Phase.GRAVITY.letter, State.USEFUL, self.rank):
                    grav = barnes_hut_gravity(
                        p.x,
                        p.m,
                        g_const=self.g_const,
                        softening=softening,
                        theta=cfg.gravity_theta,
                        order=cfg.gravity_order,
                        tree=self._tree,
                    )
            p.a += grav.acc
            self.potential_energy = grav.potential_energy(p.m)
            self._last_gravity_p2p = grav.n_p2p
            self._last_gravity_m2p = grav.n_m2p
        else:
            with tr.phase(Phase.GRAVITY.letter, State.USEFUL, self.rank):
                self.potential_energy = 0.0
        self._rates_current = True

    # ------------------------------------------------------------------
    # One leapfrog step (Algorithm 1 steps 5-6 around the rate evaluation)
    # ------------------------------------------------------------------
    def step(self) -> StepStats:
        """One leapfrog step, wrapped in a whole-step container span."""
        with self.tracer.step_span(self.step_index, self.rank):
            return self._step_impl()

    def _step_impl(self) -> StepStats:
        p = self.particles
        tr = self.tracer
        step_at_entry = self.step_index  # chaos faults key on this index
        pair_snap = self._pair_stats_total().snapshot()
        if self._engine is not None:
            # Chaos events and recovery logs are keyed by driver step.
            self._engine.set_step(self.step_index)
        if not self._rates_current:
            self.compute_rates()
        if self.initial_conservation is None:
            self.initial_conservation = measure_conservation(
                p, self.time, self.potential_energy
            )

        with tr.phase(Phase.TIMESTEP_UPDATE.letter, State.USEFUL, self.rank):
            dt = self.stepper.select(p, self._max_mu)
            if not np.isfinite(dt) or dt <= 0.0:
                raise RuntimeError(f"non-finite time step selected: {dt}")
            kick(p, 0.5 * dt)
            drift(p, dt, self.box)

        self.compute_rates()
        if self.numerical_chaos is not None:
            self.numerical_chaos.apply(step_at_entry, "rates", p)

        floor_hits = 0
        with tr.phase(Phase.TIMESTEP_UPDATE.letter, State.USEFUL, self.rank):
            kick(p, 0.5 * dt)
            floor_hits = apply_energy_floor(p)

        self.time += dt
        self.step_index += 1
        self._steps_executed += 1
        nl = self._nlist
        with tr.phase(Phase.AUX_KERNELS.letter, State.USEFUL, self.rank):
            conservation = measure_conservation(p, self.time, self.potential_energy)
            if self._sdc_monitor is not None:
                findings = self._sdc_monitor.check_step(
                    p, self.time, self.potential_energy
                )
                findings += self._abft_guard.verify(p)
                self.sdc_findings.extend(
                    f"step {self.step_index}: {f}" for f in findings
                )
        pair_delta = self._pair_stats_total().delta(pair_snap)
        stats = StepStats(
            index=self.step_index,
            time=self.time,
            dt=dt,
            n_particles=p.n,
            n_pairs=nl.n_pairs if nl is not None else 0,
            n_p2p=self._last_gravity_p2p,
            n_m2p=self._last_gravity_m2p,
            mean_neighbors=float(nl.counts().mean()) if nl is not None else 0.0,
            energy_floor_hits=floor_hits,
            conservation=conservation,
            pair_geometry_computes=pair_delta["geometry_computes"],
            pair_geometry_reuses=pair_delta["geometry_reuses"],
            pair_bytes_allocated=pair_delta["bytes_allocated"],
            pair_bytes_reused=pair_delta["bytes_reused"],
        )
        self.history.append(stats)
        # With a step guard the checkpoint hook runs *after* the health
        # check (inside guarded_step) so a rolling checkpoint can never
        # capture a state the guard is about to reject.
        if self.checkpoint_manager is not None and self.step_guard is None:
            self.checkpoint_manager.after_step(self)
        if self.numerical_chaos is not None:
            self.numerical_chaos.apply(step_at_entry, "post", p)
        return stats

    def run(
        self, n_steps: Optional[int] = None, t_end: Optional[float] = None
    ) -> List[StepStats]:
        """Run for ``n_steps`` steps and/or until ``t_end`` simulated time.

        With ``resilience.autoresume`` set, a fresh driver first restores
        the newest valid rolling checkpoint (if any) and continues from
        there; ``n_steps`` then counts the *remaining* steps of this call.
        """
        if n_steps is None and t_end is None:
            raise ValueError("provide n_steps and/or t_end")
        if (
            self.resilience is not None
            and self.resilience.autoresume
            and self.step_index == 0
        ):
            self.resume()
        tuning = self.run_config.tuning
        if (
            tuning is not None
            and tuning.enabled
            and self._autotuner is None
        ):
            from ..tuning.autotuner import Autotuner

            self._autotuner = Autotuner(self, tuning)
        done: List[StepStats] = []
        while True:
            if n_steps is not None and len(done) >= n_steps:
                break
            if t_end is not None and self.time >= t_end:
                break
            # Cooperative cancellation point: between steps, where the
            # state is whole and checkpointable.
            if self._cancel_requested:
                self._cancel_requested = False
                raise RunCancelled(self.step_index)
            tuner = self._autotuner
            if tuner is not None and not tuner.done:
                tuner.before_step()
            if tuner is not None and not tuner.done:
                t0 = time.perf_counter()
                if self.step_guard is not None:
                    done.append(self.step_guard.guarded_step(self))
                else:
                    done.append(self.step())
                tuner.after_step(time.perf_counter() - t0)
            elif self.step_guard is not None:
                done.append(self.step_guard.guarded_step(self))
            else:
                done.append(self.step())
            if self._progress_hook is not None:
                self._progress_hook(done[-1])
        return done

    # ------------------------------------------------------------------
    # Service hooks: progress streaming + cooperative cancellation
    # ------------------------------------------------------------------
    def on_step(self, hook) -> "Simulation":
        """Install a per-step progress callback (``hook(stats)``).

        Called from :meth:`run` after each *healthy* completed step —
        behind the guard's health check, so subscribers never observe a
        step the guard is about to roll back.  ``None`` uninstalls.
        Returns ``self`` for chaining.
        """
        self._progress_hook = hook
        return self

    def request_cancel(self) -> None:
        """Ask the run loop to stop at the next between-steps boundary.

        Safe to call from any thread (a bare flag write); the loop
        raises :class:`RunCancelled` before starting another step.
        """
        self._cancel_requested = True

    def degrade_to_serial(self) -> None:
        """Drop to the plain serial path: pool off, pair engine off,
        compiled backend off.

        All three are degradation-neutral (the serial numpy reference
        produces equivalent results), so this is a safe rung: it sheds
        the optimized machinery in case that machinery is the corruptor.
        Idempotent; there is no un-degrade short of ``configure()``.
        """
        if self._engine is not None:
            self._engine.close()
            self._engine = None
        self._pair_ctx = None
        self._pair_tokens = (None, None, None)
        self._pair_state_obj = None
        self._pair_state_epochs = ()
        self.backend = select_backend("numpy")

    # ------------------------------------------------------------------
    def resume(self, path=None) -> bool:
        """Restore from a checkpoint file (newest valid one by default).

        Returns ``True`` when a checkpoint was restored.  Restoration is
        bit-identical: particle arrays, clock, step counter, stepper
        memory and the viscous-signal diagnostic all come back, and the
        neighbour cache is invalidated so lists rebuild from the restored
        positions.
        """
        from ..resilience.checkpoint import (
            find_latest_checkpoint,
            read_checkpoint,
            retry_io,
        )

        if path is None:
            if self.resilience is None:
                raise ValueError("resume() without a path needs a ResilienceConfig")
            path = find_latest_checkpoint(self.resilience.checkpoint_dir)
            if path is None:
                return False
        res = self.resilience
        io_chaos = (
            self.checkpoint_manager.io_chaos
            if self.checkpoint_manager is not None
            else None
        )
        cp = retry_io(
            lambda: read_checkpoint(path, io_chaos=io_chaos),
            attempts=res.io_retries if res is not None else 1,
            backoff=res.io_backoff if res is not None else 0.0,
            what=f"checkpoint restore from {path}",
        )
        cp.restore_into(self)
        return True

    # ------------------------------------------------------------------
    # Consolidated reporting
    # ------------------------------------------------------------------
    def _ncache_stats_dict(self) -> Optional[dict]:
        if self._ncache is None:
            return None
        s = self._ncache.stats
        return {
            "builds": s.builds,
            "hits": s.hits,
            "misses_displacement": s.misses_displacement,
            "misses_h_change": s.misses_h_change,
            "misses_shape": s.misses_shape,
            "hit_rate": s.hit_rate,
        }

    def _recovery_stats_dict(self) -> Optional[dict]:
        if self._engine is None:
            return None
        s = self._engine.supervisor_stats
        if s is None:
            return None
        return {
            "crashes": s.crashes,
            "hangs": s.hangs,
            "respawns": s.respawns,
            "reissues": s.reissues,
            "late_replies_discarded": s.late_replies_discarded,
            "serial_fallbacks": s.serial_fallbacks,
            "sdc_detected": s.sdc_detected,
            "degraded": int(s.degraded),
        }

    def report(self) -> "RunReport":
        """Everything this run can tell about itself, in one object.

        Consolidates the pair-engine, neighbour-cache, recovery and
        checkpoint counters (previously four separate accessors) with the
        POP efficiency metrics computed from the measured span timeline.
        """
        from ..observability.pop import pop_from_events
        from ..observability.registry import MetricsRegistry
        from ..observability.report import RunReport

        reg = MetricsRegistry()
        pair = self._pair_stats_total().as_dict()
        reg.absorb("pair_engine", pair)
        ncache = self._ncache_stats_dict()
        reg.absorb("neighbor_cache", ncache)
        recovery = self._recovery_stats_dict()
        reg.absorb("recovery", recovery)
        checkpoint = None
        if self.checkpoint_manager is not None:
            checkpoint = self.checkpoint_manager.stats()
            reg.absorb("checkpoint", checkpoint)
        guard = None
        if self.step_guard is not None:
            guard = self.step_guard.report()
            reg.absorb("guard", guard.counters())
        sdc = None
        if self._sdc_monitor is not None:
            sdc = {
                "checks_run": self._sdc_monitor.checks_run,
                "detections": self._sdc_monitor.detections,
                "findings": len(self.sdc_findings),
            }
            reg.absorb("sdc", sdc)
        backend = dict(self.backend.describe())
        backend["requested"] = self.backend_requested
        reg.absorb("backend", {"compiled": int(self.backend.compiled)})
        tuning = None
        if self._autotuner is not None:
            tuning = self._autotuner.report_dict()
            reg.absorb(
                "tuning",
                {
                    "explored_steps": tuning.get("explored_steps", 0),
                    "done": int(bool(tuning.get("done"))),
                },
            )
        tr = self.tracer
        pop = None
        if getattr(tr, "enabled", False) and tr.events:
            pop = pop_from_events(tr)
            reg.set("tracer.events", len(tr.events))
            reg.set("tracer.dropped", getattr(tr, "dropped", 0))
        return RunReport(
            steps=self.step_index,
            time=self.time,
            n_particles=self.particles.n,
            pair_engine=pair,
            neighbor_cache=ncache,
            recovery=recovery,
            checkpoint=checkpoint,
            guard=guard,
            sdc=sdc,
            pop=pop,
            counters=reg.as_dict(),
            backend=backend,
            tuning=tuning,
        )

    @property
    def neighbor_cache_stats(self):
        """Deprecated — use ``report().neighbor_cache`` (see :mod:`repro.compat`)."""
        from ..compat import legacy_neighbor_cache_stats

        return legacy_neighbor_cache_stats(self)

    @property
    def supervisor_stats(self):
        """Deprecated — use ``report().recovery`` (see :mod:`repro.compat`)."""
        from ..compat import legacy_supervisor_stats

        return legacy_supervisor_stats(self)

    def close(self) -> None:
        """Release the pool and flush any configured trace exports.

        No-op when serial and export paths are unset; safe to call more
        than once (the context-manager exit calls it too).
        """
        if self._engine is not None:
            self._engine.close()
        obs = self.run_config.observability if self.run_config else None
        if obs is not None and getattr(self.tracer, "enabled", False):
            from ..observability.export import write_chrome_trace, write_jsonl

            if obs.chrome_trace_path:
                write_chrome_trace(obs.chrome_trace_path, self.tracer)
            if obs.jsonl_path:
                write_jsonl(obs.jsonl_path, self.tracer)
        if (
            obs is not None
            and obs.ledger_path
            and not self._ledger_written
            # Append only when *this driver* executed steps: a never-run
            # driver (cache-hit job) or one that merely restored a
            # checkpoint must not write a phantom history row.
            and self._steps_executed > 0
        ):
            # A broken ledger must never turn a clean shutdown into a
            # crash — the run's results matter more than its history row.
            import warnings

            try:
                from ..observability.ledger import (
                    RunLedger,
                    record_from_simulation,
                )

                with RunLedger(obs.ledger_path) as ledger:
                    ledger.append(record_from_simulation(self))
                self._ledger_written = True
            except Exception as exc:  # pragma: no cover - defensive
                warnings.warn(
                    f"run-ledger append to {obs.ledger_path!r} failed: "
                    f"{exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def __enter__(self) -> "Simulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def conservation_drift(self) -> dict[str, float]:
        """Relative drift of mass/momentum/energy since the first step."""
        from .conservation import relative_drift

        if self.initial_conservation is None or not self.history:
            return {"mass": 0.0, "momentum": 0.0, "energy": 0.0}
        return relative_drift(
            self.initial_conservation, self.history[-1].conservation
        )
