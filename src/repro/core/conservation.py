"""Conservation diagnostics.

"It is much more important to limit the deviations in under-resolved
regimes by enforcing fundamental conservation laws" (Section 5).  The
driver snapshots mass, momentum and the energy budget every step; tests
assert drift bounds, and the ABFT error detectors
(:mod:`repro.resilience.abft`) reuse the same ledger to flag silent data
corruption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConservationState", "measure_conservation", "relative_drift"]


@dataclass(frozen=True)
class ConservationState:
    """Snapshot of the globally conserved quantities."""

    time: float
    total_mass: float
    momentum: np.ndarray
    angular_momentum: np.ndarray
    kinetic_energy: float
    internal_energy: float
    potential_energy: float

    @property
    def total_energy(self) -> float:
        return self.kinetic_energy + self.internal_energy + self.potential_energy

    def summary(self) -> str:
        return (
            f"t={self.time:.5g} M={self.total_mass:.6g} "
            f"E_kin={self.kinetic_energy:.6g} E_int={self.internal_energy:.6g} "
            f"E_pot={self.potential_energy:.6g} E_tot={self.total_energy:.6g} "
            f"|p|={np.linalg.norm(self.momentum):.3e}"
        )


def measure_conservation(
    particles, time: float = 0.0, potential_energy: float = 0.0
) -> ConservationState:
    """Snapshot the conserved quantities of a particle system."""
    return ConservationState(
        time=time,
        total_mass=particles.total_mass,
        momentum=particles.linear_momentum(),
        angular_momentum=particles.angular_momentum(),
        kinetic_energy=particles.kinetic_energy(),
        internal_energy=particles.internal_energy(),
        potential_energy=potential_energy,
    )


def relative_drift(
    initial: ConservationState, current: ConservationState
) -> dict[str, float]:
    """Relative drift of each conserved quantity since ``initial``.

    Momentum drift is normalized by the momentum *scale*
    ``sqrt(2 m E_kin)`` rather than |p| (which is ~0 for symmetric ICs).
    """
    ke_scale = max(initial.kinetic_energy, current.kinetic_energy, 0.0)
    # Cold ICs (Evrard: v=0) have no initial momentum scale; fall back to
    # the energy scale so the ratio stays meaningful.
    if ke_scale <= 0.0:
        ke_scale = abs(initial.internal_energy) + abs(initial.potential_energy)
    p_scale = max(np.sqrt(2.0 * initial.total_mass * ke_scale), 1e-300)
    e_scale = max(
        abs(initial.kinetic_energy)
        + abs(initial.internal_energy)
        + abs(initial.potential_energy),
        1e-300,
    )
    return {
        "mass": abs(current.total_mass - initial.total_mass)
        / max(abs(initial.total_mass), 1e-300),
        "momentum": float(
            np.linalg.norm(current.momentum - initial.momentum) / p_scale
        ),
        "energy": abs(current.total_energy - initial.total_energy) / e_scale,
    }
