"""Core of the mini-app: particles, configuration, Algorithm-1 driver.

This package is the paper's primary contribution — the SPH-EXA mini-app
skeleton: a structure-of-arrays particle set, the feature-axis
configuration of Tables 1-4, the parent-code presets, the phase-labelled
simulation loop of Algorithm 1 and the conservation ledger.
"""

from .config import RunConfig, SimulationConfig
from .conservation import ConservationState, measure_conservation, relative_drift
from .particles import ParticleSystem
from .phases import Phase
from .presets import CHANGA, PRESETS, SPH_EXA, SPHFLOW, SPHYNX, get_preset
from .simulation import Simulation, StepStats

__all__ = [
    "ParticleSystem",
    "SimulationConfig",
    "RunConfig",
    "Simulation",
    "StepStats",
    "Phase",
    "ConservationState",
    "measure_conservation",
    "relative_drift",
    "SPHYNX",
    "CHANGA",
    "SPHFLOW",
    "SPH_EXA",
    "PRESETS",
    "get_preset",
]
