"""Parent-code presets: Tables 1 and 3 as runnable configurations.

Each preset drives the shared SPH engine with one parent code's algorithm
choices, so the benchmark harness can compare "SPHYNX vs ChaNGa vs
SPH-flow" on identical tests the way the paper does.  The SPH_EXA preset
is the Table 2/4 outlook column — the mini-app defaults.

| Code     | Kernel    | Gradients | Volumes     | Stepping   | Gravity           | Decomp         | LB                |
|----------|-----------|-----------|-------------|------------|-------------------|----------------|-------------------|
| SPHYNX   | sinc      | IAD       | generalized | global     | 4-pole (quad)     | straightforward| none (static)     |
| ChaNGa   | Wendland/M4| kernel der| standard    | individual | 16-pole (hexadec) | SFC            | dynamic           |
| SPH-flow | Wendland  | kernel der| standard    | adaptive   | none              | ORB            | local-inner-outer |
"""

from __future__ import annotations

from typing import Dict

from .config import SimulationConfig

__all__ = ["SPHYNX", "CHANGA", "SPHFLOW", "SPH_EXA", "PRESETS", "get_preset"]

#: SPHYNX 1.3.1 (Table 1 / Table 3 row 1).
SPHYNX = SimulationConfig(
    label="SPHYNX",
    kernel="sinc-s5",
    gradients="iad",
    volume_elements="generalized",
    timestepping="global",
    neighbor_search="tree-walk",
    gravity="quadrupole",  # "Multipoles (4-pole)"
    domain_decomposition="uniform-slabs",  # "Straightforward"
    load_balancing="static",  # "None (static)"
    checkpoint_restart=True,
    precision="64-bit",
    language="Fortran 90",
    parallelization="MPI+OpenMP",
    reported_loc=25_000,
)

#: ChaNGa 3.3 (Table 1 / Table 3 row 2).
CHANGA = SimulationConfig(
    label="ChaNGa",
    kernel="wendland-c2",  # "Wendland, M4 spline"
    gradients="standard",  # "Kernel derivatives"
    volume_elements="standard",
    timestepping="individual",
    neighbor_search="tree-walk",
    gravity="hexadecapole",  # "Multipoles (16-pole)"
    domain_decomposition="sfc-morton",  # "Space Filling Curve"
    load_balancing="dynamic",
    checkpoint_restart=True,
    precision="64-bit",
    language="C++",
    parallelization="MPI+OpenMP+CUDA",
    reported_loc=110_000,
)

#: SPH-flow 17.6 (Table 1 / Table 3 row 3).
SPHFLOW = SimulationConfig(
    label="SPH-flow",
    kernel="wendland-c2",
    gradients="standard",
    volume_elements="standard",
    timestepping="adaptive",
    neighbor_search="tree-walk",
    gravity=None,  # "No" self-gravity
    domain_decomposition="orb",  # "Orthogonal Recursive Bisection"
    load_balancing="local-inner-outer",
    checkpoint_restart=True,
    precision="64-bit",
    language="Fortran 90",
    parallelization="MPI",
    reported_loc=37_000,
)

#: The SPH-EXA mini-app outlook (Tables 2 and 4) — defaults for new work.
SPH_EXA = SimulationConfig(
    label="SPH-EXA",
    kernel="sinc-s5",
    gradients="iad",
    volume_elements="generalized",
    timestepping="global",
    neighbor_search="tree-walk",
    gravity="hexadecapole",  # Table 2: "Multipoles (16-pole)"
    domain_decomposition="sfc-hilbert",  # Table 4: ORB or SFC
    load_balancing="dynamic",  # "DLB with self-scheduling"
    checkpoint_restart=True,  # "Optimal interval / Multilevel"
    error_detection=True,  # "Silent data corruption detectors"
    precision="64-bit",
    language="C++ (target) / Python (this reproduction)",
    parallelization="MPI + {OpenMP, HPX} + {OpenACC, CUDA} (target)",
)

PRESETS: Dict[str, SimulationConfig] = {
    "sphynx": SPHYNX,
    "changa": CHANGA,
    "sph-flow": SPHFLOW,
    "sphflow": SPHFLOW,
    "sph-exa": SPH_EXA,
}


def get_preset(name: str) -> SimulationConfig:
    """Preset lookup by (case-insensitive) code name."""
    try:
        return PRESETS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown preset {name!r}; available: sphynx, changa, sph-flow, sph-exa"
        ) from None
