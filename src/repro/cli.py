"""Command-line interface: ``python -m repro <command>``.

Mini-apps live or die by how easy they are to drive — "the building
should be kept as simple as a Makefile and the preparation of the run to
a handful of command line arguments" (Section 2, quoting Messer et al.).
This CLI exposes the library's main entry points with exactly that
surface.

Commands::

    python -m repro run <scenario> [--n 500 | --side 16 --layers 8] [--steps 5]
    python -m repro run sedov --steps 10 --json
    python -m repro serve --socket /tmp/repro.sock
    python -m repro submit sod --steps 50 --socket /tmp/repro.sock
    python -m repro jobs --socket /tmp/repro.sock
    python -m repro scenarios [--list | --json]
    python -m repro scaling --code sph-flow --test square --n 200000
    python -m repro tables

``run`` and ``submit`` share one spec-parsing path: the same flags
resolve to the same :class:`~repro.service.spec.JobSpec`, so a one-shot
run and a service submission of the same request are the same job (and
hash to the same cache line).  ``run`` executes in-process and streams
per-step lines; ``submit`` sends the spec to a ``repro serve`` instance
over its UNIX socket.  The legacy spelling ``squarepatch`` keeps
working as an alias of ``square-patch``.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Legacy spellings accepted by earlier releases of this CLI.
_ALIASES = {"squarepatch": "square-patch"}


# ---------------------------------------------------------------------------
# Shared spec parsing: flags -> JobSpec (run and submit use the same path)
# ---------------------------------------------------------------------------


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """The request-defining flags, identical for ``run`` and ``submit``."""
    parser.add_argument("case", metavar="scenario",
                        help="a registry name (see: python -m repro scenarios)")
    parser.add_argument("--preset", default="sph-exa",
                        help="sphynx | changa | sph-flow | sph-exa")
    parser.add_argument("--side", type=int, default=None,
                        help="square-patch only: particles per side")
    parser.add_argument("--layers", type=int, default=None,
                        help="square-patch only: extruded Z layers")
    parser.add_argument("--n", type=int, default=None,
                        help="size (particle target or lattice cells per axis, "
                             "depending on the scenario)")
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--neighbors", type=int, default=None)
    parser.add_argument("--backend", default=None,
                        choices=("numpy", "numba", "cffi", "auto"),
                        help="SPH hot-path execution backend (default numpy; "
                             "'auto' picks the best compiled one available)")
    parser.add_argument("--guard", action="store_true",
                        help="enable the self-healing step guard (rollback-"
                             "and-retry with the scenario's invariant bounds)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="inject numerical faults: kind:array@step"
                             "[:site][*fires][!] (e.g. nan:rho@3, huge:cs@4, "
                             "nan:rho@2! for a persistent fault)")
    parser.add_argument("--error-detection", action="store_true",
                        help="run the per-step SDC monitor (Table 4)")
    parser.add_argument("--autotune", action="store_true",
                        help="let the online autotuner pick the execution "
                             "knobs (backend, pair engine, cache, workers) "
                             "over the first steps of the run")
    parser.add_argument("--autotune-seed", type=int, default=0, metavar="SEED",
                        help="seed for the deterministic exploration order")


def _spec_from_args(args: argparse.Namespace):
    """Resolve the shared flags into a validated ``(spec, scenario)``.

    Raises :class:`~repro.service.spec.SpecError` for every malformed
    request — unknown scenario, wrong size flag, bad chaos spelling —
    which both commands map to exit code 2.
    """
    from .scenarios import UnknownScenarioError, get_scenario
    from .service.spec import JobSpec, SpecError

    try:
        scenario = get_scenario(_ALIASES.get(args.case, args.case))
    except UnknownScenarioError as exc:
        raise SpecError(exc.args[0]) from None

    overrides = {}
    if args.n is not None:
        if scenario.size_param is None:
            raise SpecError(
                f"{scenario.name} is sized with --side/--layers, not --n"
            )
        overrides[scenario.size_param] = args.n
    if args.side is not None or args.layers is not None:
        if scenario.name != "square-patch":
            raise SpecError(
                f"--side/--layers only apply to square-patch, "
                f"not {scenario.name}"
            )
        if args.side is not None:
            overrides["side"] = args.side
        if args.layers is not None:
            overrides["layers"] = args.layers

    spec = JobSpec(
        scenario=scenario.name,
        overrides=overrides,
        n_steps=args.steps,
        preset=args.preset,
        n_neighbors=args.neighbors,
        error_detection=args.error_detection,
        backend=args.backend if args.backend is not None else "numpy",
        guard=args.guard,
        chaos=args.chaos,
        autotune=args.autotune,
        autotune_seed=args.autotune_seed,
    )
    spec.resolve()  # surface every SpecError here, not mid-run
    return spec, scenario


# ---------------------------------------------------------------------------
# run: one-shot in-process execution with per-step progress lines
# ---------------------------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.presets import get_preset
    from .service.runner import build_simulation
    from .service.spec import SpecError

    try:
        spec, scenario = _spec_from_args(args)
        sim, _ = build_simulation(
            spec,
            checkpoint_dir=args.checkpoint_dir,
            ledger_path=args.ledger,
        )
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    preset = get_preset(args.preset)
    print(f"{args.case}: {sim.particles.n} particles, preset {preset.label}")
    print(f"backend: {sim.backend.name} "
          f"(requested {sim.backend_requested}; {sim.backend.version})")
    n_steps = spec.resolved_steps(scenario)
    try:
        try:
            # One run() call per step keeps the per-step progress lines
            # while routing through the guard/autoresume dispatch.
            for _ in range(n_steps):
                for s in sim.run(n_steps=1):
                    print(f"  step {s.index}: t={s.time:.4e} dt={s.dt:.2e} "
                          f"{s.conservation.summary()}")
        except Exception as exc:  # noqa: BLE001 - the CLI failure boundary
            return _report_failure(sim, exc, scenario, args)
        drift = sim.conservation_drift()
        print(f"drift: mass={drift['mass']:.2e} momentum={drift['momentum']:.2e} "
              f"energy={drift['energy']:.2e}")
        rep = sim.report()
        if rep.guard is not None:
            print(rep.guard.summary())
        if rep.tuning is not None:
            from .observability.report import format_tuning

            print(format_tuning(rep.tuning))
        if args.json:
            summary = {
                "scenario": scenario.name,
                "preset": preset.label,
                "n_particles": sim.particles.n,
                "n_steps": n_steps,
                "final_time": sim.time,
                "final_dt": sim.history[-1].dt if sim.history else None,
                "drift": drift,
                "guard": rep.guard.as_dict() if rep.guard is not None else None,
                "sdc": rep.sdc,
                "backend": rep.backend,
                "tuning": rep.tuning,
            }
            print(json.dumps(summary, indent=2))
    finally:
        sim.close()
    return 0


def _report_failure(sim, exc, scenario, args) -> int:
    """Failure UX: one readable paragraph + optional JSON record, exit 1.

    A dying run — guard-terminal or any other step-loop error — must not
    greet the operator with a raw traceback.  The guard's structured
    post-mortem is used when available; other exceptions get a paragraph
    built from the driver's position.
    """
    from .resilience.guard import UnrecoverableStepError

    if isinstance(exc, UnrecoverableStepError):
        pm = exc.post_mortem
        paragraph = pm.describe()
        record = {"error": "unrecoverable-step", "post_mortem": pm.as_dict()}
    else:
        paragraph = (
            f"step {sim.step_index} (t={sim.time:.6g}) failed with "
            f"{type(exc).__name__}: {exc}. The run completed "
            f"{len(sim.history)} healthy step(s) before dying; re-run "
            f"with --guard to enable rollback-and-retry recovery."
        )
        record = {
            "error": type(exc).__name__,
            "message": str(exc),
            "step": sim.step_index,
            "time": sim.time,
        }
    print(f"error: run failed — {paragraph}", file=sys.stderr)
    if args.json:
        record["scenario"] = scenario.name
        guard = sim.step_guard.report() if sim.step_guard is not None else None
        record["guard"] = guard.as_dict() if guard is not None else None
        print(json.dumps(record, indent=2))
    return 1


# ---------------------------------------------------------------------------
# serve / submit / jobs: the service transport
# ---------------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from .service.manager import ServiceConfig
    from .service.server import serve_forever

    if os.path.exists(args.socket):
        print(f"error: socket path {args.socket!r} already exists",
              file=sys.stderr)
        return 2
    config = ServiceConfig(
        store_path=args.store,
        jobs_dir=args.jobs_dir,
        ledger_path=args.ledger,
        isolation=args.isolation,
        max_workers=args.workers,
        queue_capacity=args.queue_capacity,
    )
    print(f"serving on {args.socket} "
          f"({config.isolation} isolation, {config.max_workers} worker slots, "
          f"store {args.store or 'in-memory'})")
    try:
        serve_forever(args.socket, config)
    except KeyboardInterrupt:
        pass
    finally:
        try:
            os.unlink(args.socket)
        except OSError:
            pass
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from .service.server import client_submit
    from .service.spec import SpecError

    try:
        spec, _ = _spec_from_args(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    outcome = None
    try:
        for reply in client_submit(
            args.socket,
            spec,
            tenant=args.tenant,
            wait=not args.no_wait,
            events=args.events,
        ):
            if "event" in reply:
                ev = reply["event"]
                payload = {
                    k: v for k, v in ev["payload"].items() if k != "job_id"
                }
                print(f"  event {ev['seq']}: {ev['type']} "
                      f"{json.dumps(payload, sort_keys=True)}")
            elif "job_id" in reply:
                print(f"job {reply['job_id']} {reply['state']} "
                      f"spec {reply['spec_hash'][:12]}")
            elif reply.get("ok") and "outcome" in reply:
                outcome = reply["outcome"]
            elif not reply.get("ok", True):
                if reply.get("error") == "queue_full":
                    print(f"error: queue full, retry after "
                          f"{reply['retry_after']:.2f}s", file=sys.stderr)
                    return 3
                print(f"error: {reply.get('error')}", file=sys.stderr)
                return 1
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        print(f"error: cannot reach server at {args.socket!r}: {exc}",
              file=sys.stderr)
        return 1

    if outcome is not None:
        source = "cache" if outcome.get("cached") else "run"
        print(f"done ({source}): run {outcome['run_id']} "
              f"steps={outcome['steps']} t={outcome['time']:.4e} "
              f"digest {outcome['result_digest'][:12]}")
        if args.json:
            print(json.dumps(outcome, indent=2))
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .service.server import client_request

    try:
        if args.stats:
            reply = client_request(args.socket, {"op": "stats"})
        else:
            reply = client_request(args.socket, {"op": "jobs"})
    except (ConnectionError, FileNotFoundError, OSError) as exc:
        print(f"error: cannot reach server at {args.socket!r}: {exc}",
              file=sys.stderr)
        return 1
    if not reply.get("ok"):
        print(f"error: {reply.get('error')}", file=sys.stderr)
        return 1

    if args.stats:
        stats = reply["stats"]
        if args.json:
            print(json.dumps(stats, indent=2))
        else:
            for key in sorted(stats):
                print(f"{key}: {stats[key]}")
        return 0

    rows = reply["jobs"]
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    if not rows:
        print("no jobs")
        return 0
    print(f"{'job-id':<10} {'state':<10} {'scenario':<14} "
          f"{'spec':<12} {'src':<6} tenant")
    for row in rows:
        source = "cache" if row.get("cached") else (
            f"rec×{row['recoveries']}" if row.get("recoveries") else "run"
        )
        print(f"{row['job_id']:<10} {row['state']:<10} "
              f"{row['scenario']:<14} {row['spec_hash'][:12]:<12} "
              f"{source:<6} {row['tenant']}")
    return 0


# ---------------------------------------------------------------------------
# scenarios / scaling / tables / ledger (unchanged surfaces)
# ---------------------------------------------------------------------------


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import all_scenarios, golden_path

    entries = []
    for sc in all_scenarios():
        gate = None
        if sc.analytic is not None:
            gate = {
                "fields": sorted(sc.analytic.tolerances),
                "tolerances": dict(sc.analytic.tolerances),
                "n_steps": sc.analytic.n_steps,
            }
        entries.append(
            {
                "name": sc.name,
                "description": sc.description,
                "params": dict(sc.params),
                "test_params": dict(sc.test_params),
                "invariants": dict(sc.invariants),
                "analytic_gate": gate,
                "golden": golden_path(sc.name).exists(),
            }
        )

    if args.json:
        print(json.dumps(entries, indent=2))
        return 0

    name_w = max(len(e["name"]) for e in entries)
    print(f"{'scenario':<{name_w}}  gate        golden  description")
    for e in entries:
        gate = ",".join(e["analytic_gate"]["fields"]) if e["analytic_gate"] else "-"
        golden = "yes" if e["golden"] else "MISSING"
        print(f"{e['name']:<{name_w}}  {gate:<10}  {golden:<6}  {e['description']}")
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from .core.presets import get_preset
    from .runtime import (
        MACHINES,
        build_workload,
        format_scaling_table,
        strong_scaling,
    )

    preset = get_preset(args.code)
    workload = build_workload(args.test, args.n)
    machine = MACHINES[args.machine]
    cores = tuple(int(c) for c in args.cores.split(","))
    series = strong_scaling(preset, args.test, machine, cores,
                            workload=workload, n_steps=args.steps)
    print(format_scaling_table([series]))
    for p in series.points:
        print(f"  {p.pop.row()}")
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .core.feature_tables import (
        table1_physics_features,
        table2_miniapp_features,
        table3_cs_features,
        table4_miniapp_cs_features,
    )

    for table in (
        table1_physics_features(),
        table2_miniapp_features(),
        table3_cs_features(),
        table4_miniapp_cs_features(),
    ):
        print(table)
        print()
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    import dataclasses
    import os

    from .observability.ledger import RunLedger

    if not os.path.exists(args.path):
        print(f"error: no ledger at {args.path!r}", file=sys.stderr)
        return 2

    with RunLedger(args.path) as ledger:
        if args.show is not None:
            rec = ledger.get(args.show)
            if rec is None:
                print(f"error: unknown run id {args.show!r}", file=sys.stderr)
                return 2
            if args.json:
                print(json.dumps(dataclasses.asdict(rec), indent=2))
                return 0
            p50 = rec.step_p50()
            print(f"run {rec.run_id}")
            print(f"  scenario={rec.scenario} n={rec.n_particles} "
                  f"steps={rec.n_steps} backend={rec.backend}")
            print(f"  host={rec.host_id} code={rec.code_version}")
            print(f"  step p50: "
                  f"{p50 * 1e3:.2f} ms" if p50 is not None else "  step p50: -")
            print(f"  knobs: {json.dumps(rec.knobs, sort_keys=True)}")
            for phase, agg in sorted(rec.phases.items()):
                total = agg.get("total_s", 0.0)
                print(f"  phase {phase}: total={total * 1e3:.2f} ms "
                      f"spans={agg.get('count', 0)}")
            if rec.pop:
                print(f"  pop: {json.dumps(rec.pop, sort_keys=True)}")
            if rec.recovery:
                print(f"  recovery: {json.dumps(rec.recovery, sort_keys=True)}")
            return 0

        rows = ledger.runs(scenario=args.scenario, limit=args.limit)
        if args.json:
            print(json.dumps(
                [dataclasses.asdict(r) for r in rows], indent=2
            ))
            return 0
        if not rows:
            print("ledger is empty")
            return 0
        print(f"{'run-id':<24} {'scenario':<14} {'n':>8} {'steps':>5} "
              f"{'backend':<7} {'p50 ms/step':>11}  host")
        for r in rows:
            p50 = r.step_p50()
            p50_s = f"{p50 * 1e3:.2f}" if p50 is not None else "-"
            print(f"{r.run_id:<24} {r.scenario:<14} {r.n_particles:>8} "
                  f"{r.n_steps:>5} {r.backend:<7} {p50_s:>11}  {r.host_id}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SPH-EXA mini-app reproduction (CLUSTER 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a scenario from the registry")
    _add_spec_arguments(run)
    run.add_argument("--json", action="store_true",
                     help="print a machine-readable run summary")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="write rolling checkpoints to DIR (autoresume on)")
    run.add_argument("--ledger", default=None, metavar="DB",
                     help="append this run to the sqlite run ledger at DB "
                          "(also the autotuner's warm-start history)")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve", help="run the simulation service on a UNIX socket"
    )
    serve.add_argument("--socket", required=True, metavar="PATH",
                       help="UNIX socket path to listen on")
    serve.add_argument("--isolation", default="process",
                       choices=("inline", "process"),
                       help="worker-slot style: 'process' forks one process "
                            "per job and absorbs worker death via checkpoint "
                            "autoresume; 'inline' runs on threads (faster, "
                            "no death absorption)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent worker slots (default 2)")
    serve.add_argument("--queue-capacity", type=int, default=64,
                       help="admission queue bound; beyond it submissions "
                            "are rejected with a retry-after (default 64)")
    serve.add_argument("--store", default=None, metavar="DB",
                       help="durable result store (sqlite); default in-memory")
    serve.add_argument("--jobs-dir", default=None, metavar="DIR",
                       help="per-job checkpoint directories (default: temp)")
    serve.add_argument("--ledger", default=None, metavar="DB",
                       help="append executed jobs to the run ledger at DB")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a run to a repro serve instance"
    )
    _add_spec_arguments(submit)
    submit.add_argument("--socket", required=True, metavar="PATH",
                        help="the server's UNIX socket path")
    submit.add_argument("--tenant", default="cli",
                        help="fair-share identity (default 'cli')")
    submit.add_argument("--no-wait", action="store_true",
                        help="return after the ack instead of waiting "
                             "for the outcome")
    submit.add_argument("--events", action="store_true",
                        help="stream the job's event log while waiting")
    submit.add_argument("--json", action="store_true",
                        help="print the full outcome record as JSON")
    submit.set_defaults(func=_cmd_submit)

    jobs = sub.add_parser("jobs", help="list a server's job table")
    jobs.add_argument("--socket", required=True, metavar="PATH",
                      help="the server's UNIX socket path")
    jobs.add_argument("--stats", action="store_true",
                      help="print service counters instead of the job table")
    jobs.add_argument("--json", action="store_true",
                      help="machine-readable output")
    jobs.set_defaults(func=_cmd_jobs)

    scen = sub.add_parser("scenarios", help="list the scenario registry")
    scen.add_argument("--list", action="store_true",
                      help="print the table (default)")
    scen.add_argument("--json", action="store_true",
                      help="print the registry as JSON")
    scen.set_defaults(func=_cmd_scenarios)

    scal = sub.add_parser("scaling", help="strong-scaling sweep (modeled)")
    scal.add_argument("--code", default="sph-flow")
    scal.add_argument("--test", default="square", choices=("square", "evrard"))
    scal.add_argument("--machine", default="piz-daint",
                      choices=("piz-daint", "marenostrum4"))
    scal.add_argument("--n", type=int, default=200_000)
    scal.add_argument("--steps", type=int, default=5)
    scal.add_argument("--cores", default="12,24,48,96,192,384")
    scal.set_defaults(func=_cmd_scaling)

    tables = sub.add_parser("tables", help="print the Table 1-4 matrices")
    tables.set_defaults(func=_cmd_tables)

    ledger = sub.add_parser("ledger", help="inspect the run-history ledger")
    ledger.add_argument("--path", default="tuning.db", metavar="DB",
                        help="ledger database file (default: tuning.db)")
    ledger.add_argument("--list", action="store_true",
                        help="print the run table (default)")
    ledger.add_argument("--show", default=None, metavar="RUN_ID",
                        help="print one run's full record")
    ledger.add_argument("--scenario", default=None,
                        help="filter --list by scenario name")
    ledger.add_argument("--limit", type=int, default=20,
                        help="max rows for --list (default 20)")
    ledger.add_argument("--json", action="store_true",
                        help="machine-readable output")
    ledger.set_defaults(func=_cmd_ledger)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
