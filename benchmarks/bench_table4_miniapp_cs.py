"""Table 4 — the mini-app's computer-science outlook.

Executes the full Table-4 feature set: ORB + both SFC decompositions,
DLB with self-scheduling (all chunking schemes), optimal-interval and
two-level checkpointing, and the silent-data-corruption detectors against
an actual bit-flip campaign.  The benchmark target runs the SDC
detect-inject loop.
"""

import numpy as np

from repro.core.feature_tables import table4_miniapp_cs_features
from repro.domain.decomposition import decompose
from repro.resilience.failures import inject_bitflip
from repro.resilience.interval import TwoLevelConfig, two_level_intervals, young_interval
from repro.resilience.sdc import RangeDetector
from repro.scheduling.selfsched import SCHEMES, simulate_self_scheduling
from repro.tree.box import Box
from repro.core.particles import ParticleSystem


def _sdc_campaign(n_trials: int = 40) -> tuple[float, float]:
    """Detection recall of the two detector families in their regimes.

    Range detectors exist for the large excursions a set top-exponent bit
    produces (in bounded fields); checksums cover *every* flip in data
    that must not change across a window.  Returns (range recall on
    excursion flips, checksum recall on arbitrary flips).
    """
    from repro.resilience.sdc import ChecksumDetector

    rng = np.random.default_rng(3)
    range_hits = 0
    crc_hits = 0
    for _ in range(n_trials):
        p = ParticleSystem(
            x=rng.random((200, 3)), v=rng.normal(size=(200, 3)),
            m=np.full(200, 1e-3), h=np.full(200, 0.1),
        )
        det = RangeDetector(v_max=1e3, h_max=1e3, u_max=1e3)
        field = ["v", "h"][int(rng.integers(2))]  # ceiling-guarded fields
        inject_bitflip(getattr(p, field), bit=62, rng=rng)
        if det.check(p):
            range_hits += 1
        crc = ChecksumDetector()
        crc.snapshot("m", p.m)
        inject_bitflip(p.m, bit=int(rng.integers(64)), rng=rng)
        if crc.verify("m", p.m):
            crc_hits += 1
    return range_hits / n_trials, crc_hits / n_trials


def test_table4_miniapp_cs(benchmark, report):
    table = table4_miniapp_cs_features()
    for required in (
        "Orthogonal Recursive Bisection, Space Filling Curves",
        "DLB with self-scheduling",
        "Optimal interval, Multilevel",
        "Silent data corruption detectors",
        "64-bit",
    ):
        assert required in table, f"Table 4 entry missing: {required}"
    report("table4_miniapp_cs", table)

    rng = np.random.default_rng(4)
    x = rng.random((50_000, 3))
    box = Box.cube(0.0, 1.0, dim=3)
    for method in ("orb", "sfc-morton", "sfc-hilbert"):
        assert decompose(method, x, 32, box).imbalance() < 1.05

    # DLB with self-scheduling: all schemes run and balance skewed work.
    times = np.concatenate([np.full(500, 5.0), np.full(500, 1.0)])
    for scheme in SCHEMES:
        res = simulate_self_scheduling(times, 8, scheme)
        assert res.busy.sum() > 0

    # Optimal interval + multilevel.
    assert young_interval(10.0, 3600.0) > 0
    w_fast, w_slow = two_level_intervals(
        TwoLevelConfig(cost_fast=2.0, cost_slow=30.0, mtbf=3600.0)
    )
    assert w_fast < w_slow

    range_recall, crc_recall = benchmark(_sdc_campaign)
    assert range_recall > 0.9  # excursion flips in bounded fields
    assert crc_recall == 1.0  # checksums catch every flip in their window
