"""Ablation — dynamic load balancing (Table 4: "DLB with self-scheduling").

Three comparisons on an Evrard-shaped skewed work distribution:

1. self-scheduling schemes (static/SS/CSS/GSS/FAC2/AWF) with dispatch
   overhead — the classic trade the paper's refs [3, 16, 27] study;
2. work stealing vs no stealing;
3. static vs dynamic (work-weighted) domain decomposition in the cluster
   model — the cross-rank analogue.
"""

import numpy as np

from repro.core.presets import SPHYNX
from repro.io.reporting import format_table
from repro.runtime.cluster import ClusterModel
from repro.runtime.machine import PIZ_DAINT
from repro.scheduling.selfsched import SCHEMES, simulate_self_scheduling
from repro.scheduling.work_stealing import simulate_work_stealing


def _skewed_tasks(n=4096):
    """Per-bucket SPH work with an Evrard-like central concentration."""
    rng = np.random.default_rng(21)
    r = rng.random(n) ** 0.5
    return (1.0 / np.maximum(r, 0.05)) ** 0.7


def _selfsched_sweep():
    tasks = _skewed_tasks()
    rows, results = [], {}
    for scheme in SCHEMES:
        res = simulate_self_scheduling(tasks, 16, scheme, dispatch_overhead=0.02)
        results[scheme] = res
        rows.append([
            scheme, f"{res.makespan:.1f}", f"{res.load_balance:.3f}",
            f"{res.efficiency:.3f}", res.n_chunks,
        ])
    table = format_table(
        ["scheme", "makespan", "load balance", "efficiency", "chunks"],
        rows,
        title="Ablation: self-scheduling schemes, 16 workers, skewed SPH work",
    )
    return results, table


def test_ablation_self_scheduling(benchmark, report):
    results, table = benchmark.pedantic(_selfsched_sweep, rounds=1, iterations=1)
    report("ablation_load_balancing", table)
    # Dynamic factoring beats static chunking on skewed work...
    assert results["fac2"].makespan < results["static"].makespan
    # ...and beats per-task SS once dispatch overhead is charged.
    assert results["fac2"].makespan < results["ss"].makespan
    assert results["fac2"].load_balance > 0.95


def test_ablation_work_stealing(benchmark, report):
    tasks = _skewed_tasks(2000)
    # Pathological initial partition: all work on one worker.
    queues_bad = [list(tasks[: 2000 // 2])] + [[] for _ in range(7)]
    stolen = benchmark.pedantic(
        lambda: simulate_work_stealing(
            [list(q) for q in queues_bad], steal_latency=0.01
        ),
        rounds=1, iterations=1,
    )
    no_steal_makespan = sum(tasks[: 1000])
    lines = [
        "Ablation: work stealing on a pathological initial partition",
        f"  no stealing makespan : {no_steal_makespan:10.1f}",
        f"  with stealing        : {stolen.makespan:10.1f}",
        f"  steals               : {stolen.n_steals}",
        f"  load balance         : {stolen.load_balance:.3f}",
    ]
    report("ablation_work_stealing", "\n".join(lines))
    assert stolen.makespan < 0.3 * no_steal_makespan


def test_ablation_static_vs_dynamic_decomposition(benchmark, report, evrard_workload):
    """Cross-rank DLB: work-weighted cuts vs count cuts on Evrard."""
    def sweep():
        rows = []
        times = {}
        for lb in ("static", "dynamic"):
            preset = SPHYNX.with_(load_balancing=lb,
                                  domain_decomposition="sfc-hilbert")
            model = ClusterModel(evrard_workload, preset, PIZ_DAINT, 384, kappa=1e-8)
            bd = model.simulate_step()
            imb = float(bd.compute_time.max() / bd.compute_time.mean())
            times[lb] = bd.step_time
            rows.append([lb, f"{bd.step_time:.3f}", f"{imb:.3f}"])
        return rows, times

    rows, times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["load balancing", "modeled t/step [s]", "compute imbalance"],
        rows,
        title="Ablation: static vs dynamic decomposition (Evrard, 384 cores)",
    )
    report("ablation_static_vs_dynamic", table)
    assert times["dynamic"] <= times["static"] * 1.02
