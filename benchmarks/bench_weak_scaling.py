"""Extension — weak scaling (the paper's declared next step).

"A factor that has not yet been explored is the weak scaling of these
codes, which is usually the regime in which they operate in production
runs.  This is part of ongoing analysis work."  (Section 5.2.)

This bench performs that analysis on the calibrated model: fixed
particles/core (the production regime), growing the problem with the
machine, for SPHYNX and SPH-flow on the square test.  Expected shape:
time/step stays far flatter than the strong-scaling curve at the same
core counts, eroding slowly through collectives, halo surfaces and
replicated work.
"""

from repro.core.presets import SPHFLOW, SPHYNX
from repro.runtime.machine import PIZ_DAINT
from repro.runtime.weak_scaling import weak_scaling

CORES = (12, 24, 48, 96, 192)
PER_CORE = 30_000


def _sweep():
    return [
        weak_scaling(preset, "square", PIZ_DAINT, CORES,
                     particles_per_core=PER_CORE, n_steps=1)
        for preset in (SPHYNX, SPHFLOW)
    ]


def test_weak_scaling_extension(benchmark, report):
    series = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = "\n\n".join(s.report() for s in series)
    report("weak_scaling", "Extension: weak scaling (Section 5.2 future work)\n\n" + text)
    for s in series:
        eff = s.weak_efficiency()
        # Time per step must not blow up: the defining weak-scaling claim.
        assert eff[-1] > 0.35, f"{s.code}: weak efficiency collapsed"
        # And the curve is *much* flatter than strong scaling would be
        # over the same 16x core growth (strong would approach eff ~ t0*c0/(t*c)).
        assert s.times()[-1] < 3.0 * s.times()[0]
