"""Micro-benchmark of the zero-redundancy pair engine at N=8e3.

Times one full rate evaluation (phases A-I) per step on the square
patch, serially, with the pair engine on and off, on bit-identical
trajectories.  Records per-step wall times, the speedup, the engine's
geometry reuse counters and steady-state allocation behaviour into
``benchmarks/results/BENCH_pair_engine.json``.

The committed baseline ``benchmarks/baselines/BENCH_pair_engine.json``
pins the normalized step time (engine-on / engine-off ratio): CI's
bench-smoke job fails when the ratio regresses by more than 10%
(see ``benchmarks/check_pair_engine_regression.py``).

The 1.5x speedup target is a *serial* redundancy-elimination claim, so
it does not need multiple cores — but it does need enough pairs for the
eliminated work to dominate fixed per-step overheads, so the assertion
is gated on the workload size (N >= 8000; shrink via
``REPRO_BENCH_PAIR_SIDE`` for smoke runs and the gate lifts).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _scaling_common import host_stamp
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation
from repro.ics.square_patch import SquarePatchConfig, make_square_patch
from repro.parallel import ExecConfig
from repro.timestepping.steppers import TimestepParams

#: patch side AND layer count; 20 x 20 x 20 = 8000 particles.
PAIR_SIDE = int(os.environ.get("REPRO_BENCH_PAIR_SIDE", "20"))
#: execution backend both arms run on; the committed baseline records
#: which one produced it and the regression gate refuses cross-backend
#: comparisons (a compiled measurement says nothing about numpy drift).
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "numpy")
WARMUP_STEPS = 2
TIMED_STEPS = 3


def _make_sim(pair_engine: bool) -> Simulation:
    particles, box, eos = make_square_patch(
        SquarePatchConfig(side=PAIR_SIDE, layers=PAIR_SIDE)
    )
    config = SimulationConfig().with_(
        n_neighbors=30,
        timestep_params=TimestepParams(use_energy_criterion=False),
    )
    exec_config = ExecConfig(
        workers=0, neighbor_cache=True, pair_engine=pair_engine,
        backend=BACKEND,
    )
    return Simulation(particles, box, eos, config=config, exec_config=exec_config)


def _time_steps(sim: Simulation) -> float:
    """Best-of-TIMED_STEPS wall time of one full step (rates + advance)."""
    for _ in range(WARMUP_STEPS):  # lists built, arena grown, caches warm
        sim.step()
    best = np.inf
    for _ in range(TIMED_STEPS):
        t0 = time.perf_counter()
        sim.step()
        best = min(best, time.perf_counter() - t0)
    return best


def test_pair_engine_micro(report, results_dir):
    on = _make_sim(pair_engine=True)
    try:
        t_on = _time_steps(on)
        backend_provenance = on.backend.describe()
        n = on.particles.n
        n_pairs = on.history[-1].n_pairs
        steady = on.history[-1]
        # Every reuse is a geometry pass the legacy path recomputed.
        passes = steady.pair_geometry_computes + steady.pair_geometry_reuses
    finally:
        on.close()

    off = _make_sim(pair_engine=False)
    try:
        t_off = _time_steps(off)
    finally:
        off.close()

    speedup = t_off / t_on if t_on > 0 else float("inf")
    ratio = t_on / t_off if t_off > 0 else float("inf")
    target_applies = n >= 8000
    record = {
        "case": "square patch, serial per-step rate evaluation (phases A-I)",
        "n_particles": n,
        "n_pairs": n_pairs,
        "warmup_steps": WARMUP_STEPS,
        "timed_steps": TIMED_STEPS,
        "cpu_count": os.cpu_count(),
        "backend": backend_provenance,
        "t_step_engine_on_s": t_on,
        "t_step_engine_off_s": t_off,
        "speedup": speedup,
        "normalized_step_time": ratio,
        "geometry_passes_per_step": passes,
        "geometry_computes_per_step": steady.pair_geometry_computes,
        "geometry_reuses_per_step": steady.pair_geometry_reuses,
        "steady_state_bytes_allocated": steady.pair_bytes_allocated,
        "steady_state_bytes_reused": steady.pair_bytes_reused,
        "target_speedup": 1.5,
        "target_applies": target_applies,
        **host_stamp(),
    }
    (results_dir / "BENCH_pair_engine.json").write_text(
        json.dumps(record, indent=2) + "\n"
    )
    report(
        "BENCH_pair_engine",
        (
            f"pair-engine micro-benchmark (N={n}, {n_pairs} pairs, serial, "
            f"backend={backend_provenance['name']})\n"
            f"  engine on : {t_on * 1e3:8.2f} ms/step "
            f"({steady.pair_geometry_computes} geometry computes, "
            f"{steady.pair_geometry_reuses} reuses, "
            f"{steady.pair_bytes_allocated} B allocated/step)\n"
            f"  engine off: {t_off * 1e3:8.2f} ms/step "
            f"({passes} geometry passes recomputed)\n"
            f"  speedup: {speedup:5.2f}x (target >= 1.5x at N >= 8000)"
        ),
    )
    assert np.isfinite(t_on) and t_on > 0.0
    # Steady state: one geometry pass feeds the whole step, nothing is
    # freshly allocated on the pair axis.
    assert steady.pair_geometry_computes == 1
    assert steady.pair_geometry_reuses >= 3
    assert steady.pair_bytes_allocated == 0
    if target_applies:
        assert speedup >= 1.5, (
            f"pair-engine speedup {speedup:.2f}x below the 1.5x "
            f"acceptance threshold at N={n}"
        )
