"""Micro-benchmark of span-tracing overhead on the serial driver.

The observability subsystem is on by default, so its cost budget is part
of the API contract: tracing enabled may add at most 2% to the step time
(plus a small absolute slack for timer noise on tiny workloads), and the
:class:`~repro.observability.tracer.NullTracer` path must be free of
per-span allocations entirely.

Times full steps of the square patch with the default
:class:`~repro.observability.tracer.SpanTracer` against the tracing-off
:class:`~repro.observability.tracer.NullTracer` configuration on
bit-identical trajectories, min-of-N per config, and records the ratio
into ``benchmarks/results/observability_micro.json``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from _scaling_common import host_stamp
from repro.core.config import RunConfig, SimulationConfig
from repro.core.simulation import Simulation
from repro.ics.square_patch import SquarePatchConfig, make_square_patch
from repro.observability import NullTracer, ObservabilityConfig, SpanTracer
from repro.timestepping.steppers import TimestepParams

#: patch side AND layer count; 18^3 = 5832 particles by default.
SIDE = int(os.environ.get("REPRO_BENCH_OBS_SIDE", "18"))
WARMUP_STEPS = 2
TIMED_STEPS = 5
#: contract: <= 2% relative overhead, plus absolute slack for timer noise.
MAX_OVERHEAD = 0.02
ABS_SLACK_SECONDS = 0.005


def _make_sim(enabled: bool) -> Simulation:
    particles, box, eos = make_square_patch(
        SquarePatchConfig(side=SIDE, layers=SIDE)
    )
    config = SimulationConfig().with_(
        n_neighbors=30,
        timestep_params=TimestepParams(use_energy_criterion=False),
    )
    return Simulation(
        particles, box, eos, config=config,
        run_config=RunConfig(
            observability=ObservabilityConfig(enabled=enabled)
        ),
    )


def _best_step_time(sim: Simulation) -> float:
    for _ in range(WARMUP_STEPS):
        sim.step()
    best = np.inf
    for _ in range(TIMED_STEPS):
        t0 = time.perf_counter()
        sim.step()
        best = min(best, time.perf_counter() - t0)
    return best


def test_tracing_overhead_within_budget(report, results_dir):
    on = _make_sim(enabled=True)
    assert isinstance(on.tracer, SpanTracer) and on.tracer.enabled
    t_on = _best_step_time(on)
    spans = len(on.tracer.events)
    n = on.particles.n

    off = _make_sim(enabled=False)
    assert isinstance(off.tracer, NullTracer)
    t_off = _best_step_time(off)
    assert off.tracer.events == []

    # Bit-identical trajectories: instrumentation must not touch physics.
    for f in ("x", "u"):
        assert np.array_equal(
            getattr(on.particles, f), getattr(off.particles, f)
        ), f

    overhead = t_on / t_off - 1.0
    payload = {
        "n_particles": n,
        "step_seconds_tracing_on": t_on,
        "step_seconds_tracing_off": t_off,
        "relative_overhead": overhead,
        "spans_per_run": spans,
        "budget": MAX_OVERHEAD,
        **host_stamp(),
    }
    (results_dir / "observability_micro.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    report(
        "observability_micro",
        "Span-tracing overhead (square patch, serial, "
        f"N={n}, best of {TIMED_STEPS})\n"
        f"  tracing on  : {t_on * 1e3:8.2f} ms/step ({spans} spans)\n"
        f"  tracing off : {t_off * 1e3:8.2f} ms/step\n"
        f"  overhead    : {overhead * 100:+.2f}%  (budget "
        f"{MAX_OVERHEAD * 100:.0f}% + {ABS_SLACK_SECONDS * 1e3:.0f} ms slack)",
    )
    assert t_on <= t_off * (1.0 + MAX_OVERHEAD) + ABS_SLACK_SECONDS, (
        f"tracing overhead {overhead * 100:.2f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% budget "
        f"(on={t_on * 1e3:.2f} ms, off={t_off * 1e3:.2f} ms)"
    )


def test_null_tracer_dispatch_is_constant_time():
    """The tracing-off hot path: one dict-free, allocation-free call."""
    t = NullTracer()
    ctx = t.phase("E")
    rounds = 50_000
    t0 = time.perf_counter()
    for _ in range(rounds):
        with t.phase("E"):
            pass
    per_call = (time.perf_counter() - t0) / rounds
    assert t.phase("G") is ctx  # shared context object, no per-call state
    assert t.events == []
    assert per_call < 5e-6  # ~µs scale even on slow CI hosts
