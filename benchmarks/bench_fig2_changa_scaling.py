"""Figure 2 — ChaNGa strong scaling (square patch + Evrard collapse).

Fig 2a: square patch on Piz Daint, 12..1536 cores — 738 s @ 12 cores
flattening near 93 s (ChaNGa pays its gravity-oriented infrastructure on
a pure-SPH test, an order of magnitude above SPHYNX/SPH-flow).
Fig 2b: Evrard on Piz Daint, 12..1536 — 30.38 s @ 12 down to 5.74 s, the
individual-time-step rungs both saving work and capping scalability.
"""

from repro.core.presets import CHANGA
from repro.runtime.calibration import calibrate_kappa
from repro.runtime.cluster import ClusterModel
from repro.runtime.machine import PIZ_DAINT
from repro.runtime.scaling import strong_scaling

from _scaling_common import assert_paper_shape, series_report

CORES = (12, 24, 48, 96, 192, 384, 768, 1536)
PAPER_SQUARE = {12: 738.0, 1536: 93.0}
PAPER_EVRARD = {12: 30.38, 1536: 5.74}


def test_fig2a_changa_square(benchmark, report, square_workload):
    s = benchmark.pedantic(
        lambda: strong_scaling(CHANGA, "square", PIZ_DAINT, CORES,
                               workload=square_workload, n_steps=20),
        rounds=1, iterations=1,
    )
    text = series_report(
        "Figure 2a: ChaNGa strong scalability, square test case", [s], PAPER_SQUARE
    )
    report("fig2a_changa_square", text)
    assert_paper_shape(s, PAPER_SQUARE)


def test_fig2b_changa_evrard(benchmark, report, evrard_workload):
    s = benchmark.pedantic(
        lambda: strong_scaling(CHANGA, "evrard", PIZ_DAINT, CORES,
                               workload=evrard_workload, n_steps=20),
        rounds=1, iterations=1,
    )
    text = series_report(
        "Figure 2b: ChaNGa strong scalability, Evrard test case", [s], PAPER_EVRARD
    )
    report("fig2b_changa_evrard", text)
    assert_paper_shape(s, PAPER_EVRARD)
    # The rung structure must actually engage on the Evrard profile.
    kappa = calibrate_kappa(CHANGA, evrard_workload)
    model = ClusterModel(evrard_workload, CHANGA, PIZ_DAINT, 192, kappa=kappa)
    assert model.substeps > 1


def test_fig2_cross_code_shape(benchmark, report, square_workload):
    """Who-wins check: ChaNGa's square-patch curve sits an order of
    magnitude above SPHYNX's at every scale (Figs 1a vs 2a)."""
    from repro.core.presets import SPHYNX

    sy, ch = benchmark.pedantic(
        lambda: (
            strong_scaling(SPHYNX, "square", PIZ_DAINT, (12, 96, 384),
                           workload=square_workload, n_steps=5),
            strong_scaling(CHANGA, "square", PIZ_DAINT, (12, 96, 384),
                           workload=square_workload, n_steps=5),
        ),
        rounds=1, iterations=1,
    )
    for p_s, p_c in zip(sy.points, ch.points):
        assert p_c.time_per_step > 5.0 * p_s.time_per_step


def test_fig2_step_model_benchmark(benchmark, evrard_workload):
    kappa = calibrate_kappa(CHANGA, evrard_workload)
    model = ClusterModel(evrard_workload, CHANGA, PIZ_DAINT, 1536, kappa=kappa)
    benchmark(model.simulate_step)
