#!/usr/bin/env python
"""Gate the step-guard bench against its committed baseline.

Checks a fresh ``benchmarks/results/BENCH_guard.json`` twice:

1. **Absolute budget** — fault-free guard overhead must stay within the
   3% contract (plus a small absolute slack already applied by the
   bench; this gate re-checks the recorded ratio).
2. **Relative drift** — the overhead may not exceed the committed
   ``benchmarks/baselines/BENCH_guard.json`` by more than 2 percentage
   points (overhead is a ratio measured within one run on one host, so
   absolute machine speed cancels).

Skips (exit 0 with a notice) on a shrunken smoke workload, where the
fixed-cost fraction is not representative of N=8000, and on a
cross-host comparison (both records stamped with differing ``host_id``
fingerprints) — the drift check compares ratios from two machines,
which is noise, not signal.  The absolute budget still applies on any
host; only the baseline drift check needs host identity.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ABSOLUTE_BUDGET = 0.03  # the acceptance contract at N=8000
DRIFT_POINTS = 0.02  # allowed worsening vs baseline (percentage points)
NOISE_FLOOR = 0.0  # negative measured overhead is clamped to zero

ROOT = Path(__file__).parent
RESULT = ROOT / "results" / "BENCH_guard.json"
BASELINE = ROOT / "baselines" / "BENCH_guard.json"


def main() -> int:
    if not RESULT.exists():
        print(f"no fresh result at {RESULT}; run bench_guard_micro first")
        return 1
    current = json.loads(RESULT.read_text())
    baseline = json.loads(BASELINE.read_text())

    if not current.get("target_applies", False):
        print(
            "skipping guard overhead gate: shrunken workload "
            f"(N={current['n_particles']})"
        )
        return 0

    now = max(NOISE_FLOOR, current["relative_overhead"])
    cur_host = current.get("host_id")
    ref_host = baseline.get("host_id")
    if cur_host and ref_host and cur_host != ref_host:
        print(
            "cross-host baseline refused for the drift check "
            f"(fresh result from host {cur_host}, baseline from "
            f"{ref_host}); applying the absolute budget only"
        )
        limit = ABSOLUTE_BUDGET
        ref = float("nan")
    else:
        ref = max(NOISE_FLOOR, baseline["relative_overhead"])
        limit = min(ABSOLUTE_BUDGET, ref + DRIFT_POINTS)
    verdict = "OK" if now <= limit else "REGRESSION"
    print(
        f"guard overhead: {now * 100:.2f}% "
        f"(baseline {ref * 100:.2f}%, limit {limit * 100:.2f}%) -> {verdict}"
    )
    if now > limit:
        print(
            f"fault-free guard overhead worsened to {now * 100:.2f}% "
            f"(absolute budget {ABSOLUTE_BUDGET * 100:.0f}%, drift allowance "
            f"+{DRIFT_POINTS * 100:.0f} points over baseline)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
