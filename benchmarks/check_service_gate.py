#!/usr/bin/env python
"""Gate the service load bench: cache ratio, digest identity, latency drift.

Reads a fresh ``benchmarks/results/BENCH_service.json`` and fails when

* the served-from-cache ratio under the duplicate-heavy load falls
  below the 0.45 acceptance floor,
* any duplicate group was served inconsistent result digests (a cache
  hit must be bit-identical to the run that originated its line), or
* p99 latency worsened by more than 50% against the committed
  ``benchmarks/baselines/BENCH_service.json`` — a drift check that is
  *refused* when the two records carry differing ``host_id``
  fingerprints: latencies from two machines differ for machine
  reasons, not code reasons.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

TARGET_CACHE_RATIO = 0.45
LATENCY_DRIFT_FACTOR = 1.5  # p99 may not worsen past baseline * this

ROOT = Path(__file__).parent
RESULT = ROOT / "results" / "BENCH_service.json"
BASELINE = ROOT / "baselines" / "BENCH_service.json"


def main() -> int:
    if not RESULT.exists():
        print(f"no fresh result at {RESULT}; run bench_service first")
        return 1
    current = json.loads(RESULT.read_text())

    failed = False
    ratio = current["served_from_cache"]
    verdict = "OK" if ratio >= TARGET_CACHE_RATIO else "FAIL"
    print(
        f"served-from-cache {ratio:.2f} over {current['n_requests']} "
        f"requests ({current['duplicate_mix']:.0%} duplicates) "
        f"(target >= {TARGET_CACHE_RATIO}) {verdict}"
    )
    if ratio < TARGET_CACHE_RATIO:
        failed = True

    if not current.get("digests_consistent", False):
        print("FAIL: cache hits were not bit-identical to their runs")
        failed = True
    else:
        print(
            f"digest identity OK across {current['n_unique']} duplicate "
            f"groups ({current['executed']} executions)"
        )

    print(
        f"latency p50 {current['p50_ms']:.1f} ms, "
        f"p99 {current['p99_ms']:.1f} ms"
    )

    if BASELINE.exists():
        baseline = json.loads(BASELINE.read_text())
        cur_host = current.get("host_id")
        ref_host = baseline.get("host_id")
        if cur_host and ref_host and cur_host != ref_host:
            print(
                "skipping latency drift check: cross-host comparison "
                f"refused (fresh result from host {cur_host}, baseline "
                f"from {ref_host}); re-baseline on this machine to re-arm"
            )
        else:
            limit = baseline["p99_ms"] * LATENCY_DRIFT_FACTOR
            verdict = "OK" if current["p99_ms"] <= limit else "FAIL"
            print(
                f"p99 drift: {current['p99_ms']:.1f} ms vs baseline "
                f"{baseline['p99_ms']:.1f} ms "
                f"(limit {limit:.1f} ms) {verdict}"
            )
            if current["p99_ms"] > limit:
                failed = True
    else:
        print(f"no baseline at {BASELINE}; skipping drift check")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
