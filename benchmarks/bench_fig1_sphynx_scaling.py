"""Figure 1 — SPHYNX strong scaling (square patch + Evrard collapse).

Fig 1a: rotating square patch, 10^6 particles, Piz Daint and MareNostrum,
12..384 cores — axis anchors 38.25 s @ 12 cores down to 2.79 s @ 384.
Fig 1b: Evrard collapse, same sweep — 40.27 s @ 12 down to 3.86 s @ 384.

The benchmark target is one modeled cluster step at the largest scale.
"""

from repro.core.presets import SPHYNX
from repro.runtime.calibration import calibrate_kappa
from repro.runtime.cluster import ClusterModel
from repro.runtime.machine import MARENOSTRUM4, PIZ_DAINT
from repro.runtime.scaling import strong_scaling

from _scaling_common import assert_paper_shape, series_report

CORES = (12, 24, 48, 96, 192, 384)
PAPER_SQUARE = {12: 38.25, 384: 2.79}
PAPER_EVRARD = {12: 40.27, 384: 3.86}


def test_fig1a_sphynx_square(benchmark, report, square_workload):
    series = benchmark.pedantic(
        lambda: [
            strong_scaling(SPHYNX, "square", machine, CORES,
                           workload=square_workload, n_steps=20)
            for machine in (PIZ_DAINT, MARENOSTRUM4)
        ],
        rounds=1, iterations=1,
    )
    text = series_report(
        "Figure 1a: SPHYNX strong scalability, square test case",
        series, PAPER_SQUARE,
    )
    report("fig1a_sphynx_square", text)
    assert_paper_shape(series[0], PAPER_SQUARE)
    # Fig 1a shape: the two machines track each other closely.
    for p_pd, p_mn in zip(series[0].points, series[1].points):
        assert abs(p_mn.time_per_step / p_pd.time_per_step - 1.0) < 0.25


def test_fig1b_sphynx_evrard(benchmark, report, evrard_workload):
    series = benchmark.pedantic(
        lambda: [
            strong_scaling(SPHYNX, "evrard", machine, CORES,
                           workload=evrard_workload, n_steps=20)
            for machine in (PIZ_DAINT, MARENOSTRUM4)
        ],
        rounds=1, iterations=1,
    )
    text = series_report(
        "Figure 1b: SPHYNX strong scalability, Evrard test case",
        series, PAPER_EVRARD,
    )
    report("fig1b_sphynx_evrard", text)
    assert_paper_shape(series[0], PAPER_EVRARD)


def test_fig1_step_model_benchmark(benchmark, square_workload):
    kappa = calibrate_kappa(SPHYNX, square_workload)
    model = ClusterModel(square_workload, SPHYNX, PIZ_DAINT, 384, kappa=kappa)
    benchmark(model.simulate_step)
